//! End-to-end pipeline tests: text → parser → dictionary/store → reasoner →
//! decoded graph → serializer, exercising the public API the way an
//! application would.

use inferray::core::api::{reason_ntriples, reason_turtle};
use inferray::parser::{parse_ntriples, to_ntriples_string};
use inferray::{load_ntriples, reason_graph, vocab, Fragment, Graph, Term, Triple};

const EX: &str = "http://example.org/";

fn ex(local: &str) -> String {
    format!("{EX}{local}")
}

#[test]
fn figure4_example_from_ntriples_text() {
    let document = format!(
        "<{h}> <{sco}> <{m}> .\n<{m}> <{sco}> <{a}> .\n<{b}> <{t}> <{h}> .\n<{l}> <{t}> <{h}> .\n",
        h = ex("human"),
        m = ex("mammal"),
        a = ex("animal"),
        b = ex("Bart"),
        l = ex("Lisa"),
        sco = vocab::RDFS_SUB_CLASS_OF,
        t = vocab::RDF_TYPE,
    );
    let result = reason_ntriples(&document, Fragment::RdfsDefault).unwrap();
    assert_eq!(result.stats.inferred_triples(), 5);
    for (instance, class) in [
        ("Bart", "mammal"),
        ("Bart", "animal"),
        ("Lisa", "mammal"),
        ("Lisa", "animal"),
    ] {
        assert!(result
            .graph
            .contains(&Triple::iris(ex(instance), vocab::RDF_TYPE, ex(class))));
    }
}

#[test]
fn materialization_round_trips_through_ntriples() {
    let mut graph = Graph::new();
    graph.insert_iris(ex("dog"), vocab::RDFS_SUB_CLASS_OF, ex("mammal"));
    graph.insert_iris(ex("Rex"), vocab::RDF_TYPE, ex("dog"));
    let result = reason_graph(&graph, Fragment::RdfsDefault).unwrap();

    let triples: Vec<Triple> = result.graph.iter().cloned().collect();
    let text = to_ntriples_string(&triples);
    let reparsed: Graph = parse_ntriples(&text).unwrap().into_iter().collect();
    assert_eq!(reparsed, result.graph, "serialize → parse must round-trip");
}

#[test]
fn turtle_input_with_schema_and_instances() {
    let document = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex:   <http://example.org/> .

ex:teaches rdfs:domain ex:Teacher ;
           rdfs:range  ex:Course .
ex:Teacher rdfs:subClassOf ex:Person .

ex:Socrates ex:teaches ex:Philosophy101 .
"#;
    let result = reason_turtle(document, Fragment::RhoDf).unwrap();
    assert!(result.graph.contains(&Triple::iris(
        ex("Socrates"),
        vocab::RDF_TYPE,
        ex("Teacher")
    )));
    assert!(result
        .graph
        .contains(&Triple::iris(ex("Socrates"), vocab::RDF_TYPE, ex("Person"))));
    assert!(result.graph.contains(&Triple::iris(
        ex("Philosophy101"),
        vocab::RDF_TYPE,
        ex("Course")
    )));
}

#[test]
fn literals_survive_the_whole_pipeline() {
    let mut graph = Graph::new();
    graph.insert(Triple::new(
        Term::iri(ex("Bart")),
        Term::iri(ex("age")),
        Term::typed_literal("10", "http://www.w3.org/2001/XMLSchema#integer"),
    ));
    graph.insert_iris(ex("age"), vocab::RDFS_DOMAIN, ex("Person"));
    let result = reason_graph(&graph, Fragment::RdfsDefault).unwrap();
    // The literal-valued triple is preserved and the domain typing fires.
    assert!(graph.is_subset(&result.graph));
    assert!(result
        .graph
        .contains(&Triple::iris(ex("Bart"), vocab::RDF_TYPE, ex("Person"))));
}

#[test]
fn loading_reports_sizes_and_handles_duplicates() {
    let document = format!(
        "<{a}> <{p}> <{b}> .\n<{a}> <{p}> <{b}> .\n# comment line\n",
        a = ex("a"),
        p = ex("p"),
        b = ex("b"),
    );
    let loaded = load_ntriples(&document).unwrap();
    assert_eq!(
        loaded.len(),
        1,
        "duplicate statements collapse at load time"
    );
    assert!(loaded.dictionary.id_of_iri(&ex("p")).is_some());
}

#[test]
fn property_promotion_through_the_full_pipeline() {
    // The schema triple mentions `hasPart` as a subject before it is ever
    // used as a predicate; inference must still type `Car` correctly.
    let document = format!(
        "<{has_part}> <{domain}> <{whole}> .\n<{car}> <{has_part}> <{wheel}> .\n",
        has_part = ex("hasPart"),
        domain = vocab::RDFS_DOMAIN,
        whole = ex("Whole"),
        car = ex("Car"),
        wheel = ex("Wheel"),
    );
    let result = reason_ntriples(&document, Fragment::RdfsDefault).unwrap();
    assert!(result
        .graph
        .contains(&Triple::iris(ex("Car"), vocab::RDF_TYPE, ex("Whole"))));
}

#[test]
fn empty_and_comment_only_documents() {
    let result = reason_ntriples("# nothing here\n", Fragment::RdfsPlus).unwrap();
    assert!(result.graph.is_empty());
    assert_eq!(result.stats.iterations, 0);
}
