//! Store-level queries and reasoner invariants exercised through the public
//! API: pattern lookup after materialization, monotonicity (the input is
//! always contained in the output), idempotence, and fragment monotonicity
//! (a larger fragment never derives less).

use inferray::datasets::{BsbmGenerator, LubmGenerator};
use inferray::dictionary::wellknown;
use inferray::parser::load_triples;
use inferray::store::TriplePattern;
use inferray::{vocab, Fragment, IdTriple, InferrayReasoner, Materializer, Triple};
use proptest::prelude::*;

#[test]
fn pattern_queries_over_a_materialized_store() {
    let dataset = BsbmGenerator::new(2_000).generate();
    let loaded = load_triples(dataset.triples.iter()).unwrap();
    let mut store = loaded.store;
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut store);

    // Every triple with predicate rdf:type can be found through the pattern
    // API, and counts agree with the table size.
    let type_triples = store.match_pattern(TriplePattern::any().with_p(wellknown::RDF_TYPE));
    assert_eq!(
        type_triples.len(),
        store.table(wellknown::RDF_TYPE).unwrap().len()
    );
    assert!(type_triples.iter().all(|t| t.p == wellknown::RDF_TYPE));

    // A fully-bound pattern behaves like `contains`.
    let sample = type_triples[0];
    let exact = store.match_pattern(
        TriplePattern::any()
            .with_s(sample.s)
            .with_p(sample.p)
            .with_o(sample.o),
    );
    assert_eq!(exact, vec![sample]);

    // The wildcard pattern enumerates the whole store.
    assert_eq!(store.count_pattern(TriplePattern::any()), store.len());
}

#[test]
fn materialization_is_monotone_and_idempotent_on_generated_data() {
    let dataset = LubmGenerator::new(4_000).generate();
    let loaded = load_triples(dataset.triples.iter()).unwrap();
    let input: Vec<IdTriple> = loaded.store.iter_triples().collect();

    let mut store = loaded.store.clone();
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsPlus);
    let first = reasoner.materialize(&mut store);
    // Monotonicity: every input triple is still present.
    for triple in &input {
        assert!(store.contains(triple));
    }
    // Idempotence: a second run adds nothing.
    let after_first = store.len();
    let second = reasoner.materialize(&mut store);
    assert_eq!(store.len(), after_first);
    assert_eq!(second.inferred_triples(), 0);
    assert!(first.output_triples >= first.input_triples);
}

#[test]
fn larger_fragments_never_derive_less() {
    let dataset = LubmGenerator::new(3_000).generate();
    let loaded = load_triples(dataset.triples.iter()).unwrap();
    let mut sizes = Vec::new();
    for fragment in [
        Fragment::RhoDf,
        Fragment::RdfsDefault,
        Fragment::RdfsFull,
        Fragment::RdfsPlusFull,
    ] {
        let mut store = loaded.store.clone();
        InferrayReasoner::new(fragment).materialize(&mut store);
        sizes.push(store.len());
    }
    assert!(
        sizes.windows(2).all(|w| w[0] <= w[1]),
        "materialization sizes must be monotone in the fragment: {sizes:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    /// Random tiny ontologies: the reasoner must terminate, preserve its
    /// input, and be idempotent.
    #[test]
    fn prop_reasoner_invariants_on_random_graphs(
        subclass_edges in proptest::collection::vec((0u8..12, 0u8..12), 0..20),
        type_edges in proptest::collection::vec((0u8..12, 0u8..12), 0..20),
    ) {
        let mut graph = inferray::Graph::new();
        for (a, b) in &subclass_edges {
            graph.insert(Triple::iris(
                format!("http://ex/C{a}"),
                vocab::RDFS_SUB_CLASS_OF,
                format!("http://ex/C{b}"),
            ));
        }
        for (i, c) in &type_edges {
            graph.insert(Triple::iris(
                format!("http://ex/i{i}"),
                vocab::RDF_TYPE,
                format!("http://ex/C{c}"),
            ));
        }
        let result = inferray::reason_graph(&graph, Fragment::RdfsDefault).unwrap();
        prop_assert!(graph.is_subset(&result.graph));
        // Idempotence through the decoded API.
        let again = inferray::reason_graph(&result.graph, Fragment::RdfsDefault).unwrap();
        prop_assert_eq!(&again.graph, &result.graph);
        prop_assert_eq!(again.stats.inferred_triples(), 0);
    }
}
