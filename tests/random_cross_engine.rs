//! Randomized cross-engine equivalence: the sort-merge reasoner (Inferray)
//! and the hash-join / naive baselines must produce identical
//! materializations on randomly generated datasets that exercise the
//! RDFS-Plus constructs (sameAs, inverses, transitive/symmetric/functional
//! properties, equivalences) — not just on the curated benchmark datasets.

use inferray::baselines::{HashJoinReasoner, NaiveIterativeReasoner};
use inferray::core::InferrayReasoner;
use inferray::dictionary::wellknown;
use inferray::rules::{Fragment, Materializer};
use inferray::store::TripleStore;
use inferray::IdTriple;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn materialized(engine: &mut dyn Materializer, base: &TripleStore) -> BTreeSet<IdTriple> {
    let mut store = base.clone();
    engine.materialize(&mut store);
    store.iter_triples().collect()
}

/// Random datasets mixing plain RDFS schema with the owl: constructs that
/// RDFS-Plus adds (Table 5, rules 1–19).
fn arbitrary_rdfs_plus_dataset() -> impl Strategy<Value = Vec<IdTriple>> {
    let class = |n: u8| 9_800_000u64 + n as u64;
    let instance = |n: u8| 9_900_000u64 + n as u64;
    let property = |n: u8| inferray::model::ids::nth_property_id(80 + n as usize);

    prop::collection::vec(
        prop_oneof![
            // Plain RDFS schema.
            (0u8..5, 0u8..5).prop_map(move |(a, b)| IdTriple::new(
                class(a),
                wellknown::RDFS_SUB_CLASS_OF,
                class(b)
            )),
            (0u8..4, 0u8..4).prop_map(move |(a, b)| IdTriple::new(
                property(a),
                wellknown::RDFS_SUB_PROPERTY_OF,
                property(b)
            )),
            (0u8..4, 0u8..5).prop_map(move |(p, c)| IdTriple::new(
                property(p),
                wellknown::RDFS_DOMAIN,
                class(c)
            )),
            (0u8..4, 0u8..5).prop_map(move |(p, c)| IdTriple::new(
                property(p),
                wellknown::RDFS_RANGE,
                class(c)
            )),
            // OWL vocabulary used by RDFS-Plus.
            (0u8..5, 0u8..5).prop_map(move |(a, b)| IdTriple::new(
                class(a),
                wellknown::OWL_EQUIVALENT_CLASS,
                class(b)
            )),
            (0u8..4, 0u8..4).prop_map(move |(a, b)| IdTriple::new(
                property(a),
                wellknown::OWL_EQUIVALENT_PROPERTY,
                property(b)
            )),
            (0u8..4, 0u8..4).prop_map(move |(a, b)| IdTriple::new(
                property(a),
                wellknown::OWL_INVERSE_OF,
                property(b)
            )),
            (0u8..4).prop_map(move |p| IdTriple::new(
                property(p),
                wellknown::RDF_TYPE,
                wellknown::OWL_TRANSITIVE_PROPERTY
            )),
            (0u8..4).prop_map(move |p| IdTriple::new(
                property(p),
                wellknown::RDF_TYPE,
                wellknown::OWL_SYMMETRIC_PROPERTY
            )),
            (0u8..4).prop_map(move |p| IdTriple::new(
                property(p),
                wellknown::RDF_TYPE,
                wellknown::OWL_FUNCTIONAL_PROPERTY
            )),
            (0u8..4).prop_map(move |p| IdTriple::new(
                property(p),
                wellknown::RDF_TYPE,
                wellknown::OWL_INVERSE_FUNCTIONAL_PROPERTY
            )),
            // sameAs links between individuals.
            (0u8..6, 0u8..6).prop_map(move |(a, b)| IdTriple::new(
                instance(a),
                wellknown::OWL_SAME_AS,
                instance(b)
            )),
            // Instance data.
            (0u8..6, 0u8..5).prop_map(move |(x, c)| IdTriple::new(
                instance(x),
                wellknown::RDF_TYPE,
                class(c)
            )),
            (0u8..6, 0u8..4, 0u8..6).prop_map(move |(x, p, y)| IdTriple::new(
                instance(x),
                property(p),
                instance(y)
            )),
        ],
        1..28,
    )
}

proptest! {
    // These datasets can close over sameAs cliques, so keep the case count
    // moderate; the curated equivalence suite covers the larger shapes.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// All three engines agree on ρdf, RDFS-default and RDFS-Plus for any
    /// random dataset.
    #[test]
    fn engines_agree_on_random_rdfs_plus_data(triples in arbitrary_rdfs_plus_dataset()) {
        let base = TripleStore::from_triples(triples);
        for fragment in [Fragment::RhoDf, Fragment::RdfsDefault, Fragment::RdfsPlus] {
            let inferray = materialized(&mut InferrayReasoner::new(fragment), &base);
            let hash_join = materialized(&mut HashJoinReasoner::new(fragment), &base);
            prop_assert_eq!(&inferray, &hash_join, "inferray vs hash-join, {}", fragment);
            let naive = materialized(&mut NaiveIterativeReasoner::new(fragment), &base);
            prop_assert_eq!(&inferray, &naive, "inferray vs naive, {}", fragment);
        }
    }

    /// Materialization is idempotent and monotone in the input for the most
    /// complex fragment.
    #[test]
    fn rdfs_plus_is_idempotent_and_monotone(
        triples in arbitrary_rdfs_plus_dataset(),
        extra in arbitrary_rdfs_plus_dataset(),
    ) {
        let base = TripleStore::from_triples(triples.clone());
        let once = materialized(&mut InferrayReasoner::new(Fragment::RdfsPlus), &base);

        // Idempotent: re-materializing the closure adds nothing.
        let closed = TripleStore::from_triples(once.iter().copied());
        let twice = materialized(&mut InferrayReasoner::new(Fragment::RdfsPlus), &closed);
        prop_assert_eq!(&once, &twice);

        // Monotone: a superset of the input derives a superset of the output.
        let larger_input: Vec<IdTriple> =
            triples.iter().chain(extra.iter()).copied().collect();
        let larger = materialized(
            &mut InferrayReasoner::new(Fragment::RdfsPlus),
            &TripleStore::from_triples(larger_input),
        );
        prop_assert!(once.is_subset(&larger));
    }
}
