//! Integration tests: the SPARQL-subset query engine over materialized
//! stores, cross-checked against the decoded-graph API and a naive
//! in-memory evaluation.

use inferray::core::{InferrayReasoner, Materializer};
use inferray::model::vocab;
use inferray::query::{PatternTerm, Query, QueryEngine, TriplePatternSpec};
use inferray::rules::Fragment;
use inferray::{load_turtle, parse_ntriples, Graph, Term, Triple};
use proptest::prelude::*;

const UNIVERSITY: &str = r#"
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:Professor rdfs:subClassOf ex:Faculty .
ex:Faculty rdfs:subClassOf ex:Person .
ex:teaches rdfs:domain ex:Faculty .
ex:teaches rdfs:range ex:Course .
ex:headOf rdfs:subPropertyOf ex:worksFor .

ex:smith a ex:Professor ; ex:teaches ex:databases ; ex:headOf ex:cslab .
ex:jones a ex:Faculty ; ex:teaches ex:logic .
ex:databases ex:title "Database Systems" .
"#;

/// Loads the dataset, materializes `fragment`, and returns the parts the
/// query engine needs.
fn materialized(fragment: Fragment) -> inferray::parser::LoadedDataset {
    let mut dataset = load_turtle(UNIVERSITY).expect("dataset parses");
    InferrayReasoner::new(fragment).materialize(&mut dataset.store);
    dataset.store.ensure_all_os();
    dataset
}

#[test]
fn queries_see_inferred_triples_as_explicit_data() {
    let dataset = materialized(Fragment::RdfsDefault);
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

    // smith is a Professor (asserted), hence Faculty and Person (inferred
    // through SCM-SCO + CAX-SCO), and teaches gives Faculty via PRP-DOM.
    let classes = engine
        .execute_sparql("PREFIX ex: <http://example.org/> SELECT ?c WHERE { ex:smith a ?c }")
        .unwrap();
    let decoded: Vec<Term> = (0..classes.len())
        .filter_map(|row| classes.decoded_value(row, "c", &dataset.dictionary))
        .collect();
    assert!(decoded.contains(&Term::iri("http://example.org/Professor")));
    assert!(decoded.contains(&Term::iri("http://example.org/Faculty")));
    assert!(decoded.contains(&Term::iri("http://example.org/Person")));

    // headOf ⊑ worksFor: the inferred worksFor triple is queryable.
    assert!(engine
        .ask_sparql("PREFIX ex: <http://example.org/> ASK { ex:smith ex:worksFor ex:cslab }")
        .unwrap());

    // Range inference: databases is a Course.
    assert!(engine
        .ask_sparql("PREFIX ex: <http://example.org/> ASK { ex:databases a ex:Course }")
        .unwrap());
}

#[test]
fn join_query_over_inferred_types() {
    let dataset = materialized(Fragment::RdfsDefault);
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
    // Every person together with what they teach: both smith and jones
    // qualify only because their Person type is inferred.
    let solutions = engine
        .execute_sparql(
            "PREFIX ex: <http://example.org/> \
             SELECT ?p ?course WHERE { ?p a ex:Person . ?p ex:teaches ?course }",
        )
        .unwrap();
    assert_eq!(solutions.len(), 2);
}

#[test]
fn query_results_match_the_decoded_graph_api() {
    let dataset = materialized(Fragment::RdfsDefault);
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

    // The same materialization through the decoded-graph API.
    let input = load_turtle(UNIVERSITY).unwrap();
    let graph_input = {
        let mut g = Graph::new();
        for t in input.store.iter_triples() {
            g.insert(input.dictionary.decode_triple(t).unwrap());
        }
        g
    };
    let reasoned = inferray::reason_graph(&graph_input, Fragment::RdfsDefault).unwrap();

    // ?s rdf:type ?o through the engine equals the rdf:type triples of the
    // reasoned graph.
    let typed = engine
        .execute_sparql("SELECT ?s ?o WHERE { ?s rdf:type ?o }")
        .unwrap();
    let from_engine: std::collections::HashSet<(Term, Term)> = (0..typed.len())
        .map(|row| {
            (
                typed.decoded_value(row, "s", &dataset.dictionary).unwrap(),
                typed.decoded_value(row, "o", &dataset.dictionary).unwrap(),
            )
        })
        .collect();
    let from_graph: std::collections::HashSet<(Term, Term)> = reasoned
        .graph
        .iter()
        .filter(|t| t.predicate == Term::iri(vocab::RDF_TYPE))
        .map(|t| (t.subject.clone(), t.object.clone()))
        .collect();
    assert_eq!(from_engine, from_graph);
}

/// Regression test for the `(?, p, o)` ⟨o,s⟩-cache path across incremental
/// materialization: `materialize_delta` merges new pairs into `p`'s table
/// (on small deltas via the adaptive gallop-splice, which must invalidate
/// the cache) and its fixed-point loop rebuilds the caches — a stale cache
/// would silently drop the delta's solutions.
#[test]
fn bound_object_queries_stay_fresh_after_materialize_delta() {
    let mut dataset = load_turtle(UNIVERSITY).expect("dataset parses");
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    reasoner.materialize(&mut dataset.store);
    dataset.store.ensure_all_os();

    let q = "PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s ex:teaches ex:databases }";
    let teaches = dataset
        .dictionary
        .id_of(&Term::iri("http://example.org/teaches"))
        .expect("teaches is interned");
    let databases = dataset
        .dictionary
        .id_of(&Term::iri("http://example.org/databases"))
        .expect("databases is interned");
    {
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let before = engine.execute_sparql(q).unwrap();
        assert_eq!(before.len(), 1, "only smith teaches databases initially");
    }
    assert!(dataset.store.table(teaches).unwrap().has_os_cache());

    // Incrementally assert: patel teaches databases.
    let patel = dataset
        .dictionary
        .encode_as_resource(&Term::iri("http://example.org/patel"));
    reasoner.materialize_delta(
        &mut dataset.store,
        [inferray::model::IdTriple::new(patel, teaches, databases)],
    );

    // The cache was invalidated by the merge and rebuilt by the fixed
    // point; answering through it must include the delta.
    assert!(
        dataset.store.table(teaches).unwrap().has_os_cache(),
        "materialize_delta leaves the caches consistent"
    );
    let cached = {
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        engine.execute_sparql(q).unwrap()
    };
    assert_eq!(
        cached.len(),
        2,
        "a stale ⟨o,s⟩ cache would drop the incrementally added solution"
    );

    // The cache-free sequential scan must agree byte for byte.
    dataset.store.table_mut(teaches).unwrap().clear_os_cache();
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
    let scanned = engine.execute_sparql(q).unwrap();
    assert_eq!(scanned.sorted_rows(), cached.sorted_rows());

    // And the delta's own inferences (teaches domain ⇒ patel a Faculty)
    // are queryable, proving the fixed point ran over the delta.
    assert!(engine
        .ask_sparql("PREFIX ex: <http://example.org/> ASK { ex:patel a ex:Faculty }")
        .unwrap());
}

/// The planner's row-explosion guard: a BGP *written* with a leading
/// unconstrained `?s ?p ?o` pattern must produce exactly the same solutions
/// as any other writing order — the planner reorders by bound-term
/// selectivity, so the scan never runs first and never materializes the
/// whole store as intermediate rows.
#[test]
fn pattern_order_in_the_query_text_does_not_change_solutions() {
    let dataset = materialized(Fragment::RdfsDefault);
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

    let patterns = [
        TriplePatternSpec::new(
            PatternTerm::var("s"),
            PatternTerm::var("p"),
            PatternTerm::var("o"),
        ),
        TriplePatternSpec::new(
            PatternTerm::var("s"),
            PatternTerm::iri(vocab::RDF_TYPE),
            PatternTerm::iri("http://example.org/Professor"),
        ),
        TriplePatternSpec::new(
            PatternTerm::var("s"),
            PatternTerm::iri("http://example.org/teaches"),
            PatternTerm::var("o2"),
        ),
    ];
    // Every permutation — including the explosion-prone scan-first writing
    // — yields the same solution multiset.
    let permutations: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let mut results = Vec::new();
    for order in permutations {
        // Fixed projection: `SELECT *` derives its column order from the
        // written pattern order, which is exactly what we are permuting.
        let mut query = Query::select_all(order.iter().map(|&i| patterns[i].clone()).collect());
        query.select = inferray::query::Selection::Variables(vec![
            "s".into(),
            "p".into(),
            "o".into(),
            "o2".into(),
        ]);
        results.push(engine.execute(&query).sorted_rows());
    }
    for window in results.windows(2) {
        assert_eq!(window[0], window[1], "pattern order changed the solutions");
    }
    // smith is the only professor; the scan pattern enumerates smith's
    // triples (4 asserted/inferred predicates × 1 teaches binding).
    assert!(!results[0].is_empty());

    // The same property through the text parser, scan written first.
    let scan_first = engine
        .execute_sparql(
            "PREFIX ex: <http://example.org/> SELECT ?s ?o2 WHERE { \
               ?s ?p ?o . ?s a ex:Professor . ?s ex:teaches ?o2 }",
        )
        .unwrap();
    let scan_last = engine
        .execute_sparql(
            "PREFIX ex: <http://example.org/> SELECT ?s ?o2 WHERE { \
               ?s a ex:Professor . ?s ex:teaches ?o2 . ?s ?p ?o }",
        )
        .unwrap();
    assert_eq!(scan_first.sorted_rows(), scan_last.sorted_rows());
    assert_eq!(scan_first.variables(), scan_last.variables());
}

// ---------------------------------------------------------------------------
// Property-based cross-checks against a naive evaluator
// ---------------------------------------------------------------------------

/// A triple universe small enough that joins are frequent.
fn arbitrary_triples() -> impl Strategy<Value = Vec<(u8, u8, u8)>> {
    prop::collection::vec((0u8..6, 0u8..3, 0u8..6), 0..40)
}

fn entity(n: u8) -> String {
    format!("http://example.org/e{n}")
}

fn predicate(n: u8) -> String {
    format!("http://example.org/p{n}")
}

fn graph_from(triples: &[(u8, u8, u8)]) -> Graph {
    let mut graph = Graph::new();
    for &(s, p, o) in triples {
        graph.insert_iris(entity(s), predicate(p), entity(o));
    }
    graph
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single `(?s, p, ?o)` pattern returns exactly the triples with that
    /// predicate.
    #[test]
    fn single_pattern_matches_naive_scan(triples in arbitrary_triples(), p in 0u8..3) {
        let graph = graph_from(&triples);
        let mut dataset = inferray::load_graph(&graph).unwrap();
        dataset.store.ensure_all_os();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

        let query = Query::select_all(vec![TriplePatternSpec::new(
            PatternTerm::var("s"),
            PatternTerm::iri(predicate(p)),
            PatternTerm::var("o"),
        )]);
        let solutions = engine.execute(&query);

        let expected: std::collections::HashSet<(Term, Term)> = graph
            .iter()
            .filter(|t| t.predicate == Term::iri(predicate(p)))
            .map(|t| (t.subject.clone(), t.object.clone()))
            .collect();
        let actual: std::collections::HashSet<(Term, Term)> = (0..solutions.len())
            .map(|row| {
                (
                    solutions.decoded_value(row, "s", &dataset.dictionary).unwrap(),
                    solutions.decoded_value(row, "o", &dataset.dictionary).unwrap(),
                )
            })
            .collect();
        prop_assert_eq!(actual, expected);
        // No duplicate rows for a single pattern over a duplicate-free store.
        prop_assert_eq!(solutions.len(), graph
            .iter()
            .filter(|t| t.predicate == Term::iri(predicate(p)))
            .count());
    }

    /// A two-pattern chain join `?x p0 ?y . ?y p1 ?z` matches the naive
    /// nested-loop join over the decoded graph.
    #[test]
    fn chain_join_matches_naive_join(triples in arbitrary_triples()) {
        let graph = graph_from(&triples);
        let mut dataset = inferray::load_graph(&graph).unwrap();
        dataset.store.ensure_all_os();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

        let query = Query::select_all(vec![
            TriplePatternSpec::new(
                PatternTerm::var("x"),
                PatternTerm::iri(predicate(0)),
                PatternTerm::var("y"),
            ),
            TriplePatternSpec::new(
                PatternTerm::var("y"),
                PatternTerm::iri(predicate(1)),
                PatternTerm::var("z"),
            ),
        ]);
        let solutions = engine.execute(&query);

        let p0 = Term::iri(predicate(0));
        let p1 = Term::iri(predicate(1));
        let mut expected: Vec<(Term, Term, Term)> = Vec::new();
        for a in graph.iter().filter(|t| t.predicate == p0) {
            for b in graph.iter().filter(|t| t.predicate == p1) {
                if a.object == b.subject {
                    expected.push((a.subject.clone(), a.object.clone(), b.object.clone()));
                }
            }
        }
        expected.sort();
        expected.dedup();

        let mut actual: Vec<(Term, Term, Term)> = (0..solutions.len())
            .map(|row| {
                (
                    solutions.decoded_value(row, "x", &dataset.dictionary).unwrap(),
                    solutions.decoded_value(row, "y", &dataset.dictionary).unwrap(),
                    solutions.decoded_value(row, "z", &dataset.dictionary).unwrap(),
                )
            })
            .collect();
        actual.sort();
        actual.dedup();
        prop_assert_eq!(actual, expected);
    }

    /// ASK agrees with the store's membership test for fully bound patterns.
    #[test]
    fn ask_agrees_with_contains(triples in arbitrary_triples(), s in 0u8..6, p in 0u8..3, o in 0u8..6) {
        let graph = graph_from(&triples);
        let mut dataset = inferray::load_graph(&graph).unwrap();
        dataset.store.ensure_all_os();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

        let query = Query::ask(vec![TriplePatternSpec::new(
            PatternTerm::iri(entity(s)),
            PatternTerm::iri(predicate(p)),
            PatternTerm::iri(entity(o)),
        )]);
        let expected = graph.contains(&Triple::iris(entity(s), predicate(p), entity(o)));
        prop_assert_eq!(engine.ask(&query), expected);
    }
}

#[test]
fn ntriples_roundtrip_feeds_the_engine() {
    // The engine is agnostic to which parser produced the store.
    let nt = "\
<http://ex/a> <http://ex/p> <http://ex/b> .\n\
<http://ex/b> <http://ex/p> <http://ex/c> .\n";
    let triples = parse_ntriples(nt).unwrap();
    assert_eq!(triples.len(), 2);
    let mut graph = Graph::new();
    for t in triples {
        graph.insert(t);
    }
    let dataset = inferray::load_graph(&graph).unwrap();
    let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
    let hops = engine
        .execute_sparql("SELECT ?x ?z WHERE { ?x <http://ex/p> ?y . ?y <http://ex/p> ?z }")
        .unwrap();
    assert_eq!(hops.len(), 1);
}
