//! Determinism of the parallel execution paths.
//!
//! The reasoner runs both its phases — rule firing (§4.3) and the
//! per-property table update (Figure 5) — on a worker pool. Parallelism
//! must be unobservable: for any input, the parallel and sequential
//! configurations must produce **byte-identical** stores (same flat pair
//! array in every property table) and identical statistics counters,
//! including the software memory-access profile.

use inferray::datasets::lubm::LubmGenerator;
use inferray::datasets::taxonomy::wikipedia_like;
use inferray::datasets::Dataset;
use inferray::parser::loader::load_triples;
use inferray::rules::{analysis, RuleId};
use inferray::{
    Fragment, InferenceStats, InferrayOptions, InferrayReasoner, Materializer, Triple, TripleStore,
};

fn store_for(dataset: &Dataset) -> TripleStore {
    load_triples(dataset.triples.iter())
        .expect("generated datasets are valid")
        .store
}

/// Byte-level equality: every property table's flat ⟨s,o⟩ array matches.
fn assert_stores_byte_identical(a: &TripleStore, b: &TripleStore, label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: triple counts differ");
    assert_eq!(
        a.table_count(),
        b.table_count(),
        "{label}: table counts differ"
    );
    for (p, table) in a.iter_tables() {
        let other = b
            .table(p)
            .unwrap_or_else(|| panic!("{label}: property {p} missing from sequential store"));
        assert_eq!(
            table.pairs(),
            other.pairs(),
            "{label}: table {p} diverged between parallel and sequential"
        );
    }
}

/// Counter-level equality (everything except wall-clock time).
fn assert_stats_equal(a: &InferenceStats, b: &InferenceStats, label: &str) {
    assert_eq!(a.input_triples, b.input_triples, "{label}: input_triples");
    assert_eq!(
        a.output_triples, b.output_triples,
        "{label}: output_triples"
    );
    assert_eq!(a.iterations, b.iterations, "{label}: iterations");
    assert_eq!(a.derived_raw, b.derived_raw, "{label}: derived_raw");
    assert_eq!(
        a.duplicates_removed, b.duplicates_removed,
        "{label}: duplicates_removed"
    );
    assert_eq!(a.profile, b.profile, "{label}: access profile");
}

fn check_dataset(dataset: &Dataset, fragment: Fragment) {
    let label = format!("{} / {fragment:?}", dataset.label);

    let mut parallel_store = store_for(dataset);
    let mut parallel_reasoner =
        InferrayReasoner::with_options(fragment, InferrayOptions::default());
    let parallel_stats = parallel_reasoner.materialize(&mut parallel_store);

    let mut sequential_store = store_for(dataset);
    let mut sequential_reasoner =
        InferrayReasoner::with_options(fragment, InferrayOptions::sequential());
    let sequential_stats = sequential_reasoner.materialize(&mut sequential_store);

    assert!(
        parallel_stats.inferred_triples() > 0,
        "{label}: the dataset must actually derive something for this test to bite"
    );
    assert_stores_byte_identical(&parallel_store, &sequential_store, &label);
    assert_stats_equal(&parallel_stats, &sequential_stats, &label);

    // Both runs recorded the same per-iteration shape.
    let a = parallel_reasoner.last_iteration_profile();
    let b = sequential_reasoner.last_iteration_profile();
    assert_eq!(a.samples.len(), b.samples.len(), "{label}: iteration count");
    for (pa, pb) in a.samples.iter().zip(&b.samples) {
        assert_eq!(
            pa.raw_pairs, pb.raw_pairs,
            "{label}: raw pairs per iteration"
        );
        assert_eq!(
            pa.new_pairs, pb.new_pairs,
            "{label}: new pairs per iteration"
        );
        assert_eq!(
            pa.properties_touched, pb.properties_touched,
            "{label}: properties touched per iteration"
        );
    }
}

#[test]
fn lubm_parallel_equals_sequential_rdfs() {
    let dataset = LubmGenerator::new(6_000).with_seed(7).generate();
    check_dataset(&dataset, Fragment::RdfsDefault);
}

#[test]
fn lubm_parallel_equals_sequential_rdfs_plus() {
    let dataset = LubmGenerator::new(6_000).with_seed(11).generate();
    check_dataset(&dataset, Fragment::RdfsPlus);
}

#[test]
fn taxonomy_parallel_equals_sequential_rdfs() {
    let dataset = wikipedia_like(400, 3);
    check_dataset(&dataset, Fragment::RdfsDefault);
}

#[test]
fn taxonomy_parallel_equals_sequential_rdfs_plus() {
    let dataset = wikipedia_like(300, 5);
    check_dataset(&dataset, Fragment::RdfsPlus);
}

/// Parallelism must stay unobservable when the ruleset came out of the
/// analyzer — custom generic-executor rules fire on the same worker pool as
/// the hand-written ones.
#[test]
fn analyzer_loaded_ruleset_parallel_equals_sequential() {
    let program = format!(
        "{}@prefix ex: <http://ex/> .\n{}\n\
         rule gp: ?x ex:parent ?y, ?y ex:parent ?z => ?x ex:grandparent ?z .\n\
         rule near-sym: ?x ex:near ?y => ?y ex:near ?x .\n\
         rule near-trans: ?x ex:near ?y, ?y ex:near ?z => ?x ex:near ?z .\n",
        analysis::builtin::PRELUDE,
        analysis::builtin::rule_text(RuleId::CaxSco),
    );
    const SUB_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    let ex = |n: &str| format!("http://ex/{n}");
    let data = [
        Triple::iris(ex("a"), ex("parent"), ex("b")),
        Triple::iris(ex("b"), ex("parent"), ex("c")),
        Triple::iris(ex("c"), ex("parent"), ex("d")),
        Triple::iris(ex("n1"), ex("near"), ex("n2")),
        Triple::iris(ex("n2"), ex("near"), ex("n3")),
        Triple::iris(ex("C1"), SUB_CLASS, ex("C2")),
        Triple::iris(ex("a"), RDF_TYPE, ex("C1")),
    ];

    let run = |options: InferrayOptions| {
        let loaded = load_triples(data.iter()).expect("data is valid");
        let mut dictionary = loaded.dictionary;
        let mut store = loaded.store;
        let ruleset =
            analysis::load_ruleset(&program, &mut dictionary).expect("program analyzes clean");
        assert!(!dictionary.has_pending_promotions());
        let mut reasoner = InferrayReasoner::with_ruleset(ruleset, options);
        let stats = reasoner.materialize(&mut store);
        (store, stats)
    };
    let (parallel_store, parallel_stats) = run(InferrayOptions::default());
    let (sequential_store, sequential_stats) = run(InferrayOptions::sequential());

    assert!(
        parallel_stats.inferred_triples() > 0,
        "the custom program must derive something for this test to bite"
    );
    assert_stores_byte_identical(&parallel_store, &sequential_store, "analyzer ruleset");
    assert_stats_equal(&parallel_stats, &sequential_stats, "analyzer ruleset");
}

#[test]
fn incremental_delta_is_deterministic_too() {
    let dataset = LubmGenerator::new(3_000).with_seed(3).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("valid dataset");
    let all: Vec<_> = loaded.store.iter_triples().collect();
    let (base, delta) = all.split_at(all.len() / 2);

    let run = |options: InferrayOptions| {
        let mut store: TripleStore = base.iter().copied().collect();
        let mut reasoner = InferrayReasoner::with_options(Fragment::RdfsDefault, options);
        reasoner.materialize(&mut store);
        let stats = reasoner.materialize_delta(&mut store, delta.iter().copied());
        (store, stats)
    };
    let (parallel_store, parallel_stats) = run(InferrayOptions::default());
    let (sequential_store, sequential_stats) = run(InferrayOptions::sequential());

    assert_stores_byte_identical(&parallel_store, &sequential_store, "incremental");
    assert_stats_equal(&parallel_stats, &sequential_stats, "incremental");
}
