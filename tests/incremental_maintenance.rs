//! Incremental maintenance: asserting a delta into an already-materialized
//! store and restarting the fixed point must give exactly the same store as
//! re-materializing the extended input from scratch.

use inferray::core::{InferrayReasoner, Materializer};
use inferray::dictionary::wellknown;
use inferray::rules::Fragment;
use inferray::store::TripleStore;
use inferray::{IdTriple, InferrayOptions};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn triples_of(store: &TripleStore) -> BTreeSet<IdTriple> {
    store.iter_triples().collect()
}

/// Materializes `initial`, applies `delta` incrementally, and checks the
/// result equals materializing `initial ∪ delta` from scratch.
fn assert_incremental_equals_batch(fragment: Fragment, initial: &[IdTriple], delta: &[IdTriple]) {
    // Incremental path.
    let mut incremental = TripleStore::from_triples(initial.iter().copied());
    let mut reasoner = InferrayReasoner::new(fragment);
    reasoner.materialize(&mut incremental);
    let stats = reasoner.materialize_delta(&mut incremental, delta.iter().copied());

    // From-scratch path.
    let mut batch = TripleStore::from_triples(initial.iter().copied().chain(delta.iter().copied()));
    InferrayReasoner::new(fragment).materialize(&mut batch);

    assert_eq!(
        triples_of(&incremental),
        triples_of(&batch),
        "incremental and batch materializations diverge for {fragment}"
    );
    assert_eq!(incremental.len(), stats.output_triples);
}

const HUMAN: u64 = 9_500_000;
const MAMMAL: u64 = 9_500_001;
const ANIMAL: u64 = 9_500_002;
const AGENT: u64 = 9_500_003;
const BART: u64 = 9_500_010;
const LISA: u64 = 9_500_011;

#[test]
fn adding_an_instance_propagates_existing_schema() {
    let initial = [
        IdTriple::new(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL),
        IdTriple::new(MAMMAL, wellknown::RDFS_SUB_CLASS_OF, ANIMAL),
        IdTriple::new(BART, wellknown::RDF_TYPE, HUMAN),
    ];
    let delta = [IdTriple::new(LISA, wellknown::RDF_TYPE, HUMAN)];
    assert_incremental_equals_batch(Fragment::RdfsDefault, &initial, &delta);

    // And the incremental run really did infer the new types.
    let mut store = TripleStore::from_triples(initial);
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    reasoner.materialize(&mut store);
    let before = store.len();
    let stats = reasoner.materialize_delta(&mut store, delta);
    assert!(store.contains(&IdTriple::new(LISA, wellknown::RDF_TYPE, ANIMAL)));
    assert_eq!(store.len(), before + 3); // Lisa a human, mammal, animal
    assert_eq!(stats.inferred_triples(), 2);
}

#[test]
fn adding_a_schema_edge_retypes_existing_instances() {
    let initial = [
        IdTriple::new(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL),
        IdTriple::new(BART, wellknown::RDF_TYPE, HUMAN),
        IdTriple::new(LISA, wellknown::RDF_TYPE, MAMMAL),
    ];
    // New transitive edge at the top of the hierarchy: everything below must
    // be re-typed, which exercises the θ executors without the up-front
    // closure stage.
    let delta = [
        IdTriple::new(MAMMAL, wellknown::RDFS_SUB_CLASS_OF, ANIMAL),
        IdTriple::new(ANIMAL, wellknown::RDFS_SUB_CLASS_OF, AGENT),
    ];
    assert_incremental_equals_batch(Fragment::RdfsDefault, &initial, &delta);

    let mut store = TripleStore::from_triples(initial);
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    reasoner.materialize(&mut store);
    reasoner.materialize_delta(&mut store, delta);
    assert!(store.contains(&IdTriple::new(BART, wellknown::RDF_TYPE, AGENT)));
    assert!(store.contains(&IdTriple::new(HUMAN, wellknown::RDFS_SUB_CLASS_OF, AGENT)));
}

#[test]
fn empty_and_duplicate_deltas_are_noops() {
    let initial = [
        IdTriple::new(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL),
        IdTriple::new(BART, wellknown::RDF_TYPE, HUMAN),
    ];
    let mut store = TripleStore::from_triples(initial);
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    reasoner.materialize(&mut store);
    let before = triples_of(&store);

    let stats = reasoner.materialize_delta(&mut store, []);
    assert_eq!(stats.iterations, 0);
    assert_eq!(stats.inferred_triples(), 0);
    assert_eq!(triples_of(&store), before);

    // A delta consisting only of already-known triples changes nothing.
    let stats = reasoner.materialize_delta(&mut store, initial);
    assert_eq!(stats.iterations, 0);
    assert_eq!(triples_of(&store), before);
}

#[test]
fn successive_deltas_accumulate_correctly() {
    let initial = [IdTriple::new(BART, wellknown::RDF_TYPE, HUMAN)];
    let delta1 = [IdTriple::new(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL)];
    let delta2 = [IdTriple::new(MAMMAL, wellknown::RDFS_SUB_CLASS_OF, ANIMAL)];

    let mut incremental = TripleStore::from_triples(initial);
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    reasoner.materialize(&mut incremental);
    reasoner.materialize_delta(&mut incremental, delta1);
    reasoner.materialize_delta(&mut incremental, delta2);

    let mut batch =
        TripleStore::from_triples(initial.iter().chain(&delta1).chain(&delta2).copied());
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut batch);
    assert_eq!(triples_of(&incremental), triples_of(&batch));
}

#[test]
fn incremental_works_with_sequential_options_and_rdfs_plus() {
    let works_for = inferray::model::ids::nth_property_id(60);
    let head_of = inferray::model::ids::nth_property_id(61);
    let initial = [
        IdTriple::new(head_of, wellknown::RDFS_SUB_PROPERTY_OF, works_for),
        IdTriple::new(BART, head_of, LISA),
    ];
    let delta = [
        IdTriple::new(works_for, wellknown::OWL_INVERSE_OF, head_of),
        IdTriple::new(LISA, works_for, BART),
    ];
    // Batch vs incremental under RDFS-Plus, sequential execution.
    let mut incremental = TripleStore::from_triples(initial);
    let mut reasoner =
        InferrayReasoner::with_options(Fragment::RdfsPlus, InferrayOptions::sequential());
    reasoner.materialize(&mut incremental);
    reasoner.materialize_delta(&mut incremental, delta);

    let mut batch = TripleStore::from_triples(initial.iter().chain(&delta).copied());
    InferrayReasoner::with_options(Fragment::RdfsPlus, InferrayOptions::sequential())
        .materialize(&mut batch);
    assert_eq!(triples_of(&incremental), triples_of(&batch));
}

// ---------------------------------------------------------------------------
// Property-based equivalence on random datasets and random splits
// ---------------------------------------------------------------------------

/// Random RDFS-shaped triples: schema statements over a small class/property
/// universe plus instance triples.
fn arbitrary_dataset() -> impl Strategy<Value = Vec<IdTriple>> {
    let class = |n: u8| 9_600_000u64 + n as u64;
    let instance = |n: u8| 9_700_000u64 + n as u64;
    let property = |n: u8| inferray::model::ids::nth_property_id(70 + n as usize);

    prop::collection::vec(
        prop_oneof![
            // subClassOf edges
            (0u8..6, 0u8..6).prop_map(move |(a, b)| IdTriple::new(
                class(a),
                wellknown::RDFS_SUB_CLASS_OF,
                class(b)
            )),
            // subPropertyOf edges
            (0u8..3, 0u8..3).prop_map(move |(a, b)| IdTriple::new(
                property(a),
                wellknown::RDFS_SUB_PROPERTY_OF,
                property(b)
            )),
            // domain / range
            (0u8..3, 0u8..6).prop_map(move |(p, c)| IdTriple::new(
                property(p),
                wellknown::RDFS_DOMAIN,
                class(c)
            )),
            (0u8..3, 0u8..6).prop_map(move |(p, c)| IdTriple::new(
                property(p),
                wellknown::RDFS_RANGE,
                class(c)
            )),
            // rdf:type assertions
            (0u8..8, 0u8..6).prop_map(move |(x, c)| IdTriple::new(
                instance(x),
                wellknown::RDF_TYPE,
                class(c)
            )),
            // instance links
            (0u8..8, 0u8..3, 0u8..8).prop_map(move |(x, p, y)| IdTriple::new(
                instance(x),
                property(p),
                instance(y)
            )),
        ],
        1..30,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For any dataset and any split point, materialize(prefix) followed by
    /// materialize_delta(suffix) equals materialize(whole).
    #[test]
    fn incremental_equals_batch_on_random_splits(
        triples in arbitrary_dataset(),
        split_ratio in 0.0f64..1.0,
    ) {
        let split = ((triples.len() as f64) * split_ratio) as usize;
        let (initial, delta) = triples.split_at(split.min(triples.len()));

        for fragment in [Fragment::RhoDf, Fragment::RdfsDefault] {
            let mut incremental = TripleStore::from_triples(initial.iter().copied());
            let mut reasoner = InferrayReasoner::new(fragment);
            reasoner.materialize(&mut incremental);
            reasoner.materialize_delta(&mut incremental, delta.iter().copied());

            let mut batch = TripleStore::from_triples(triples.iter().copied());
            InferrayReasoner::new(fragment).materialize(&mut batch);

            prop_assert_eq!(
                triples_of(&incremental),
                triples_of(&batch),
                "fragment {}", fragment
            );
        }
    }
}
