//! Closure exactness and scaling behaviour through the full reasoner —
//! the functional counterpart of Table 4.

use inferray::closure::{bfs_closure, iterative_closure, transitive_closure};
use inferray::datasets::chain;
use inferray::dictionary::wellknown;
use inferray::parser::load_triples;
use inferray::{Fragment, IdTriple, InferrayReasoner, Materializer};

#[test]
fn chain_closures_are_exact_for_a_range_of_lengths() {
    for length in [2usize, 3, 10, 100, 500] {
        let triples = chain::subclass_chain(length);
        let loaded = load_triples(triples.iter()).unwrap();
        let mut store = loaded.store;
        InferrayReasoner::new(Fragment::RhoDf).materialize(&mut store);
        assert_eq!(
            store.len(),
            chain::closure_size(length),
            "closure size mismatch for a chain of {length}"
        );
        // Spot-check the farthest pair.
        let first = loaded
            .dictionary
            .id_of_iri(&format!("{}C0", chain::CHAIN_NS))
            .unwrap();
        let last = loaded
            .dictionary
            .id_of_iri(&format!("{}C{}", chain::CHAIN_NS, length - 1))
            .unwrap();
        assert!(store.contains(&IdTriple::new(first, wellknown::RDFS_SUB_CLASS_OF, last)));
        assert!(!store.contains(&IdTriple::new(last, wellknown::RDFS_SUB_CLASS_OF, first)));
    }
}

#[test]
fn closure_kernels_agree_on_random_shaped_graphs() {
    // Chains with shortcuts, forks, and a cycle.
    let mut edges: Vec<(u64, u64)> = (0..200u64).map(|i| (i, i + 1)).collect();
    edges.push((50, 150)); // shortcut
    edges.push((120, 60)); // back edge → cycle between 60..=120
    edges.push((10, 300)); // fork out of the chain
    let nuutila = transitive_closure(&edges);
    let bfs = bfs_closure(&edges);
    let (iterative, stats) = iterative_closure(&edges);
    assert_eq!(nuutila, bfs);
    assert_eq!(nuutila, iterative);
    assert!(stats.iterations > 1);
}

#[test]
fn transitivity_throughput_counts_match_formula() {
    // chain::closure_size and the reasoner must agree, and the iterative
    // baseline must report substantially more derivations than results.
    let length = 200usize;
    let edges: Vec<(u64, u64)> = (0..length as u64 - 1).map(|i| (i, i + 1)).collect();
    let closed = transitive_closure(&edges);
    assert_eq!(closed.len(), chain::closure_size(length));
    let (_, stats) = iterative_closure(&edges);
    assert!(
        stats.derived_including_duplicates > closed.len(),
        "the iterative strategy must overshoot ({} derived for {} results)",
        stats.derived_including_duplicates,
        closed.len()
    );
}

#[test]
fn branching_taxonomy_closure_through_the_reasoner() {
    // A complete binary tree of classes: every class is a subclass of all of
    // its ancestors after materialization.
    let depth = 9u32; // 2^9 - 1 = 511 classes
    let mut triples = Vec::new();
    for node in 2..(1u64 << depth) {
        triples.push(inferray::Triple::iris(
            format!("http://ex/C{node}"),
            inferray::vocab::RDFS_SUB_CLASS_OF,
            format!("http://ex/C{}", node / 2),
        ));
    }
    let loaded = load_triples(triples.iter()).unwrap();
    let mut store = loaded.store;
    InferrayReasoner::new(Fragment::RhoDf).materialize(&mut store);
    // Each node at depth d (root = depth 0) has d ancestors; the total is
    // sum over nodes of depth(node).
    let expected: usize = (2..(1u64 << depth))
        .map(|node| (64 - node.leading_zeros() - 1) as usize)
        .sum();
    assert_eq!(store.len(), expected);
}
