//! Retraction equivalence: `retract(Δ)` on a materialized store must be
//! **byte-identical** — per-table sorted pair arrays, table population,
//! dictionary identifiers untouched — to materializing `base ∖ Δ` from
//! scratch, for every fragment, in parallel and sequentially, with and
//! without rule scheduling (docs/maintenance.md).

use inferray::core::{InferrayReasoner, Materializer};
use inferray::dictionary::wellknown;
use inferray::parser::loader::load_triples;
use inferray::rules::{analysis, Fragment, RuleId};
use inferray::store::TripleStore;
use inferray::{IdTriple, InferrayOptions, Triple};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The byte-level view the invariant is stated over: every non-empty table's
/// property id with its ⟨s,o⟩-sorted flat pair array.
fn table_bytes(store: &TripleStore) -> Vec<(u64, Vec<u64>)> {
    store
        .iter_tables()
        .map(|(p, t)| (p, t.pairs().to_vec()))
        .collect()
}

/// Materializes `base`, retracts `delta` with the DRed path, and asserts the
/// store is byte-identical to a from-scratch materialization of
/// `base ∖ delta` — and that the maintained explicit base matches too.
fn assert_retract_equals_rebuild(
    fragment: Fragment,
    options: InferrayOptions,
    base: &[IdTriple],
    delta: &[IdTriple],
) {
    let mut materialized = TripleStore::from_triples(base.iter().copied());
    let mut base_store = TripleStore::from_triples(base.iter().copied());
    let mut reasoner = InferrayReasoner::with_options(fragment, options);
    reasoner.materialize(&mut materialized);
    let stats = reasoner.retract_delta(&mut materialized, &mut base_store, delta.iter().copied());

    let removed: BTreeSet<IdTriple> = delta.iter().copied().collect();
    let remaining: Vec<IdTriple> = TripleStore::from_triples(base.iter().copied())
        .iter_triples()
        .filter(|t| !removed.contains(t))
        .collect();
    let mut rebuilt = TripleStore::from_triples(remaining.iter().copied());
    InferrayReasoner::with_options(fragment, options).materialize(&mut rebuilt);

    assert_eq!(
        table_bytes(&materialized),
        table_bytes(&rebuilt),
        "retract != rebuild for {fragment} (options {options:?})"
    );
    assert_eq!(
        base_store.iter_triples().collect::<Vec<_>>(),
        remaining,
        "explicit base tracking diverged for {fragment}"
    );
    assert_eq!(stats.output_triples, materialized.len());
}

const HUMAN: u64 = 9_550_000;
const MAMMAL: u64 = 9_550_001;
const ANIMAL: u64 = 9_550_002;
const BART: u64 = 9_550_010;
const LISA: u64 = 9_550_011;

fn t(s: u64, p: u64, o: u64) -> IdTriple {
    IdTriple::new(s, p, o)
}

/// A dataset rich enough to exercise every rule family of RDFS-Plus: class
/// and property hierarchies, domain/range, equivalences, inverse, sameAs,
/// functional and transitive properties.
fn rich_dataset() -> Vec<IdTriple> {
    let prop = |n: usize| inferray::model::ids::nth_property_id(80 + n);
    let knows = prop(0);
    let knows2 = prop(1);
    let kned_by = prop(2);
    let has_mother = prop(3);
    let part_of = prop(4);
    vec![
        t(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL),
        t(MAMMAL, wellknown::RDFS_SUB_CLASS_OF, ANIMAL),
        t(knows, wellknown::RDFS_DOMAIN, HUMAN),
        t(knows, wellknown::RDFS_RANGE, HUMAN),
        t(knows2, wellknown::RDFS_SUB_PROPERTY_OF, knows),
        t(knows, wellknown::OWL_INVERSE_OF, kned_by),
        t(HUMAN, wellknown::OWL_EQUIVALENT_CLASS, HUMAN + 100),
        t(
            has_mother,
            wellknown::RDF_TYPE,
            wellknown::OWL_FUNCTIONAL_PROPERTY,
        ),
        t(
            part_of,
            wellknown::RDF_TYPE,
            wellknown::OWL_TRANSITIVE_PROPERTY,
        ),
        t(BART, wellknown::RDF_TYPE, HUMAN),
        t(LISA, wellknown::RDF_TYPE, MAMMAL),
        t(BART, knows2, LISA),
        t(BART, has_mother, LISA + 1),
        t(BART, has_mother, LISA + 2),
        t(BART, wellknown::OWL_SAME_AS, BART + 100),
        t(LISA, part_of, LISA + 10),
        t(LISA + 10, part_of, LISA + 11),
        t(LISA + 11, part_of, LISA + 12),
    ]
}

#[test]
fn every_fragment_parallel_and_sequential_instance_deletion() {
    let base = rich_dataset();
    // The second triple has a nonsense (non-property) predicate id: it can
    // never be in a store and must be ignored, not crash the encoder.
    let delta = [t(BART, wellknown::RDF_TYPE, HUMAN), t(BART, 0, 0)];
    for fragment in Fragment::ALL {
        for options in [InferrayOptions::default(), InferrayOptions::sequential()] {
            assert_retract_equals_rebuild(fragment, options, &base, &delta);
        }
    }
}

#[test]
fn every_fragment_schema_edge_deletion_underives_the_cone() {
    let base = rich_dataset();
    // Deleting the subClassOf edge un-derives the closure edge human ⊑
    // animal and every instance retyping that flowed through it.
    let delta = [t(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL)];
    for fragment in Fragment::ALL {
        for options in [InferrayOptions::default(), InferrayOptions::sequential()] {
            assert_retract_equals_rebuild(fragment, options, &base, &delta);
        }
    }
    // Spot-check the cone on the default fragment: Bart lost the derived
    // types, Lisa (typed via mammal directly) kept hers.
    let mut materialized = TripleStore::from_triples(base.iter().copied());
    let mut base_store = TripleStore::from_triples(base.iter().copied());
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    reasoner.materialize(&mut materialized);
    assert!(materialized.contains(&t(BART, wellknown::RDF_TYPE, ANIMAL)));
    reasoner.retract_delta(&mut materialized, &mut base_store, delta);
    assert!(!materialized.contains(&t(BART, wellknown::RDF_TYPE, MAMMAL)));
    assert!(!materialized.contains(&t(BART, wellknown::RDF_TYPE, ANIMAL)));
    assert!(!materialized.contains(&t(HUMAN, wellknown::RDFS_SUB_CLASS_OF, ANIMAL)));
    assert!(materialized.contains(&t(LISA, wellknown::RDF_TYPE, ANIMAL)));
}

#[test]
fn transitive_declaration_deletion_underives_the_closure() {
    let base = rich_dataset();
    let part_of = inferray::model::ids::nth_property_id(84);
    let delta = [t(
        part_of,
        wellknown::RDF_TYPE,
        wellknown::OWL_TRANSITIVE_PROPERTY,
    )];
    for options in [InferrayOptions::default(), InferrayOptions::sequential()] {
        assert_retract_equals_rebuild(Fragment::RdfsPlus, options, &base, &delta);
        assert_retract_equals_rebuild(Fragment::RdfsPlusFull, options, &base, &delta);
    }
    // The closure pairs are gone, the asserted chain stays.
    let mut materialized = TripleStore::from_triples(base.iter().copied());
    let mut base_store = TripleStore::from_triples(base.iter().copied());
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsPlus);
    reasoner.materialize(&mut materialized);
    assert!(materialized.contains(&t(LISA, part_of, LISA + 11)));
    reasoner.retract_delta(&mut materialized, &mut base_store, delta);
    assert!(!materialized.contains(&t(LISA, part_of, LISA + 11)));
    assert!(materialized.contains(&t(LISA, part_of, LISA + 10)));
    assert!(materialized.contains(&t(LISA + 10, part_of, LISA + 11)));
}

#[test]
fn same_as_and_functional_cones_retract_cleanly() {
    let base = rich_dataset();
    for delta in [
        vec![t(BART, wellknown::OWL_SAME_AS, BART + 100)],
        vec![t(BART, inferray::model::ids::nth_property_id(83), LISA + 2)],
        vec![
            t(BART, wellknown::OWL_SAME_AS, BART + 100),
            t(BART, inferray::model::ids::nth_property_id(83), LISA + 1),
        ],
    ] {
        for options in [InferrayOptions::default(), InferrayOptions::sequential()] {
            assert_retract_equals_rebuild(Fragment::RdfsPlus, options, &base, &delta);
        }
    }
}

#[test]
fn retracting_everything_leaves_an_empty_store() {
    let base = rich_dataset();
    for fragment in [Fragment::RdfsDefault, Fragment::RdfsPlus] {
        assert_retract_equals_rebuild(fragment, InferrayOptions::default(), &base, &base);
        let mut materialized = TripleStore::from_triples(base.iter().copied());
        let mut base_store = TripleStore::from_triples(base.iter().copied());
        let mut reasoner = InferrayReasoner::new(fragment);
        reasoner.materialize(&mut materialized);
        let stats =
            reasoner.retract_delta(&mut materialized, &mut base_store, base.iter().copied());
        assert!(materialized.is_empty(), "{fragment}");
        assert!(base_store.is_empty());
        assert_eq!(stats.rederived, 0);
    }
}

#[test]
fn retraction_is_idempotent_and_composes_with_extension() {
    let base = rich_dataset();
    let delta = [t(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL)];
    let mut materialized = TripleStore::from_triples(base.iter().copied());
    let mut base_store = TripleStore::from_triples(base.iter().copied());
    let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
    reasoner.materialize(&mut materialized);
    let before = table_bytes(&materialized);

    reasoner.retract_delta(&mut materialized, &mut base_store, delta);
    let after_retract = table_bytes(&materialized);
    // Retracting the same (now absent) triples again changes nothing.
    let stats = reasoner.retract_delta(&mut materialized, &mut base_store, delta);
    assert_eq!(stats.retracted_explicit, 0);
    assert_eq!(table_bytes(&materialized), after_retract);
    // Re-asserting restores the original materialization byte-for-byte.
    reasoner.materialize_delta(&mut materialized, delta);
    for triple in delta {
        base_store.add_triple(triple);
    }
    base_store.finalize();
    assert_eq!(table_bytes(&materialized), before);
}

/// Retract == rebuild over an analyzer-loaded ruleset mixing recognized
/// builtins with custom generic-executor rules: deleting explicit edges
/// must un-derive exactly the custom-rule cone DRed-style, byte-identical
/// to materializing the complement from scratch.
#[test]
fn retract_equals_rebuild_on_an_analyzer_loaded_ruleset() {
    const SUB_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    let program = format!(
        "{}@prefix ex: <http://ex/> .\n{}\n\
         rule gp: ?x ex:parent ?y, ?y ex:parent ?z => ?x ex:grandparent ?z .\n\
         rule gc: ?x ex:grandparent ?y => ?y ex:grandchild ?x .\n\
         rule near-sym: ?x ex:near ?y => ?y ex:near ?x .\n",
        analysis::builtin::PRELUDE,
        analysis::builtin::rule_text(RuleId::CaxSco),
    );
    let ex = |n: &str| format!("http://ex/{n}");
    let data = [
        Triple::iris(ex("a"), ex("parent"), ex("b")),
        Triple::iris(ex("b"), ex("parent"), ex("c")),
        Triple::iris(ex("c"), ex("parent"), ex("d")),
        Triple::iris(ex("n1"), ex("near"), ex("n2")),
        Triple::iris(ex("C1"), SUB_CLASS, ex("C2")),
        Triple::iris(ex("a"), RDF_TYPE, ex("C1")),
    ];
    // Deleting b→c severs both grandparent derivations through b and the
    // near edge's symmetric mirror; the subclass typing must survive.
    let delta_terms = [
        Triple::iris(ex("b"), ex("parent"), ex("c")),
        Triple::iris(ex("n1"), ex("near"), ex("n2")),
    ];

    for options in [InferrayOptions::default(), InferrayOptions::sequential()] {
        let loaded = load_triples(data.iter()).expect("data is valid");
        let mut dictionary = loaded.dictionary;
        let explicit = loaded.store;
        let ruleset =
            analysis::load_ruleset(&program, &mut dictionary).expect("program analyzes clean");
        assert!(
            !dictionary.has_pending_promotions(),
            "every rule predicate already appears as a predicate in the data"
        );
        let delta: Vec<IdTriple> = delta_terms
            .iter()
            .map(|t| {
                IdTriple::new(
                    dictionary.id_of(&t.subject).unwrap(),
                    dictionary.id_of(&t.predicate).unwrap(),
                    dictionary.id_of(&t.object).unwrap(),
                )
            })
            .collect();

        let mut materialized = explicit.clone();
        let mut base_store = explicit.clone();
        let mut reasoner = InferrayReasoner::with_ruleset(ruleset.clone(), options);
        reasoner.materialize(&mut materialized);
        reasoner.retract_delta(&mut materialized, &mut base_store, delta.iter().copied());

        let removed: BTreeSet<IdTriple> = delta.iter().copied().collect();
        let remaining: Vec<IdTriple> = explicit
            .iter_triples()
            .filter(|t| !removed.contains(t))
            .collect();
        let mut rebuilt = TripleStore::from_triples(remaining.iter().copied());
        InferrayReasoner::with_ruleset(ruleset, options).materialize(&mut rebuilt);

        assert_eq!(
            table_bytes(&materialized),
            table_bytes(&rebuilt),
            "retract != rebuild over the analyzer-loaded ruleset ({options:?})"
        );
        assert_eq!(base_store.iter_triples().collect::<Vec<_>>(), remaining);
    }
}

// ---------------------------------------------------------------------------
// Property-based equivalence on random datasets and random delta subsets
// ---------------------------------------------------------------------------

/// Random RDFS-Plus-shaped triples over a small universe: schema statements
/// (hierarchies, domain/range, equivalences, markers) plus instance triples.
fn arbitrary_dataset() -> impl Strategy<Value = Vec<IdTriple>> {
    let class = |n: u8| 9_560_000u64 + n as u64;
    let instance = |n: u8| 9_570_000u64 + n as u64;
    let property = |n: u8| inferray::model::ids::nth_property_id(90 + n as usize);

    prop::collection::vec(
        prop_oneof![
            (0u8..5, 0u8..5).prop_map(move |(a, b)| t(
                class(a),
                wellknown::RDFS_SUB_CLASS_OF,
                class(b)
            )),
            (0u8..3, 0u8..3).prop_map(move |(a, b)| t(
                property(a),
                wellknown::RDFS_SUB_PROPERTY_OF,
                property(b)
            )),
            (0u8..3, 0u8..5).prop_map(move |(p, c)| t(
                property(p),
                wellknown::RDFS_DOMAIN,
                class(c)
            )),
            (0u8..3, 0u8..5).prop_map(move |(p, c)| t(
                property(p),
                wellknown::RDFS_RANGE,
                class(c)
            )),
            (0u8..3).prop_map(move |p| t(
                property(p),
                wellknown::RDF_TYPE,
                wellknown::OWL_TRANSITIVE_PROPERTY
            )),
            (0u8..6, 0u8..6).prop_map(move |(a, b)| t(
                instance(a),
                wellknown::OWL_SAME_AS,
                instance(b)
            )),
            (0u8..8, 0u8..5).prop_map(move |(x, c)| t(instance(x), wellknown::RDF_TYPE, class(c))),
            (0u8..8, 0u8..3, 0u8..8).prop_map(move |(x, p, y)| t(
                instance(x),
                property(p),
                instance(y)
            )),
        ],
        1..28,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any dataset and any subset of it, materialize-then-retract equals
    /// materializing the complement — byte-identical, parallel and
    /// sequential, across fragments.
    #[test]
    fn retract_equals_rebuild_on_random_subsets(
        triples in arbitrary_dataset(),
        mask in prop::collection::vec(any::<bool>(), 28),
    ) {
        let delta: Vec<IdTriple> = triples
            .iter()
            .zip(mask.iter().cycle())
            .filter(|(_, &keep)| keep)
            .map(|(t, _)| *t)
            .collect();
        for fragment in [Fragment::RhoDf, Fragment::RdfsDefault, Fragment::RdfsPlus] {
            for options in [InferrayOptions::default(), InferrayOptions::sequential()] {
                assert_retract_equals_rebuild(fragment, options, &triples, &delta);
            }
        }
    }

    /// The scheduling escape hatch must not change results either.
    #[test]
    fn retract_is_schedule_independent(
        triples in arbitrary_dataset(),
        mask in prop::collection::vec(any::<bool>(), 28),
    ) {
        let delta: Vec<IdTriple> = triples
            .iter()
            .zip(mask.iter().cycle())
            .filter(|(_, &keep)| keep)
            .map(|(t, _)| *t)
            .collect();
        let run = |options: InferrayOptions| {
            let mut materialized = TripleStore::from_triples(triples.iter().copied());
            let mut base_store = TripleStore::from_triples(triples.iter().copied());
            let mut reasoner = InferrayReasoner::with_options(Fragment::RdfsPlus, options);
            reasoner.materialize(&mut materialized);
            reasoner.retract_delta(&mut materialized, &mut base_store, delta.iter().copied());
            table_bytes(&materialized)
        };
        prop_assert_eq!(
            run(InferrayOptions::default()),
            run(InferrayOptions::unscheduled())
        );
    }
}
