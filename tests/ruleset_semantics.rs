//! Fragment-level semantic tests on hand-built ontologies: each test states
//! what a given fragment must (and must not) derive, checked through the
//! decoded-graph API.

use inferray::{reason_graph, vocab, Fragment, Graph, Triple};

const EX: &str = "http://example.org/";

fn ex(local: &str) -> String {
    format!("{EX}{local}")
}

fn contains(result: &inferray::core::ReasonedGraph, s: &str, p: &str, o: &str) -> bool {
    result.graph.contains(&Triple::iris(s, p, o))
}

#[test]
fn domain_range_and_subproperty_in_rho_df() {
    let mut g = Graph::new();
    g.insert_iris(ex("hasSon"), vocab::RDFS_SUB_PROPERTY_OF, ex("hasChild"));
    g.insert_iris(ex("hasChild"), vocab::RDFS_DOMAIN, ex("Parent"));
    g.insert_iris(ex("hasChild"), vocab::RDFS_RANGE, ex("Child"));
    g.insert_iris(ex("Homer"), ex("hasSon"), ex("Bart"));
    let result = reason_graph(&g, Fragment::RhoDf).unwrap();

    // PRP-SPO1, then PRP-DOM / PRP-RNG on the derived triple.
    assert!(contains(
        &result,
        &ex("Homer"),
        &ex("hasChild"),
        &ex("Bart")
    ));
    assert!(contains(
        &result,
        &ex("Homer"),
        vocab::RDF_TYPE,
        &ex("Parent")
    ));
    assert!(contains(
        &result,
        &ex("Bart"),
        vocab::RDF_TYPE,
        &ex("Child")
    ));
    // SCM-DOM2: hasSon inherits the domain of hasChild.
    assert!(contains(
        &result,
        &ex("hasSon"),
        vocab::RDFS_DOMAIN,
        &ex("Parent")
    ));
}

#[test]
fn rho_df_excludes_domain_widening_but_rdfs_includes_it() {
    let mut g = Graph::new();
    g.insert_iris(ex("hasChild"), vocab::RDFS_DOMAIN, ex("Parent"));
    g.insert_iris(ex("Parent"), vocab::RDFS_SUB_CLASS_OF, ex("Person"));
    // SCM-DOM1 (domain widening along subClassOf) is in RDFS but not ρDF.
    let rho = reason_graph(&g, Fragment::RhoDf).unwrap();
    assert!(!contains(
        &rho,
        &ex("hasChild"),
        vocab::RDFS_DOMAIN,
        &ex("Person")
    ));
    let rdfs = reason_graph(&g, Fragment::RdfsDefault).unwrap();
    assert!(contains(
        &rdfs,
        &ex("hasChild"),
        vocab::RDFS_DOMAIN,
        &ex("Person")
    ));
}

#[test]
fn rdfs_full_axiomatic_triples() {
    let mut g = Graph::new();
    g.insert_iris(ex("Dog"), vocab::RDF_TYPE, vocab::RDFS_CLASS);
    g.insert_iris(ex("Rex"), ex("barksAt"), ex("Postman"));
    let default = reason_graph(&g, Fragment::RdfsDefault).unwrap();
    let full = reason_graph(&g, Fragment::RdfsFull).unwrap();
    // RDFS10 / RDFS8 / RDFS4 only fire in the full flavour.
    assert!(!contains(
        &default,
        &ex("Dog"),
        vocab::RDFS_SUB_CLASS_OF,
        &ex("Dog")
    ));
    assert!(contains(
        &full,
        &ex("Dog"),
        vocab::RDFS_SUB_CLASS_OF,
        &ex("Dog")
    ));
    assert!(contains(
        &full,
        &ex("Dog"),
        vocab::RDFS_SUB_CLASS_OF,
        vocab::RDFS_RESOURCE
    ));
    assert!(contains(
        &full,
        &ex("Rex"),
        vocab::RDF_TYPE,
        vocab::RDFS_RESOURCE
    ));
    assert!(contains(
        &full,
        &ex("Postman"),
        vocab::RDF_TYPE,
        vocab::RDFS_RESOURCE
    ));
    assert!(full.stats.inferred_triples() > default.stats.inferred_triples());
}

#[test]
fn equivalent_classes_exchange_instances_in_rdfs_plus() {
    let mut g = Graph::new();
    g.insert_iris(ex("Human"), vocab::OWL_EQUIVALENT_CLASS, ex("Person"));
    g.insert_iris(ex("Socrates"), vocab::RDF_TYPE, ex("Human"));
    g.insert_iris(ex("Plato"), vocab::RDF_TYPE, ex("Person"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("Socrates"),
        vocab::RDF_TYPE,
        &ex("Person")
    ));
    assert!(contains(
        &result,
        &ex("Plato"),
        vocab::RDF_TYPE,
        &ex("Human")
    ));
    // SCM-EQC1 expands the equivalence into mutual subsumption.
    assert!(contains(
        &result,
        &ex("Human"),
        vocab::RDFS_SUB_CLASS_OF,
        &ex("Person")
    ));
    assert!(contains(
        &result,
        &ex("Person"),
        vocab::RDFS_SUB_CLASS_OF,
        &ex("Human")
    ));
    // But RDFS alone ignores owl:equivalentClass.
    let rdfs = reason_graph(&g, Fragment::RdfsDefault).unwrap();
    assert!(!contains(
        &rdfs,
        &ex("Socrates"),
        vocab::RDF_TYPE,
        &ex("Person")
    ));
}

#[test]
fn mutual_subclasses_become_equivalent_in_rdfs_plus() {
    let mut g = Graph::new();
    g.insert_iris(ex("A"), vocab::RDFS_SUB_CLASS_OF, ex("B"));
    g.insert_iris(ex("B"), vocab::RDFS_SUB_CLASS_OF, ex("A"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("A"),
        vocab::OWL_EQUIVALENT_CLASS,
        &ex("B")
    ));
    assert!(contains(
        &result,
        &ex("B"),
        vocab::OWL_EQUIVALENT_CLASS,
        &ex("A")
    ));
}

#[test]
fn symmetric_and_transitive_properties() {
    let mut g = Graph::new();
    g.insert_iris(
        ex("marriedTo"),
        vocab::RDF_TYPE,
        vocab::OWL_SYMMETRIC_PROPERTY,
    );
    g.insert_iris(
        ex("ancestorOf"),
        vocab::RDF_TYPE,
        vocab::OWL_TRANSITIVE_PROPERTY,
    );
    g.insert_iris(ex("Marge"), ex("marriedTo"), ex("Homer"));
    g.insert_iris(ex("Abe"), ex("ancestorOf"), ex("Homer"));
    g.insert_iris(ex("Homer"), ex("ancestorOf"), ex("Bart"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("Homer"),
        &ex("marriedTo"),
        &ex("Marge")
    ));
    assert!(contains(
        &result,
        &ex("Abe"),
        &ex("ancestorOf"),
        &ex("Bart")
    ));
    // Symmetry is not transitivity: no reflexive marriage.
    assert!(!contains(
        &result,
        &ex("Homer"),
        &ex("marriedTo"),
        &ex("Homer")
    ));
}

#[test]
fn same_as_substitution_is_complete_in_both_directions() {
    let mut g = Graph::new();
    g.insert_iris(ex("Clark"), vocab::OWL_SAME_AS, ex("Superman"));
    g.insert_iris(ex("Clark"), ex("worksAt"), ex("DailyPlanet"));
    g.insert_iris(ex("Lois"), ex("loves"), ex("Superman"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("Superman"),
        vocab::OWL_SAME_AS,
        &ex("Clark")
    ));
    assert!(contains(
        &result,
        &ex("Superman"),
        &ex("worksAt"),
        &ex("DailyPlanet")
    ));
    assert!(contains(&result, &ex("Lois"), &ex("loves"), &ex("Clark")));
}

#[test]
fn functional_property_identifies_values_and_merges_their_facts() {
    let mut g = Graph::new();
    g.insert_iris(
        ex("hasBirthMother"),
        vocab::RDF_TYPE,
        vocab::OWL_FUNCTIONAL_PROPERTY,
    );
    g.insert_iris(ex("Bart"), ex("hasBirthMother"), ex("Marge"));
    g.insert_iris(ex("Bart"), ex("hasBirthMother"), ex("MargeBouvier"));
    g.insert_iris(ex("MargeBouvier"), ex("bornIn"), ex("Springfield"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("Marge"),
        vocab::OWL_SAME_AS,
        &ex("MargeBouvier")
    ));
    assert!(contains(
        &result,
        &ex("Marge"),
        &ex("bornIn"),
        &ex("Springfield")
    ));
}

#[test]
fn inverse_functional_property_identifies_subjects() {
    let mut g = Graph::new();
    g.insert_iris(
        ex("ssn"),
        vocab::RDF_TYPE,
        vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY,
    );
    g.insert_iris(ex("JohnSmith"), ex("ssn"), ex("ssn-123"));
    g.insert_iris(ex("JSmith"), ex("ssn"), ex("ssn-123"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("JohnSmith"),
        vocab::OWL_SAME_AS,
        &ex("JSmith")
    ));
}

#[test]
fn inverse_properties_flow_both_ways() {
    let mut g = Graph::new();
    g.insert_iris(ex("teaches"), vocab::OWL_INVERSE_OF, ex("taughtBy"));
    g.insert_iris(ex("Socrates"), ex("teaches"), ex("Logic"));
    g.insert_iris(ex("Rhetoric"), ex("taughtBy"), ex("Aristotle"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("Logic"),
        &ex("taughtBy"),
        &ex("Socrates")
    ));
    assert!(contains(
        &result,
        &ex("Aristotle"),
        &ex("teaches"),
        &ex("Rhetoric")
    ));
}

#[test]
fn equivalent_properties_share_their_extensions() {
    let mut g = Graph::new();
    g.insert_iris(ex("price"), vocab::OWL_EQUIVALENT_PROPERTY, ex("cost"));
    g.insert_iris(ex("Widget"), ex("price"), ex("TenEuros"));
    let result = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    assert!(contains(
        &result,
        &ex("Widget"),
        &ex("cost"),
        &ex("TenEuros")
    ));
    // SCM-EQP1 also yields the mutual subPropertyOf pair.
    assert!(contains(
        &result,
        &ex("price"),
        vocab::RDFS_SUB_PROPERTY_OF,
        &ex("cost")
    ));
}

#[test]
fn rdfs_plus_full_adds_class_axioms() {
    let mut g = Graph::new();
    g.insert_iris(ex("Robot"), vocab::RDF_TYPE, vocab::OWL_CLASS);
    let default = reason_graph(&g, Fragment::RdfsPlus).unwrap();
    let full = reason_graph(&g, Fragment::RdfsPlusFull).unwrap();
    assert!(!contains(
        &default,
        &ex("Robot"),
        vocab::RDFS_SUB_CLASS_OF,
        vocab::OWL_THING
    ));
    assert!(contains(
        &full,
        &ex("Robot"),
        vocab::RDFS_SUB_CLASS_OF,
        vocab::OWL_THING
    ));
    assert!(contains(
        &full,
        vocab::OWL_NOTHING,
        vocab::RDFS_SUB_CLASS_OF,
        &ex("Robot")
    ));
    assert!(contains(
        &full,
        &ex("Robot"),
        vocab::OWL_EQUIVALENT_CLASS,
        &ex("Robot")
    ));
}
