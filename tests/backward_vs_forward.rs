//! Equivalence of the backward-chaining (query-time) comparator and the
//! forward-chaining (materialization) engines on the ρdf fragment.
//!
//! The paper's introduction frames the two strategies as a trade-off with
//! the same semantics; these tests pin that down: for any input, the set of
//! triples the `BackwardChainer` can derive at query time equals the set the
//! Inferray reasoner materializes, and individual pattern queries agree with
//! pattern matching over the materialized store.

use inferray::baselines::BackwardChainer;
use inferray::core::{InferrayReasoner, Materializer};
use inferray::dictionary::wellknown;
use inferray::rules::Fragment;
use inferray::store::{TriplePattern, TripleStore};
use inferray::IdTriple;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn materialize_rho_df(store: &TripleStore) -> BTreeSet<IdTriple> {
    let mut materialized = store.clone();
    InferrayReasoner::new(Fragment::RhoDf).materialize(&mut materialized);
    materialized.iter_triples().collect()
}

fn backward_closure(store: &TripleStore) -> BTreeSet<IdTriple> {
    BackwardChainer::new(store)
        .all_triples()
        .into_iter()
        .collect()
}

#[test]
fn hand_built_ontology_closures_agree() {
    const HUMAN: u64 = 8_100_000;
    const MAMMAL: u64 = 8_100_001;
    const ANIMAL: u64 = 8_100_002;
    const BART: u64 = 8_100_003;
    const HELPER: u64 = 8_100_004;
    let has_pet = inferray::model::ids::nth_property_id(40);
    let has_dog = inferray::model::ids::nth_property_id(41);

    let store = TripleStore::from_triples([
        IdTriple::new(HUMAN, wellknown::RDFS_SUB_CLASS_OF, MAMMAL),
        IdTriple::new(MAMMAL, wellknown::RDFS_SUB_CLASS_OF, ANIMAL),
        IdTriple::new(BART, wellknown::RDF_TYPE, HUMAN),
        IdTriple::new(has_dog, wellknown::RDFS_SUB_PROPERTY_OF, has_pet),
        IdTriple::new(has_pet, wellknown::RDFS_DOMAIN, HUMAN),
        IdTriple::new(has_pet, wellknown::RDFS_RANGE, ANIMAL),
        IdTriple::new(BART, has_dog, HELPER),
    ]);

    let forward = materialize_rho_df(&store);
    let backward = backward_closure(&store);
    assert_eq!(forward, backward);
    // Sanity: the closure is strictly larger than the input.
    assert!(forward.len() > store.len());
}

#[test]
fn cyclic_class_hierarchy_closures_agree() {
    let a = 8_200_000;
    let b = 8_200_001;
    let c = 8_200_002;
    let x = 8_200_003;
    let store = TripleStore::from_triples([
        IdTriple::new(a, wellknown::RDFS_SUB_CLASS_OF, b),
        IdTriple::new(b, wellknown::RDFS_SUB_CLASS_OF, c),
        IdTriple::new(c, wellknown::RDFS_SUB_CLASS_OF, a),
        IdTriple::new(x, wellknown::RDF_TYPE, a),
    ]);
    assert_eq!(materialize_rho_df(&store), backward_closure(&store));
}

// ---------------------------------------------------------------------------
// Random ρdf datasets
// ---------------------------------------------------------------------------

/// A randomly shaped ρdf dataset: a class taxonomy, a property hierarchy,
/// domain/range statements and instance triples, over disjoint small
/// universes so joins actually happen.
fn arbitrary_rho_df_store() -> impl Strategy<Value = Vec<IdTriple>> {
    let class = |n: u8| 8_300_000u64 + n as u64;
    let instance = |n: u8| 8_400_000u64 + n as u64;
    let property = |n: u8| inferray::model::ids::nth_property_id(50 + n as usize);

    let subclass = prop::collection::vec((0u8..6, 0u8..6), 0..8).prop_map(move |edges| {
        edges
            .into_iter()
            .map(|(a, b)| IdTriple::new(class(a), wellknown::RDFS_SUB_CLASS_OF, class(b)))
            .collect::<Vec<_>>()
    });
    let subproperty = prop::collection::vec((0u8..4, 0u8..4), 0..5).prop_map(move |edges| {
        edges
            .into_iter()
            .map(|(a, b)| IdTriple::new(property(a), wellknown::RDFS_SUB_PROPERTY_OF, property(b)))
            .collect::<Vec<_>>()
    });
    let domains = prop::collection::vec((0u8..4, 0u8..6), 0..4).prop_map(move |edges| {
        edges
            .into_iter()
            .map(|(p, c)| IdTriple::new(property(p), wellknown::RDFS_DOMAIN, class(c)))
            .collect::<Vec<_>>()
    });
    let ranges = prop::collection::vec((0u8..4, 0u8..6), 0..4).prop_map(move |edges| {
        edges
            .into_iter()
            .map(|(p, c)| IdTriple::new(property(p), wellknown::RDFS_RANGE, class(c)))
            .collect::<Vec<_>>()
    });
    let types = prop::collection::vec((0u8..8, 0u8..6), 0..10).prop_map(move |edges| {
        edges
            .into_iter()
            .map(|(x, c)| IdTriple::new(instance(x), wellknown::RDF_TYPE, class(c)))
            .collect::<Vec<_>>()
    });
    let links = prop::collection::vec((0u8..8, 0u8..4, 0u8..8), 0..12).prop_map(move |edges| {
        edges
            .into_iter()
            .map(|(x, p, y)| IdTriple::new(instance(x), property(p), instance(y)))
            .collect::<Vec<_>>()
    });

    (subclass, subproperty, domains, ranges, types, links).prop_map(|(mut a, b, c, d, e, f)| {
        a.extend(b);
        a.extend(c);
        a.extend(d);
        a.extend(e);
        a.extend(f);
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The backward rewriter derives exactly the triples the forward engine
    /// materializes.
    #[test]
    fn closures_agree_on_random_datasets(triples in arbitrary_rho_df_store()) {
        let store = TripleStore::from_triples(triples);
        prop_assert_eq!(materialize_rho_df(&store), backward_closure(&store));
    }

    /// Pattern queries answered at query time agree with pattern matching
    /// over the materialized store.
    #[test]
    fn pattern_queries_agree_with_materialized_lookup(
        triples in arbitrary_rho_df_store(),
        instance_pick in 0u8..8,
        class_pick in 0u8..6,
        property_pick in 0u8..4,
    ) {
        let store = TripleStore::from_triples(triples);
        let chainer = BackwardChainer::new(&store);
        let mut materialized = store.clone();
        InferrayReasoner::new(Fragment::RhoDf).materialize(&mut materialized);

        let instance = 8_400_000u64 + instance_pick as u64;
        let class = 8_300_000u64 + class_pick as u64;
        let property = inferray::model::ids::nth_property_id(50 + property_pick as usize);

        let patterns = [
            TriplePattern::any().with_p(wellknown::RDF_TYPE).with_s(instance),
            TriplePattern::any().with_p(wellknown::RDF_TYPE).with_o(class),
            TriplePattern::any().with_p(property),
            TriplePattern::any().with_p(wellknown::RDFS_SUB_CLASS_OF).with_s(class),
            TriplePattern::any().with_p(wellknown::RDFS_DOMAIN).with_s(property),
        ];
        for pattern in patterns {
            let mut backward: Vec<IdTriple> = chainer.match_pattern(pattern);
            backward.sort_unstable();
            let mut forward: Vec<IdTriple> = materialized.match_pattern(pattern);
            forward.sort_unstable();
            prop_assert_eq!(backward, forward, "pattern {:?}", pattern);
        }
    }
}
