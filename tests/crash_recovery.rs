//! Crash-recovery contract of the persistence subsystem
//! (docs/persistence.md).
//!
//! The property under test: a [`DurableDataset`] may lose power at **any**
//! moment — between records, inside a record, between a checkpoint image
//! and the WAL truncation that follows it — and recovery from what survived
//! on disk reconstructs a dataset **byte-identical** to the acknowledged
//! prefix of the write history. "Byte-identical" is checked literally: both
//! sides are serialized through the snapshot encoder (dictionary, base
//! slots, materialized slots, epoch) and the images are compared as bytes.
//!
//! The crash model is the deterministic in-memory [`MemFs`] backend: its
//! `durable_view()` is exactly the bytes that survive power loss (appends
//! past the last fsync are dropped, atomic writes are all-or-nothing), and
//! injected faults model torn appends and failed fsyncs.

use inferray::parser::load_ntriples;
use inferray::persist::{encode_image, wal, DurableView, Fault, MemFs};
use inferray::query::{
    DurabilityReporter, ServerConfig, SnapshotQueryEngine, SparqlServer, UpdateSink,
};
use inferray::{
    CheckpointPolicy, DurableDataset, DurableError, DurableUpdateSink, Fragment, InferrayOptions,
    ServingDataset,
};
use proptest::prelude::*;
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;

const FRAGMENT: Fragment = Fragment::RdfsDefault;

/// A small ontology so that asserts and retracts exercise inference
/// (delete–rederive), not just base-table edits.
const SCHEMA: &str = "\
<http://ex/c0> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/c1> .\n\
<http://ex/c1> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/c2> .\n\
<http://ex/c2> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/c3> .\n\
<http://ex/i0> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/c0> .\n";

/// One update batch: `rdf:type` assertions/retractions over a small
/// instance × class universe, so retractions regularly hit triples that
/// earlier asserts created (and their inferred superclass memberships).
#[derive(Clone, Debug)]
enum Op {
    Assert(String),
    Retract(String),
    Checkpoint,
}

fn type_triple(instance: u8, class: u8) -> String {
    format!(
        "<http://ex/i{instance}> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/c{class}> .\n"
    )
}

fn arbitrary_ops() -> impl Strategy<Value = Vec<Op>> {
    let batch = prop::collection::vec((0u8..4, 0u8..4), 1..4).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(i, c)| type_triple(i, c))
            .collect::<String>()
    });
    prop::collection::vec(
        prop_oneof![
            batch.clone().prop_map(Op::Assert),
            batch.prop_map(Op::Retract),
            Just(Op::Checkpoint),
        ],
        1..8,
    )
}

fn options() -> InferrayOptions {
    InferrayOptions::default()
}

/// The in-memory reference: the same initial materialization with no
/// persistence layer at all. Recovery must land exactly here.
fn mirror() -> ServingDataset {
    let loaded = load_ntriples(SCHEMA).expect("schema parses");
    ServingDataset::materialize(loaded, FRAGMENT, options()).0
}

fn boot(fs: Arc<MemFs>) -> DurableDataset {
    let loaded = load_ntriples(SCHEMA).expect("schema parses");
    let (durable, _) = DurableDataset::create(
        loaded,
        FRAGMENT,
        options(),
        "data",
        fs,
        CheckpointPolicy::manual(),
    )
    .expect("initial snapshot");
    durable
}

/// Canonical bytes of a dataset's entire logical state: dictionary, base
/// slot layout, materialized slot layout, epoch — exactly what the
/// snapshot format captures. Two datasets with equal fingerprints are
/// indistinguishable to every reader.
fn fingerprint(dataset: &ServingDataset) -> Vec<u8> {
    let (dictionary, base, snapshot) = dataset.persistable_state();
    encode_image(
        &dictionary,
        &base,
        snapshot.store(),
        snapshot.epoch(),
        0,
        "fingerprint",
    )
}

/// Recovers from a crash image and asserts byte-identity with `expected`.
fn assert_recovers_to(view: DurableView, expected: &[u8], context: &str) {
    let (recovered, _report) = DurableDataset::open(
        "data",
        FRAGMENT,
        options(),
        Arc::new(MemFs::from_view(view)),
        CheckpointPolicy::manual(),
    )
    .unwrap_or_else(|e| panic!("{context}: recovery failed: {e}"));
    assert_eq!(
        fingerprint(recovered.dataset()),
        expected,
        "{context}: recovered state differs from the acknowledged history"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline property: crash after **every** acknowledged batch
    /// (including crashes landing right after a checkpoint wrote its image
    /// and truncated the log) and recover; the rebuilt dataset is
    /// byte-identical to an in-memory reference that applied the same
    /// acknowledged prefix.
    #[test]
    fn crash_after_every_batch_recovers_byte_identically(ops in arbitrary_ops()) {
        let fs = Arc::new(MemFs::new());
        let durable = boot(Arc::clone(&fs));
        let reference = mirror();

        // Crash point 0: nothing but the initial checkpoint.
        assert_recovers_to(fs.durable_view(), &fingerprint(&reference), "after create");

        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Assert(batch) => {
                    durable.extend_ntriples(batch).expect("durable assert");
                    reference.extend_ntriples(batch).expect("reference assert");
                }
                Op::Retract(batch) => {
                    durable.retract_ntriples(batch).expect("durable retract");
                    reference.retract_ntriples(batch).expect("reference retract");
                }
                Op::Checkpoint => {
                    durable.checkpoint().expect("checkpoint");
                }
            }
            // The live dataset never drifts from the reference…
            prop_assert_eq!(fingerprint(durable.dataset()), fingerprint(&reference));
            // …and neither does a recovery from a crash right here.
            assert_recovers_to(
                fs.durable_view(),
                &fingerprint(&reference),
                &format!("after step {step} ({op:?})"),
            );
        }
    }

    /// Replay is idempotent: recovering, then recovering again from the
    /// recovered dataset's own durable state, changes nothing.
    #[test]
    fn recovery_is_idempotent(ops in arbitrary_ops()) {
        let fs = Arc::new(MemFs::new());
        let durable = boot(Arc::clone(&fs));
        for op in &ops {
            match op {
                Op::Assert(batch) => { durable.extend_ntriples(batch).expect("assert"); }
                Op::Retract(batch) => { durable.retract_ntriples(batch).expect("retract"); }
                Op::Checkpoint => { durable.checkpoint().expect("checkpoint"); }
            }
        }
        let view = fs.durable_view();
        let open = |view: DurableView| {
            DurableDataset::open(
                "data",
                FRAGMENT,
                options(),
                Arc::new(MemFs::from_view(view)),
                CheckpointPolicy::manual(),
            )
            .expect("recovery")
        };
        let (first, _) = open(view.clone());
        let (second, _) = open(view);
        prop_assert_eq!(fingerprint(first.dataset()), fingerprint(second.dataset()));
        prop_assert_eq!(fingerprint(first.dataset()), fingerprint(durable.dataset()));
    }
}

/// A torn tail record — the WAL cut at **every** byte offset, as a torn
/// append or a partially persisted sector would leave it — never blocks
/// recovery, and recovery lands exactly on the state after the last record
/// that survived in full.
#[test]
fn torn_wal_tail_recovers_the_longest_complete_prefix_at_every_cut() {
    let fs = Arc::new(MemFs::new());
    let durable = boot(Arc::clone(&fs));
    let reference = mirror();

    // States[k] = fingerprint after k acknowledged batches.
    let mut states = vec![fingerprint(&reference)];
    for step in 0..4u8 {
        let batch = type_triple(step, 3) + &type_triple(step, step % 3);
        durable.extend_ntriples(&batch).expect("assert");
        reference.extend_ntriples(&batch).expect("assert");
        states.push(fingerprint(&reference));
    }

    let view = fs.durable_view();
    let wal_path = PathBuf::from("data/wal.log");
    let full_wal = view.get(&wal_path).expect("WAL exists").clone();
    assert_eq!(wal::scan(&full_wal).records.len(), 4);

    for cut in 0..=full_wal.len() {
        let mut torn = view.clone();
        torn.insert(wal_path.clone(), full_wal[..cut].to_vec());
        let complete = wal::scan(&full_wal[..cut]).records.len();
        assert_recovers_to(torn, &states[complete], &format!("WAL cut at byte {cut}"));
    }
}

/// Crashing between "checkpoint image persisted" and "WAL truncated"
/// leaves an image *and* a log that both cover the same writes. The
/// sequence-number guard must skip every already-covered record instead of
/// applying it twice.
#[test]
fn stale_wal_records_after_a_checkpoint_are_skipped_not_replayed() {
    let fs = Arc::new(MemFs::new());
    let durable = boot(Arc::clone(&fs));
    for step in 0..3u8 {
        durable
            .extend_ntriples(&type_triple(step, 2))
            .expect("assert");
    }
    let before_checkpoint = fs.durable_view();
    durable.checkpoint().expect("checkpoint");
    let after_checkpoint = fs.durable_view();

    // The crash image: the post-checkpoint files, but the WAL as it was
    // *before* truncation — exactly what survives a power cut between the
    // image rename and the truncation rename.
    let wal_path = PathBuf::from("data/wal.log");
    let mut crash = after_checkpoint;
    crash.insert(
        wal_path.clone(),
        before_checkpoint.get(&wal_path).expect("WAL").clone(),
    );

    let (recovered, report) = DurableDataset::open(
        "data",
        FRAGMENT,
        options(),
        Arc::new(MemFs::from_view(crash)),
        CheckpointPolicy::manual(),
    )
    .expect("recovery");
    assert_eq!(report.replayed_records, 0);
    assert_eq!(report.skipped_records, 3);
    assert_eq!(
        fingerprint(recovered.dataset()),
        fingerprint(durable.dataset())
    );
}

/// Bit rot anywhere in the newest image is detected by a checksum and
/// recovery falls back to the previous image (the documented limitation:
/// writes whose WAL records were already truncated by that newer
/// checkpoint roll back with it — but the server comes up serving a
/// consistent earlier state rather than refusing to start or, worse,
/// serving a corrupt store).
#[test]
fn corruption_anywhere_in_the_newest_image_falls_back_to_the_previous_one() {
    let fs = Arc::new(MemFs::new());
    let durable = boot(Arc::clone(&fs));
    let old_state = fingerprint(durable.dataset());
    durable.extend_ntriples(&type_triple(1, 1)).expect("assert");
    durable.checkpoint().expect("checkpoint");

    let view = fs.durable_view();
    let newest = view
        .keys()
        .filter(|p| p.to_string_lossy().contains("snapshot-"))
        .max()
        .expect("two images on disk")
        .clone();
    let image_len = view.get(&newest).expect("image").len();

    // Flip a byte at offsets spanning the magic, the header, and every
    // section; a CRC (or a length check) must catch each one.
    for offset in (0..image_len).step_by(7) {
        let mut corrupt = view.clone();
        corrupt.get_mut(&newest).expect("image")[offset] ^= 0x40;
        let (recovered, report) = DurableDataset::open(
            "data",
            FRAGMENT,
            options(),
            Arc::new(MemFs::from_view(corrupt)),
            CheckpointPolicy::manual(),
        )
        .unwrap_or_else(|e| panic!("corrupt byte {offset}: recovery failed: {e}"));
        assert_eq!(report.invalid_snapshots, 1, "corrupt byte {offset}");
        assert_eq!(report.snapshot_epoch, 0, "corrupt byte {offset}");
        assert_eq!(
            fingerprint(recovered.dataset()),
            old_state,
            "corrupt byte {offset}"
        );
    }
}

fn http(addr: SocketAddr, request: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    // This helper reads to EOF, so it must opt out of the server's
    // keep-alive default.
    let request = request.replacen("\r\n\r\n", "\r\nConnection: close\r\n\r\n", 1);
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read");
    response
}

fn http_post(addr: SocketAddr, target: &str, body: &str) -> String {
    http(
        addr,
        &format!(
            "POST {target} HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// End-to-end graceful degradation: a WAL fsync failure flips the serving
/// endpoint to read-only — `POST /update` answers `503` with `Retry-After`,
/// `/status` reports the degradation, and reads keep answering from the
/// last published epoch.
#[test]
fn wal_failure_degrades_the_http_endpoint_to_read_only() {
    let fs = Arc::new(MemFs::new());
    let durable = Arc::new(boot(Arc::clone(&fs)));
    let sink = Arc::new(DurableUpdateSink(Arc::clone(&durable)));
    let dataset = Arc::clone(durable.dataset());
    let source = move || {
        let (snapshot, dictionary) = dataset.snapshot();
        SnapshotQueryEngine::new(snapshot, dictionary)
    };
    let server = SparqlServer::bind_with(
        "127.0.0.1:0",
        ServerConfig::default(),
        Arc::new(source),
        Some(Arc::clone(&sink) as Arc<dyn UpdateSink>),
        Some(sink as Arc<dyn DurabilityReporter>),
        None,
    )
    .expect("bind");
    let addr = server.local_addr();

    // Healthy: a WAL-protected assert publishes a new epoch.
    let response = http_post(addr, "/update?action=assert", &type_triple(1, 1));
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("\"epoch\":1"), "{response}");

    // The next fsync fails: that write is refused, nothing publishes, and
    // the dataset degrades to read-only.
    fs.inject(Fault::FailSync);
    let response = http_post(addr, "/update?action=assert", &type_triple(2, 2));
    assert!(
        response.starts_with("HTTP/1.1 503"),
        "expected 503, got: {response}"
    );
    assert!(response.contains("Retry-After: 30"), "{response}");
    assert!(response.contains("read-only"), "{response}");

    // Degradation is permanent until an operator intervenes…
    let response = http_post(addr, "/update?action=retract", &type_triple(1, 1));
    assert!(response.starts_with("HTTP/1.1 503"), "{response}");
    assert!(matches!(
        durable.extend_ntriples(&type_triple(3, 3)),
        Err(DurableError::ReadOnly { .. })
    ));

    // …/status says so…
    let response = http(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
    assert!(response.contains("\"read_only\":true"), "{response}");
    assert!(response.contains("\"epoch\":1"), "{response}");

    // …and reads still serve the last published epoch (the acknowledged
    // assert, including its inferred superclass types; the refused one is
    // absent).
    let query = "SELECT%20?c%20WHERE%20%7B%20%3Chttp://ex/i1%3E%20a%20?c%20%7D";
    let response = http(
        addr,
        &format!("GET /sparql?query={query} HTTP/1.1\r\nHost: t\r\n\r\n"),
    );
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    assert!(response.contains("http://ex/c1"), "{response}");
    assert!(response.contains("http://ex/c3"), "{response}");
    assert!(!response.contains("http://ex/i2"), "{response}");

    // The crash image still recovers to exactly the acknowledged epoch.
    let (recovered, _) = DurableDataset::open(
        "data",
        FRAGMENT,
        options(),
        Arc::new(MemFs::from_view(fs.durable_view())),
        CheckpointPolicy::manual(),
    )
    .expect("recovery");
    assert_eq!(recovered.dataset().epoch(), 1);
}

/// A torn append (power loss mid-`write(2)`) leaves a prefix of the record
/// on disk. The writer sees an error and refuses the batch; recovery from
/// the crash image discards the torn tail and truncates it so the repaired
/// log accepts new appends cleanly.
#[test]
fn torn_append_is_refused_live_and_healed_on_recovery() {
    let fs = Arc::new(MemFs::new());
    let durable = boot(Arc::clone(&fs));
    durable
        .extend_ntriples(&type_triple(0, 1))
        .expect("healthy assert");
    let epoch_before = durable.dataset().epoch();

    fs.inject(Fault::TornAppend { keep: 5 });
    let err = durable
        .extend_ntriples(&type_triple(1, 2))
        .expect_err("torn append must be refused");
    assert!(matches!(err, DurableError::ReadOnly { .. }));
    assert_eq!(durable.dataset().epoch(), epoch_before);

    // The crash image holds one complete record plus 5 bytes of garbage.
    let view = fs.durable_view();
    let wal_bytes = view.get(Path::new("data/wal.log")).expect("WAL");
    let scan = wal::scan(wal_bytes);
    assert_eq!(scan.records.len(), 1);
    assert!(scan.torn_tail);

    let (recovered, report) = DurableDataset::open(
        "data",
        FRAGMENT,
        options(),
        Arc::new(MemFs::from_view(view)),
        CheckpointPolicy::manual(),
    )
    .expect("recovery");
    assert_eq!(report.replayed_records, 1);
    assert_eq!(report.torn_tail_bytes, 5);
    assert_eq!(recovered.dataset().epoch(), epoch_before);

    // The healed log keeps working: a new write on the recovered dataset
    // appends after the repaired tail and survives the next recovery.
    recovered
        .extend_ntriples(&type_triple(2, 2))
        .expect("write after heal");
    assert!(!recovered.is_read_only());
}
