//! Snapshot isolation of the concurrent serving layer (docs/serving.md).
//!
//! The contract under test: a reader that acquired a [`StoreSnapshot`]
//! observes **exactly** the triple set of its epoch — zero new triples —
//! for as long as it holds the snapshot, even while a writer runs a full
//! materialization next to it; a reader that re-acquires after the epoch
//! swap sees the **complete** materialization, byte-identical to what a
//! single-threaded run would have produced.

use inferray::core::{InferrayOptions, InferrayReasoner, Materializer, ServingDataset};
use inferray::dictionary::Dictionary;
use inferray::model::{IdTriple, Triple};
use inferray::parser::loader::{load_triples, LoadedDataset};
use inferray::query::SnapshotQueryEngine;
use inferray::rules::Fragment;
use inferray::store::{SnapshotStore, TripleStore};
use inferray_datasets::lubm::LubmGenerator;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn lubm(target_triples: usize) -> LoadedDataset {
    let dataset = LubmGenerator::new(target_triples).with_seed(7).generate();
    load_triples(dataset.triples.iter()).expect("generated dataset is valid")
}

/// Every triple of a store, in deterministic ⟨p, s, o⟩ table order.
fn triples_of(store: &TripleStore) -> Vec<IdTriple> {
    store.iter_triples().collect()
}

/// The acceptance-criterion test: a reader holding a snapshot across a
/// full `materialize` observes zero new triples until it re-acquires,
/// while a post-swap reader sees the complete materialization.
#[test]
fn reader_mid_materialization_sees_exactly_the_pre_swap_triple_set() {
    let loaded = lubm(4_000);

    // Reference: the same materialization, single-threaded, no snapshots.
    let mut reference = loaded.store.clone();
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut reference);
    reference.ensure_all_os();
    let reference_triples = triples_of(&reference);

    let cell = Arc::new(SnapshotStore::new(loaded.store.clone()));
    let pre_swap = cell.snapshot();
    let pre_swap_triples = triples_of(&pre_swap);
    assert!(
        reference_triples.len() > pre_swap_triples.len(),
        "the fragment must actually infer something for this test to bite"
    );

    // Handshake making the critical interleaving deterministic: the writer
    // finishes materializing its private copy, then *parks before the epoch
    // swap* until the reader has provably sampled the store — the exact
    // moment a torn or in-place implementation would leak new triples.
    let materialized_unpublished = Arc::new(AtomicBool::new(false));
    let reader_sampled = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|scope| {
        let writer_cell = Arc::clone(&cell);
        let writer_flag = Arc::clone(&materialized_unpublished);
        let writer_gate = Arc::clone(&reader_sampled);
        let writer_done = Arc::clone(&done);
        scope.spawn(move || {
            writer_cell.update(|store| {
                InferrayReasoner::new(Fragment::RdfsDefault).materialize(store);
                writer_flag.store(true, Ordering::SeqCst);
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                while !writer_gate.load(Ordering::SeqCst) {
                    assert!(std::time::Instant::now() < deadline, "reader never sampled");
                    std::thread::yield_now();
                }
            });
            writer_done.store(true, Ordering::SeqCst);
        });

        // Reader: every sample before the swap must be epoch 0 with exactly
        // the pre-swap triples; every sample after it, the reference set.
        while !done.load(Ordering::SeqCst) {
            let snap = cell.snapshot();
            match snap.epoch() {
                0 => {
                    assert_eq!(
                        triples_of(&snap),
                        pre_swap_triples,
                        "pre-swap reader observed new triples"
                    );
                    if materialized_unpublished.load(Ordering::SeqCst) {
                        // The writer's private copy is fully materialized
                        // and we just proved the published store unchanged.
                        reader_sampled.store(true, Ordering::SeqCst);
                    }
                }
                1 => assert_eq!(
                    triples_of(&snap),
                    reference_triples,
                    "post-swap reader must see the complete materialization"
                ),
                other => panic!("unexpected epoch {other}"),
            }
        }
        assert!(
            reader_sampled.load(Ordering::SeqCst),
            "the reader never sampled while the materialization was pending"
        );
    });

    // The snapshot held across the entire run still sees the old world...
    assert_eq!(pre_swap.epoch(), 0);
    assert_eq!(triples_of(&pre_swap), pre_swap_triples);
    // ...and re-acquiring yields the complete materialization.
    let post_swap = cell.snapshot();
    assert_eq!(post_swap.epoch(), 1);
    assert_eq!(triples_of(&post_swap), reference_triples);
}

/// The same isolation property at the `ServingDataset` level, where the
/// dictionary is versioned along with the store.
#[test]
fn serving_dataset_isolates_readers_from_incremental_extends() {
    let loaded = lubm(1_500);
    let (dataset, _) =
        ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());
    let (old_snapshot, old_dictionary) = dataset.snapshot();
    let old_triples = triples_of(&old_snapshot);

    dataset
        .extend([Triple::iris(
            "http://snapshot.test/new-subject",
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            "http://snapshot.test/NewClass",
        )])
        .expect("extend succeeds");

    // The old pair is frozen: same triples, and the old dictionary still
    // decodes every one of them (it simply never heard of the new terms).
    assert_eq!(triples_of(&old_snapshot), old_triples);
    for triple in old_snapshot.iter_triples() {
        assert!(old_dictionary.decode_triple(triple).is_some());
    }
    assert!(old_dictionary
        .id_of(&inferray::Term::iri("http://snapshot.test/NewClass"))
        .is_none());

    // A re-acquired pair sees the delta and decodes the new terms.
    let (new_snapshot, new_dictionary) = dataset.snapshot();
    assert_eq!(new_snapshot.epoch(), old_snapshot.epoch() + 1);
    assert_eq!(new_snapshot.len(), old_triples.len() + 1);
    assert!(new_dictionary
        .id_of(&inferray::Term::iri("http://snapshot.test/NewClass"))
        .is_some());
}

/// The retraction counterpart: a reader holding a snapshot across a
/// delete–rederive publish (docs/maintenance.md) keeps the *larger*
/// pre-retraction triple set — shrinking stores must be as tear-free as
/// growing ones — while a re-acquired snapshot sees the shrunken epoch.
#[test]
fn serving_dataset_isolates_readers_from_retractions() {
    let loaded = lubm(1_500);
    let dictionary_view = loaded.dictionary.clone();
    let (dataset, _) =
        ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());

    // Pick an explicit rdf:type triple to retract, decoded via the loader's
    // dictionary so the test doesn't depend on generator internals.
    let victim = {
        let (snapshot, _) = dataset.snapshot();
        let type_id = dictionary_view
            .id_of(&inferray::Term::iri(
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
            ))
            .expect("rdf:type interned");
        let victim = snapshot
            .iter_triples()
            .find(|t| t.p == type_id)
            .map(|t| dictionary_view.decode_triple(t).expect("decodable"))
            .expect("LUBM asserts rdf:type triples");
        victim
    };

    let (old_snapshot, old_dictionary) = dataset.snapshot();
    let old_triples = triples_of(&old_snapshot);

    let (stats, published_epoch) = dataset.retract([victim.clone()]).expect("ungated retract");
    assert_eq!(stats.retracted_explicit, 1);
    assert!(stats.net_removed() >= 1);

    // The held pair is frozen at the pre-retraction epoch and still decodes
    // every identifier — including the retracted triple's, because the
    // dictionary is append-only.
    assert_eq!(triples_of(&old_snapshot), old_triples);
    for triple in old_snapshot.iter_triples() {
        assert!(old_dictionary.decode_triple(triple).is_some());
    }

    // A re-acquired pair sees the shrunken store, at exactly the epoch the
    // retraction reported publishing.
    let (new_snapshot, new_dictionary) = dataset.snapshot();
    assert_eq!(new_snapshot.epoch(), old_snapshot.epoch() + 1);
    assert_eq!(new_snapshot.epoch(), published_epoch);
    assert_eq!(new_snapshot.len(), old_triples.len() - stats.net_removed());
    assert!(new_dictionary.id_of(&victim.subject).is_some());
}

/// Readers sample consistent `(snapshot, dictionary)` pairs while a writer
/// interleaves extends and retractions; the final state equals the net of
/// all published updates and every intermediate snapshot decodes.
#[test]
fn concurrent_readers_survive_extend_retract_interleaving() {
    let loaded = lubm(800);
    let dataset = Arc::new(
        ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default()).0,
    );
    let (snapshot0, _) = dataset.snapshot();
    let baseline = snapshot0.len();
    let stop = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let reader_dataset = Arc::clone(&dataset);
        let stop_flag = &stop;
        let reader = scope.spawn(move || {
            let mut samples = 0usize;
            while !stop_flag.load(Ordering::Relaxed) {
                let (snapshot, dictionary) = reader_dataset.snapshot();
                for triple in snapshot.iter_triples().take(64) {
                    assert!(
                        dictionary.decode_triple(triple).is_some(),
                        "snapshot id not decodable by its paired dictionary"
                    );
                }
                samples += 1;
            }
            samples
        });

        // Each round asserts a fresh instance triple, then retracts it:
        // epochs 1..=20, net zero triples.
        for i in 0..10u32 {
            let triple = Triple::iris(
                format!("http://snapshot.test/churn{i}"),
                "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                "http://snapshot.test/Churn",
            );
            dataset.extend([triple.clone()]).expect("extend succeeds");
            let (stats, _) = dataset.retract([triple]).expect("ungated retract");
            assert_eq!(stats.retracted_explicit, 1);
        }
        stop.store(true, Ordering::Relaxed);
        assert!(reader.join().expect("reader thread") > 0);
    });

    assert_eq!(dataset.epoch(), 20);
    let (final_snapshot, _) = dataset.snapshot();
    assert_eq!(final_snapshot.len(), baseline, "churn nets to zero");
}

/// Batch queries served from a snapshot engine are answered against one
/// frozen epoch and are deterministic: the same batch gives byte-identical
/// solution sets before and after a concurrent publish, as long as the
/// engine's snapshot is the same.
#[test]
fn snapshot_query_engine_answers_are_immune_to_concurrent_publishes() {
    let loaded = lubm(2_000);
    let mut store = loaded.store;
    InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut store);
    let cell = SnapshotStore::new(store);
    let dictionary = Arc::new(loaded.dictionary);

    let engine = SnapshotQueryEngine::new(cell.snapshot(), Arc::clone(&dictionary));
    let batch: Vec<String> = vec![
        "PREFIX ub: <http://inferray.example.org/lubm/> \
         SELECT ?x WHERE { ?x a ub:Professor }"
            .into(),
        "SELECT DISTINCT ?c WHERE { ?x a ?c }".into(),
        "PREFIX ub: <http://inferray.example.org/lubm/> \
         SELECT ?s ?c WHERE { ?s ub:takesCourse ?c } LIMIT 50"
            .into(),
        "ASK { ?s ?p ?o }".into(),
    ];
    let before: Vec<_> = engine
        .execute_batch(&batch)
        .into_iter()
        .map(|r| r.expect("batch query parses"))
        .collect();

    // Publish ten new epochs behind the engine's back.
    for i in 0..10u64 {
        cell.update(|store| {
            store.add_triple(IdTriple::new(
                4_000_000_000 + i,
                inferray::model::ids::nth_property_id(2),
                4_000_000_100 + i,
            ));
        });
    }

    let after: Vec<_> = engine
        .execute_batch(&batch)
        .into_iter()
        .map(|r| r.expect("batch query parses"))
        .collect();
    assert_eq!(before, after, "a held engine must not observe publishes");
    assert_eq!(engine.epoch(), 0);
    assert_eq!(cell.epoch(), 10);

    // And a fresh engine over the new epoch sees the appended triples.
    let fresh = SnapshotQueryEngine::new(cell.snapshot(), Arc::clone(&dictionary));
    assert_eq!(fresh.epoch(), 10);
    assert_eq!(fresh.snapshot().len(), engine.snapshot().len() + 10);
}

/// Many readers over many epochs: every sampled snapshot is internally
/// consistent (its length matches its epoch's expected length), and the
/// final state is exactly the sum of all published updates.
#[test]
fn hammering_readers_and_writers_never_tear_a_snapshot() {
    let cell = Arc::new(SnapshotStore::new(TripleStore::new()));
    let p = inferray::model::ids::nth_property_id(0);
    const WRITES: u64 = 200;

    std::thread::scope(|scope| {
        let writer_cell = Arc::clone(&cell);
        scope.spawn(move || {
            for i in 0..WRITES {
                writer_cell.update(|store| {
                    store.add_triple(IdTriple::new(i, p, i));
                });
            }
        });
        for _ in 0..3 {
            let reader_cell = Arc::clone(&cell);
            scope.spawn(move || loop {
                let snap = reader_cell.snapshot();
                // Epoch k holds exactly k triples — a torn snapshot (some
                // triples of a half-finished update visible) breaks this.
                assert_eq!(snap.len() as u64, snap.epoch());
                if snap.epoch() == WRITES {
                    return;
                }
            });
        }
    });
    let dictionary = Arc::new(Dictionary::new());
    let engine = SnapshotQueryEngine::new(cell.snapshot(), dictionary);
    assert_eq!(engine.epoch(), WRITES);
    let all = engine
        .execute_sparql("SELECT ?s ?o WHERE { ?s ?p ?o }")
        .unwrap();
    assert_eq!(all.len() as u64, WRITES);
}
