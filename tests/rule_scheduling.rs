//! Scheduled-vs-full equivalence suite for the §4.3 rule-dependency
//! scheduler.
//!
//! The scheduling invariant: from iteration 2 on, a rule none of whose input
//! tables received new pairs in the previous iteration can only re-derive
//! duplicates, so skipping it must leave the materialization **byte
//! identical** — same property tables, same pair arrays — to firing every
//! rule of the ruleset on every iteration. This suite pins that invariant
//! for every fragment, for the parallel and sequential loops, for the
//! incremental (`materialize_delta`) path, and checks the scheduler actually
//! skips work on multi-iteration datasets.

use inferray::core::{InferrayReasoner, Materializer};
use inferray::datasets::LubmGenerator;
use inferray::dictionary::wellknown as wk;
use inferray::model::ids::nth_property_id;
use inferray::parser::loader::load_triples;
use inferray::rules::{analysis, Fragment, RuleId, Ruleset};
use inferray::store::TripleStore;
use inferray::{IdTriple, InferrayOptions, Triple};
use proptest::prelude::*;
use std::collections::HashMap;

/// Byte-level equality: same non-empty tables, same ⟨s,o⟩ pair arrays.
fn assert_byte_identical(expected: &TripleStore, actual: &TripleStore, label: &str) {
    let expected_props: Vec<u64> = expected.property_ids().collect();
    let actual_props: Vec<u64> = actual.property_ids().collect();
    assert_eq!(
        expected_props, actual_props,
        "{label}: property sets diverge"
    );
    for p in expected_props {
        assert_eq!(
            expected.table(p).unwrap().pairs(),
            actual.table(p).unwrap().pairs(),
            "{label}: table {p} diverges"
        );
    }
}

fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
    TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
}

/// A dataset exercising every rule family: class/property hierarchies,
/// domains and ranges, equivalences, sameAs chains, inverse, symmetric,
/// transitive, functional and inverse-functional properties.
fn mixed_dataset() -> Vec<(u64, u64, u64)> {
    let p = |n: usize| nth_property_id(800 + n);
    let (knows, kned_by, part_of, has_id, owns, married) = (p(0), p(1), p(2), p(3), p(4), p(5));
    let e = 9_700_000u64;
    vec![
        // Class hierarchy + instances.
        (e, wk::RDFS_SUB_CLASS_OF, e + 1),
        (e + 1, wk::RDFS_SUB_CLASS_OF, e + 2),
        (e + 2, wk::OWL_EQUIVALENT_CLASS, e + 3),
        (e + 10, wk::RDF_TYPE, e),
        (e + 11, wk::RDF_TYPE, e + 1),
        // Property hierarchy, domain/range.
        (knows, wk::RDFS_SUB_PROPERTY_OF, owns),
        (owns, wk::RDFS_DOMAIN, e),
        (owns, wk::RDFS_RANGE, e + 1),
        (knows, wk::OWL_INVERSE_OF, kned_by),
        (married, wk::RDF_TYPE, wk::OWL_SYMMETRIC_PROPERTY),
        (part_of, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
        (has_id, wk::RDF_TYPE, wk::OWL_INVERSE_FUNCTIONAL_PROPERTY),
        (owns, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
        // Instance data feeding the above.
        (e + 10, knows, e + 11),
        (e + 10, married, e + 12),
        (e + 12, part_of, e + 13),
        (e + 13, part_of, e + 14),
        (e + 10, has_id, e + 20),
        (e + 15, has_id, e + 20),
        (e + 16, owns, e + 17),
        (e + 16, owns, e + 18),
        // sameAs chain.
        (e + 10, wk::OWL_SAME_AS, e + 30),
        (e + 30, wk::OWL_SAME_AS, e + 31),
    ]
}

/// A mixed rule program for the analyzer path: two recognized builtins
/// (dispatched to their hand-written executors) plus four custom rules the
/// generic executor runs, including a symmetric-transitive pair that takes
/// several iterations to close.
fn custom_program() -> String {
    format!(
        "{}@prefix ex: <http://ex/> .\n{}\n{}\n\
         rule gp: ?x ex:parent ?y, ?y ex:parent ?z => ?x ex:grandparent ?z .\n\
         rule gc: ?x ex:grandparent ?y => ?y ex:grandchild ?x .\n\
         rule near-sym: ?x ex:near ?y => ?y ex:near ?x .\n\
         rule near-trans: ?x ex:near ?y, ?y ex:near ?z => ?x ex:near ?z .\n",
        analysis::builtin::PRELUDE,
        analysis::builtin::rule_text(RuleId::CaxSco),
        analysis::builtin::rule_text(RuleId::ScmSco),
    )
}

/// Instance data feeding both halves of [`custom_program`]: a parent chain
/// and near edges for the custom rules, a subclass chain with a typed
/// instance for the builtins.
fn custom_data() -> Vec<Triple> {
    const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
    const SUB_CLASS: &str = "http://www.w3.org/2000/01/rdf-schema#subClassOf";
    let ex = |n: &str| format!("http://ex/{n}");
    vec![
        Triple::iris(ex("a"), ex("parent"), ex("b")),
        Triple::iris(ex("b"), ex("parent"), ex("c")),
        Triple::iris(ex("c"), ex("parent"), ex("d")),
        Triple::iris(ex("e"), ex("parent"), ex("c")),
        Triple::iris(ex("n1"), ex("near"), ex("n2")),
        Triple::iris(ex("n2"), ex("near"), ex("n3")),
        Triple::iris(ex("C1"), SUB_CLASS, ex("C2")),
        Triple::iris(ex("C2"), SUB_CLASS, ex("C3")),
        Triple::iris(ex("a"), RDF_TYPE, ex("C1")),
    ]
}

/// Loads `data`, compiles `program` against the same dictionary (applying
/// any identifier promotions the rule constants caused), and returns the
/// still-explicit store with the analyzer-built ruleset.
fn load_with_rules(program: &str, data: &[Triple]) -> (TripleStore, Ruleset) {
    let loaded = load_triples(data.iter()).expect("data is valid");
    let mut dictionary = loaded.dictionary;
    let mut store = loaded.store;
    let ruleset = analysis::load_ruleset(program, &mut dictionary)
        .expect("the program analyzes without errors");
    if dictionary.has_pending_promotions() {
        let remap: HashMap<u64, u64> = dictionary.take_promotions().into_iter().collect();
        store.remap_ids(&remap);
        store.finalize();
    }
    (store, ruleset)
}

#[test]
fn scheduled_equals_full_on_an_analyzer_loaded_ruleset() {
    let program = custom_program();
    let data = custom_data();
    for parallel in [true, false] {
        let base = if parallel {
            InferrayOptions::default()
        } else {
            InferrayOptions::sequential()
        };
        let (mut scheduled_store, ruleset) = load_with_rules(&program, &data);
        let mut scheduled = InferrayReasoner::with_ruleset(ruleset.clone(), base);
        let stats = scheduled.materialize(&mut scheduled_store);
        assert!(
            stats.inferred_triples() > 0 && stats.iterations >= 2,
            "custom program must derive across multiple iterations \
             ({} inferred, {} iterations)",
            stats.inferred_triples(),
            stats.iterations
        );

        let (mut full_store, _) = load_with_rules(&program, &data);
        let full_options = InferrayOptions {
            schedule_rules: false,
            ..base
        };
        InferrayReasoner::with_ruleset(ruleset, full_options).materialize(&mut full_store);
        assert_byte_identical(
            &full_store,
            &scheduled_store,
            &format!("analyzer-loaded ruleset (parallel={parallel})"),
        );
    }
}

#[test]
fn scheduled_equals_full_on_every_fragment() {
    let triples = mixed_dataset();
    for fragment in Fragment::ALL {
        for parallel in [true, false] {
            let base = if parallel {
                InferrayOptions::default()
            } else {
                InferrayOptions::sequential()
            };
            let mut scheduled_store = store(&triples);
            let mut full_store = store(&triples);
            let mut scheduled = InferrayReasoner::with_options(fragment, base);
            scheduled.materialize(&mut scheduled_store);
            let full_options = InferrayOptions {
                schedule_rules: false,
                ..base
            };
            InferrayReasoner::with_options(fragment, full_options).materialize(&mut full_store);
            assert_byte_identical(
                &full_store,
                &scheduled_store,
                &format!("{fragment} (parallel={parallel})"),
            );
        }
    }
}

#[test]
fn scheduler_skips_rules_on_a_multi_iteration_dataset() {
    let triples = mixed_dataset();
    for fragment in Fragment::ALL {
        let mut data = store(&triples);
        let mut reasoner = InferrayReasoner::new(fragment);
        let stats = reasoner.materialize(&mut data);
        let profile = reasoner.last_iteration_profile();
        assert!(
            stats.iterations >= 2,
            "{fragment}: needs multiple iterations"
        );
        assert_eq!(
            profile.samples[0].rules_skipped, 0,
            "{fragment}: iteration 1 fires the full ruleset"
        );
        assert!(
            profile.total_rules_skipped() > 0,
            "{fragment}: the scheduler skipped nothing"
        );
    }
}

#[test]
fn scheduled_equals_full_on_lubm() {
    let dataset = LubmGenerator::new(8_000).with_seed(7).generate();
    let loaded = load_triples(dataset.triples.iter()).expect("generated dataset is valid");
    for fragment in [Fragment::RdfsDefault, Fragment::RdfsPlus] {
        let mut scheduled_store = loaded.store.clone();
        let mut full_store = loaded.store.clone();
        let mut scheduled = InferrayReasoner::new(fragment);
        scheduled.materialize(&mut scheduled_store);
        InferrayReasoner::with_options(fragment, InferrayOptions::unscheduled())
            .materialize(&mut full_store);
        assert_byte_identical(&full_store, &scheduled_store, &format!("LUBM {fragment}"));
        assert!(
            scheduled.last_iteration_profile().total_rules_skipped() > 0,
            "LUBM {fragment}: no rule firing saved"
        );
    }
}

#[test]
fn incremental_path_is_identical_with_and_without_scheduling() {
    let triples = mixed_dataset();
    let p = |n: usize| nth_property_id(800 + n);
    let e = 9_700_000u64;
    let delta = [
        IdTriple::new(e + 40, wk::RDF_TYPE, e),
        IdTriple::new(e + 40, p(0), e + 10),
        IdTriple::new(e + 14, p(2), e + 41),
        IdTriple::new(e + 31, wk::OWL_SAME_AS, e + 42),
    ];
    for fragment in Fragment::ALL {
        // Scheduled incremental run.
        let mut scheduled_store = store(&triples);
        let mut scheduled = InferrayReasoner::new(fragment);
        scheduled.materialize(&mut scheduled_store);
        scheduled.materialize_delta(&mut scheduled_store, delta);

        // Unscheduled incremental run.
        let mut full_store = store(&triples);
        let mut full = InferrayReasoner::with_options(fragment, InferrayOptions::unscheduled());
        full.materialize(&mut full_store);
        full.materialize_delta(&mut full_store, delta);
        assert_byte_identical(&full_store, &scheduled_store, &format!("delta {fragment}"));

        // Both equal re-materializing the extended input from scratch.
        let mut batch = store(&triples);
        for t in delta {
            batch.add_triple(t);
        }
        batch.finalize();
        InferrayReasoner::new(fragment).materialize(&mut batch);
        assert_byte_identical(
            &batch,
            &scheduled_store,
            &format!("delta-vs-batch {fragment}"),
        );
    }
}

// ---------------------------------------------------------------------------
// Property-based: randomly generated safe rules always compile to
// scheduler-accepted signatures, and scheduling never skips a firing that
// changes the store.
// ---------------------------------------------------------------------------

/// A random rule program that is *safe by construction*: each rule's body is
/// a variable chain `?v0 … ?vN` (connected, so no unbound cross products),
/// the head's variables are drawn from that chain (range-restricted), and
/// head predicates come from a pool disjoint from the body pool (no rule
/// ever repeats a body atom, so none is dead). Predicate positions mix
/// constants with variables to exercise the whole-store fallback signature.
fn arbitrary_safe_program() -> impl Strategy<Value = String> {
    let rule = (
        1usize..3,
        prop::collection::vec(0u8..5, 2),
        0u8..3,
        0u8..3,
        0u8..3,
    )
        .prop_map(|(body_len, preds, head_pred, head_s, head_o)| {
            let atoms: Vec<String> = (0..body_len)
                .map(|k| {
                    let pred = match preds[k] {
                        4 => format!("?p{k}"),
                        n => format!("ex:p{n}"),
                    };
                    format!("?v{k} {pred} ?v{}", k + 1)
                })
                .collect();
            format!(
                "{} => ?v{} ex:h{head_pred} ?v{} .",
                atoms.join(", "),
                head_s as usize % (body_len + 1),
                head_o as usize % (body_len + 1),
            )
        });
    prop::collection::vec(rule, 1..4).prop_map(|rules| {
        let mut out = String::from("@prefix ex: <http://ex/> .\n");
        for (i, r) in rules.iter().enumerate() {
            out.push_str(&format!("rule r{i}: {r}\n"));
        }
        out
    })
}

/// Random instance data over the same vocabulary the generated rules use.
fn arbitrary_instance_data() -> impl Strategy<Value = Vec<Triple>> {
    prop::collection::vec(
        (0u8..6, 0u8..4, 0u8..6).prop_map(|(s, p, o)| {
            Triple::iris(
                format!("http://ex/i{s}"),
                format!("http://ex/p{p}"),
                format!("http://ex/i{o}"),
            )
        }),
        1..20,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn random_safe_rules_always_compile_and_schedule_exactly(
        program in arbitrary_safe_program(),
        data in arbitrary_instance_data(),
    ) {
        // Safety by construction: the analyzer must accept every generated
        // program and derive signatures the scheduler can run.
        let analysis = analysis::analyze(&program);
        prop_assert!(
            !analysis.has_errors(),
            "generated program rejected:\n{program}\n{:?}",
            analysis.diagnostics
        );

        let run = |schedule: bool| {
            let (mut store, ruleset) = load_with_rules(&program, &data);
            let options = if schedule {
                InferrayOptions::default()
            } else {
                InferrayOptions::unscheduled()
            };
            InferrayReasoner::with_ruleset(ruleset, options).materialize(&mut store);
            store
        };
        // Scheduling must not skip any firing that changes the store.
        assert_byte_identical(&run(false), &run(true), "random safe rules");
    }
}
