//! Incremental shape validation: after any sequence of extends and
//! retractions, chaining `validate_delta` from the previous report must give
//! exactly the report a full `validate` of the new store produces. This is
//! the contract the serving write gate relies on — the delta path is the
//! only one that runs under the writer lock.

use inferray::dictionary::Dictionary;
use inferray::model::{IdTriple, Triple};
use inferray::rules::shapes::{self, CompiledShapes, ValidationReport};
use inferray::store::TripleStore;
use proptest::prelude::*;
use std::collections::BTreeSet;

const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// A shape program exercising every constraint kind plus the `node`
/// dependency closure that makes dirty-node tracking non-trivial.
const SHAPES: &str = "\
shape Person targets class <urn:C0> {
  <urn:p0> count [1..2] class <urn:C1> ;
  <urn:p1> node Thing ;
} .
shape Thing targets class <urn:C1> {
  <urn:p2> count [0..1] in ( <urn:v0> <urn:v1> ) ;
} .
shape Linked targets subjects-of <urn:p2> {
  <urn:p0> count [0..3] ;
} .";

/// The closed universe of triples the property test draws from: typed
/// subjects, `p0`/`p1` links between them, and `p2` values.
fn candidates() -> Vec<Triple> {
    let mut pool = Vec::new();
    for i in 0..4 {
        let s = format!("urn:s{i}");
        for c in 0..2 {
            pool.push(Triple::iris(&s, TYPE, format!("urn:C{c}")));
        }
        for j in 0..3 {
            pool.push(Triple::iris(&s, "urn:p0", format!("urn:s{j}")));
            pool.push(Triple::iris(&s, "urn:p1", format!("urn:s{j}")));
            pool.push(Triple::iris(&s, "urn:p2", format!("urn:v{j}")));
        }
    }
    pool
}

/// Encodes the whole candidate pool once so every store in a test case
/// shares one id space.
fn encode_pool() -> (Vec<IdTriple>, Dictionary) {
    let mut dict = Dictionary::new();
    let encoded = candidates()
        .iter()
        .map(|t| dict.encode_triple(t).expect("pool triple encodes"))
        .collect();
    (encoded, dict)
}

fn build(triples: &BTreeSet<IdTriple>) -> TripleStore {
    let mut store = TripleStore::from_triples(triples.iter().copied());
    store.ensure_all_os();
    store
}

fn compile(dict: &Dictionary) -> CompiledShapes {
    let analysis = shapes::analyze(SHAPES);
    assert!(!analysis.has_errors(), "{:#?}", analysis.diagnostics);
    analysis.compile(dict).expect("shape program compiles")
}

fn full(shapes: &CompiledShapes, store: &TripleStore, dict: &Dictionary) -> ValidationReport {
    shapes::validate(shapes, store, dict, inferray_parallel::global())
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Extend(IdTriple),
    Retract(IdTriple),
}

/// Applies `op` the way the serving path does: mutate a clone of the old
/// store in place (add + finalize, or retract) and refresh the ⟨o,s⟩ caches.
fn apply(old: &TripleStore, current: &mut BTreeSet<IdTriple>, op: Op) -> TripleStore {
    let mut new = old.clone();
    match op {
        Op::Extend(t) => {
            current.insert(t);
            new.add_triple(t);
            new.finalize();
        }
        Op::Retract(t) => {
            current.remove(&t);
            new.retract([t]);
        }
    }
    new.ensure_all_os();
    new
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any initial dataset and any extend/retract sequence, the chained
    /// delta reports equal full re-validation at every step.
    #[test]
    fn delta_validation_equals_full_revalidation(
        initial in prop::collection::btree_set(0usize..44, 0..16),
        ops in prop::collection::vec((any::<bool>(), 0usize..44), 1..12),
    ) {
        let (pool, dict) = encode_pool();
        let compiled = compile(&dict);

        let mut current: BTreeSet<IdTriple> =
            initial.iter().map(|&i| pool[i % pool.len()]).collect();
        let mut store = build(&current);
        let mut report = full(&compiled, &store, &dict);

        for &(extend, i) in &ops {
            let t = pool[i % pool.len()];
            let op = if extend { Op::Extend(t) } else { Op::Retract(t) };
            let new = apply(&store, &mut current, op);

            let delta = shapes::validate_delta(&compiled, &store, &new, &dict, &report);
            let reference = full(&compiled, &new, &dict);
            prop_assert_eq!(
                &delta.violations, &reference.violations,
                "divergence after {:?} (store: {} triples)", op, new.len()
            );
            prop_assert_eq!(delta.conforms(), reference.conforms());
            // The in-place mutation really produced the set we track.
            prop_assert_eq!(new.len(), current.len());

            store = new;
            report = delta;
        }
    }
}

#[test]
fn retracting_the_offending_triple_updates_the_report() {
    let (pool, dict) = encode_pool();
    let compiled = compile(&dict);
    let id = |iri: &str| dict.id_of_iri(iri).unwrap();

    // s0 is a Person whose only p0 points at a non-C1 node: class violation.
    let typed = IdTriple::new(id("urn:s0"), id(TYPE), id("urn:C0"));
    let bad = IdTriple::new(id("urn:s0"), id("urn:p0"), id("urn:s2"));
    assert!(pool.contains(&typed) && pool.contains(&bad));

    let mut current: BTreeSet<IdTriple> = [typed, bad].into_iter().collect();
    let store = build(&current);
    let report = full(&compiled, &store, &dict);
    assert!(!report.conforms(), "{:?}", report.violations);

    let new = apply(&store, &mut current, Op::Retract(bad));
    let delta = shapes::validate_delta(&compiled, &store, &new, &dict, &report);
    let reference = full(&compiled, &new, &dict);
    assert_eq!(delta.violations, reference.violations);
    // With no p0 at all, Person's count [1..2] fires instead — the reports
    // stay equal and the store stays non-conforming.
    assert!(!delta.conforms());
}

#[test]
fn irrelevant_changes_recheck_only_the_dirty_endpoints() {
    let (pool, dict) = encode_pool();
    let compiled = compile(&dict);
    let id = |iri: &str| dict.id_of_iri(iri).unwrap();

    let typed = IdTriple::new(id("urn:s3"), id(TYPE), id("urn:C1"));
    let mut current: BTreeSet<IdTriple> = [typed].into_iter().collect();
    let store = build(&current);
    let report = full(&compiled, &store, &dict);
    assert!(report.conforms());

    // Adding an unrelated p1 link between untyped nodes dirties only its two
    // endpoints; neither is a focus of any shape, so no focus re-checks run.
    let link = IdTriple::new(id("urn:s1"), id("urn:p1"), id("urn:s2"));
    assert!(pool.contains(&link));
    let new = apply(&store, &mut current, Op::Extend(link));
    let delta = shapes::validate_delta(&compiled, &store, &new, &dict, &report);
    assert_eq!(delta.focus_checks, 0, "{delta:?}");
    assert!(delta.conforms());
    assert_eq!(delta.violations, full(&compiled, &new, &dict).violations);
}
