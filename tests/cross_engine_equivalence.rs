//! Cross-engine equivalence: the soundness/completeness cross-check.
//!
//! Inferray (sort-merge joins over sorted arrays, dedicated closure stage)
//! and the two baselines (hash-join semi-naive datalog, naive full
//! re-evaluation) implement the same rulesets with entirely independent
//! machinery. For every generated workload and every fragment, all three
//! must produce exactly the same set of triples.

use inferray::baselines::{HashJoinReasoner, NaiveIterativeReasoner};
use inferray::datasets::{
    subclass_chain, wikipedia_like, wordnet_like, yago_like, BsbmGenerator, LubmGenerator,
};
use inferray::parser::load_triples;
use inferray::{Fragment, IdTriple, InferrayReasoner, Materializer, Triple, TripleStore};
use std::collections::BTreeSet;

fn materialize(engine: &mut dyn Materializer, base: &TripleStore) -> BTreeSet<IdTriple> {
    let mut store = base.clone();
    engine.materialize(&mut store);
    store.iter_triples().collect()
}

fn assert_all_engines_agree(triples: &[Triple], fragment: Fragment, label: &str) {
    let loaded = load_triples(triples.iter()).expect("valid dataset");
    let inferray = materialize(&mut InferrayReasoner::new(fragment), &loaded.store);
    let hash_join = materialize(&mut HashJoinReasoner::new(fragment), &loaded.store);
    assert_eq!(
        inferray,
        hash_join,
        "{label}/{fragment}: inferray vs hash-join disagree \
         (inferray {} triples, hash-join {})",
        inferray.len(),
        hash_join.len()
    );
    let naive = materialize(&mut NaiveIterativeReasoner::new(fragment), &loaded.store);
    assert_eq!(
        hash_join, naive,
        "{label}/{fragment}: hash-join vs naive disagree"
    );
    // Materialization must contain the input.
    let input: BTreeSet<IdTriple> = loaded.store.iter_triples().collect();
    assert!(input.is_subset(&inferray), "{label}: input not preserved");
}

#[test]
fn chains_agree_across_all_fragments() {
    let triples = subclass_chain(60);
    for fragment in [
        Fragment::RhoDf,
        Fragment::RdfsDefault,
        Fragment::RdfsFull,
        Fragment::RdfsPlus,
        Fragment::RdfsPlusFull,
    ] {
        assert_all_engines_agree(&triples, fragment, "chain-60");
    }
}

#[test]
fn bsbm_like_dataset_agrees_on_rdfs_fragments() {
    let dataset = BsbmGenerator::new(3_000).generate();
    for fragment in [Fragment::RhoDf, Fragment::RdfsDefault, Fragment::RdfsFull] {
        assert_all_engines_agree(&dataset.triples, fragment, &dataset.label);
    }
}

#[test]
fn lubm_like_dataset_agrees_on_rdfs_plus() {
    let dataset = LubmGenerator::new(3_000).generate();
    assert_all_engines_agree(&dataset.triples, Fragment::RdfsPlus, &dataset.label);
}

#[test]
fn lubm_like_dataset_agrees_on_rdfs_plus_full() {
    let dataset = LubmGenerator::new(1_500).generate();
    assert_all_engines_agree(&dataset.triples, Fragment::RdfsPlusFull, &dataset.label);
}

#[test]
fn taxonomy_shaped_datasets_agree() {
    let wikipedia = wikipedia_like(120, 5);
    assert_all_engines_agree(&wikipedia.triples, Fragment::RdfsDefault, &wikipedia.label);

    let yago = yago_like(150, 8, 6);
    assert_all_engines_agree(&yago.triples, Fragment::RdfsFull, &yago.label);

    let wordnet = wordnet_like(8, 20, 7);
    assert_all_engines_agree(&wordnet.triples, Fragment::RhoDf, &wordnet.label);
}

#[test]
fn rdfs_plus_on_taxonomies_with_owl_free_data_matches_rdfs() {
    // On datasets without owl: constructs, RDFS-Plus must not derive more
    // than RDFS-default plus the equivalence/sameAs axioms it cannot trigger.
    let dataset = wikipedia_like(80, 9);
    let loaded = load_triples(dataset.triples.iter()).unwrap();
    let rdfs = materialize(
        &mut InferrayReasoner::new(Fragment::RdfsDefault),
        &loaded.store,
    );
    let plus = materialize(
        &mut InferrayReasoner::new(Fragment::RdfsPlus),
        &loaded.store,
    );
    assert_eq!(rdfs, plus, "no owl constructs ⇒ identical materializations");
}
