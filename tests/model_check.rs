//! Exhaustive model checking of the repo's three hand-rolled concurrency
//! protocols, using the `interleave` shim (a minimal loom-style
//! deterministic-interleaving explorer).
//!
//! Each protocol is restated over tracked primitives in the exact shape the
//! production code uses — the checker then enumerates **every**
//! sequentially-consistent interleaving of the tracked operations (and, via
//! `interleave::nondet`, every fault-injection choice) and asserts the
//! protocol invariant in each. Every positive test has a seeded-bug twin
//! that inverts one ordering edge and proves the checker catches it.
//!
//! The models are deliberately small — one writer, one reader — because the
//! schedule space grows factorially with threads × yield points and the
//! invariants under test are *ordering* properties of a single write path
//! (writer-writer exclusion is the mutex's own guarantee, separately checked
//! by the shim's unit tests).
//!
//! The four interleaving spaces (ISSUE 7 + ISSUE 8 acceptance criteria):
//!
//! 1. **Snapshot publish** (`SnapshotStore` + `ServingDataset`): the
//!    dictionary is published *before* the store pointer swap, so no reader
//!    ever observes a store whose dictionary lags it.
//! 2. **WAL ordering** (`DurableDataset`): no publish before fsync success;
//!    an append/sync failure lands in read-only with the published epoch
//!    untouched — never a torn publish.
//! 3. **Retraction cache window** (`TripleStore::remove_pairs`): a published
//!    table's ⟨o,s⟩ cache is always coherent with its pairs — removal
//!    invalidates and the publish path rebuilds before the swap.
//! 4. **Lock-free snapshot handoff** (`SnapshotStore::snapshot`): the
//!    generation-stamped two-slot protocol — a reader completes in a
//!    bounded number of lock-free steps no matter where a publishing
//!    writer is frozen (never blocks behind a publish), and never
//!    resolves ids against a lagging dictionary.

use interleave::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use interleave::sync::{Arc, Mutex, RwLock};
use interleave::{model, model_expect_violation, nondet, thread};

// ---------------------------------------------------------------------------
// 1. Snapshot publish: dictionary never lags the published store.
// ---------------------------------------------------------------------------

/// The serving layer's publication order: under the writer mutex, the
/// updated dictionary is swapped in *before* the store snapshot. A reader
/// that grabs snapshot epoch `e` may therefore always resolve every
/// identifier the epoch-`e` store references.
fn snapshot_publish_model(dictionary_first: bool) {
    // (epoch, min dictionary version the epoch's identifiers need).
    let cell = Arc::new(RwLock::new((0u64, 0u64)));
    let dictionary = Arc::new(AtomicU64::new(0));
    let writer_mutex = Arc::new(Mutex::new(()));

    let writer = {
        let cell = Arc::clone(&cell);
        let dictionary = Arc::clone(&dictionary);
        thread::spawn(move || {
            let guard = writer_mutex.lock();
            let (epoch, _) = *cell.read();
            let next = epoch + 1;
            if dictionary_first {
                dictionary.store(next, Ordering::SeqCst);
                *cell.write() = (next, next);
            } else {
                // Seeded bug: store visible before its dictionary.
                *cell.write() = (next, next);
                dictionary.store(next, Ordering::SeqCst);
            }
            drop(guard);
        })
    };

    let reader = {
        let cell = Arc::clone(&cell);
        let dictionary = Arc::clone(&dictionary);
        thread::spawn(move || {
            let (_, needs) = *cell.read();
            let have = dictionary.load(Ordering::SeqCst);
            assert!(
                have >= needs,
                "reader resolved store ids against a lagging dictionary \
                 (store needs dictionary version {needs}, published is {have})"
            );
        })
    };

    writer.join();
    reader.join();
    // Quiescent state: the epoch landed and the dictionary caught up.
    let (epoch, needs) = *cell.read();
    assert_eq!(epoch, 1);
    assert!(dictionary.load(Ordering::SeqCst) >= needs);
}

#[test]
fn snapshot_publish_dictionary_never_lags() {
    let report = model(|| snapshot_publish_model(true));
    assert!(
        report.schedules >= 10,
        "expected a non-trivial interleaving space, got {}",
        report.schedules
    );
}

#[test]
fn snapshot_publish_seeded_store_first_bug_is_caught() {
    let violation = model_expect_violation(|| snapshot_publish_model(false));
    assert!(violation.contains("lagging dictionary"), "got: {violation}");
}

// ---------------------------------------------------------------------------
// 2. WAL ordering: fsync success happens-before publish; failure → read-only.
// ---------------------------------------------------------------------------

/// The durable write path under the persist state mutex: append+fsync the
/// WAL record, and only on success apply + publish the next epoch. A sync
/// failure flips read-only and leaves the published epoch untouched.
/// `fsync_first == false` seeds the torn-publish bug (publish, then sync).
fn wal_ordering_model(fsync_first: bool) {
    let synced = Arc::new(AtomicU64::new(0)); // highest seq durably on disk
    let published = Arc::new(AtomicU64::new(0)); // highest epoch readers see
    let read_only = Arc::new(AtomicBool::new(false));
    let state_mutex = Arc::new(Mutex::new(()));

    let writer = {
        let synced = Arc::clone(&synced);
        let published = Arc::clone(&published);
        let read_only = Arc::clone(&read_only);
        thread::spawn(move || {
            let guard = state_mutex.lock();
            let seq = published.load(Ordering::SeqCst) + 1;
            // Explored both ways in every schedule context: the backend
            // accepts the record, or fails the append/fsync.
            let sync_fails = nondet(2) == 1;
            if fsync_first {
                if sync_fails {
                    read_only.store(true, Ordering::SeqCst);
                } else {
                    synced.store(seq, Ordering::SeqCst);
                    published.store(seq, Ordering::SeqCst);
                }
            } else {
                // Seeded bug: acknowledge to readers before durability.
                published.store(seq, Ordering::SeqCst);
                if sync_fails {
                    read_only.store(true, Ordering::SeqCst);
                } else {
                    synced.store(seq, Ordering::SeqCst);
                }
            }
            drop(guard);
        })
    };

    let observer = {
        let synced = Arc::clone(&synced);
        let published = Arc::clone(&published);
        thread::spawn(move || {
            // Read `published` first: `synced` only grows, so any published
            // epoch must already be durable when observed in this order.
            let p = published.load(Ordering::SeqCst);
            let s = synced.load(Ordering::SeqCst);
            assert!(
                s >= p,
                "torn publish: epoch {p} visible to readers but only seq {s} is synced"
            );
        })
    };

    writer.join();
    observer.join();
    // Crash-consistency at quiescence, under both fault branches: what
    // readers were promised never exceeds what recovery would replay, and
    // a failed append degrades to read-only with the epoch untouched.
    let p = published.load(Ordering::SeqCst);
    assert!(
        synced.load(Ordering::SeqCst) >= p,
        "acknowledged epoch would be lost by recovery"
    );
    if read_only.load(Ordering::SeqCst) {
        assert_eq!(p, 0, "failed append must not advance the published epoch");
    }
}

#[test]
fn wal_publish_never_precedes_fsync() {
    let report = model(|| wal_ordering_model(true));
    assert!(
        report.schedules >= 20,
        "expected schedules × fault choices, got {}",
        report.schedules
    );
}

#[test]
fn wal_seeded_publish_before_fsync_bug_is_caught() {
    let violation = model_expect_violation(|| wal_ordering_model(false));
    assert!(
        violation.contains("torn publish")
            || violation.contains("lost by recovery")
            || violation.contains("must not advance"),
        "got: {violation}"
    );
}

// ---------------------------------------------------------------------------
// 3. Retraction: the published ⟨o,s⟩ cache is never stale.
// ---------------------------------------------------------------------------

/// A published property table: `version` stands for the ⟨s,o⟩ pair content,
/// `os_cache` for the object-sorted mirror tagged with the version it was
/// derived from. `TripleStore::remove_pairs` drops the cache whenever pairs
/// changed; the publish path (`ensure_all_os`) rebuilds it before the swap.
#[derive(Clone, Copy)]
struct PublishedTable {
    version: u64,
    os_cache: Option<u64>,
}

fn retract_cache_model(invalidate_on_remove: bool) {
    let cell = Arc::new(RwLock::new(PublishedTable {
        version: 0,
        os_cache: Some(0),
    }));
    let writer_mutex = Arc::new(Mutex::new(()));

    let retractor = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            let guard = writer_mutex.lock();
            // Clone-mutate-publish on a private copy, as SnapshotStore does.
            let mut next = *cell.read();
            next.version += 1; // remove_pairs: the ⟨s,o⟩ pairs changed
            if invalidate_on_remove {
                next.os_cache = None; // invalidate_os_cache()
                next.os_cache = Some(next.version); // ensure_all_os() pre-publish
            }
            // Seeded bug: cache kept across the mutation when false.
            *cell.write() = next;
            drop(guard);
        })
    };

    let reader = {
        let cell = Arc::clone(&cell);
        thread::spawn(move || {
            let seen = *cell.read();
            if let Some(derived_from) = seen.os_cache {
                assert_eq!(
                    derived_from, seen.version,
                    "reader served a stale ⟨o,s⟩ cache (pairs v{}, cache v{derived_from})",
                    seen.version
                );
            }
        })
    };

    retractor.join();
    reader.join();
    let last = *cell.read();
    assert_eq!(last.version, 1);
    if let Some(derived_from) = last.os_cache {
        assert_eq!(derived_from, last.version);
    }
}

#[test]
fn retract_never_publishes_a_stale_os_cache() {
    let report = model(|| retract_cache_model(true));
    assert!(
        report.schedules >= 10,
        "expected a non-trivial interleaving space, got {}",
        report.schedules
    );
}

#[test]
fn retract_seeded_missing_invalidation_bug_is_caught() {
    let violation = model_expect_violation(|| retract_cache_model(false));
    assert!(violation.contains("stale ⟨o,s⟩ cache"), "got: {violation}");
}

// ---------------------------------------------------------------------------
// 4. Lock-free snapshot handoff: readers never block behind a publish.
// ---------------------------------------------------------------------------

/// The generation-stamped two-slot handoff of `SnapshotStore` (ISSUE 8),
/// restated over tracked primitives. A slot's content is one word (the
/// snapshot epoch — in production the slot mutex makes the `Arc` swap
/// atomic, so the cell can never tear; what the model pins down is the
/// *ordering*). The writer publishes epochs 1 and 2 so the second install
/// re-targets the slot a stale reader may still be examining — the
/// wrap-around case the stamp validation exists for. Install order per
/// publish: dictionary → stamp odd → slot word → stamp even → active index.
///
/// The reader is the acquisition loop of `SnapshotStore::snapshot` with a
/// **hard attempt bound**: at most one of the two publishes can disturb
/// the slot a reader sampled, so two attempts must suffice in *every*
/// interleaving — exhausting them would mean a reader can be held up by a
/// publishing writer, exactly the blocking the slot protocol removes.
///
/// With `dictionary_first == false` the seeded bug publishes the snapshot
/// before the dictionary that decodes its identifiers — the checker must
/// find the interleaving where a reader resolves against the stale
/// dictionary.
fn lock_free_handoff_model(dictionary_first: bool) {
    const SLOTS: usize = 2;
    // slot → (generation stamp, content word); epoch 0 stable in slot 0.
    // The content word is the snapshot's epoch; epoch ≥ 1 needs dictionary
    // version 1 (epoch 2 mints no new identifiers, as a retraction would).
    let slots: Arc<Vec<(AtomicU64, AtomicU64)>> = Arc::new(
        (0..SLOTS)
            .map(|_| (AtomicU64::new(0), AtomicU64::new(0)))
            .collect(),
    );
    let active = Arc::new(AtomicUsize::new(0));
    let dictionary = Arc::new(AtomicU64::new(0));

    let writer = {
        let slots = Arc::clone(&slots);
        let active = Arc::clone(&active);
        let dictionary = Arc::clone(&dictionary);
        thread::spawn(move || {
            for epoch in 1u64..=2 {
                if epoch == 1 && dictionary_first {
                    // The dictionary that epoch's identifiers need, first.
                    dictionary.store(1, Ordering::SeqCst);
                }
                // Publish e lands in slot e % SLOTS (the writer mutex makes
                // the target deterministic; keeping the computation local
                // trims the schedule space without changing the protocol).
                let target = epoch as usize % SLOTS;
                let (stamp, word) = &slots[target];
                // This slot's stamp history: two bumps per prior install.
                let s = 2 * ((epoch - 1) / SLOTS as u64);
                stamp.store(s + 1, Ordering::SeqCst); // odd: mid-install
                word.store(epoch, Ordering::SeqCst);
                stamp.store(s + 2, Ordering::SeqCst); // even: stable
                active.store(target, Ordering::SeqCst);
                if epoch == 1 && !dictionary_first {
                    // Seeded bug: snapshot visible before its dictionary.
                    dictionary.store(1, Ordering::SeqCst);
                }
            }
        })
    };

    // The reader runs on the model's root thread (keeping the interleaving
    // space two-way): the acquisition loop of `SnapshotStore::snapshot`.
    let mut acquired = None;
    for _attempt in 0..2 {
        let idx = active.load(Ordering::SeqCst);
        let (stamp, word) = &slots[idx % SLOTS];
        let s1 = stamp.load(Ordering::SeqCst);
        if s1 % 2 != 0 {
            continue; // writer mid-install of this slot: re-sample
        }
        let epoch = word.load(Ordering::SeqCst);
        if stamp.load(Ordering::SeqCst) != s1 {
            continue; // slot was re-targeted under us: re-sample
        }
        let have = dictionary.load(Ordering::SeqCst);
        let needs = epoch.min(1);
        assert!(
            have >= needs,
            "reader resolved store ids against a lagging dictionary \
             (snapshot epoch {epoch} needs dictionary {needs}, published is {have})"
        );
        acquired = Some(epoch);
        break;
    }
    assert!(
        acquired.is_some(),
        "reader blocked behind a publishing writer (retries exhausted)"
    );

    writer.join();
    // Quiescence: both publishes landed and the active slot is stable.
    let idx = active.load(Ordering::SeqCst);
    let (stamp, word) = &slots[idx % SLOTS];
    assert_eq!(stamp.load(Ordering::SeqCst) % 2, 0);
    assert_eq!(word.load(Ordering::SeqCst), 2);
    assert_eq!(dictionary.load(Ordering::SeqCst), 1);
}

#[test]
fn lock_free_handoff_reader_never_blocks() {
    let report = model(|| lock_free_handoff_model(true));
    assert!(
        report.schedules >= 50,
        "expected a non-trivial interleaving space, got {}",
        report.schedules
    );
}

#[test]
fn lock_free_handoff_seeded_snapshot_before_dictionary_bug_is_caught() {
    let violation = model_expect_violation(|| lock_free_handoff_model(false));
    assert!(violation.contains("lagging dictionary"), "got: {violation}");
}
