//! Property-based invariants of the query engine: the answer of a BGP must
//! not depend on the textual order of its patterns (the planner is free to
//! reorder), on whether the ⟨o,s⟩ caches are materialized, or on how the
//! projection is phrased.

use inferray_model::Graph;
use inferray_parser::load_graph;
use inferray_query::{PatternTerm, Query, QueryEngine, Selection, TriplePatternSpec};
use proptest::prelude::*;

fn entity(n: u8) -> String {
    format!("http://example.org/e{n}")
}

fn predicate(n: u8) -> String {
    format!("http://example.org/p{n}")
}

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u8..8, 0u8..3, 0u8..8), 0..50).prop_map(|triples| {
        let mut graph = Graph::new();
        for (s, p, o) in triples {
            graph.insert_iris(entity(s), predicate(p), entity(o));
        }
        graph
    })
}

/// A random BGP of 1–4 patterns over a tiny variable/constant vocabulary, so
/// shared variables (joins) and repeated variables are common.
fn arbitrary_bgp() -> impl Strategy<Value = Vec<TriplePatternSpec>> {
    let position = prop_oneof![
        (0u8..4).prop_map(|v| PatternTerm::var(format!("v{v}"))),
        (0u8..8).prop_map(|n| PatternTerm::iri(entity(n))),
    ];
    let pred_position = prop_oneof![
        (0u8..2).prop_map(|v| PatternTerm::var(format!("v{v}"))),
        (0u8..3).prop_map(|n| PatternTerm::iri(predicate(n))),
    ];
    prop::collection::vec(
        (position.clone(), pred_position, position)
            .prop_map(|(s, p, o)| TriplePatternSpec::new(s, p, o)),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Reversing (or otherwise permuting) the pattern list never changes the
    /// solution multiset.
    #[test]
    fn pattern_order_does_not_change_solutions(
        graph in arbitrary_graph(),
        patterns in arbitrary_bgp(),
    ) {
        let dataset = load_graph(&graph).unwrap();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

        let forward = Query::select_all(patterns.clone());
        let mut reversed_patterns = patterns;
        reversed_patterns.reverse();
        let mut reversed = Query::select_all(reversed_patterns);
        // Align the projection order with the forward query so rows compare.
        reversed.select = Selection::Variables(forward.projected_variables());

        let a = engine.execute(&forward);
        let b = engine.execute(&reversed);
        prop_assert_eq!(a.sorted_rows(), b.sorted_rows());
    }

    /// Building the ⟨o,s⟩ caches is invisible to query answers.
    #[test]
    fn os_cache_does_not_change_solutions(
        graph in arbitrary_graph(),
        patterns in arbitrary_bgp(),
    ) {
        let mut dataset = load_graph(&graph).unwrap();
        let query = Query::select_all(patterns);

        let cold = QueryEngine::new(&dataset.store, &dataset.dictionary).execute(&query);
        dataset.store.ensure_all_os();
        let warm = QueryEngine::new(&dataset.store, &dataset.dictionary).execute(&query);
        prop_assert_eq!(cold.sorted_rows(), warm.sorted_rows());
    }

    /// DISTINCT never returns more rows, and LIMIT caps the row count.
    #[test]
    fn distinct_and_limit_behave(
        graph in arbitrary_graph(),
        patterns in arbitrary_bgp(),
        limit in 0usize..5,
    ) {
        let dataset = load_graph(&graph).unwrap();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);

        let plain = engine.execute(&Query::select_all(patterns.clone()));
        let distinct = engine.execute(&Query::select_all(patterns.clone()).with_distinct());
        prop_assert!(distinct.len() <= plain.len());
        // DISTINCT removes exactly the duplicate rows.
        let unique: std::collections::HashSet<_> = plain.rows().iter().cloned().collect();
        prop_assert_eq!(distinct.len(), unique.len());

        let limited = engine.execute(&Query::select_all(patterns).with_limit(limit));
        prop_assert!(limited.len() <= limit);
        prop_assert!(limited.len() <= plain.len());
    }

    /// ASK is true exactly when SELECT returns at least one row.
    #[test]
    fn ask_matches_select_nonemptiness(
        graph in arbitrary_graph(),
        patterns in arbitrary_bgp(),
    ) {
        let dataset = load_graph(&graph).unwrap();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let query = Query::select_all(patterns);
        let solutions = engine.execute(&query);
        prop_assert_eq!(engine.ask(&query), !solutions.is_empty());
    }
}
