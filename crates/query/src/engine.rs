//! The [`QueryEngine`]: compiles and evaluates queries against a store and
//! its dictionary.

use crate::algebra::{FilterExpr, PatternTerm, Query, QueryForm, TriplePatternSpec};
use crate::executor::{evaluate_bgp, CompiledPattern, Row, Slot};
use crate::planner::order_patterns;
use crate::solution::SolutionSet;
use crate::sparql::{parse_query, QueryParseError};
use inferray_dictionary::Dictionary;
use inferray_model::{Term, TermKind};
use inferray_store::TripleStore;
use std::collections::HashMap;

/// A read-only query engine over a (typically materialized) triple store and
/// the dictionary that encoded it.
///
/// The engine never mutates the store. For best `(?, p, o)` lookups, build
/// the ⟨o,s⟩ caches first with [`TripleStore::ensure_all_os`] — the engine
/// transparently falls back to sequential scans when a cache is absent.
///
/// # Example
///
/// ```
/// use inferray_parser::load_turtle;
/// use inferray_query::QueryEngine;
///
/// let data = r#"
/// @prefix ex: <http://example.org/> .
/// ex:alice ex:knows ex:bob .
/// ex:bob ex:knows ex:carol .
/// "#;
/// let mut loaded = load_turtle(data).unwrap();
/// loaded.store.ensure_all_os();
/// let engine = QueryEngine::new(&loaded.store, &loaded.dictionary);
/// let solutions = engine
///     .execute_sparql(
///         "PREFIX ex: <http://example.org/> \
///          SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
///     )
///     .unwrap();
/// assert_eq!(solutions.len(), 1);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct QueryEngine<'a> {
    store: &'a TripleStore,
    dictionary: &'a Dictionary,
}

impl<'a> QueryEngine<'a> {
    /// Creates an engine over a store and the dictionary that encoded it.
    pub fn new(store: &'a TripleStore, dictionary: &'a Dictionary) -> Self {
        QueryEngine { store, dictionary }
    }

    /// The store the engine reads from.
    pub fn store(&self) -> &TripleStore {
        self.store
    }

    /// The dictionary used to encode constants and decode solutions.
    pub fn dictionary(&self) -> &Dictionary {
        self.dictionary
    }

    /// Parses and executes a SPARQL-subset `SELECT` (or `ASK`) query,
    /// returning its solutions. For `ASK` queries the solution set contains
    /// one empty row when the pattern matches and no row otherwise.
    pub fn execute_sparql(&self, text: &str) -> Result<SolutionSet, QueryParseError> {
        Ok(self.execute(&parse_query(text)?))
    }

    /// Parses and executes an `ASK` query (also accepts `SELECT`, in which
    /// case the answer is "does it have at least one solution").
    pub fn ask_sparql(&self, text: &str) -> Result<bool, QueryParseError> {
        Ok(self.ask(&parse_query(text)?))
    }

    /// Executes a pre-built [`Query`].
    pub fn execute(&self, query: &Query) -> SolutionSet {
        let registry = VariableRegistry::for_query(query);
        let projected = match query.form {
            QueryForm::Select => query.projected_variables(),
            QueryForm::Ask => Vec::new(),
        };
        let mut solutions = SolutionSet::empty(projected.clone());

        let Some(compiled) = self.compile_patterns(&query.patterns, &registry) else {
            // A constant of the BGP is not in the dictionary: no solution.
            return solutions;
        };
        let ordered = order_patterns(self.store, compiled);
        let rows = evaluate_bgp(self.store, &ordered, registry.len());

        for row in rows {
            if !self.row_passes_filters(&row, &query.filters, &registry) {
                continue;
            }
            if query.form == QueryForm::Ask {
                solutions.push_row(Vec::new());
                break;
            }
            let projected_row = projected
                .iter()
                .map(|name| registry.index(name).and_then(|index| row[index]))
                .collect();
            solutions.push_row(projected_row);
        }

        if query.form == QueryForm::Select {
            if query.distinct {
                solutions.deduplicate();
            }
            solutions.slice(query.offset, query.limit);
        }
        solutions
    }

    /// Executes a query and reports whether it has at least one solution.
    pub fn ask(&self, query: &Query) -> bool {
        let probe = Query {
            form: QueryForm::Ask,
            ..query.clone()
        };
        !self.execute(&probe).is_empty()
    }

    /// Compiles the BGP against the dictionary; `None` when a constant term
    /// is unknown (the BGP can never match).
    fn compile_patterns(
        &self,
        patterns: &[TriplePatternSpec],
        registry: &VariableRegistry,
    ) -> Option<Vec<CompiledPattern>> {
        patterns
            .iter()
            .map(|pattern| {
                Some(CompiledPattern {
                    s: self.compile_term(&pattern.s, registry)?,
                    p: self.compile_term(&pattern.p, registry)?,
                    o: self.compile_term(&pattern.o, registry)?,
                })
            })
            .collect()
    }

    fn compile_term(&self, term: &PatternTerm, registry: &VariableRegistry) -> Option<Slot> {
        match term {
            PatternTerm::Variable(name) => Some(Slot::Var(
                registry
                    .index(name)
                    .expect("registry contains every pattern variable"),
            )),
            PatternTerm::Constant(term) => self.dictionary.id_of(term).map(Slot::Bound),
        }
    }

    fn row_passes_filters(
        &self,
        row: &Row,
        filters: &[FilterExpr],
        registry: &VariableRegistry,
    ) -> bool {
        filters
            .iter()
            .all(|filter| self.filter_holds(row, filter, registry))
    }

    fn filter_holds(&self, row: &Row, filter: &FilterExpr, registry: &VariableRegistry) -> bool {
        let value_of = |name: &str| registry.index(name).and_then(|index| row[index]);
        match filter {
            FilterExpr::Bound(name) => value_of(name).is_some(),
            FilterExpr::IsIri(name) => self.kind_of(value_of(name)) == Some(TermKind::Iri),
            FilterExpr::IsLiteral(name) => self.kind_of(value_of(name)) == Some(TermKind::Literal),
            FilterExpr::IsBlank(name) => self.kind_of(value_of(name)) == Some(TermKind::BlankNode),
            FilterExpr::Equal(name, rhs) => {
                let Some(lhs) = value_of(name) else {
                    return false;
                };
                match self.resolve_rhs(rhs, &value_of) {
                    Some(rhs_value) => lhs == rhs_value,
                    // The right-hand term exists nowhere in the data, so it
                    // cannot be equal to any bound value.
                    None => false,
                }
            }
            FilterExpr::NotEqual(name, rhs) => {
                let Some(lhs) = value_of(name) else {
                    return false;
                };
                match rhs {
                    PatternTerm::Variable(other) => {
                        value_of(other).is_some_and(|rhs_value| lhs != rhs_value)
                    }
                    PatternTerm::Constant(term) => match self.dictionary.id_of(term) {
                        Some(rhs_value) => lhs != rhs_value,
                        // A term absent from the data differs from every
                        // bound value.
                        None => true,
                    },
                }
            }
        }
    }

    fn resolve_rhs(
        &self,
        rhs: &PatternTerm,
        value_of: &impl Fn(&str) -> Option<u64>,
    ) -> Option<u64> {
        match rhs {
            PatternTerm::Variable(name) => value_of(name),
            PatternTerm::Constant(term) => self.dictionary.id_of(term),
        }
    }

    fn kind_of(&self, id: Option<u64>) -> Option<TermKind> {
        id.and_then(|id| self.dictionary.decode(id)).map(Term::kind)
    }
}

/// Maps variable names to row slot indices.
struct VariableRegistry {
    slots: HashMap<String, usize>,
    count: usize,
}

impl VariableRegistry {
    fn for_query(query: &Query) -> Self {
        let mut registry = VariableRegistry {
            slots: HashMap::new(),
            count: 0,
        };
        for name in query.pattern_variables() {
            registry.insert(name);
        }
        for filter in &query.filters {
            for name in filter.variables() {
                registry.insert(name.to_owned());
            }
        }
        registry
    }

    fn insert(&mut self, name: String) {
        if !self.slots.contains_key(&name) {
            self.slots.insert(name, self.count);
            self.count += 1;
        }
    }

    fn index(&self, name: &str) -> Option<usize> {
        self.slots.get(name).copied()
    }

    fn len(&self) -> usize {
        self.count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{PatternTerm, TriplePatternSpec};
    use inferray_parser::load_turtle;

    const DATA: &str = r#"
@prefix ex: <http://example.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:alice a ex:Person ; ex:knows ex:bob ; ex:name "Alice" .
ex:bob a ex:Person ; ex:knows ex:carol ; ex:name "Bob" .
ex:carol a ex:Robot ; ex:name "Carol"@en .
ex:Robot rdfs:subClassOf ex:Agent .
"#;

    fn loaded() -> inferray_parser::LoadedDataset {
        let mut dataset = load_turtle(DATA).unwrap();
        dataset.store.ensure_all_os();
        dataset
    }

    fn ex(local: &str) -> String {
        format!("http://example.org/{local}")
    }

    #[test]
    fn single_pattern_select() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let solutions = engine
            .execute_sparql(
                "PREFIX ex: <http://example.org/> SELECT ?who WHERE { ?who a ex:Person }",
            )
            .unwrap();
        assert_eq!(solutions.len(), 2);
        let who: Vec<Option<Term>> = (0..solutions.len())
            .map(|row| solutions.decoded_value(row, "who", &dataset.dictionary))
            .collect();
        assert!(who.contains(&Some(Term::iri(ex("alice")))));
        assert!(who.contains(&Some(Term::iri(ex("bob")))));
    }

    #[test]
    fn join_across_two_patterns() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let solutions = engine
            .execute_sparql(
                "PREFIX ex: <http://example.org/> \
                 SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
            )
            .unwrap();
        assert_eq!(solutions.len(), 1);
        assert_eq!(
            solutions.decoded_value(0, "x", &dataset.dictionary),
            Some(Term::iri(ex("alice")))
        );
        assert_eq!(
            solutions.decoded_value(0, "z", &dataset.dictionary),
            Some(Term::iri(ex("carol")))
        );
    }

    #[test]
    fn filters_restrict_solutions() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let all = engine
            .execute_sparql("PREFIX ex: <http://example.org/> SELECT ?s ?n WHERE { ?s ex:name ?n }")
            .unwrap();
        assert_eq!(all.len(), 3);
        let only_alice = engine
            .execute_sparql(
                "PREFIX ex: <http://example.org/> \
                 SELECT ?s WHERE { ?s ex:name ?n . FILTER(?n = \"Alice\") }",
            )
            .unwrap();
        assert_eq!(only_alice.len(), 1);
        assert_eq!(
            only_alice.decoded_value(0, "s", &dataset.dictionary),
            Some(Term::iri(ex("alice")))
        );
        let not_alice = engine
            .execute_sparql(
                "PREFIX ex: <http://example.org/> \
                 SELECT ?s WHERE { ?s ex:name ?n . FILTER(?n != \"Alice\") }",
            )
            .unwrap();
        assert_eq!(not_alice.len(), 2);
        let literals = engine
            .execute_sparql(
                "PREFIX ex: <http://example.org/> \
                 SELECT ?o WHERE { ?s ?p ?o . FILTER(isLiteral(?o)) }",
            )
            .unwrap();
        assert_eq!(literals.len(), 3);
    }

    #[test]
    fn unknown_constant_means_no_solutions() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let solutions = engine
            .execute_sparql("PREFIX ex: <http://example.org/> SELECT ?s WHERE { ?s a ex:Unicorn }")
            .unwrap();
        assert!(solutions.is_empty());
        assert_eq!(solutions.variables(), &["s".to_owned()]);
    }

    #[test]
    fn ask_queries() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        assert!(engine
            .ask_sparql("PREFIX ex: <http://example.org/> ASK { ex:alice ex:knows ex:bob }")
            .unwrap());
        assert!(!engine
            .ask_sparql("PREFIX ex: <http://example.org/> ASK { ex:bob ex:knows ex:alice }")
            .unwrap());
        assert!(!engine
            .ask_sparql("PREFIX ex: <http://example.org/> ASK { ex:alice ex:knows ex:ghost }")
            .unwrap());
    }

    #[test]
    fn distinct_limit_offset_apply_in_order() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let types = engine
            .execute_sparql("SELECT DISTINCT ?t WHERE { ?x a ?t }")
            .unwrap();
        assert_eq!(types.len(), 2);
        let limited = engine
            .execute_sparql("SELECT ?x WHERE { ?x ?p ?o } LIMIT 3")
            .unwrap();
        assert_eq!(limited.len(), 3);
        let all = engine
            .execute_sparql("SELECT ?x WHERE { ?x ?p ?o }")
            .unwrap();
        let offset = engine
            .execute_sparql("SELECT ?x WHERE { ?x ?p ?o } OFFSET 2")
            .unwrap();
        assert_eq!(offset.len(), all.len() - 2);
    }

    #[test]
    fn programmatic_query_construction() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let query = Query::select_all(vec![TriplePatternSpec::new(
            PatternTerm::var("x"),
            PatternTerm::iri(ex("knows")),
            PatternTerm::var("y"),
        )]);
        let solutions = engine.execute(&query);
        assert_eq!(solutions.len(), 2);
        assert!(engine.ask(&query));
    }

    #[test]
    fn projecting_a_variable_absent_from_the_bgp_yields_unbound() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let solutions = engine
            .execute_sparql("SELECT ?ghost WHERE { ?x ?p ?o } LIMIT 1")
            .unwrap();
        assert_eq!(solutions.len(), 1);
        assert_eq!(solutions.rows()[0], vec![None]);
    }

    #[test]
    fn empty_bgp_has_exactly_one_empty_solution() {
        let dataset = loaded();
        let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
        let solutions = engine.execute_sparql("SELECT * WHERE { }").unwrap();
        assert_eq!(solutions.len(), 1);
        assert!(engine.ask_sparql("ASK {}").unwrap());
    }
}
