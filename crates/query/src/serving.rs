//! The snapshot-owning, `Send + Sync` face of the query engine.
//!
//! [`QueryEngine`](crate::QueryEngine) borrows a store and a dictionary,
//! which is the right shape for embedding but cannot cross threads or
//! outlive a materialization. [`SnapshotQueryEngine`] owns its inputs
//! instead — a frozen [`StoreSnapshot`] plus a shared dictionary — so it
//! can be handed to any number of serving threads while the reasoner
//! publishes new epochs behind it. Queries answered by one engine instance
//! are all answered against the **same** epoch: acquiring a fresh view is
//! an explicit, cheap operation (build a new engine from
//! [`SnapshotStore::snapshot`](inferray_store::SnapshotStore::snapshot)),
//! never something that happens mid-query.
//!
//! [`SnapshotQueryEngine::execute_batch`] fans a batch of parsed queries
//! out over the `inferray-parallel` worker pool. Results come back **in
//! submission order** (the pool's `run_ordered` contract), one solution set
//! per query, so batch execution is deterministic: the same batch against
//! the same epoch produces byte-identical output regardless of thread
//! count or scheduling.

use crate::engine::QueryEngine;
use crate::solution::SolutionSet;
use crate::sparql::{parse_query, QueryParseError};
use crate::Query;
use inferray_dictionary::Dictionary;
use inferray_parallel::ThreadPool;
use inferray_store::StoreSnapshot;
use std::sync::Arc;

/// A query engine bound to one published snapshot (epoch) of the store.
///
/// Cloning is cheap (`Arc` bumps) and clones answer against the same epoch.
///
/// ```
/// use inferray_parser::load_turtle;
/// use inferray_query::SnapshotQueryEngine;
/// use inferray_store::SnapshotStore;
/// use std::sync::Arc;
///
/// let data = r#"
/// @prefix ex: <http://example.org/> .
/// ex:alice ex:knows ex:bob .
/// ex:bob ex:knows ex:carol .
/// "#;
/// let dataset = load_turtle(data).unwrap();
/// let dictionary = Arc::new(dataset.dictionary);
/// let snapshots = SnapshotStore::new(dataset.store);
///
/// let engine = SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(&dictionary));
/// // The engine is Send + Sync: serve it from as many threads as you like.
/// std::thread::scope(|scope| {
///     for _ in 0..4 {
///         let engine = engine.clone();
///         scope.spawn(move || {
///             let hops = engine
///                 .execute_sparql(
///                     "PREFIX ex: <http://example.org/> \
///                      SELECT ?x ?z WHERE { ?x ex:knows ?y . ?y ex:knows ?z }",
///                 )
///                 .unwrap();
///             assert_eq!(hops.len(), 1);
///         });
///     }
/// });
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotQueryEngine {
    snapshot: StoreSnapshot,
    dictionary: Arc<Dictionary>,
}

impl SnapshotQueryEngine {
    /// An engine answering every query against `snapshot`, decoding through
    /// `dictionary`.
    pub fn new(snapshot: StoreSnapshot, dictionary: Arc<Dictionary>) -> Self {
        SnapshotQueryEngine {
            snapshot,
            dictionary,
        }
    }

    /// The epoch every query of this engine is answered against.
    pub fn epoch(&self) -> u64 {
        self.snapshot.epoch()
    }

    /// The frozen snapshot backing this engine.
    pub fn snapshot(&self) -> &StoreSnapshot {
        &self.snapshot
    }

    /// The dictionary used to encode constants and decode solutions.
    pub fn dictionary(&self) -> &Arc<Dictionary> {
        &self.dictionary
    }

    /// A borrow-based [`QueryEngine`] over this snapshot, for callers that
    /// want the full borrowed API.
    pub fn engine(&self) -> QueryEngine<'_> {
        QueryEngine::new(self.snapshot.store(), &self.dictionary)
    }

    /// Parses and executes one SPARQL-subset query against the snapshot.
    pub fn execute_sparql(&self, text: &str) -> Result<SolutionSet, QueryParseError> {
        self.engine().execute_sparql(text)
    }

    /// Parses and executes an `ASK` query against the snapshot.
    pub fn ask_sparql(&self, text: &str) -> Result<bool, QueryParseError> {
        self.engine().ask_sparql(text)
    }

    /// Executes a pre-built [`Query`] against the snapshot.
    pub fn execute(&self, query: &Query) -> SolutionSet {
        self.engine().execute(query)
    }

    /// Executes a batch of query strings on the global `inferray-parallel`
    /// pool. One result per input, **in input order** — parse errors are
    /// reported per query and never abort the batch.
    pub fn execute_batch(&self, queries: &[String]) -> Vec<Result<SolutionSet, QueryParseError>> {
        self.execute_batch_on(inferray_parallel::global(), queries)
    }

    /// [`SnapshotQueryEngine::execute_batch`] on an explicit pool (the
    /// serving benchmark sizes pools per measurement).
    pub fn execute_batch_on(
        &self,
        pool: &ThreadPool,
        queries: &[String],
    ) -> Vec<Result<SolutionSet, QueryParseError>> {
        if queries.len() <= 1 {
            return queries
                .iter()
                .map(|text| self.execute_sparql(text))
                .collect();
        }
        // One task per contiguous chunk, a few chunks per lane: per-task
        // scheduling overhead is amortized while stragglers still balance.
        // Flattening chunk results in chunk order preserves input order.
        let tasks: Vec<_> = queries
            .chunks(batch_chunk_size(queries.len(), pool))
            .map(|chunk| {
                move || {
                    chunk
                        .iter()
                        .map(|text| self.execute_sparql(text))
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        pool.run_ordered(tasks).into_iter().flatten().collect()
    }

    /// Executes a batch of pre-parsed queries on `pool`, one solution set
    /// per query in input order.
    pub fn execute_queries_on(&self, pool: &ThreadPool, queries: &[Query]) -> Vec<SolutionSet> {
        if queries.len() <= 1 {
            return queries.iter().map(|query| self.execute(query)).collect();
        }
        let tasks: Vec<_> = queries
            .chunks(batch_chunk_size(queries.len(), pool))
            .map(|chunk| {
                move || {
                    chunk
                        .iter()
                        .map(|query| self.execute(query))
                        .collect::<Vec<_>>()
                }
            })
            .collect();
        pool.run_ordered(tasks).into_iter().flatten().collect()
    }
}

/// Chunk size giving every execution lane about four chunks to steal.
fn batch_chunk_size(len: usize, pool: &ThreadPool) -> usize {
    let lanes = pool.threads() + 1;
    len.div_ceil(lanes * 4).max(1)
}

/// Parses every query of a batch up front, so servers can reject malformed
/// requests before paying for execution. Returns the parsed queries in
/// input order or the first error with its input index.
pub fn parse_batch(queries: &[String]) -> Result<Vec<Query>, (usize, QueryParseError)> {
    queries
        .iter()
        .enumerate()
        .map(|(index, text)| parse_query(text).map_err(|e| (index, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::IdTriple;
    use inferray_store::{SnapshotStore, TripleStore};

    fn engine_over(triples: &[(u64, u64, u64)]) -> (SnapshotStore, Arc<Dictionary>) {
        let store =
            TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)));
        (SnapshotStore::new(store), Arc::new(Dictionary::new()))
    }

    fn p() -> u64 {
        inferray_model::ids::nth_property_id(3)
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnapshotQueryEngine>();
    }

    #[test]
    fn batch_results_preserve_input_order() {
        let (snapshots, dictionary) = engine_over(&[(10, p(), 20), (11, p(), 20), (12, p(), 21)]);
        let engine = SnapshotQueryEngine::new(snapshots.snapshot(), dictionary);
        let pool = ThreadPool::new(3);
        let batch: Vec<String> = vec![
            "SELECT ?s ?o WHERE { ?s ?p ?o }".into(),
            "this is not sparql".into(),
            "SELECT ?s WHERE { ?s ?p 99 }".into(),
        ];
        let results = engine.execute_batch_on(&pool, &batch);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].as_ref().unwrap().len(), 3);
        assert!(results[1].is_err(), "parse errors are per-query");
        assert_eq!(results[2].as_ref().unwrap().len(), 0);
    }

    #[test]
    fn batch_execution_is_deterministic_across_pool_sizes() {
        let triples: Vec<(u64, u64, u64)> = (0..200)
            .map(|i| (5_000_000 + i % 40, p(), 6_000_000 + i % 7))
            .collect();
        let (snapshots, dictionary) = engine_over(&triples);
        let engine = SnapshotQueryEngine::new(snapshots.snapshot(), dictionary);
        let batch: Vec<String> = (0..16)
            .map(|i| format!("SELECT ?s WHERE {{ ?s ?p {} }}", 6_000_000 + i % 7))
            .collect();
        // (Integer constants never match IRIs, so these return empty sets —
        // the determinism claim is about result *structure* and order.)
        let solo = ThreadPool::new(1);
        let wide = ThreadPool::new(4);
        let a: Vec<_> = engine
            .execute_batch_on(&solo, &batch)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        let b: Vec<_> = engine
            .execute_batch_on(&wide, &batch)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn parse_batch_reports_the_failing_index() {
        let ok = parse_batch(&["ASK {}".into(), "SELECT * WHERE {}".into()]);
        assert_eq!(ok.unwrap().len(), 2);
        let err = parse_batch(&["ASK {}".into(), "nope".into()]);
        assert_eq!(err.unwrap_err().0, 1);
    }

    #[test]
    fn engine_answers_against_its_epoch_only() {
        let (snapshots, dictionary) = engine_over(&[(1, p(), 2)]);
        let engine = SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(&dictionary));
        snapshots.update(|store| store.add_triple(IdTriple::new(3, p(), 4)));
        // The engine still answers against epoch 0...
        assert_eq!(engine.epoch(), 0);
        let rows = engine
            .execute_sparql("SELECT ?s ?o WHERE { ?s ?p ?o }")
            .unwrap();
        assert_eq!(rows.len(), 1);
        // ...until the caller explicitly re-acquires.
        let fresh = SnapshotQueryEngine::new(snapshots.snapshot(), dictionary);
        assert_eq!(fresh.epoch(), 1);
        let rows = fresh
            .execute_sparql("SELECT ?s ?o WHERE { ?s ?p ?o }")
            .unwrap();
        assert_eq!(rows.len(), 2);
    }
}
