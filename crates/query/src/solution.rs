//! Query solutions: variable bindings over encoded identifiers.
//!
//! The executor works entirely in the encoded (u64) domain — the same flat
//! identifiers the property tables store — and only decodes terms when the
//! caller asks for them. This keeps the join pipeline allocation-light and
//! mirrors how the reasoner itself defers decoding until output time.

use inferray_dictionary::Dictionary;
use inferray_model::Term;
use std::collections::HashSet;
use std::fmt;

/// One row of a solution: the encoded binding of each projected variable
/// (`None` when the variable is unbound in this solution).
pub type EncodedRow = Vec<Option<u64>>;

/// The result of a `SELECT` query: a header of variable names plus the
/// matching rows, in the order the executor produced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionSet {
    variables: Vec<String>,
    rows: Vec<EncodedRow>,
}

impl SolutionSet {
    /// Creates a solution set with the given header and no rows.
    pub fn empty(variables: Vec<String>) -> Self {
        SolutionSet {
            variables,
            rows: Vec::new(),
        }
    }

    /// Creates a solution set from a header and pre-built rows. Every row
    /// must have exactly one entry per variable.
    pub fn new(variables: Vec<String>, rows: Vec<EncodedRow>) -> Self {
        debug_assert!(rows.iter().all(|r| r.len() == variables.len()));
        SolutionSet { variables, rows }
    }

    /// The projected variable names, in projection order.
    pub fn variables(&self) -> &[String] {
        &self.variables
    }

    /// The raw encoded rows.
    pub fn rows(&self) -> &[EncodedRow] {
        &self.rows
    }

    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the query produced no solution.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row (used by the executor).
    pub(crate) fn push_row(&mut self, row: EncodedRow) {
        debug_assert_eq!(row.len(), self.variables.len());
        self.rows.push(row);
    }

    /// Index of a variable in the header.
    pub fn column(&self, variable: &str) -> Option<usize> {
        self.variables.iter().position(|v| v == variable)
    }

    /// The encoded bindings of one variable across all rows (`None` entries
    /// are skipped).
    pub fn column_values(&self, variable: &str) -> Vec<u64> {
        match self.column(variable) {
            Some(index) => self.rows.iter().filter_map(|row| row[index]).collect(),
            None => Vec::new(),
        }
    }

    /// Removes duplicate rows, preserving first occurrence order
    /// (`SELECT DISTINCT`).
    pub(crate) fn deduplicate(&mut self) {
        let mut seen: HashSet<EncodedRow> = HashSet::with_capacity(self.rows.len());
        self.rows.retain(|row| seen.insert(row.clone()));
    }

    /// Applies `OFFSET`/`LIMIT` in that order (the SPARQL slice semantics).
    pub(crate) fn slice(&mut self, offset: usize, limit: Option<usize>) {
        if offset > 0 {
            if offset >= self.rows.len() {
                self.rows.clear();
            } else {
                self.rows.drain(..offset);
            }
        }
        if let Some(limit) = limit {
            self.rows.truncate(limit);
        }
    }

    /// Decodes every row through the dictionary. Identifiers unknown to the
    /// dictionary decode to `None` (this only happens if the caller pairs a
    /// store with the wrong dictionary).
    pub fn decoded(&self, dictionary: &Dictionary) -> Vec<Vec<Option<Term>>> {
        self.rows
            .iter()
            .map(|row| {
                row.iter()
                    .map(|id| id.and_then(|id| dictionary.decode(id).cloned()))
                    .collect()
            })
            .collect()
    }

    /// Decodes the binding of `variable` in row `row`, if both exist.
    pub fn decoded_value(
        &self,
        row: usize,
        variable: &str,
        dictionary: &Dictionary,
    ) -> Option<Term> {
        let column = self.column(variable)?;
        let id = (*self.rows.get(row)?).get(column).copied().flatten()?;
        dictionary.decode(id).cloned()
    }

    /// Renders the solutions as a small text table (decoded through the
    /// dictionary), convenient for examples and the CLI.
    pub fn to_table(&self, dictionary: &Dictionary) -> String {
        let mut out = String::new();
        out.push_str(&self.variables.join("\t"));
        out.push('\n');
        for row in self.decoded(dictionary) {
            let cells: Vec<String> = row
                .iter()
                .map(|t| t.as_ref().map_or("UNBOUND".to_owned(), Term::to_string))
                .collect();
            out.push_str(&cells.join("\t"));
            out.push('\n');
        }
        out
    }

    /// A canonical (sorted) copy of the rows, convenient for
    /// order-insensitive comparisons in tests.
    pub fn sorted_rows(&self) -> Vec<EncodedRow> {
        let mut rows = self.rows.clone();
        rows.sort();
        rows
    }
}

impl fmt::Display for SolutionSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.variables.join("\t"))?;
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .map(|id| id.map_or("UNBOUND".to_owned(), |id| id.to_string()))
                .collect();
            writeln!(f, "{}", cells.join("\t"))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::Term;

    fn sample() -> SolutionSet {
        SolutionSet::new(
            vec!["x".into(), "y".into()],
            vec![
                vec![Some(1), Some(2)],
                vec![Some(3), None],
                vec![Some(1), Some(2)],
            ],
        )
    }

    #[test]
    fn header_and_column_lookup() {
        let s = sample();
        assert_eq!(s.variables(), &["x".to_owned(), "y".to_owned()]);
        assert_eq!(s.column("y"), Some(1));
        assert_eq!(s.column("missing"), None);
        assert_eq!(s.column_values("x"), vec![1, 3, 1]);
        assert_eq!(s.column_values("y"), vec![2, 2]);
    }

    #[test]
    fn deduplicate_preserves_first_occurrence() {
        let mut s = sample();
        s.deduplicate();
        assert_eq!(s.len(), 2);
        assert_eq!(s.rows()[0], vec![Some(1), Some(2)]);
        assert_eq!(s.rows()[1], vec![Some(3), None]);
    }

    #[test]
    fn slice_applies_offset_then_limit() {
        let mut s = sample();
        s.slice(1, Some(1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.rows()[0], vec![Some(3), None]);

        let mut s = sample();
        s.slice(10, None);
        assert!(s.is_empty());

        let mut s = sample();
        s.slice(0, Some(0));
        assert!(s.is_empty());
    }

    #[test]
    fn decoding_uses_the_dictionary() {
        let mut dictionary = Dictionary::new();
        let alice = dictionary.encode_as_resource(&Term::iri("http://ex/alice"));
        let bob = dictionary.encode_as_resource(&Term::iri("http://ex/bob"));
        let s = SolutionSet::new(
            vec!["who".into()],
            vec![vec![Some(alice)], vec![Some(bob)], vec![None]],
        );
        let decoded = s.decoded(&dictionary);
        assert_eq!(decoded[0][0], Some(Term::iri("http://ex/alice")));
        assert_eq!(decoded[1][0], Some(Term::iri("http://ex/bob")));
        assert_eq!(decoded[2][0], None);
        assert_eq!(
            s.decoded_value(0, "who", &dictionary),
            Some(Term::iri("http://ex/alice"))
        );
        assert_eq!(s.decoded_value(2, "who", &dictionary), None);
        let table = s.to_table(&dictionary);
        assert!(table.starts_with("who\n"));
        assert!(table.contains("<http://ex/alice>"));
        assert!(table.contains("UNBOUND"));
    }

    #[test]
    fn sorted_rows_is_order_insensitive() {
        let a = SolutionSet::new(vec!["x".into()], vec![vec![Some(2)], vec![Some(1)]]);
        let b = SolutionSet::new(vec!["x".into()], vec![vec![Some(1)], vec![Some(2)]]);
        assert_eq!(a.sorted_rows(), b.sorted_rows());
    }
}
