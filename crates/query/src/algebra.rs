//! The query algebra: patterns, filters and the [`Query`] structure.
//!
//! The original Inferray positions materialization as the inference layer of
//! a triple store: once the closure has been written back, "inferred data
//! can be consumed as explicit data without integrating the inference engine
//! with the runtime query engine" (§1). This module models the consumer side
//! of that contract — a basic-graph-pattern (BGP) query language in the
//! spirit of the SPARQL subset the vertical-partitioning line of work
//! ([Abadi et al., PVLDB 2007]) evaluates.

use inferray_model::Term;
use std::fmt;

/// One position of a triple pattern: either a named variable or a bound RDF
/// term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatternTerm {
    /// A query variable, stored without the leading `?`.
    Variable(String),
    /// A constant term that must match exactly.
    Constant(Term),
}

impl PatternTerm {
    /// Builds a variable pattern term (accepts the name with or without the
    /// leading `?`/`$`).
    pub fn var(name: impl Into<String>) -> Self {
        let name = name.into();
        let trimmed = name
            .strip_prefix('?')
            .or_else(|| name.strip_prefix('$'))
            .map(str::to_owned)
            .unwrap_or(name);
        PatternTerm::Variable(trimmed)
    }

    /// Builds a constant IRI pattern term.
    pub fn iri(iri: impl Into<String>) -> Self {
        PatternTerm::Constant(Term::iri(iri))
    }

    /// Builds a constant pattern term from any [`Term`].
    pub fn term(term: Term) -> Self {
        PatternTerm::Constant(term)
    }

    /// The variable name, if this position is a variable.
    pub fn as_variable(&self) -> Option<&str> {
        match self {
            PatternTerm::Variable(name) => Some(name),
            PatternTerm::Constant(_) => None,
        }
    }

    /// The constant term, if this position is bound.
    pub fn as_constant(&self) -> Option<&Term> {
        match self {
            PatternTerm::Variable(_) => None,
            PatternTerm::Constant(term) => Some(term),
        }
    }

    /// `true` when this position is a variable.
    pub fn is_variable(&self) -> bool {
        matches!(self, PatternTerm::Variable(_))
    }
}

impl fmt::Display for PatternTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternTerm::Variable(name) => write!(f, "?{name}"),
            PatternTerm::Constant(term) => write!(f, "{term}"),
        }
    }
}

/// A triple pattern `⟨s, p, o⟩` where each position is a [`PatternTerm`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TriplePatternSpec {
    /// Subject position.
    pub s: PatternTerm,
    /// Predicate position.
    pub p: PatternTerm,
    /// Object position.
    pub o: PatternTerm,
}

impl TriplePatternSpec {
    /// Builds a triple pattern from its three positions.
    pub fn new(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> Self {
        TriplePatternSpec { s, p, o }
    }

    /// The distinct variable names used by this pattern, in s/p/o order.
    pub fn variables(&self) -> Vec<&str> {
        let mut vars = Vec::new();
        for position in [&self.s, &self.p, &self.o] {
            if let Some(name) = position.as_variable() {
                if !vars.contains(&name) {
                    vars.push(name);
                }
            }
        }
        vars
    }

    /// Number of bound (constant) positions.
    pub fn bound_positions(&self) -> usize {
        [&self.s, &self.p, &self.o]
            .iter()
            .filter(|t| !t.is_variable())
            .count()
    }
}

impl fmt::Display for TriplePatternSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {} .", self.s, self.p, self.o)
    }
}

/// A filter constraint over the bindings produced by the BGP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FilterExpr {
    /// `FILTER(?x = value)` — the binding of `x` must equal the value
    /// (another variable or a constant term).
    Equal(String, PatternTerm),
    /// `FILTER(?x != value)` — the binding of `x` must differ from the value.
    NotEqual(String, PatternTerm),
    /// `FILTER(isIRI(?x))`.
    IsIri(String),
    /// `FILTER(isLiteral(?x))`.
    IsLiteral(String),
    /// `FILTER(isBlank(?x))`.
    IsBlank(String),
    /// `FILTER(bound(?x))`.
    Bound(String),
}

impl FilterExpr {
    /// The variables this filter reads.
    pub fn variables(&self) -> Vec<&str> {
        match self {
            FilterExpr::Equal(v, rhs) | FilterExpr::NotEqual(v, rhs) => {
                let mut vars = vec![v.as_str()];
                if let Some(name) = rhs.as_variable() {
                    if name != v {
                        vars.push(name);
                    }
                }
                vars
            }
            FilterExpr::IsIri(v)
            | FilterExpr::IsLiteral(v)
            | FilterExpr::IsBlank(v)
            | FilterExpr::Bound(v) => vec![v.as_str()],
        }
    }
}

/// The projection of a query: either every variable used in the BGP
/// (`SELECT *`) or an explicit list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// `SELECT *`.
    All,
    /// `SELECT ?a ?b …` — variable names without the leading `?`.
    Variables(Vec<String>),
}

/// The kind of query: `SELECT` returns bindings, `ASK` returns a boolean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryForm {
    /// A `SELECT` query.
    Select,
    /// An `ASK` query.
    Ask,
}

/// A basic-graph-pattern query over the materialized store.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `SELECT` or `ASK`.
    pub form: QueryForm,
    /// The projection (ignored for `ASK`).
    pub select: Selection,
    /// `SELECT DISTINCT`.
    pub distinct: bool,
    /// The triple patterns of the BGP (conjunctive).
    pub patterns: Vec<TriplePatternSpec>,
    /// `FILTER` constraints, applied conjunctively.
    pub filters: Vec<FilterExpr>,
    /// `LIMIT`, if any.
    pub limit: Option<usize>,
    /// `OFFSET` (defaults to 0).
    pub offset: usize,
}

impl Query {
    /// A `SELECT *` query over the given patterns with no filters.
    pub fn select_all(patterns: Vec<TriplePatternSpec>) -> Self {
        Query {
            form: QueryForm::Select,
            select: Selection::All,
            distinct: false,
            patterns,
            filters: Vec::new(),
            limit: None,
            offset: 0,
        }
    }

    /// A `SELECT ?a ?b …` query over the given patterns.
    pub fn select(vars: Vec<String>, patterns: Vec<TriplePatternSpec>) -> Self {
        Query {
            select: Selection::Variables(vars),
            ..Query::select_all(patterns)
        }
    }

    /// An `ASK` query over the given patterns.
    pub fn ask(patterns: Vec<TriplePatternSpec>) -> Self {
        Query {
            form: QueryForm::Ask,
            ..Query::select_all(patterns)
        }
    }

    /// Adds a filter and returns the modified query (builder style).
    pub fn with_filter(mut self, filter: FilterExpr) -> Self {
        self.filters.push(filter);
        self
    }

    /// Marks the query as `DISTINCT` and returns it (builder style).
    pub fn with_distinct(mut self) -> Self {
        self.distinct = true;
        self
    }

    /// Sets `LIMIT` and returns the query (builder style).
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = Some(limit);
        self
    }

    /// Sets `OFFSET` and returns the query (builder style).
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    /// Every distinct variable mentioned in the BGP, in first-use order.
    pub fn pattern_variables(&self) -> Vec<String> {
        let mut vars: Vec<String> = Vec::new();
        for pattern in &self.patterns {
            for name in pattern.variables() {
                if !vars.iter().any(|v| v == name) {
                    vars.push(name.to_owned());
                }
            }
        }
        vars
    }

    /// The variables the query projects: the explicit list for
    /// `SELECT ?a ?b …`, every pattern variable for `SELECT *`.
    pub fn projected_variables(&self) -> Vec<String> {
        match &self.select {
            Selection::All => self.pattern_variables(),
            Selection::Variables(vars) => vars.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(s: &str, p: &str, o: &str) -> TriplePatternSpec {
        let position = |text: &str| {
            if let Some(rest) = text.strip_prefix('?') {
                PatternTerm::var(rest)
            } else {
                PatternTerm::iri(text)
            }
        };
        TriplePatternSpec::new(position(s), position(p), position(o))
    }

    #[test]
    fn var_strips_question_mark_and_dollar() {
        assert_eq!(PatternTerm::var("?x"), PatternTerm::Variable("x".into()));
        assert_eq!(PatternTerm::var("$x"), PatternTerm::Variable("x".into()));
        assert_eq!(PatternTerm::var("x"), PatternTerm::Variable("x".into()));
    }

    #[test]
    fn pattern_variables_are_deduplicated_in_order() {
        let q = Query::select_all(vec![
            pattern("?x", "http://ex/p", "?y"),
            pattern("?y", "http://ex/q", "?x"),
            pattern("?z", "?p", "?z"),
        ]);
        assert_eq!(q.pattern_variables(), vec!["x", "y", "z", "p"]);
    }

    #[test]
    fn bound_positions_counts_constants() {
        assert_eq!(pattern("?x", "?p", "?o").bound_positions(), 0);
        assert_eq!(pattern("?x", "http://ex/p", "?o").bound_positions(), 1);
        assert_eq!(
            pattern("http://ex/s", "http://ex/p", "http://ex/o").bound_positions(),
            3
        );
    }

    #[test]
    fn projection_defaults_to_pattern_variables() {
        let q = Query::select_all(vec![pattern("?x", "http://ex/p", "?y")]);
        assert_eq!(q.projected_variables(), vec!["x", "y"]);
        let q = Query::select(vec!["y".into()], vec![pattern("?x", "http://ex/p", "?y")]);
        assert_eq!(q.projected_variables(), vec!["y"]);
    }

    #[test]
    fn builder_style_modifiers() {
        let q = Query::select_all(vec![pattern("?x", "http://ex/p", "?y")])
            .with_distinct()
            .with_limit(5)
            .with_offset(2)
            .with_filter(FilterExpr::IsIri("x".into()));
        assert!(q.distinct);
        assert_eq!(q.limit, Some(5));
        assert_eq!(q.offset, 2);
        assert_eq!(q.filters.len(), 1);
    }

    #[test]
    fn filter_variables() {
        let f = FilterExpr::Equal("x".into(), PatternTerm::var("y"));
        assert_eq!(f.variables(), vec!["x", "y"]);
        let f = FilterExpr::NotEqual("x".into(), PatternTerm::iri("http://ex/a"));
        assert_eq!(f.variables(), vec!["x"]);
        assert_eq!(FilterExpr::Bound("b".into()).variables(), vec!["b"]);
    }

    #[test]
    fn display_round_trips_shape() {
        let p = pattern("?x", "http://ex/p", "?y");
        assert_eq!(p.to_string(), "?x <http://ex/p> ?y .");
    }
}
