//! # inferray-query
//!
//! A SPARQL-subset basic-graph-pattern (BGP) query engine over Inferray's
//! vertically partitioned triple store.
//!
//! The paper motivates materialization with "consumer-independent data
//! access, i.e., inferred data can be consumed as explicit data without
//! integrating the inference engine with the runtime query engine" (§1).
//! This crate is that consumer: it evaluates conjunctive triple-pattern
//! queries directly over the sorted property tables the reasoner maintains —
//! the same access paths (binary search, contiguous runs, the ⟨o,s⟩ cache)
//! that make the sort-merge-join inference fast also answer bound-predicate
//! queries efficiently, which is precisely the workload vertical
//! partitioning was designed for (Abadi et al., PVLDB 2007).
//!
//! ## What is supported
//!
//! * `SELECT` / `ASK` with `DISTINCT`, `LIMIT`, `OFFSET`;
//! * basic graph patterns (conjunctions of triple patterns), including
//!   predicate variables;
//! * `FILTER` with `=`, `!=`, `sameTerm`, `isIRI`, `isLiteral`, `isBlank`
//!   and `bound`;
//! * `PREFIX` declarations, `a`, predicate/object lists (`;`, `,`), string /
//!   typed / language-tagged / integer literals and blank nodes.
//!
//! Anything outside this subset (`OPTIONAL`, `UNION`, property paths,
//! aggregates, …) is rejected at parse time rather than silently
//! mis-evaluated.
//!
//! ## Serving
//!
//! [`QueryEngine`] borrows its store — right for embedding, wrong for
//! serving. The [`serving`] module adds the `Send + Sync`
//! [`SnapshotQueryEngine`], which owns an epoch-stamped
//! [`StoreSnapshot`](inferray_store::StoreSnapshot) plus a shared
//! dictionary and fans query batches out over the `inferray-parallel`
//! pool with deterministic result order; the [`server`] module exposes
//! either over a std-only SPARQL-over-HTTP endpoint
//! (`inferray-cli serve`). See `docs/serving.md` for the snapshot
//! lifecycle and the isolation contract.
//!
//! ## Typical use
//!
//! ```
//! use inferray_core::{InferrayReasoner, Materializer};
//! use inferray_parser::load_turtle;
//! use inferray_query::QueryEngine;
//! use inferray_rules::Fragment;
//!
//! let data = r#"
//! @prefix ex: <http://example.org/> .
//! @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
//! ex:human rdfs:subClassOf ex:mammal .
//! ex:mammal rdfs:subClassOf ex:animal .
//! ex:Bart a ex:human .
//! "#;
//!
//! // Load, materialize the RDFS closure, then query the explicit + inferred
//! // triples exactly the same way.
//! let mut dataset = load_turtle(data).unwrap();
//! InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut dataset.store);
//! dataset.store.ensure_all_os();
//!
//! let engine = QueryEngine::new(&dataset.store, &dataset.dictionary);
//! let answers = engine
//!     .execute_sparql(
//!         "PREFIX ex: <http://example.org/> SELECT ?class WHERE { ex:Bart a ?class }",
//!     )
//!     .unwrap();
//! // ex:human asserted, ex:mammal and ex:animal inferred.
//! assert_eq!(answers.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algebra;
mod engine;
mod executor;
mod planner;
pub mod server;
pub mod serving;
pub mod solution;
pub mod sparql;

pub use algebra::{FilterExpr, PatternTerm, Query, QueryForm, Selection, TriplePatternSpec};
pub use engine::QueryEngine;
pub use server::{
    DurabilityReporter, EngineSource, ServerConfig, SparqlServer, UpdateError, UpdateOutcome,
    UpdateSink, ValidationReporter,
};
pub use serving::SnapshotQueryEngine;
pub use solution::{EncodedRow, SolutionSet};
pub use sparql::{parse_query, QueryParseError};
