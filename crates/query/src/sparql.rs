//! A pragmatic parser for the SPARQL subset the engine evaluates.
//!
//! Supported grammar (case-insensitive keywords):
//!
//! ```text
//! [PREFIX name: <iri>]*
//! SELECT [DISTINCT] (* | ?var …) WHERE { group } [LIMIT n] [OFFSET n]
//! ASK [WHERE] { group }
//!
//! group       := (triples | filter)*
//! triples     := subject predicate object (';' predicate object)* (',' object)* '.'?
//! filter      := FILTER '(' constraint ')'
//! constraint  := ?var ('='|'!=') term
//!              | (isIRI|isLiteral|isBlank|bound) '(' ?var ')'
//!              | sameTerm '(' ?var ',' term ')'
//! term        := ?var | <iri> | prefixed:name | 'a' | literal | _:blank | integer
//! ```
//!
//! This is not a conformant SPARQL 1.1 parser — it covers the
//! basic-graph-pattern queries that vertical partitioning was designed for
//! (Abadi et al.) and that the examples and benchmarks in this repository
//! need, while rejecting anything it does not understand instead of
//! guessing.

use crate::algebra::{FilterExpr, PatternTerm, Query, QueryForm, Selection, TriplePatternSpec};
use inferray_model::{vocab, Term};
use std::collections::HashMap;
use std::fmt;

/// An error raised while parsing a query string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError {
    /// Human-readable description of the problem.
    pub message: String,
}

impl QueryParseError {
    fn new(message: impl Into<String>) -> Self {
        QueryParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.message)
    }
}

impl std::error::Error for QueryParseError {}

/// Parses a SPARQL-subset query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, QueryParseError> {
    let tokens = tokenize(input)?;
    Parser::new(tokens).parse_query()
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Token {
    /// `?name` or `$name`.
    Variable(String),
    /// `<iri>` with the brackets stripped.
    Iri(String),
    /// `prefix:local` (expansion happens in the parser, once prefixes are
    /// known) or a bare keyword such as `SELECT`, `a`, `isIRI`.
    Word(String),
    /// `_:label`.
    Blank(String),
    /// A string literal with optional language tag or datatype.
    Literal {
        lexical: String,
        language: Option<String>,
        datatype: Option<LiteralDatatype>,
    },
    /// A bare integer.
    Integer(i64),
    /// Structural punctuation: `{ } ( ) . ; , * =`.
    Punct(char),
    /// `!=`.
    NotEquals,
}

#[derive(Debug, Clone, PartialEq)]
enum LiteralDatatype {
    Iri(String),
    Prefixed(String),
}

fn tokenize(input: &str) -> Result<Vec<Token>, QueryParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '#' => {
                // Comment until end of line.
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' | '}' | '(' | ')' | '.' | ';' | ',' | '*' | '=' => {
                tokens.push(Token::Punct(c));
                i += 1;
            }
            '!' => {
                if chars.get(i + 1) == Some(&'=') {
                    tokens.push(Token::NotEquals);
                    i += 2;
                } else {
                    return Err(QueryParseError::new("unexpected '!'"));
                }
            }
            '?' | '$' => {
                let (name, next) = take_while(&chars, i + 1, is_name_char);
                let (name, trailing_dots) = strip_trailing_dots(name);
                if name.is_empty() {
                    return Err(QueryParseError::new("empty variable name"));
                }
                tokens.push(Token::Variable(name));
                for _ in 0..trailing_dots {
                    tokens.push(Token::Punct('.'));
                }
                i = next;
            }
            '<' => {
                let end = chars[i + 1..]
                    .iter()
                    .position(|&c| c == '>')
                    .ok_or_else(|| QueryParseError::new("unterminated IRI"))?;
                let iri: String = chars[i + 1..i + 1 + end].iter().collect();
                tokens.push(Token::Iri(iri));
                i += end + 2;
            }
            '"' => {
                let (literal, next) = scan_string_literal(&chars, i)?;
                tokens.push(literal);
                i = next;
            }
            '_' if chars.get(i + 1) == Some(&':') => {
                let (label, next) = take_while(&chars, i + 2, is_name_char);
                tokens.push(Token::Blank(label));
                i = next;
            }
            '-' | '0'..='9' => {
                let start = i;
                let mut j = i + 1;
                while j < chars.len() && chars[j].is_ascii_digit() {
                    j += 1;
                }
                let text: String = chars[start..j].iter().collect();
                let value = text
                    .parse::<i64>()
                    .map_err(|_| QueryParseError::new(format!("invalid integer '{text}'")))?;
                tokens.push(Token::Integer(value));
                i = j;
            }
            c if is_name_start(c) => {
                let (word, next) = take_while(&chars, i, |c| is_name_char(c) || c == ':');
                // `ex:Person.` — the terminating dot is punctuation, not part
                // of the prefixed name.
                let (word, trailing_dots) = strip_trailing_dots(word);
                tokens.push(Token::Word(word));
                for _ in 0..trailing_dots {
                    tokens.push(Token::Punct('.'));
                }
                i = next;
            }
            other => {
                return Err(QueryParseError::new(format!(
                    "unexpected character '{other}'"
                )))
            }
        }
    }
    Ok(tokens)
}

/// Splits trailing `.` characters off a scanned name, returning the cleaned
/// name and the number of dots removed.
fn strip_trailing_dots(mut name: String) -> (String, usize) {
    let mut dots = 0;
    while name.ends_with('.') {
        name.pop();
        dots += 1;
    }
    (name, dots)
}

fn take_while(chars: &[char], start: usize, keep: impl Fn(char) -> bool) -> (String, usize) {
    let mut out = String::new();
    let mut i = start;
    while i < chars.len() && keep(chars[i]) {
        out.push(chars[i]);
        i += 1;
    }
    (out, i)
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || c == '-' || c == '.'
}

fn scan_string_literal(chars: &[char], start: usize) -> Result<(Token, usize), QueryParseError> {
    // `start` points at the opening quote.
    let mut lexical = String::new();
    let mut i = start + 1;
    loop {
        match chars.get(i) {
            None => return Err(QueryParseError::new("unterminated string literal")),
            Some('"') => {
                i += 1;
                break;
            }
            Some('\\') => {
                let escaped = chars
                    .get(i + 1)
                    .ok_or_else(|| QueryParseError::new("dangling escape in literal"))?;
                lexical.push(match escaped {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    '"' => '"',
                    '\\' => '\\',
                    other => *other,
                });
                i += 2;
            }
            Some(c) => {
                lexical.push(*c);
                i += 1;
            }
        }
    }
    // Optional language tag or datatype.
    let mut language = None;
    let mut datatype = None;
    if chars.get(i) == Some(&'@') {
        let (lang, next) = take_while(chars, i + 1, |c| c.is_ascii_alphanumeric() || c == '-');
        // The N-Triples / BCP 47 shape: `[a-zA-Z]+('-'[a-zA-Z0-9]+)*`.
        // Anything else (empty tag, leading digit, stray '-', non-ASCII)
        // is a parse error, matching the lexer in `inferray-parser`.
        if !inferray_model::term::valid_language_tag(&lang) {
            return Err(QueryParseError::new(format!(
                "malformed language tag '@{lang}'"
            )));
        }
        language = Some(lang);
        i = next;
    } else if chars.get(i) == Some(&'^') && chars.get(i + 1) == Some(&'^') {
        i += 2;
        if chars.get(i) == Some(&'<') {
            let end = chars[i + 1..]
                .iter()
                .position(|&c| c == '>')
                .ok_or_else(|| QueryParseError::new("unterminated datatype IRI"))?;
            let iri: String = chars[i + 1..i + 1 + end].iter().collect();
            datatype = Some(LiteralDatatype::Iri(iri));
            i += end + 2;
        } else {
            let (name, next) = take_while(chars, i, |c| is_name_char(c) || c == ':');
            if name.is_empty() {
                return Err(QueryParseError::new("missing datatype after '^^'"));
            }
            datatype = Some(LiteralDatatype::Prefixed(name));
            i = next;
        }
    }
    Ok((
        Token::Literal {
            lexical,
            language,
            datatype,
        },
        i,
    ))
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    tokens: Vec<Token>,
    position: usize,
    prefixes: HashMap<String, String>,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            position: 0,
            prefixes: HashMap::new(),
        }
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.position)
    }

    fn next(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.position).cloned();
        if token.is_some() {
            self.position += 1;
        }
        token
    }

    fn expect_punct(&mut self, punct: char) -> Result<(), QueryParseError> {
        match self.next() {
            Some(Token::Punct(c)) if c == punct => Ok(()),
            other => Err(QueryParseError::new(format!(
                "expected '{punct}', found {other:?}"
            ))),
        }
    }

    fn peek_keyword(&self, keyword: &str) -> bool {
        matches!(self.peek(), Some(Token::Word(w)) if w.eq_ignore_ascii_case(keyword))
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        if self.peek_keyword(keyword) {
            self.position += 1;
            true
        } else {
            false
        }
    }

    fn parse_query(mut self) -> Result<Query, QueryParseError> {
        self.parse_prologue()?;
        let form = if self.eat_keyword("SELECT") {
            QueryForm::Select
        } else if self.eat_keyword("ASK") {
            QueryForm::Ask
        } else {
            return Err(QueryParseError::new("expected SELECT or ASK"));
        };

        let mut query = match form {
            QueryForm::Select => {
                let distinct = self.eat_keyword("DISTINCT");
                let select = self.parse_projection()?;
                if !self.eat_keyword("WHERE") {
                    return Err(QueryParseError::new("expected WHERE"));
                }
                let (patterns, filters) = self.parse_group()?;
                Query {
                    form,
                    select,
                    distinct,
                    patterns,
                    filters,
                    limit: None,
                    offset: 0,
                }
            }
            QueryForm::Ask => {
                self.eat_keyword("WHERE");
                let (patterns, filters) = self.parse_group()?;
                Query {
                    form,
                    select: Selection::All,
                    distinct: false,
                    patterns,
                    filters,
                    limit: None,
                    offset: 0,
                }
            }
        };

        // Solution modifiers, in either order — but each at most once. A
        // repeated clause used to be accepted with silent last-one-wins,
        // which turned typos like `LIMIT 10 LIMIT 0` into empty results.
        let mut seen_limit = false;
        let mut seen_offset = false;
        loop {
            if self.peek_keyword("LIMIT") {
                if seen_limit {
                    return Err(self.duplicate_clause("LIMIT"));
                }
                seen_limit = true;
                self.position += 1;
                query.limit = Some(self.parse_unsigned("LIMIT")?);
            } else if self.peek_keyword("OFFSET") {
                if seen_offset {
                    return Err(self.duplicate_clause("OFFSET"));
                }
                seen_offset = true;
                self.position += 1;
                query.offset = self.parse_unsigned("OFFSET")?;
            } else {
                break;
            }
        }

        match self.peek() {
            None => Ok(query),
            Some(other) => Err(QueryParseError::new(format!(
                "unexpected trailing token {other:?}"
            ))),
        }
    }

    fn parse_prologue(&mut self) -> Result<(), QueryParseError> {
        while self.eat_keyword("PREFIX") {
            let name = match self.next() {
                Some(Token::Word(word)) => word,
                other => {
                    return Err(QueryParseError::new(format!(
                        "expected prefix name, found {other:?}"
                    )))
                }
            };
            let name = name.strip_suffix(':').map(str::to_owned).unwrap_or(name);
            let iri = match self.next() {
                Some(Token::Iri(iri)) => iri,
                other => {
                    return Err(QueryParseError::new(format!(
                        "expected namespace IRI, found {other:?}"
                    )))
                }
            };
            self.prefixes.insert(name, iri);
        }
        Ok(())
    }

    fn parse_projection(&mut self) -> Result<Selection, QueryParseError> {
        if matches!(self.peek(), Some(Token::Punct('*'))) {
            self.position += 1;
            return Ok(Selection::All);
        }
        let mut vars = Vec::new();
        while let Some(Token::Variable(name)) = self.peek() {
            vars.push(name.clone());
            self.position += 1;
        }
        if vars.is_empty() {
            return Err(QueryParseError::new("SELECT needs '*' or variables"));
        }
        Ok(Selection::Variables(vars))
    }

    /// A positioned error for a repeated solution modifier.
    fn duplicate_clause(&self, keyword: &str) -> QueryParseError {
        QueryParseError::new(format!(
            "duplicate {keyword} clause at token {}",
            self.position + 1
        ))
    }

    fn parse_unsigned(&mut self, keyword: &str) -> Result<usize, QueryParseError> {
        match self.next() {
            Some(Token::Integer(value)) if value >= 0 => Ok(value as usize),
            other => Err(QueryParseError::new(format!(
                "{keyword} expects a non-negative integer, found {other:?}"
            ))),
        }
    }

    fn parse_group(
        &mut self,
    ) -> Result<(Vec<TriplePatternSpec>, Vec<FilterExpr>), QueryParseError> {
        self.expect_punct('{')?;
        let mut patterns = Vec::new();
        let mut filters = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Punct('}')) => {
                    self.position += 1;
                    break;
                }
                None => return Err(QueryParseError::new("unterminated group (missing '}')")),
                Some(Token::Word(w)) if w.eq_ignore_ascii_case("FILTER") => {
                    self.position += 1;
                    filters.push(self.parse_filter()?);
                }
                _ => self.parse_triples_block(&mut patterns)?,
            }
        }
        Ok((patterns, filters))
    }

    /// Parses `subject predicate object (';' predicate object)* (',' object)*`
    /// with an optional trailing `.`.
    fn parse_triples_block(
        &mut self,
        patterns: &mut Vec<TriplePatternSpec>,
    ) -> Result<(), QueryParseError> {
        let subject = self.parse_pattern_term(false)?;
        let mut predicate = self.parse_pattern_term(true)?;
        let mut object = self.parse_pattern_term(false)?;
        patterns.push(TriplePatternSpec::new(
            subject.clone(),
            predicate.clone(),
            object,
        ));
        loop {
            match self.peek() {
                Some(Token::Punct(',')) => {
                    self.position += 1;
                    object = self.parse_pattern_term(false)?;
                    patterns.push(TriplePatternSpec::new(
                        subject.clone(),
                        predicate.clone(),
                        object,
                    ));
                }
                Some(Token::Punct(';')) => {
                    self.position += 1;
                    // A dangling ';' before '.' or '}' is tolerated.
                    if matches!(
                        self.peek(),
                        Some(Token::Punct('.')) | Some(Token::Punct('}'))
                    ) {
                        continue;
                    }
                    predicate = self.parse_pattern_term(true)?;
                    object = self.parse_pattern_term(false)?;
                    patterns.push(TriplePatternSpec::new(
                        subject.clone(),
                        predicate.clone(),
                        object,
                    ));
                }
                Some(Token::Punct('.')) => {
                    self.position += 1;
                    break;
                }
                _ => break,
            }
        }
        Ok(())
    }

    fn parse_filter(&mut self) -> Result<FilterExpr, QueryParseError> {
        self.expect_punct('(')?;
        let filter = match self.next() {
            Some(Token::Variable(name)) => match self.next() {
                Some(Token::Punct('=')) => {
                    let rhs = self.parse_pattern_term(false)?;
                    FilterExpr::Equal(name, rhs)
                }
                Some(Token::NotEquals) => {
                    let rhs = self.parse_pattern_term(false)?;
                    FilterExpr::NotEqual(name, rhs)
                }
                other => {
                    return Err(QueryParseError::new(format!(
                        "expected '=' or '!=' after ?{name}, found {other:?}"
                    )))
                }
            },
            Some(Token::Word(function)) => {
                let upper = function.to_ascii_uppercase();
                self.expect_punct('(')?;
                let variable = match self.next() {
                    Some(Token::Variable(name)) => name,
                    other => {
                        return Err(QueryParseError::new(format!(
                            "{function} expects a variable, found {other:?}"
                        )))
                    }
                };
                let filter = match upper.as_str() {
                    "ISIRI" | "ISURI" => FilterExpr::IsIri(variable),
                    "ISLITERAL" => FilterExpr::IsLiteral(variable),
                    "ISBLANK" => FilterExpr::IsBlank(variable),
                    "BOUND" => FilterExpr::Bound(variable),
                    "SAMETERM" => {
                        self.expect_punct(',')?;
                        let rhs = self.parse_pattern_term(false)?;
                        self.expect_punct(')')?;
                        self.expect_punct(')')?;
                        return Ok(FilterExpr::Equal(variable, rhs));
                    }
                    other => {
                        return Err(QueryParseError::new(format!(
                            "unsupported filter function '{other}'"
                        )))
                    }
                };
                self.expect_punct(')')?;
                filter
            }
            other => {
                return Err(QueryParseError::new(format!(
                    "unsupported filter expression starting with {other:?}"
                )))
            }
        };
        self.expect_punct(')')?;
        Ok(filter)
    }

    fn parse_pattern_term(&mut self, predicate: bool) -> Result<PatternTerm, QueryParseError> {
        match self.next() {
            Some(Token::Variable(name)) => Ok(PatternTerm::Variable(name)),
            Some(Token::Iri(iri)) => Ok(PatternTerm::iri(iri)),
            Some(Token::Blank(label)) => Ok(PatternTerm::Constant(Term::blank(label))),
            Some(Token::Integer(value)) => Ok(PatternTerm::Constant(Term::integer(value))),
            Some(Token::Literal {
                lexical,
                language,
                datatype,
            }) => {
                let term = if let Some(lang) = language {
                    Term::lang_literal(lexical, lang)
                } else if let Some(datatype) = datatype {
                    let iri = match datatype {
                        LiteralDatatype::Iri(iri) => iri,
                        LiteralDatatype::Prefixed(name) => self.expand(&name)?,
                    };
                    Term::typed_literal(lexical, iri)
                } else {
                    Term::plain_literal(lexical)
                };
                Ok(PatternTerm::Constant(term))
            }
            Some(Token::Word(word)) => {
                if predicate && word == "a" {
                    return Ok(PatternTerm::iri(vocab::RDF_TYPE));
                }
                Ok(PatternTerm::iri(self.expand(&word)?))
            }
            other => Err(QueryParseError::new(format!(
                "expected a term, found {other:?}"
            ))),
        }
    }

    /// Expands `prefix:local` against declared prefixes, falling back to the
    /// built-in rdf/rdfs/owl/xsd namespaces.
    fn expand(&self, name: &str) -> Result<String, QueryParseError> {
        let Some((prefix, local)) = name.split_once(':') else {
            return Err(QueryParseError::new(format!(
                "'{name}' is neither a variable, an IRI nor a prefixed name"
            )));
        };
        if let Some(namespace) = self.prefixes.get(prefix) {
            return Ok(format!("{namespace}{local}"));
        }
        let expanded = vocab::expand_curie(name);
        if expanded != name {
            Ok(expanded)
        } else {
            Err(QueryParseError::new(format!(
                "unknown prefix '{prefix}:' (declare it with PREFIX)"
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra::{FilterExpr, PatternTerm, QueryForm, Selection};

    #[test]
    fn parses_select_star_with_prefixes() {
        let q = parse_query(
            "PREFIX ex: <http://example.org/>\n\
             SELECT * WHERE { ?x a ex:Person . ?x ex:knows ?y }",
        )
        .unwrap();
        assert_eq!(q.form, QueryForm::Select);
        assert_eq!(q.select, Selection::All);
        assert_eq!(q.patterns.len(), 2);
        assert_eq!(
            q.patterns[0].p,
            PatternTerm::iri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")
        );
        assert_eq!(
            q.patterns[0].o,
            PatternTerm::iri("http://example.org/Person")
        );
        assert_eq!(q.pattern_variables(), vec!["x", "y"]);
    }

    #[test]
    fn parses_projection_distinct_limit_offset() {
        let q = parse_query(
            "PREFIX ex: <http://ex/> \
             SELECT DISTINCT ?who WHERE { ?who ex:worksFor ?org . } LIMIT 10 OFFSET 3",
        )
        .unwrap();
        assert!(q.distinct);
        assert_eq!(q.select, Selection::Variables(vec!["who".into()]));
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, 3);
    }

    #[test]
    fn modifiers_accept_either_order_but_reject_repeats() {
        // Either order parses ...
        let q = parse_query("SELECT * WHERE { ?x ?p ?o } OFFSET 3 LIMIT 10").unwrap();
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, 3);
        // ... but a repeated clause is a positioned parse error, not a
        // silent last-one-wins.
        for (query, clause) in [
            ("SELECT * WHERE { ?x ?p ?o } LIMIT 10 LIMIT 0", "LIMIT"),
            ("SELECT * WHERE { ?x ?p ?o } OFFSET 1 OFFSET 2", "OFFSET"),
            (
                "SELECT * WHERE { ?x ?p ?o } LIMIT 10 OFFSET 1 LIMIT 0",
                "LIMIT",
            ),
            ("ASK { ?x ?p ?o } OFFSET 1 LIMIT 2 OFFSET 3", "OFFSET"),
        ] {
            let error = parse_query(query).expect_err(query);
            assert!(
                error
                    .message
                    .contains(&format!("duplicate {clause} clause")),
                "{query}: {error}"
            );
            assert!(
                error.message.contains("at token"),
                "error is positioned: {error}"
            );
        }
    }

    #[test]
    fn parses_predicate_and_object_lists() {
        let q = parse_query(
            "PREFIX ex: <http://ex/> \
             SELECT * WHERE { ?x ex:p ?a , ?b ; ex:q ?c . }",
        )
        .unwrap();
        assert_eq!(q.patterns.len(), 3);
        assert!(q.patterns.iter().all(|p| p.s == PatternTerm::var("x")));
        assert_eq!(q.patterns[0].o, PatternTerm::var("a"));
        assert_eq!(q.patterns[1].o, PatternTerm::var("b"));
        assert_eq!(q.patterns[2].p, PatternTerm::iri("http://ex/q"));
    }

    #[test]
    fn parses_filters() {
        let q = parse_query(
            "PREFIX ex: <http://ex/> \
             SELECT * WHERE { ?x ex:knows ?y . FILTER(?x != ?y) FILTER(isIRI(?x)) }",
        )
        .unwrap();
        assert_eq!(q.filters.len(), 2);
        assert_eq!(
            q.filters[0],
            FilterExpr::NotEqual("x".into(), PatternTerm::var("y"))
        );
        assert_eq!(q.filters[1], FilterExpr::IsIri("x".into()));
    }

    #[test]
    fn parses_equality_filter_and_same_term() {
        let q = parse_query(
            "SELECT * WHERE { ?x <http://ex/p> ?y . FILTER(?y = \"42\"^^<http://www.w3.org/2001/XMLSchema#integer>) }",
        )
        .unwrap();
        assert_eq!(
            q.filters[0],
            FilterExpr::Equal(
                "y".into(),
                PatternTerm::Constant(Term::typed_literal(
                    "42",
                    "http://www.w3.org/2001/XMLSchema#integer"
                ))
            )
        );
        let q = parse_query(
            "SELECT * WHERE { ?x <http://ex/p> ?y . FILTER(sameTerm(?y, <http://ex/a>)) }",
        )
        .unwrap();
        assert_eq!(
            q.filters[0],
            FilterExpr::Equal("y".into(), PatternTerm::iri("http://ex/a"))
        );
    }

    #[test]
    fn parses_literals_language_tags_and_integers() {
        let q = parse_query(
            "PREFIX ex: <http://ex/> \
             SELECT * WHERE { ?x ex:label \"chat\"@fr . ?x ex:age 7 . ?x ex:note \"a\\nb\" }",
        )
        .unwrap();
        assert_eq!(
            q.patterns[0].o,
            PatternTerm::Constant(Term::lang_literal("chat", "fr"))
        );
        assert_eq!(q.patterns[1].o, PatternTerm::Constant(Term::integer(7)));
        assert_eq!(
            q.patterns[2].o,
            PatternTerm::Constant(Term::plain_literal("a\nb"))
        );
    }

    #[test]
    fn parses_ask_queries() {
        let q = parse_query("ASK { <http://ex/s> <http://ex/p> <http://ex/o> }").unwrap();
        assert_eq!(q.form, QueryForm::Ask);
        assert_eq!(q.patterns.len(), 1);
        let q = parse_query("ASK WHERE { ?x ?p ?o }").unwrap();
        assert_eq!(q.form, QueryForm::Ask);
    }

    #[test]
    fn builtin_prefixes_work_without_declaration() {
        let q = parse_query("SELECT * WHERE { ?c rdfs:subClassOf ?d }").unwrap();
        assert_eq!(
            q.patterns[0].p,
            PatternTerm::iri("http://www.w3.org/2000/01/rdf-schema#subClassOf")
        );
    }

    #[test]
    fn comments_and_blank_nodes_are_tolerated() {
        let q = parse_query(
            "# a comment\nSELECT * WHERE { _:b <http://ex/p> ?x . # trailing comment\n }",
        )
        .unwrap();
        assert_eq!(q.patterns[0].s, PatternTerm::Constant(Term::blank("b")));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_query("SELECT WHERE { ?x ?p ?o }").is_err());
        assert!(parse_query("SELECT * WHERE { ?x ?p }").is_err());
        assert!(parse_query("SELECT * WHERE { ?x ?p ?o ").is_err());
        assert!(parse_query("SELECT * WHERE { ?x unknown:p ?o }").is_err());
        assert!(parse_query("CONSTRUCT { ?x ?p ?o } WHERE { ?x ?p ?o }").is_err());
        assert!(parse_query("SELECT * WHERE { ?x <http://ex/p ?o }").is_err());
        assert!(parse_query("SELECT * WHERE { ?x ?p ?o } LIMIT ?x").is_err());
        assert!(parse_query("SELECT * WHERE { ?x ?p ?o } nonsense").is_err());
    }

    #[test]
    fn rejects_unsupported_filter_functions() {
        assert!(parse_query("SELECT * WHERE { ?x ?p ?o . FILTER(regex(?o, \"x\")) }").is_err());
    }

    #[test]
    fn accepts_well_formed_language_tags() {
        let q = parse_query("SELECT * WHERE { ?x ?p \"chat\"@fr-BE-1x }").unwrap();
        assert_eq!(
            q.patterns[0].o,
            PatternTerm::Constant(Term::lang_literal("chat", "fr-be-1x"))
        );
    }

    #[test]
    fn rejects_malformed_language_tags() {
        // Empty tag: previously parsed as `"x"` with language "" followed
        // by a bare '.', silently matching nothing.
        assert!(parse_query("SELECT * WHERE { ?s ?p \"x\"@ . }").is_err());
        // Leading/trailing/doubled '-' and leading digits.
        assert!(parse_query("SELECT * WHERE { ?s ?p \"x\"@-en }").is_err());
        assert!(parse_query("SELECT * WHERE { ?s ?p \"x\"@en- }").is_err());
        assert!(parse_query("SELECT * WHERE { ?s ?p \"x\"@en--us }").is_err());
        assert!(parse_query("SELECT * WHERE { ?s ?p \"x\"@7up }").is_err());
        // Non-ASCII letters are not part of the N-Triples production.
        assert!(parse_query("SELECT * WHERE { ?s ?p \"x\"@én }").is_err());
    }
}
