//! Pattern-at-a-time evaluation of a basic graph pattern over the
//! vertically partitioned store.
//!
//! Every triple pattern with a bound predicate resolves to one property
//! table and is answered with the same primitives the reasoner's sort-merge
//! joins use: binary search for fully bound patterns, a contiguous run scan
//! for `(s, p, ?)`, the ⟨o,s⟩ cache for `(?, p, o)` when it is materialized,
//! and a sequential sweep otherwise. Unbound predicates iterate over the
//! property tables — the cost the vertical-partitioning design accepts for
//! its fast bound-predicate path.

use inferray_store::TripleStore;

/// One position of a compiled pattern: a dictionary identifier or a variable
/// slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// A constant, already dictionary-encoded.
    Bound(u64),
    /// A variable, identified by its slot index in the binding rows.
    Var(usize),
}

/// A triple pattern with every constant dictionary-encoded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct CompiledPattern {
    pub(crate) s: Slot,
    pub(crate) p: Slot,
    pub(crate) o: Slot,
}

/// A partial binding row: one entry per variable slot.
pub(crate) type Row = Vec<Option<u64>>;

/// Evaluates the ordered patterns and returns every complete binding row.
pub(crate) fn evaluate_bgp(
    store: &TripleStore,
    patterns: &[CompiledPattern],
    variable_count: usize,
) -> Vec<Row> {
    let mut rows: Vec<Row> = vec![vec![None; variable_count]];
    for pattern in patterns {
        if rows.is_empty() {
            break;
        }
        let mut next = Vec::new();
        for row in &rows {
            extend_row(store, pattern, row, &mut next);
        }
        rows = next;
    }
    rows
}

/// Produces every extension of `row` that matches `pattern`.
fn extend_row(store: &TripleStore, pattern: &CompiledPattern, row: &Row, out: &mut Vec<Row>) {
    let resolve = |slot: Slot| -> Slot {
        match slot {
            Slot::Bound(id) => Slot::Bound(id),
            Slot::Var(index) => match row[index] {
                Some(value) => Slot::Bound(value),
                None => Slot::Var(index),
            },
        }
    };
    let s = resolve(pattern.s);
    let p = resolve(pattern.p);
    let o = resolve(pattern.o);

    let mut emit = |s_value: u64, p_value: u64, o_value: u64| {
        let mut extended = row.clone();
        if try_bind(&mut extended, pattern.s, s_value)
            && try_bind(&mut extended, pattern.p, p_value)
            && try_bind(&mut extended, pattern.o, o_value)
        {
            out.push(extended);
        }
    };

    match p {
        Slot::Bound(p_value) => {
            // A predicate position can resolve to a non-property identifier
            // (a literal constant, or a variable bound to a resource by an
            // earlier pattern); no triple can match it.
            if !inferray_model::ids::is_property_id(p_value) {
                return;
            }
            if let Some(table) = store.table(p_value) {
                match_in_table(table, p_value, s, o, &mut emit);
            }
        }
        Slot::Var(_) => {
            for (p_value, table) in store.iter_tables() {
                match_in_table(table, p_value, s, o, &mut emit);
            }
        }
    }
}

/// Enumerates the `(s, o)` pairs of one property table that satisfy the
/// resolved subject/object constraints.
fn match_in_table(
    table: &inferray_store::PropertyTable,
    p_value: u64,
    s: Slot,
    o: Slot,
    emit: &mut impl FnMut(u64, u64, u64),
) {
    match (s, o) {
        (Slot::Bound(s_value), Slot::Bound(o_value)) => {
            if table.contains_pair(s_value, o_value) {
                emit(s_value, p_value, o_value);
            }
        }
        (Slot::Bound(s_value), Slot::Var(_)) => {
            for o_value in table.objects_of(s_value) {
                emit(s_value, p_value, o_value);
            }
        }
        (Slot::Var(_), Slot::Bound(o_value)) => {
            if table.has_os_cache() {
                for s_value in table.subjects_of(o_value) {
                    emit(s_value, p_value, o_value);
                }
            } else {
                for (s_value, object) in table.iter_pairs() {
                    if object == o_value {
                        emit(s_value, p_value, o_value);
                    }
                }
            }
        }
        (Slot::Var(_), Slot::Var(_)) => {
            for (s_value, o_value) in table.iter_pairs() {
                emit(s_value, p_value, o_value);
            }
        }
    }
}

/// Binds `value` to the variable behind `slot` (no-op for constants),
/// returning `false` when it conflicts with an existing binding — which
/// happens when the same variable occurs in several positions of one
/// pattern (e.g. `?x ?p ?x`).
fn try_bind(row: &mut Row, slot: Slot, value: u64) -> bool {
    match slot {
        Slot::Bound(_) => true,
        Slot::Var(index) => match row[index] {
            None => {
                row[index] = Some(value);
                true
            }
            Some(existing) => existing == value,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    const A: u64 = 5_000_000;
    const B: u64 = 5_000_001;
    const C: u64 = 5_000_002;

    fn knows() -> u64 {
        nth_property_id(30)
    }

    fn likes() -> u64 {
        nth_property_id(31)
    }

    fn store() -> TripleStore {
        TripleStore::from_triples([
            IdTriple::new(A, knows(), B),
            IdTriple::new(B, knows(), C),
            IdTriple::new(A, likes(), A),
            IdTriple::new(C, likes(), A),
        ])
    }

    #[test]
    fn single_pattern_enumerates_a_table() {
        let store = store();
        let pattern = CompiledPattern {
            s: Slot::Var(0),
            p: Slot::Bound(knows()),
            o: Slot::Var(1),
        };
        let rows = evaluate_bgp(&store, &[pattern], 2);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Some(A), Some(B)]));
        assert!(rows.contains(&vec![Some(B), Some(C)]));
    }

    #[test]
    fn two_patterns_join_on_the_shared_variable() {
        let store = store();
        // ?x knows ?y . ?y knows ?z  =>  only A -> B -> C.
        let patterns = [
            CompiledPattern {
                s: Slot::Var(0),
                p: Slot::Bound(knows()),
                o: Slot::Var(1),
            },
            CompiledPattern {
                s: Slot::Var(1),
                p: Slot::Bound(knows()),
                o: Slot::Var(2),
            },
        ];
        let rows = evaluate_bgp(&store, &patterns, 3);
        assert_eq!(rows, vec![vec![Some(A), Some(B), Some(C)]]);
    }

    #[test]
    fn repeated_variable_within_a_pattern_requires_equality() {
        let store = store();
        // ?x likes ?x  =>  only (A likes A).
        let pattern = CompiledPattern {
            s: Slot::Var(0),
            p: Slot::Bound(likes()),
            o: Slot::Var(0),
        };
        let rows = evaluate_bgp(&store, &[pattern], 1);
        assert_eq!(rows, vec![vec![Some(A)]]);
    }

    #[test]
    fn unbound_predicate_scans_every_table() {
        let store = store();
        let pattern = CompiledPattern {
            s: Slot::Bound(A),
            p: Slot::Var(0),
            o: Slot::Var(1),
        };
        let rows = evaluate_bgp(&store, &[pattern], 2);
        assert_eq!(rows.len(), 2);
        assert!(rows.contains(&vec![Some(knows()), Some(B)]));
        assert!(rows.contains(&vec![Some(likes()), Some(A)]));
    }

    #[test]
    fn bound_object_works_with_and_without_the_os_cache() {
        let mut store = store();
        let pattern = CompiledPattern {
            s: Slot::Var(0),
            p: Slot::Bound(likes()),
            o: Slot::Bound(A),
        };
        let before = evaluate_bgp(&store, &[pattern], 1);
        store.ensure_all_os();
        let after = evaluate_bgp(&store, &[pattern], 1);
        let mut before = before;
        let mut after = after;
        before.sort();
        after.sort();
        assert_eq!(before, after);
        assert_eq!(before.len(), 2);
    }

    #[test]
    fn fully_bound_pattern_filters_rows() {
        let store = store();
        let hit = CompiledPattern {
            s: Slot::Bound(A),
            p: Slot::Bound(knows()),
            o: Slot::Bound(B),
        };
        assert_eq!(
            evaluate_bgp(&store, &[hit], 0),
            vec![Vec::<Option<u64>>::new()]
        );
        let miss = CompiledPattern {
            s: Slot::Bound(A),
            p: Slot::Bound(knows()),
            o: Slot::Bound(C),
        };
        assert!(evaluate_bgp(&store, &[miss], 0).is_empty());
    }

    #[test]
    fn missing_table_yields_no_rows() {
        let store = store();
        let pattern = CompiledPattern {
            s: Slot::Var(0),
            p: Slot::Bound(nth_property_id(77)),
            o: Slot::Var(1),
        };
        assert!(evaluate_bgp(&store, &[pattern], 2).is_empty());
    }

    #[test]
    fn cartesian_product_when_patterns_share_no_variable() {
        let store = store();
        let patterns = [
            CompiledPattern {
                s: Slot::Var(0),
                p: Slot::Bound(knows()),
                o: Slot::Var(1),
            },
            CompiledPattern {
                s: Slot::Var(2),
                p: Slot::Bound(likes()),
                o: Slot::Var(3),
            },
        ];
        let rows = evaluate_bgp(&store, &patterns, 4);
        assert_eq!(rows.len(), 4); // 2 knows × 2 likes
    }
}
