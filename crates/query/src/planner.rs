//! Greedy selectivity-based ordering of the BGP's triple patterns.
//!
//! The executor evaluates the BGP pattern-at-a-time, so the join order
//! decides how many intermediate bindings are produced. The planner uses the
//! only statistics the vertically partitioned store exposes for free — the
//! per-property table sizes — and a classic greedy heuristic: repeatedly
//! pick the cheapest pattern among those connected to the variables already
//! bound, falling back to the globally cheapest pattern when nothing is
//! connected (a cartesian product is unavoidable then).

use crate::executor::{CompiledPattern, Slot};
use inferray_store::TripleStore;
use std::collections::HashSet;

/// Orders compiled patterns for evaluation and returns the ordered list.
pub(crate) fn order_patterns(
    store: &TripleStore,
    patterns: Vec<CompiledPattern>,
) -> Vec<CompiledPattern> {
    let total: usize = store.len().max(1);
    let mut remaining = patterns;
    let mut ordered = Vec::with_capacity(remaining.len());
    let mut bound: HashSet<usize> = HashSet::new();

    while !remaining.is_empty() {
        let connected_exists = remaining
            .iter()
            .any(|p| !bound.is_empty() && shares_variable(p, &bound));
        let mut best_index = 0;
        let mut best_cost = f64::INFINITY;
        for (index, pattern) in remaining.iter().enumerate() {
            if connected_exists && !shares_variable(pattern, &bound) {
                continue;
            }
            let cost = pattern_cost(store, pattern, &bound, total);
            if cost < best_cost {
                best_cost = cost;
                best_index = index;
            }
        }
        let chosen = remaining.swap_remove(best_index);
        for slot in [&chosen.s, &chosen.p, &chosen.o] {
            if let Slot::Var(index) = slot {
                bound.insert(*index);
            }
        }
        ordered.push(chosen);
    }
    ordered
}

fn shares_variable(pattern: &CompiledPattern, bound: &HashSet<usize>) -> bool {
    [&pattern.s, &pattern.p, &pattern.o]
        .iter()
        .any(|slot| matches!(slot, Slot::Var(index) if bound.contains(index)))
}

/// Estimated number of bindings the pattern produces given the variables
/// already bound by earlier patterns.
pub(crate) fn pattern_cost(
    store: &TripleStore,
    pattern: &CompiledPattern,
    bound: &HashSet<usize>,
    total: usize,
) -> f64 {
    let is_bound = |slot: &Slot| match slot {
        Slot::Bound(_) => true,
        Slot::Var(index) => bound.contains(index),
    };
    let s_bound = is_bound(&pattern.s);
    let o_bound = is_bound(&pattern.o);
    match &pattern.p {
        Slot::Bound(p) => {
            let table_len = store.table(*p).map_or(0, |t| t.len()) as f64;
            if table_len == 0.0 {
                return 0.0;
            }
            match (s_bound, o_bound) {
                (true, true) => 1.0,
                // One bound key selects a run of the sorted table; the square
                // root is the usual textbook guess without histograms.
                (true, false) | (false, true) => table_len.sqrt().max(1.0),
                (false, false) => table_len,
            }
        }
        Slot::Var(index) => {
            let scan = total as f64 * 1.5;
            let selectivity = match (s_bound, o_bound, bound.contains(index)) {
                (_, _, true) => 0.5,
                (true, true, _) => 0.1,
                (true, false, _) | (false, true, _) => 0.5,
                (false, false, _) => 1.0,
            };
            (scan * selectivity).max(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn store() -> TripleStore {
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        let mut triples = vec![IdTriple::new(1_000_000, p_small, 1_000_001)];
        for i in 0..100 {
            triples.push(IdTriple::new(2_000_000 + i, p_large, 3_000_000));
        }
        TripleStore::from_triples(triples)
    }

    fn pattern(s: Slot, p: Slot, o: Slot) -> CompiledPattern {
        CompiledPattern { s, p, o }
    }

    #[test]
    fn cheaper_table_is_scheduled_first() {
        let store = store();
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        // ?x <small> ?y  vs  ?y <large> ?z — the small table should lead.
        let patterns = vec![
            pattern(Slot::Var(1), Slot::Bound(p_large), Slot::Var(2)),
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(1)),
        ];
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered[0].p, Slot::Bound(p_small));
        assert_eq!(ordered[1].p, Slot::Bound(p_large));
    }

    #[test]
    fn connected_patterns_are_preferred_over_cheaper_disconnected_ones() {
        let store = store();
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        // Start from the small table (vars 0,1); the next pick must join on
        // var 1 even though the disconnected pattern over the small table
        // would be cheaper in isolation.
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(1)),
            pattern(Slot::Var(5), Slot::Bound(p_small), Slot::Var(6)),
            pattern(Slot::Var(1), Slot::Bound(p_large), Slot::Var(2)),
        ];
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered[0].p, Slot::Bound(p_small));
        assert_eq!(ordered[1].s, Slot::Var(1));
        assert_eq!(ordered[2].s, Slot::Var(5));
    }

    #[test]
    fn leading_unbound_predicate_pattern_is_deferred() {
        // Written order starts with a whole-store scan (`?x ?p ?y`): the
        // row-explosion guard must schedule the selective bound-predicate
        // pattern first, because a bound-predicate pattern never costs more
        // than its table (≤ store size) while an unconstrained unbound
        // predicate is costed as a full scan with slack (size × 1.5).
        let store = store();
        let p_small = nth_property_id(20);
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Var(1), Slot::Var(2)),
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(3)),
        ];
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered[0].p, Slot::Bound(p_small));
        assert!(matches!(ordered[1].p, Slot::Var(_)));
    }

    #[test]
    fn unconstrained_scan_never_precedes_any_bound_predicate_pattern() {
        // The invariant behind the guard, checked against both tables: even
        // the *largest* property table is preferred over the unbound scan.
        let store = store();
        let total = store.len();
        let bound = HashSet::new();
        let scan = pattern(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        let scan_cost = pattern_cost(&store, &scan, &bound, total);
        for p in [nth_property_id(20), nth_property_id(21)] {
            let candidate = pattern(Slot::Var(0), Slot::Bound(p), Slot::Var(1));
            assert!(
                pattern_cost(&store, &candidate, &bound, total) < scan_cost,
                "bound-predicate pattern over table {p} must beat the scan"
            );
        }
    }

    #[test]
    fn fully_bound_pattern_wins() {
        let store = store();
        let p_large = nth_property_id(21);
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Bound(p_large), Slot::Var(1)),
            pattern(
                Slot::Bound(2_000_000),
                Slot::Bound(p_large),
                Slot::Bound(3_000_000),
            ),
        ];
        let ordered = order_patterns(&store, patterns);
        assert!(matches!(ordered[0].s, Slot::Bound(_)));
    }

    #[test]
    fn empty_table_costs_nothing() {
        let store = store();
        let missing = nth_property_id(99);
        let bound = HashSet::new();
        let p = pattern(Slot::Var(0), Slot::Bound(missing), Slot::Var(1));
        assert_eq!(pattern_cost(&store, &p, &bound, store.len()), 0.0);
    }

    #[test]
    fn unbound_predicate_is_costed_as_a_scan() {
        let store = store();
        let bound = HashSet::new();
        let p = pattern(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        let cost = pattern_cost(&store, &p, &bound, store.len());
        assert!(cost >= store.len() as f64);
    }
}
