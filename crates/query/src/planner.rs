//! Cardinality-driven ordering of the BGP's triple patterns.
//!
//! The executor evaluates the BGP pattern-at-a-time, so the join order
//! decides how many intermediate bindings are produced. The planner derives
//! its estimates straight from the sorted pair tables: the exact per-property
//! pair count (`PropertyTable::len`) and bounded distinct-subject /
//! distinct-object counts obtained by galloping over the ⟨s,o⟩ and ⟨o,s⟩
//! layouts (`distinct_subjects` / `distinct_objects`). From those three
//! numbers the expected output per input binding is the classic uniform
//! model: `n` for an open scan, `n/ds` with the subject bound, `n/do` with
//! the object bound, and `n/(ds·do)` (clamped to one row — pairs are
//! duplicate-free) with both bound.
//!
//! For BGPs of up to [`EXHAUSTIVE_LIMIT`] patterns the planner enumerates
//! every permutation and picks the one minimizing the total estimated
//! intermediate rows, so the chosen order is cost-minimal by construction.
//! Ties are broken deterministically: first by deferring cartesian products
//! (the lexicographically smallest disconnected-pick vector), then by the
//! written pattern order. Larger BGPs fall back to the greedy
//! connected-cheapest-first heuristic with the same per-pattern estimates.

use crate::executor::{CompiledPattern, Slot};
use inferray_store::{PropertyTable, TripleStore};
use std::collections::HashSet;

/// BGPs with at most this many patterns are planned by exhaustive
/// permutation search (≤ 24 orders); larger ones fall back to the greedy
/// heuristic.
const EXHAUSTIVE_LIMIT: usize = 4;

/// Row budget handed to the bounded distinct-key estimators. Sixty-four
/// binary-search probes per table keep planning O(patterns · tables · log n)
/// while staying exact for the small tables where precision matters most.
const DISTINCT_BUDGET: usize = 64;

/// Slack multiplier for unbound-predicate scans: iterating every property
/// table costs more than the sum of their lengths suggests, and the planner
/// must never prefer such a scan over an equally sized single-table pattern.
const SCAN_SLACK: f64 = 1.5;

/// Relative tolerance when comparing plan costs: different summation orders
/// of the same estimates may differ by float rounding, and such plans must
/// fall through to the deterministic tie-breaks.
const COST_EPSILON: f64 = 1e-9;

/// Orders compiled patterns for evaluation and returns the ordered list.
pub(crate) fn order_patterns(
    store: &TripleStore,
    patterns: Vec<CompiledPattern>,
) -> Vec<CompiledPattern> {
    if patterns.len() <= 1 {
        return patterns;
    }
    if patterns.len() <= EXHAUSTIVE_LIMIT {
        order_exhaustive(store, patterns)
    } else {
        order_greedy(store, patterns)
    }
}

/// Enumerates every permutation (lexicographic over the written pattern
/// indices) and keeps the minimal-cost one; see the module docs for the
/// tie-break rules.
fn order_exhaustive(store: &TripleStore, patterns: Vec<CompiledPattern>) -> Vec<CompiledPattern> {
    let mut best: Option<(f64, Vec<bool>, Vec<usize>)> = None;
    for order in permutations(patterns.len()) {
        let (cost, disconnects) = plan_cost(store, &patterns, &order);
        let better = match &best {
            None => true,
            Some((best_cost, best_disconnects, _)) => {
                if approx_eq(cost, *best_cost) {
                    disconnects < *best_disconnects
                } else {
                    cost < *best_cost
                }
            }
        };
        if better {
            best = Some((cost, disconnects, order));
        }
    }
    let order = match best {
        Some((_, _, order)) => order,
        None => (0..patterns.len()).collect(),
    };
    order.iter().map(|&index| patterns[index]).collect()
}

/// Greedy fallback for large BGPs: repeatedly pick the cheapest pattern
/// among those connected to the variables already bound, falling back to the
/// globally cheapest pattern when nothing is connected (a cartesian product
/// is unavoidable then). Ties keep the written order.
fn order_greedy(store: &TripleStore, patterns: Vec<CompiledPattern>) -> Vec<CompiledPattern> {
    let mut remaining = patterns;
    let mut ordered = Vec::with_capacity(remaining.len());
    let mut bound: HashSet<usize> = HashSet::new();

    while !remaining.is_empty() {
        let connected_exists = remaining
            .iter()
            .any(|p| !bound.is_empty() && shares_variable(p, &bound));
        let mut best_index = 0;
        let mut best_cost = f64::INFINITY;
        for (index, pattern) in remaining.iter().enumerate() {
            if connected_exists && !shares_variable(pattern, &bound) {
                continue;
            }
            let cost = pattern_cost(store, pattern, &bound);
            if cost < best_cost {
                best_cost = cost;
                best_index = index;
            }
        }
        let chosen = remaining.remove(best_index);
        bind_variables(&chosen, &mut bound);
        ordered.push(chosen);
    }
    ordered
}

/// Total estimated intermediate rows of evaluating `patterns` in `order`,
/// plus the per-position disconnected-pick flags used for tie-breaking.
fn plan_cost(
    store: &TripleStore,
    patterns: &[CompiledPattern],
    order: &[usize],
) -> (f64, Vec<bool>) {
    let mut bound: HashSet<usize> = HashSet::new();
    let mut rows = 1.0_f64;
    let mut cost = 0.0_f64;
    let mut disconnects = Vec::with_capacity(order.len());
    for &index in order {
        let pattern = &patterns[index];
        disconnects
            .push(!bound.is_empty() && has_variable(pattern) && !shares_variable(pattern, &bound));
        rows *= pattern_cost(store, pattern, &bound);
        cost += rows;
        bind_variables(pattern, &mut bound);
    }
    (cost, disconnects)
}

fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= COST_EPSILON * a.abs().max(b.abs()).max(1.0)
}

fn bind_variables(pattern: &CompiledPattern, bound: &mut HashSet<usize>) {
    for slot in [&pattern.s, &pattern.p, &pattern.o] {
        if let Slot::Var(index) = slot {
            bound.insert(*index);
        }
    }
}

fn has_variable(pattern: &CompiledPattern) -> bool {
    [&pattern.s, &pattern.p, &pattern.o]
        .iter()
        .any(|slot| matches!(slot, Slot::Var(_)))
}

fn shares_variable(pattern: &CompiledPattern, bound: &HashSet<usize>) -> bool {
    [&pattern.s, &pattern.p, &pattern.o]
        .iter()
        .any(|slot| matches!(slot, Slot::Var(index) if bound.contains(index)))
}

/// All permutations of `0..len` in lexicographic order.
fn permutations(len: usize) -> Vec<Vec<usize>> {
    fn recurse(len: usize, current: &mut Vec<usize>, used: &mut [bool], out: &mut Vec<Vec<usize>>) {
        if current.len() == len {
            out.push(current.clone());
            return;
        }
        for index in 0..len {
            if !used[index] {
                used[index] = true;
                current.push(index);
                recurse(len, current, used, out);
                current.pop();
                used[index] = false;
            }
        }
    }
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(len);
    let mut used = vec![false; len];
    recurse(len, &mut current, &mut used, &mut out);
    out
}

/// Estimated number of bindings the pattern produces per input row, given
/// the variables already bound by earlier patterns.
pub(crate) fn pattern_cost(
    store: &TripleStore,
    pattern: &CompiledPattern,
    bound: &HashSet<usize>,
) -> f64 {
    let is_bound = |slot: &Slot| match slot {
        Slot::Bound(_) => true,
        Slot::Var(index) => bound.contains(index),
    };
    let s_bound = is_bound(&pattern.s);
    let o_bound = is_bound(&pattern.o);
    match &pattern.p {
        Slot::Bound(p) => match store.table(*p) {
            Some(table) => table_estimate(table, s_bound, o_bound),
            None => 0.0,
        },
        Slot::Var(index) => {
            let mut sum = 0.0;
            let mut tables = 0_usize;
            for (_, table) in store.iter_tables() {
                sum += table_estimate(table, s_bound, o_bound);
                tables += 1;
            }
            if tables == 0 {
                return 0.0;
            }
            if bound.contains(index) {
                // The variable resolves to one concrete predicate per input
                // row, selecting a single table: cost the average one.
                (sum / tables as f64).max(1.0)
            } else {
                (sum * SCAN_SLACK).max(1.0)
            }
        }
    }
}

/// Expected matches in one property table for the given bound positions,
/// under the uniform-distribution model over `n` duplicate-free pairs with
/// `ds` distinct subjects and `do` distinct objects.
fn table_estimate(table: &PropertyTable, s_bound: bool, o_bound: bool) -> f64 {
    let n = table.len() as f64;
    if n == 0.0 {
        return 0.0;
    }
    let distinct_subjects = || table.distinct_subjects(DISTINCT_BUDGET).count.max(1) as f64;
    // The ⟨o,s⟩ layout exists on published snapshots (ensure_all_os runs
    // before every publish); on a raw store fall back to the textbook
    // square-root guess rather than materializing the cache mid-planning.
    let distinct_objects = || {
        table
            .distinct_objects(DISTINCT_BUDGET)
            .map(|d| d.count.max(1) as f64)
    };
    match (s_bound, o_bound) {
        (true, true) => {
            let ds = distinct_subjects();
            let dobj = distinct_objects().unwrap_or_else(|| n.sqrt().max(1.0));
            (n / (ds * dobj)).min(1.0)
        }
        (true, false) => (n / distinct_subjects()).max(1.0),
        (false, true) => match distinct_objects() {
            Some(dobj) => (n / dobj).max(1.0),
            None => n.sqrt().max(1.0),
        },
        (false, false) => n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{evaluate_bgp, Row};
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn store() -> TripleStore {
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        let mut triples = vec![IdTriple::new(1_000_000, p_small, 1_000_001)];
        for i in 0..100 {
            triples.push(IdTriple::new(2_000_000 + i, p_large, 3_000_000));
        }
        TripleStore::from_triples(triples)
    }

    fn pattern(s: Slot, p: Slot, o: Slot) -> CompiledPattern {
        CompiledPattern { s, p, o }
    }

    #[test]
    fn cheaper_table_is_scheduled_first() {
        let store = store();
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        // ?x <small> ?y  vs  ?y <large> ?z — the small table should lead.
        let patterns = vec![
            pattern(Slot::Var(1), Slot::Bound(p_large), Slot::Var(2)),
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(1)),
        ];
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered[0].p, Slot::Bound(p_small));
        assert_eq!(ordered[1].p, Slot::Bound(p_large));
    }

    #[test]
    fn connected_patterns_are_preferred_over_cheaper_disconnected_ones() {
        let store = store();
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        // Start from the small table (vars 0,1); the next pick must join on
        // var 1 even though the disconnected pattern over the small table
        // would be cheaper in isolation.
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(1)),
            pattern(Slot::Var(5), Slot::Bound(p_small), Slot::Var(6)),
            pattern(Slot::Var(1), Slot::Bound(p_large), Slot::Var(2)),
        ];
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered[0].p, Slot::Bound(p_small));
        assert_eq!(ordered[1].s, Slot::Var(1));
        assert_eq!(ordered[2].s, Slot::Var(5));
    }

    #[test]
    fn leading_unbound_predicate_pattern_is_deferred() {
        // Written order starts with a whole-store scan (`?x ?p ?y`): the
        // planner must schedule the selective bound-predicate pattern first,
        // because a bound-predicate pattern never costs more than its table
        // (≤ store size) while an unconstrained unbound predicate is costed
        // as a full scan with slack.
        let store = store();
        let p_small = nth_property_id(20);
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Var(1), Slot::Var(2)),
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(3)),
        ];
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered[0].p, Slot::Bound(p_small));
        assert!(matches!(ordered[1].p, Slot::Var(_)));
    }

    #[test]
    fn unconstrained_scan_never_precedes_any_bound_predicate_pattern() {
        // The invariant behind the scan slack, checked against both tables:
        // even the *largest* property table is preferred over the unbound
        // scan.
        let store = store();
        let bound = HashSet::new();
        let scan = pattern(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        let scan_cost = pattern_cost(&store, &scan, &bound);
        for p in [nth_property_id(20), nth_property_id(21)] {
            let candidate = pattern(Slot::Var(0), Slot::Bound(p), Slot::Var(1));
            assert!(
                pattern_cost(&store, &candidate, &bound) < scan_cost,
                "bound-predicate pattern over table {p} must beat the scan"
            );
        }
    }

    #[test]
    fn fully_bound_pattern_wins() {
        let store = store();
        let p_large = nth_property_id(21);
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Bound(p_large), Slot::Var(1)),
            pattern(
                Slot::Bound(2_000_000),
                Slot::Bound(p_large),
                Slot::Bound(3_000_000),
            ),
        ];
        let ordered = order_patterns(&store, patterns);
        assert!(matches!(ordered[0].s, Slot::Bound(_)));
    }

    #[test]
    fn empty_table_costs_nothing() {
        let store = store();
        let missing = nth_property_id(99);
        let bound = HashSet::new();
        let p = pattern(Slot::Var(0), Slot::Bound(missing), Slot::Var(1));
        assert_eq!(pattern_cost(&store, &p, &bound), 0.0);
    }

    #[test]
    fn unbound_predicate_is_costed_as_a_scan() {
        let store = store();
        let bound = HashSet::new();
        let p = pattern(Slot::Var(0), Slot::Var(1), Slot::Var(2));
        let cost = pattern_cost(&store, &p, &bound);
        assert!(cost >= store.len() as f64);
    }

    #[test]
    fn bound_object_estimate_uses_the_os_layout_when_materialized() {
        // The large table holds 100 pairs with a single shared object: with
        // the ⟨o,s⟩ cache the planner knows a bound object selects the whole
        // table (100 expected rows); without it the square-root fallback
        // guesses 10.
        let mut store = store();
        let p_large = nth_property_id(21);
        let bound = HashSet::new();
        let probe = pattern(Slot::Var(0), Slot::Bound(p_large), Slot::Bound(3_000_000));
        let without_cache = pattern_cost(&store, &probe, &bound);
        assert_eq!(without_cache, 10.0);
        store.ensure_all_os();
        let with_cache = pattern_cost(&store, &probe, &bound);
        assert_eq!(with_cache, 100.0);
    }

    #[test]
    fn bound_subject_estimate_is_the_average_run_length() {
        // 100 distinct subjects over 100 pairs: one expected row per bound
        // subject. A second property with repeated subjects must estimate
        // its longer runs.
        let store = store();
        let p_large = nth_property_id(21);
        let mut bound = HashSet::new();
        bound.insert(0);
        let probe = pattern(Slot::Var(0), Slot::Bound(p_large), Slot::Var(1));
        assert_eq!(pattern_cost(&store, &probe, &bound), 1.0);

        let p_fanout = nth_property_id(22);
        let fanout = TripleStore::from_triples(
            (0..40).map(|i| IdTriple::new(7_000_000 + (i % 4), p_fanout, 8_000_000 + i)),
        );
        let probe = pattern(Slot::Var(0), Slot::Bound(p_fanout), Slot::Var(1));
        assert_eq!(pattern_cost(&fanout, &probe, &bound), 10.0);
    }

    // --- tie-break regression suite ------------------------------------

    #[test]
    fn tied_costs_keep_the_written_pattern_order() {
        let store = store();
        let p_small = nth_property_id(20);
        // Two structurally identical patterns over the same table tie on
        // every cost component; the written order must survive planning so
        // plans are reproducible across runs.
        let patterns = vec![
            pattern(Slot::Var(3), Slot::Bound(p_small), Slot::Var(4)),
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(1)),
        ];
        let ordered = order_patterns(&store, patterns.clone());
        assert_eq!(ordered, patterns);
    }

    #[test]
    fn tied_costs_defer_cartesian_products() {
        let store = store();
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        // [small(0,1), small(5,6), large(1,2)] and [small(0,1), large(1,2),
        // small(5,6)] have identical estimated cost (every step yields one
        // row); the disconnected-pick tie-break must choose the order whose
        // cartesian product comes last.
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(1)),
            pattern(Slot::Var(5), Slot::Bound(p_small), Slot::Var(6)),
            pattern(Slot::Var(1), Slot::Bound(p_large), Slot::Var(2)),
        ];
        let (cost_late, flags_late) = plan_cost(&store, &patterns, &[0, 2, 1]);
        let (cost_early, flags_early) = plan_cost(&store, &patterns, &[0, 1, 2]);
        assert!(approx_eq(cost_late, cost_early), "the suite assumes a tie");
        assert!(flags_late < flags_early);
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered[1].p, Slot::Bound(p_large));
    }

    #[test]
    fn planning_is_deterministic_across_repeated_runs() {
        let store = store();
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        let patterns = vec![
            pattern(Slot::Var(0), Slot::Bound(p_large), Slot::Var(1)),
            pattern(Slot::Var(1), Slot::Bound(p_small), Slot::Var(2)),
            pattern(Slot::Var(2), Slot::Bound(p_large), Slot::Var(3)),
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(3)),
        ];
        let first = order_patterns(&store, patterns.clone());
        for _ in 0..10 {
            assert_eq!(order_patterns(&store, patterns.clone()), first);
        }
    }

    // --- permutation-invariance and cost-minimality properties ---------

    /// Deterministic xorshift generator so the property cases are
    /// reproducible without external crates.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, bound: u64) -> u64 {
            self.next() % bound
        }
    }

    /// A store with mixed fan-out so different join orders genuinely differ
    /// in cost: a skewed table, a one-to-one table, and a tiny table.
    fn property_store() -> TripleStore {
        let p_skew = nth_property_id(40);
        let p_chain = nth_property_id(41);
        let p_tiny = nth_property_id(42);
        let mut triples = Vec::new();
        for i in 0..60_u64 {
            triples.push(IdTriple::new(9_000_000 + (i % 6), p_skew, 9_100_000 + i));
        }
        for i in 0..30_u64 {
            triples.push(IdTriple::new(9_100_000 + i, p_chain, 9_200_000 + (i % 3)));
        }
        triples.push(IdTriple::new(9_000_001, p_tiny, 9_200_001));
        triples.push(IdTriple::new(9_000_002, p_tiny, 9_200_002));
        let mut store = TripleStore::from_triples(triples);
        store.ensure_all_os();
        store
    }

    fn random_slot(rng: &mut Rng, constants: &[u64], variables: usize) -> Slot {
        if rng.below(2) == 0 {
            Slot::Var(rng.below(variables as u64) as usize)
        } else {
            Slot::Bound(constants[rng.below(constants.len() as u64) as usize])
        }
    }

    fn random_bgp(rng: &mut Rng, store: &TripleStore) -> (Vec<CompiledPattern>, usize) {
        let variables = 4;
        let count = 2 + rng.below(3) as usize; // 2..=4 patterns
        let properties = [
            nth_property_id(40),
            nth_property_id(41),
            nth_property_id(42),
        ];
        // Constants that exist in the data so joins are not trivially empty,
        // mixing subjects and objects.
        let constants: Vec<u64> = store
            .iter_triples()
            .flat_map(|t| [t.s, t.o])
            .step_by(17)
            .collect();
        let patterns = (0..count)
            .map(|_| {
                let p = if rng.below(8) == 0 {
                    Slot::Var(rng.below(variables as u64) as usize)
                } else {
                    Slot::Bound(properties[rng.below(3) as usize])
                };
                pattern(
                    random_slot(rng, &constants, variables),
                    p,
                    random_slot(rng, &constants, variables),
                )
            })
            .collect();
        (patterns, variables)
    }

    fn solutions(store: &TripleStore, patterns: &[CompiledPattern], variables: usize) -> Vec<Row> {
        let mut rows = evaluate_bgp(store, patterns, variables);
        rows.sort();
        rows
    }

    #[test]
    fn any_input_permutation_yields_the_same_solutions() {
        let store = property_store();
        let mut rng = Rng(0x5eed_cafe_f00d_0001);
        for case in 0..40 {
            let (patterns, variables) = random_bgp(&mut rng, &store);
            let reference = solutions(&store, &order_patterns(&store, patterns.clone()), variables);
            for order in permutations(patterns.len()) {
                let permuted: Vec<_> = order.iter().map(|&i| patterns[i]).collect();
                let planned = order_patterns(&store, permuted);
                assert_eq!(
                    solutions(&store, &planned, variables),
                    reference,
                    "case {case}: permutation {order:?} changed the solutions of {patterns:?}"
                );
            }
        }
    }

    #[test]
    fn chosen_order_cost_is_minimal_among_all_permutations() {
        let store = property_store();
        let mut rng = Rng(0x5eed_cafe_f00d_0002);
        for case in 0..40 {
            let (patterns, _) = random_bgp(&mut rng, &store);
            let planned = order_patterns(&store, patterns.clone());
            let identity: Vec<usize> = (0..planned.len()).collect();
            let (chosen_cost, _) = plan_cost(&store, &planned, &identity);
            for order in permutations(patterns.len()) {
                let (cost, _) = plan_cost(&store, &patterns, &order);
                assert!(
                    chosen_cost <= cost || approx_eq(chosen_cost, cost),
                    "case {case}: order {order:?} of {patterns:?} costs {cost}, \
                     cheaper than the planner's {chosen_cost}"
                );
            }
        }
    }

    #[test]
    fn greedy_fallback_handles_large_bgps() {
        // Five patterns exceed the exhaustive limit; the greedy path must
        // still start from the cheapest table and keep joins connected.
        let store = store();
        let p_small = nth_property_id(20);
        let p_large = nth_property_id(21);
        let patterns = vec![
            pattern(Slot::Var(1), Slot::Bound(p_large), Slot::Var(2)),
            pattern(Slot::Var(2), Slot::Bound(p_large), Slot::Var(3)),
            pattern(Slot::Var(0), Slot::Bound(p_small), Slot::Var(1)),
            pattern(Slot::Var(3), Slot::Bound(p_large), Slot::Var(4)),
            pattern(Slot::Var(4), Slot::Bound(p_large), Slot::Var(5)),
        ];
        let ordered = order_patterns(&store, patterns);
        assert_eq!(ordered.len(), 5);
        assert_eq!(ordered[0].p, Slot::Bound(p_small));
        let mut bound = HashSet::new();
        bind_variables(&ordered[0], &mut bound);
        for next in &ordered[1..] {
            assert!(
                shares_variable(next, &bound),
                "greedy order must stay connected"
            );
            bind_variables(next, &mut bound);
        }
    }
}
