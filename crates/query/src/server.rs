//! A std-only SPARQL-over-HTTP endpoint.
//!
//! The serving story of this repository (docs/serving.md) ends at a socket:
//! `inferray-cli serve` exposes the materialized store to concurrent
//! clients. This module implements that endpoint with nothing but
//! `std::net` — a deliberately minimal HTTP/1.1 subset (request line,
//! headers, `Content-Length` bodies, persistent connections), enough for
//! `curl`, load generators and the integration tests, with zero new
//! dependencies.
//!
//! ## Routes
//!
//! * `GET /sparql?query=<percent-encoded query>` — evaluate one query
//!   (`HEAD` returns the same headers with an empty body);
//! * `POST /sparql` — query in the body, either raw
//!   (`Content-Type: application/sparql-query`) or form-encoded
//!   (`query=<percent-encoded>`);
//! * `POST /update` — retract the N-Triples of the body from the served
//!   dataset (delete–rederive, docs/maintenance.md), or assert them with
//!   `?action=assert`; only available when the server was bound with an
//!   [`UpdateSink`] ([`SparqlServer::bind_with_updates`]), 404 otherwise;
//! * `GET /status` — the current snapshot epoch and store size, plus a
//!   `durability` object when the server was bound with a
//!   [`DurabilityReporter`] (snapshot path, WAL length, read-only flag —
//!   see docs/persistence.md); `HEAD` supported as for `/sparql`.
//!
//! `POST` bodies must carry a `Content-Length`: a missing length is
//! answered with `411 Length Required` (not a misleading parse error from
//! an empty body) and `Transfer-Encoding: chunked` with
//! `501 Not Implemented`.
//!
//! ## Robustness
//!
//! Every connection runs under a read/write timeout
//! ([`ServerConfig::read_timeout`]): a slowloris client that drips its
//! request is answered with `408 Request Timeout` instead of pinning a
//! worker. Request bodies above [`ServerConfig::max_body_bytes`] get
//! `413 Payload Too Large` without being read. When the sink reports the
//! dataset degraded to read-only ([`UpdateError::Unavailable`] — an
//! unrecoverable WAL-append failure), `POST /update` answers
//! `503 Service Unavailable` with a `Retry-After` header while reads keep
//! serving.
//!
//! Responses use the SPARQL 1.1 Query Results JSON format:
//! `{"head":{"vars":[…]},"results":{"bindings":[…]}}` for `SELECT`,
//! `{"head":{},"boolean":…}` for `ASK`; malformed queries get a `400` with
//! a JSON error body.
//!
//! ## Concurrency model and the per-request allocation budget
//!
//! `--threads N` spawns *N* worker threads that all `accept` on the shared
//! listener; each request samples the **current** snapshot engine from its
//! [`EngineSource`] and evaluates against that frozen epoch, so a
//! materialization that publishes mid-request never tears a response —
//! requests started before the swap answer from the old epoch, requests
//! started after it from the new one. The same holds *within* one
//! keep-alive connection: every request re-samples the source, so a publish
//! between two pipelined requests is visible to the second one.
//!
//! Connections are persistent by default (HTTP/1.1 keep-alive): a worker
//! parses requests in a loop and answers each with an explicit
//! `Content-Length` and `Connection: keep-alive`, closing only on client
//! request (`Connection: close`, or an HTTP/1.0 client without
//! `keep-alive`), on framing errors (the byte stream position is unknown
//! after 408/411/413/501), or on shutdown. Each worker owns one set of
//! reusable buffers ([`WorkerBuffers`]) — request head scratch, body
//! buffer, response body, and the rendered wire bytes — so the steady-state
//! request loop performs no per-request heap allocation for framing or
//! response rendering: responses are `write!`-rendered into the reused
//! buffers and sent with a single `write_all`. The repo lint rule IL007
//! keeps `format!` / `String::new` / `Vec::new` out of the hot functions;
//! cold paths (errors, updates) delegate to dedicated functions that may
//! allocate.

use crate::algebra::QueryForm;
use crate::serving::SnapshotQueryEngine;
use crate::solution::SolutionSet;
use crate::sparql::parse_query;
use inferray_model::Term;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Provides the snapshot engine a request should be answered against.
///
/// The server calls [`EngineSource::current`] once per request: a source
/// backed by a [`SnapshotStore`](inferray_store::SnapshotStore) hands out
/// the latest published epoch, while a plain [`SnapshotQueryEngine`] serves
/// one frozen epoch forever (useful for tests and static deployments).
pub trait EngineSource: Send + Sync + 'static {
    /// The engine for the next request.
    fn current(&self) -> SnapshotQueryEngine;
}

impl EngineSource for SnapshotQueryEngine {
    fn current(&self) -> SnapshotQueryEngine {
        self.clone()
    }
}

impl<F> EngineSource for F
where
    F: Fn() -> SnapshotQueryEngine + Send + Sync + 'static,
{
    fn current(&self) -> SnapshotQueryEngine {
        self()
    }
}

/// The outcome of a `POST /update` request, rendered as the JSON response
/// body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The epoch published by the update (or the current one when nothing
    /// changed).
    pub epoch: u64,
    /// Distinct triples the request asked to retract (0 for asserts).
    pub requested: usize,
    /// Explicitly asserted triples actually removed (0 for asserts).
    pub removed: usize,
    /// Triples in the store after the update.
    pub triples: usize,
}

/// Why an [`UpdateSink`] refused a write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// The request itself is invalid (parse error, unsupported action) —
    /// answered with `400`.
    Rejected(String),
    /// The dataset cannot accept writes right now (degraded to read-only
    /// after a durability failure) — answered with `503` and a
    /// `Retry-After` header; reads keep serving.
    Unavailable {
        /// Operator-facing diagnostic for the JSON error body.
        message: String,
        /// Suggested client back-off, in seconds.
        retry_after_secs: u64,
    },
    /// The request was well-formed but the write it describes would leave
    /// the dataset violating its installed shape constraints
    /// (docs/shapes.md) — answered with `422` and a positioned violation
    /// report in the JSON body. Nothing was published: the epoch the
    /// client saw before the request is still current.
    Invalid {
        /// Operator-facing summary for the body's `error` field.
        message: String,
        /// The violation report, already rendered as a JSON value; spliced
        /// verbatim into the body's `violations` field.
        violations_json: String,
    },
}

impl UpdateError {
    /// Shorthand for a `400` rejection.
    pub fn rejected(message: impl Into<String>) -> UpdateError {
        UpdateError::Rejected(message.into())
    }
}

/// A writer the server forwards `POST /update` requests to.
///
/// The serving stack is layered so that `inferray-query` never depends on
/// the reasoner: the server knows only this trait, and the binary that owns
/// a `ServingDataset` (e.g. `inferray-cli serve`) adapts it.
/// [`UpdateError::Rejected`] is reported as a `400` with the message in the
/// JSON error body, [`UpdateError::Unavailable`] as a `503` with a
/// `Retry-After` header.
pub trait UpdateSink: Send + Sync + 'static {
    /// Retracts the triples of an N-Triples document from the served
    /// dataset and re-materializes incrementally.
    fn retract_ntriples(&self, body: &str) -> Result<UpdateOutcome, UpdateError>;

    /// Asserts the triples of an N-Triples document
    /// (`POST /update?action=assert`). Sinks without a write-ahead path may
    /// leave the default, which rejects the request.
    fn assert_ntriples(&self, body: &str) -> Result<UpdateOutcome, UpdateError> {
        let _ = body;
        Err(UpdateError::rejected(
            "asserts are not supported by this endpoint",
        ))
    }
}

/// Durability state the server splices into `GET /status` as the
/// `durability` object — implemented by the persistence layer
/// (`inferray-persist`), which `inferray-query` deliberately does not
/// depend on.
pub trait DurabilityReporter: Send + Sync + 'static {
    /// The current durability state as a complete JSON object, e.g.
    /// `{"read_only":false,…}`.
    fn durability_json(&self) -> String;
}

/// Shape-validation state the server splices into `GET /status` as the
/// `validation` object — implemented by the binary that owns the shape
/// gate (`inferray-cli serve --shapes`), so `inferray-query` never depends
/// on the validator.
pub trait ValidationReporter: Send + Sync + 'static {
    /// Renders the current validation state into `out` as a complete JSON
    /// value, e.g. `{"shapes":2,"validated_epoch":7,…}`. Writes into the
    /// caller's buffer because `GET /status` is served from the
    /// zero-allocation request loop.
    fn validation_json_into(&self, out: &mut String);
}

/// Tunables of a [`SparqlServer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerConfig {
    /// Worker threads all `accept`ing on the shared listener.
    pub threads: usize,
    /// Per-connection read timeout: a client that stalls mid-request gets
    /// `408` instead of pinning a worker. Doubles as the keep-alive idle
    /// timeout — a connection with no next request within it is closed.
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Largest accepted `Content-Length`; bigger bodies get `413` without
    /// being read.
    pub max_body_bytes: usize,
    /// Serve several requests per connection (HTTP/1.1 keep-alive). Off,
    /// every response carries `Connection: close` — the pre-keep-alive
    /// behavior, kept as an operational escape hatch (`--no-keep-alive`).
    pub keep_alive: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 2,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_body_bytes: 16 << 20,
            keep_alive: true,
        }
    }
}

/// A running SPARQL endpoint; dropping it without calling
/// [`SparqlServer::shutdown`] leaves the worker threads serving until the
/// process exits.
pub struct SparqlServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
}

impl SparqlServer {
    /// Binds `addr` (e.g. `127.0.0.1:8080`; port 0 picks a free port) and
    /// serves read-only requests on `threads` worker threads
    /// (`POST /update` answers 404).
    pub fn bind(
        addr: &str,
        threads: usize,
        source: Arc<dyn EngineSource>,
    ) -> std::io::Result<SparqlServer> {
        let config = ServerConfig {
            threads,
            ..ServerConfig::default()
        };
        Self::bind_with(addr, config, source, None, None, None)
    }

    /// [`SparqlServer::bind`] with a write path: `POST /update` requests
    /// are forwarded to `sink`.
    pub fn bind_with_updates(
        addr: &str,
        threads: usize,
        source: Arc<dyn EngineSource>,
        sink: Arc<dyn UpdateSink>,
    ) -> std::io::Result<SparqlServer> {
        let config = ServerConfig {
            threads,
            ..ServerConfig::default()
        };
        Self::bind_with(addr, config, source, Some(sink), None, None)
    }

    /// The fully configurable constructor: explicit [`ServerConfig`], an
    /// optional write path, and optional durability / shape-validation
    /// reporters for `GET /status`.
    pub fn bind_with(
        addr: &str,
        config: ServerConfig,
        source: Arc<dyn EngineSource>,
        sink: Option<Arc<dyn UpdateSink>>,
        durability: Option<Arc<dyn DurabilityReporter>>,
        validation: Option<Arc<dyn ValidationReporter>>,
    ) -> std::io::Result<SparqlServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let listener = Arc::new(listener);
        let stop = Arc::new(AtomicBool::new(false));
        // Spawning can fail (thread limits, fd exhaustion); surface it as
        // the `io::Error` it is instead of panicking mid-startup.
        let mut workers = Vec::with_capacity(config.threads.max(1));
        for i in 0..config.threads.max(1) {
            let listener = Arc::clone(&listener);
            let worker_stop = Arc::clone(&stop);
            let source = Arc::clone(&source);
            let sink = sink.clone();
            let durability = durability.clone();
            let validation = validation.clone();
            let spawned = std::thread::Builder::new()
                .name(format!("inferray-serve-{i}"))
                .spawn(move || {
                    worker_loop(
                        &listener,
                        &worker_stop,
                        config,
                        source.as_ref(),
                        sink.as_deref(),
                        durability.as_deref(),
                        validation.as_deref(),
                    )
                });
            match spawned {
                Ok(worker) => workers.push(worker),
                Err(e) => {
                    // Unwind the workers that did start before reporting the
                    // failure, so none is left blocked in accept().
                    stop.store(true, Ordering::SeqCst);
                    for worker in workers {
                        let _ = TcpStream::connect(addr);
                        let _ = worker.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(SparqlServer {
            addr,
            stop,
            workers,
        })
    }

    /// The bound address (with the actual port when 0 was requested).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks every worker and joins them.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake each worker blocked in accept() with a throwaway connection.
        for _ in 0..self.workers.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    listener: &TcpListener,
    stop: &AtomicBool,
    config: ServerConfig,
    source: &dyn EngineSource,
    sink: Option<&dyn UpdateSink>,
    durability: Option<&dyn DurabilityReporter>,
    validation: Option<&dyn ValidationReporter>,
) {
    // One set of reusable buffers per worker: every connection (and every
    // request within a keep-alive connection) reuses these, so the
    // steady-state request loop allocates nothing for framing or rendering.
    let mut buffers = WorkerBuffers::new();
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                // Persistent accept errors (fd exhaustion, EMFILE) must not
                // turn the worker into a 100%-CPU spin loop.
                std::thread::sleep(Duration::from_millis(50));
                continue;
            }
        };
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // A stalled client must not wedge a worker forever.
        let _ = stream.set_read_timeout(Some(config.read_timeout));
        let _ = stream.set_write_timeout(Some(config.write_timeout));
        let _ = handle_connection(
            stream,
            stop,
            config,
            source,
            sink,
            durability,
            validation,
            &mut buffers,
        );
    }
}

/// The per-worker reusable buffers of the serving hot path. Cleared and
/// refilled per request; they only grow (up to the configured body / head
/// caps), so after warm-up the request loop performs no heap allocation.
struct WorkerBuffers {
    /// Request-line / header-line scratch for [`read_head`].
    head: String,
    /// The request target (path + query string), copied out of the request
    /// line so header parsing can reuse the scratch line.
    path: String,
    /// The `POST` body.
    body: Vec<u8>,
    /// The rendered response body (JSON).
    response: String,
    /// The rendered wire bytes (status line + headers + body), written with
    /// a single `write_all`.
    out: Vec<u8>,
}

impl WorkerBuffers {
    fn new() -> WorkerBuffers {
        WorkerBuffers {
            head: String::new(),
            path: String::new(),
            body: Vec::new(),
            response: String::new(),
            out: Vec::new(),
        }
    }
}

/// `true` for the error kinds a socket read timeout surfaces as
/// (platform-dependent: `WouldBlock` on Unix, `TimedOut` on Windows).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

// ---------------------------------------------------------------------------
// Request handling
// ---------------------------------------------------------------------------

/// The request method, pre-classified so routing never compares strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Method {
    Get,
    Head,
    Post,
    Other,
}

struct RequestHead {
    method: Method,
    /// `Content-Type: application/x-www-form-urlencoded` — the only
    /// content-type distinction any route makes.
    form_urlencoded: bool,
    /// `Content-Length`, when the client sent one. `POST` without a length
    /// is a protocol error (411), **not** an empty body: treating it as
    /// empty used to surface as a baffling "empty query" parse error.
    content_length: Option<usize>,
    /// `Transfer-Encoding: chunked` — not implemented (501 for `POST`).
    chunked: bool,
    /// The client asked to close after this response (`Connection: close`,
    /// or an HTTP/1.0 request without `Connection: keep-alive`).
    close: bool,
}

/// Serves requests off one connection until the client closes, asks to
/// close, a framing error leaves the stream position unknown, or shutdown.
/// The request target is parsed into `buffers.path`.
#[allow(clippy::too_many_arguments)]
fn handle_connection(
    stream: TcpStream,
    stop: &AtomicBool,
    config: ServerConfig,
    source: &dyn EngineSource,
    sink: Option<&dyn UpdateSink>,
    durability: Option<&dyn DurabilityReporter>,
    validation: Option<&dyn ValidationReporter>,
    buffers: &mut WorkerBuffers,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    loop {
        let head = match read_head(&mut reader, buffers) {
            Ok(Some(head)) => head,
            // Clean close: EOF (or an idle keep-alive timeout) before the
            // first byte of a next request.
            Ok(None) => return Ok(()),
            Err((status, message)) => {
                // The stream position within the request is unknown after a
                // head parse error: answer and close.
                buffers.response.clear();
                error_json_into(&mut buffers.response, &message);
                return respond(
                    reader.get_mut(),
                    status,
                    "application/json",
                    &buffers.response,
                    RespondOptions::closing(),
                    &mut buffers.out,
                );
            }
        };
        let keep_alive = config.keep_alive && !head.close && !stop.load(Ordering::SeqCst);
        if !serve_request(
            &mut reader,
            &head,
            config,
            source,
            sink,
            durability,
            validation,
            buffers,
            keep_alive,
        )? {
            return Ok(());
        }
    }
}

/// Reads the body (for `POST`), routes, and answers one request. Returns
/// whether the connection stays open.
#[allow(clippy::too_many_arguments)]
fn serve_request(
    reader: &mut BufReader<TcpStream>,
    head: &RequestHead,
    config: ServerConfig,
    source: &dyn EngineSource,
    sink: Option<&dyn UpdateSink>,
    durability: Option<&dyn DurabilityReporter>,
    validation: Option<&dyn ValidationReporter>,
    buffers: &mut WorkerBuffers,
    keep_alive: bool,
) -> std::io::Result<bool> {
    // Body policy, decided per method before touching any route: POST needs
    // a delimited body, GET/HEAD bodies are ignored. Every refusal closes —
    // the body bytes were not consumed, so the framing is lost.
    buffers.body.clear();
    if head.method == Method::Post {
        if head.chunked {
            refuse_post(
                reader,
                501,
                "Transfer-Encoding: chunked is not supported; send Content-Length",
                64 << 10,
                buffers,
            )?;
            return Ok(false);
        }
        let Some(length) = head.content_length else {
            refuse_post(
                reader,
                411,
                "POST requires a Content-Length header",
                64 << 10,
                buffers,
            )?;
            return Ok(false);
        };
        // An unbounded Content-Length would let one request allocate the
        // moon.
        if length > config.max_body_bytes {
            refuse_oversized_post(reader, length, config.max_body_bytes, buffers)?;
            return Ok(false);
        }
        buffers.body.resize(length, 0);
        if let Err(e) = reader.read_exact(&mut buffers.body) {
            respond_body_read_error(reader.get_mut(), &e, buffers)?;
            return Ok(false);
        }
    }

    let opts = RespondOptions {
        head_only: head.method == Method::Head,
        keep_alive,
        retry_after_secs: None,
    };
    let stream = reader.get_mut();
    let (path, query_string) = match buffers.path.split_once('?') {
        Some((path, qs)) => (path, Some(qs)),
        None => (buffers.path.as_str(), None),
    };

    match (head.method, path) {
        (Method::Get | Method::Head, "/status") => {
            buffers.response.clear();
            status_json_into(&mut buffers.response, source, durability, validation);
            respond(
                stream,
                200,
                "application/json",
                &buffers.response,
                opts,
                &mut buffers.out,
            )?;
        }
        (Method::Get | Method::Head, "/sparql") => {
            match query_from_query_string(query_string.unwrap_or("")) {
                Some(query) => answer_query(
                    stream,
                    source,
                    &query,
                    opts,
                    &mut buffers.response,
                    &mut buffers.out,
                )?,
                None => {
                    buffers.response.clear();
                    error_json_into(&mut buffers.response, "missing 'query' parameter");
                    respond(
                        stream,
                        400,
                        "application/json",
                        &buffers.response,
                        opts,
                        &mut buffers.out,
                    )?;
                }
            }
        }
        (Method::Post, "/sparql") => {
            let body = String::from_utf8_lossy(&buffers.body);
            let query = if head.form_urlencoded {
                query_from_query_string(&body)
            } else {
                // application/sparql-query (or anything else): raw query
                // text; `None` below only flags the form-encoded miss.
                None
            };
            let text = match &query {
                Some(query) => query.as_str(),
                None if !head.form_urlencoded => &body,
                None => "",
            };
            if text.trim().is_empty() {
                buffers.response.clear();
                error_json_into(&mut buffers.response, "empty query");
                respond(
                    stream,
                    400,
                    "application/json",
                    &buffers.response,
                    opts,
                    &mut buffers.out,
                )?;
            } else {
                answer_query(
                    stream,
                    source,
                    text,
                    opts,
                    &mut buffers.response,
                    &mut buffers.out,
                )?;
            }
        }
        (Method::Post, "/update") => {
            handle_update(
                stream,
                sink,
                &buffers.body,
                query_string,
                opts,
                &mut buffers.response,
                &mut buffers.out,
            )?;
        }
        (Method::Get | Method::Head | Method::Post, _) => {
            buffers.response.clear();
            error_json_into(
                &mut buffers.response,
                "unknown path (use /sparql, /update or /status)",
            );
            respond(
                stream,
                404,
                "application/json",
                &buffers.response,
                opts,
                &mut buffers.out,
            )?;
        }
        (Method::Other, _) => {
            buffers.response.clear();
            error_json_into(&mut buffers.response, "method not allowed");
            respond(
                stream,
                405,
                "application/json",
                &buffers.response,
                opts,
                &mut buffers.out,
            )?;
        }
    }
    Ok(keep_alive)
}

/// Renders the `GET /status` body into `out`: the engine's epoch/size
/// header plus the `durability` and `validation` objects the embedder's
/// reporters splice in. On the serving hot path — liveness probes hammer
/// `/status`, so it must not allocate beyond the reusable buffer.
fn status_json_into(
    out: &mut String,
    source: &dyn EngineSource,
    durability: Option<&dyn DurabilityReporter>,
    validation: Option<&dyn ValidationReporter>,
) {
    use std::fmt::Write as _;
    let engine = source.current();
    let _ = write!(
        out,
        "{{\"epoch\":{},\"triples\":{},\"tables\":{}",
        engine.epoch(),
        engine.snapshot().len(),
        engine.snapshot().table_count(),
    );
    if let Some(reporter) = durability {
        out.push_str(",\"durability\":");
        out.push_str(&reporter.durability_json());
    }
    if let Some(reporter) = validation {
        out.push_str(",\"validation\":");
        reporter.validation_json_into(out);
    }
    out.push_str("}\n");
}

/// `POST /update`: parses the action, forwards to the sink and renders the
/// outcome. Updates re-materialize the dataset, so this path is cold by
/// construction and free to allocate.
fn handle_update(
    stream: &mut TcpStream,
    sink: Option<&dyn UpdateSink>,
    body: &[u8],
    query_string: Option<&str>,
    opts: RespondOptions,
    response: &mut String,
    out: &mut Vec<u8>,
) -> std::io::Result<()> {
    let Some(sink) = sink else {
        response.clear();
        error_json_into(response, "updates are not enabled on this endpoint");
        return respond(stream, 404, "application/json", response, opts, out);
    };
    let body = String::from_utf8_lossy(body);
    // `?action=assert` routes to the write-ahead assert path; the default
    // (and `?action=retract`) stays delete–rederive.
    let action = query_string
        .and_then(|qs| {
            qs.split('&').find_map(|pair| {
                let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
                (name == "action").then(|| percent_decode(value))
            })
        })
        .unwrap_or_else(|| "retract".to_owned());
    let result = match action.as_str() {
        "retract" => sink.retract_ntriples(&body),
        "assert" => sink.assert_ntriples(&body),
        other => Err(UpdateError::Rejected(format!(
            "unknown action '{other}' (use assert or retract)"
        ))),
    };
    response.clear();
    match result {
        Ok(outcome) => {
            use std::fmt::Write as _;
            let _ = writeln!(
                response,
                "{{\"epoch\":{},\"requested\":{},\"removed\":{},\"triples\":{}}}",
                outcome.epoch, outcome.requested, outcome.removed, outcome.triples,
            );
            respond(stream, 200, "application/json", response, opts, out)
        }
        Err(UpdateError::Rejected(message)) => {
            error_json_into(response, &message);
            respond(stream, 400, "application/json", response, opts, out)
        }
        Err(UpdateError::Unavailable {
            message,
            retry_after_secs,
        }) => {
            error_json_into(response, &message);
            // The integer renders straight into the header buffer — no
            // per-request `to_string` for Retry-After.
            respond(
                stream,
                503,
                "application/json",
                response,
                opts.with_retry_after(retry_after_secs),
                out,
            )
        }
        Err(UpdateError::Invalid {
            message,
            violations_json,
        }) => {
            // `{"error":…,"violations":{…}}` — the report is pre-rendered
            // JSON from the validator; only the summary needs escaping.
            response.push_str("{\"error\":\"");
            json_escape_into(response, &message);
            response.push_str("\",\"violations\":");
            response.push_str(&violations_json);
            response.push_str("}\n");
            respond(stream, 422, "application/json", response, opts, out)
        }
    }
}

/// Refuses a `POST` before its body was read: writes the error response,
/// then **drains** (a bounded amount of) the body the client is still
/// sending. Closing with unread request bytes in flight would reset the
/// connection before the client reads the error, so the diagnostic would
/// be lost — the drain is bounded by `drain_limit` and by a short read
/// timeout, so neither a large upload nor an idle client can pin the
/// worker.
fn refuse_post(
    reader: &mut BufReader<TcpStream>,
    status: u16,
    message: &str,
    drain_limit: u64,
    buffers: &mut WorkerBuffers,
) -> std::io::Result<()> {
    buffers.response.clear();
    error_json_into(&mut buffers.response, message);
    respond(
        reader.get_mut(),
        status,
        "application/json",
        &buffers.response,
        RespondOptions::closing(),
        &mut buffers.out,
    )?;
    let _ = reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_millis(300)));
    let _ = std::io::copy(&mut reader.by_ref().take(drain_limit), &mut std::io::sink());
    Ok(())
}

/// The 413 variant of [`refuse_post`]; builds its message here so the hot
/// request loop stays allocation-free.
fn refuse_oversized_post(
    reader: &mut BufReader<TcpStream>,
    length: usize,
    limit: usize,
    buffers: &mut WorkerBuffers,
) -> std::io::Result<()> {
    let message = format!("body too large ({length} bytes; limit {limit})");
    refuse_post(
        reader,
        413,
        &message,
        (length as u64).min(64 << 20),
        buffers,
    )
}

/// Answers a failed body read (408 on timeout, 400 on truncation) — cold,
/// free to allocate the diagnostic.
fn respond_body_read_error(
    stream: &mut TcpStream,
    e: &std::io::Error,
    buffers: &mut WorkerBuffers,
) -> std::io::Result<()> {
    let (status, message) = if is_timeout(e) {
        (408, "timed out reading request body".to_owned())
    } else {
        (400, format!("truncated body: {e}"))
    };
    buffers.response.clear();
    error_json_into(&mut buffers.response, &message);
    respond(
        stream,
        status,
        "application/json",
        &buffers.response,
        RespondOptions::closing(),
        &mut buffers.out,
    )
}

/// A read timeout anywhere in the head is the slowloris case: 408. Cold —
/// builds the diagnostic string.
fn head_read_error(e: &std::io::Error, what: &str) -> (u16, String) {
    if is_timeout(e) {
        (408, format!("timed out reading {what}"))
    } else {
        (400, format!("bad {what}: {e}"))
    }
}

/// Cold diagnostic for an unparseable `Content-Length`.
fn bad_content_length(value: &str) -> (u16, String) {
    (400, format!("bad Content-Length '{value}'"))
}

/// Case-insensitive ASCII prefix test (header values arrive in any case).
fn starts_with_ignore_ascii_case(value: &str, prefix: &str) -> bool {
    value.len() >= prefix.len()
        && value.as_bytes()[..prefix.len()].eq_ignore_ascii_case(prefix.as_bytes())
}

/// Reads and parses one request head into reused buffers. `Ok(None)` is a
/// clean end of the connection: EOF — or an idle timeout — before the first
/// byte of a next request.
fn read_head(
    reader: &mut BufReader<TcpStream>,
    buffers: &mut WorkerBuffers,
) -> Result<Option<RequestHead>, (u16, String)> {
    // The whole head (request line + headers) is read through a byte cap:
    // a drip-fed endless line must error out, not grow a String forever.
    const MAX_HEAD: u64 = 64 << 10;
    let mut head = reader.by_ref().take(MAX_HEAD);

    let line = &mut buffers.head;
    line.clear();
    match head.read_line(line) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => {
            // A timeout with nothing read is an idle keep-alive connection
            // going away, not a slowloris: close without a 408.
            if is_timeout(&e) && line.is_empty() {
                return Ok(None);
            }
            return Err(head_read_error(&e, "request line"));
        }
    }
    if !line.ends_with('\n') {
        return Err((400, "request line too long".to_owned()));
    }
    let mut parts = line.split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("HEAD") => Method::Head,
        Some("POST") => Method::Post,
        Some(_) => Method::Other,
        None => return Err((400, "empty request line".to_owned())),
    };
    let path = parts
        .next()
        .ok_or((400, "request line without path".to_owned()))?;
    buffers.path.clear();
    buffers.path.push_str(path);
    // Only HTTP/1.1 defaults to keep-alive; HTTP/1.0 (or no version token)
    // must opt in with `Connection: keep-alive`.
    let http11 = parts.next() == Some("HTTP/1.1");

    let mut content_length = None;
    let mut form_urlencoded = false;
    let mut chunked = false;
    let mut close_requested = false;
    let mut keep_alive_requested = false;
    loop {
        line.clear();
        if let Err(e) = head.read_line(line) {
            return Err(head_read_error(&e, "header"));
        }
        if !line.ends_with('\n') {
            return Err((400, "header section too large".to_owned()));
        }
        let header = line.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            let value = value.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = Some(
                    value
                        .parse::<usize>()
                        .map_err(|_| bad_content_length(value))?,
                );
            } else if name.eq_ignore_ascii_case("content-type") {
                form_urlencoded =
                    starts_with_ignore_ascii_case(value, "application/x-www-form-urlencoded");
            } else if name.eq_ignore_ascii_case("transfer-encoding") {
                chunked |= value
                    .split(',')
                    .any(|token| token.trim().eq_ignore_ascii_case("chunked"));
            } else if name.eq_ignore_ascii_case("connection") {
                for token in value.split(',') {
                    let token = token.trim();
                    close_requested |= token.eq_ignore_ascii_case("close");
                    keep_alive_requested |= token.eq_ignore_ascii_case("keep-alive");
                }
            }
        }
    }
    Ok(Some(RequestHead {
        method,
        form_urlencoded,
        content_length,
        chunked,
        close: if http11 {
            close_requested
        } else {
            !keep_alive_requested
        },
    }))
}

/// Extracts and percent-decodes the `query` parameter of a query string or
/// form-encoded body.
fn query_from_query_string(qs: &str) -> Option<String> {
    for pair in qs.split('&') {
        let (name, value) = pair.split_once('=').unwrap_or((pair, ""));
        if name == "query" {
            return Some(percent_decode(value));
        }
    }
    None
}

fn percent_decode(input: &str) -> String {
    let bytes = input.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => {
                // A complete escape consumes "%XY"; anything else — a
                // truncated escape at end-of-input ("%", "%2") or non-hex
                // digits ("%zz") — falls back to the literal '%' and
                // continues with the next byte, so no input can panic or
                // swallow trailing bytes. `get` returns `None` when fewer
                // than two bytes remain.
                let escaped = bytes
                    .get(i + 1..i + 3)
                    .and_then(|hex| std::str::from_utf8(hex).ok())
                    .and_then(|hex| u8::from_str_radix(hex, 16).ok());
                match escaped {
                    Some(byte) => {
                        out.push(byte);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            byte => {
                out.push(byte);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn answer_query(
    stream: &mut TcpStream,
    source: &dyn EngineSource,
    text: &str,
    opts: RespondOptions,
    response: &mut String,
    out: &mut Vec<u8>,
) -> std::io::Result<()> {
    response.clear();
    let query = match parse_query(text) {
        Ok(query) => query,
        Err(error) => {
            error_json_into(response, &error.to_string());
            return respond(stream, 400, "application/json", response, opts, out);
        }
    };
    // One engine — hence one frozen epoch — for the whole request.
    let engine = source.current();
    let solutions = engine.execute(&query);
    match query.form {
        QueryForm::Ask => {
            use std::fmt::Write as _;
            let _ = writeln!(
                response,
                "{{\"head\":{{}},\"boolean\":{}}}",
                !solutions.is_empty()
            );
        }
        QueryForm::Select => results_json_into(response, &solutions, &engine),
    }
    respond(
        stream,
        200,
        "application/sparql-results+json",
        response,
        opts,
        out,
    )
}

/// Renders a solution set in the SPARQL 1.1 Query Results JSON format into
/// the reused response buffer.
fn results_json_into(out: &mut String, solutions: &SolutionSet, engine: &SnapshotQueryEngine) {
    out.reserve(64 + solutions.len() * 64);
    out.push_str("{\"head\":{\"vars\":[");
    for (i, var) in solutions.variables().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json_escape_into(out, var);
        out.push('"');
    }
    out.push_str("]},\"results\":{\"bindings\":[");
    let dictionary = engine.dictionary();
    for (row_index, row) in solutions.rows().iter().enumerate() {
        if row_index > 0 {
            out.push(',');
        }
        out.push('{');
        let mut first = true;
        for (var, id) in solutions.variables().iter().zip(row.iter()) {
            let Some(term) = id.and_then(|id| dictionary.decode(id)) else {
                continue; // unbound variables are omitted from the binding
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            json_escape_into(out, var);
            out.push_str("\":");
            term_json_into(out, term);
        }
        out.push('}');
    }
    out.push_str("]}}\n");
}

fn term_json_into(out: &mut String, term: &Term) {
    match term {
        Term::Iri(iri) => {
            out.push_str("{\"type\":\"uri\",\"value\":\"");
            json_escape_into(out, iri);
            out.push_str("\"}");
        }
        Term::BlankNode(label) => {
            out.push_str("{\"type\":\"bnode\",\"value\":\"");
            json_escape_into(out, label);
            out.push_str("\"}");
        }
        Term::Literal {
            lexical,
            datatype,
            language,
        } => {
            out.push_str("{\"type\":\"literal\",\"value\":\"");
            json_escape_into(out, lexical);
            out.push('"');
            if let Some(language) = language {
                out.push_str(",\"xml:lang\":\"");
                json_escape_into(out, language);
                out.push('"');
            } else if let Some(datatype) = datatype {
                out.push_str(",\"datatype\":\"");
                json_escape_into(out, datatype);
                out.push('"');
            }
            out.push('}');
        }
    }
}

fn json_escape_into(out: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `{"error":"…"}\n` into the reused response buffer.
fn error_json_into(out: &mut String, message: &str) {
    out.push_str("{\"error\":\"");
    json_escape_into(out, message);
    out.push_str("\"}\n");
}

/// Per-response rendering switches of [`respond`].
#[derive(Clone, Copy)]
struct RespondOptions {
    /// `HEAD`: send the headers (with the real `Content-Length`) but no
    /// body.
    head_only: bool,
    /// Announce `Connection: keep-alive` and leave the stream open;
    /// otherwise `Connection: close`.
    keep_alive: bool,
    /// Adds a `Retry-After: <secs>` header (503 responses).
    retry_after_secs: Option<u64>,
}

impl RespondOptions {
    /// A full-body response that closes the connection — error paths where
    /// the request framing is unknown.
    fn closing() -> RespondOptions {
        RespondOptions {
            head_only: false,
            keep_alive: false,
            retry_after_secs: None,
        }
    }

    fn with_retry_after(self, secs: u64) -> RespondOptions {
        RespondOptions {
            retry_after_secs: Some(secs),
            ..self
        }
    }
}

/// Renders status line, headers and body into the reused `out` buffer and
/// sends them with a single `write_all` — the only per-request socket write
/// on the happy path.
fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    opts: RespondOptions,
    out: &mut Vec<u8>,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    out.clear();
    write!(
        out,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n",
        body.len(),
    )?;
    if let Some(secs) = opts.retry_after_secs {
        write!(out, "Retry-After: {secs}\r\n")?;
    }
    if opts.keep_alive {
        out.extend_from_slice(b"Connection: keep-alive\r\n\r\n");
    } else {
        out.extend_from_slice(b"Connection: close\r\n\r\n");
    }
    if !opts.head_only {
        out.extend_from_slice(body.as_bytes());
    }
    stream.write_all(out)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::Dictionary;
    use inferray_model::Triple;
    use inferray_store::{SnapshotStore, TripleStore};

    fn service() -> (Arc<SnapshotStore>, Arc<Dictionary>) {
        let mut dictionary = Dictionary::new();
        let triples = [
            Triple::iris("http://ex/alice", "http://ex/knows", "http://ex/bob"),
            Triple::iris("http://ex/bob", "http://ex/knows", "http://ex/carol"),
            Triple::new(
                Term::iri("http://ex/alice"),
                Term::iri("http://ex/name"),
                Term::lang_literal("Alice", "en"),
            ),
        ];
        let encoded: Vec<_> = triples
            .iter()
            .map(|t| dictionary.encode_triple(t).unwrap())
            .collect();
        let store = TripleStore::from_triples(encoded);
        (Arc::new(SnapshotStore::new(store)), Arc::new(dictionary))
    }

    fn start_server() -> (SparqlServer, Arc<SnapshotStore>, Arc<Dictionary>) {
        let (snapshots, dictionary) = service();
        let source = {
            let snapshots = Arc::clone(&snapshots);
            let dictionary = Arc::clone(&dictionary);
            move || SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(&dictionary))
        };
        let server = SparqlServer::bind("127.0.0.1:0", 2, Arc::new(source)).expect("bind loopback");
        (server, snapshots, dictionary)
    }

    /// Inserts `Connection: close` before the blank line ending the head:
    /// these one-shot helpers read to EOF, so they must opt out of the
    /// keep-alive default.
    fn with_close(request: &str) -> String {
        request.replacen("\r\n\r\n", "\r\nConnection: close\r\n\r\n", 1)
    }

    fn http(addr: SocketAddr, request: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(with_close(request).as_bytes())
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        let status: u16 = response
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let body = response
            .split_once("\r\n\r\n")
            .map(|(_, body)| body.to_owned())
            .unwrap_or_default();
        (status, body)
    }

    #[test]
    fn get_select_query_returns_sparql_json() {
        let (server, _snapshots, _dictionary) = start_server();
        let addr = server.local_addr();
        let query = percent_encode_for_test(
            "SELECT ?x ?z WHERE { ?x <http://ex/knows> ?y . ?y <http://ex/knows> ?z }",
        );
        let (status, body) = http(
            addr,
            &format!("GET /sparql?query={query} HTTP/1.1\r\nHost: t\r\n\r\n"),
        );
        assert_eq!(status, 200, "body: {body}");
        assert!(body.contains("\"vars\":[\"x\",\"z\"]"), "body: {body}");
        assert!(body.contains("http://ex/alice"), "body: {body}");
        assert!(body.contains("http://ex/carol"), "body: {body}");
        server.shutdown();
    }

    #[test]
    fn post_ask_and_literal_bindings() {
        let (server, _snapshots, _dictionary) = start_server();
        let addr = server.local_addr();

        let ask = "ASK { <http://ex/alice> <http://ex/knows> <http://ex/bob> }";
        let (status, body) = http(
            addr,
            &format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n{ask}",
                ask.len()
            ),
        );
        assert_eq!(status, 200);
        assert!(body.contains("\"boolean\":true"), "body: {body}");

        let select = "SELECT ?n WHERE { <http://ex/alice> <http://ex/name> ?n }";
        let (status, body) = http(
            addr,
            &format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n{select}",
                select.len()
            ),
        );
        assert_eq!(status, 200);
        assert!(
            body.contains("\"type\":\"literal\",\"value\":\"Alice\",\"xml:lang\":\"en\""),
            "body: {body}"
        );
        server.shutdown();
    }

    #[test]
    fn malformed_queries_and_paths_get_errors() {
        let (server, _snapshots, _dictionary) = start_server();
        let addr = server.local_addr();
        let (status, body) = http(
            addr,
            "GET /sparql?query=nonsense HTTP/1.1\r\nHost: t\r\n\r\n",
        );
        assert_eq!(status, 400);
        assert!(body.contains("error"));
        let (status, _) = http(addr, "GET /nope HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 404);
        let (status, _) = http(addr, "GET /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 400);
        server.shutdown();
    }

    #[test]
    fn status_reports_the_live_epoch_and_updates_are_visible_to_new_requests() {
        let (server, snapshots, dictionary) = start_server();
        let addr = server.local_addr();
        let (status, body) = http(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(body.contains("\"epoch\":0"), "body: {body}");

        // Publish a new epoch; requests started afterwards see it.
        let id_of = |iri: &str| dictionary.id_of(&Term::iri(iri.to_owned()));
        let carol = id_of("http://ex/carol").unwrap();
        let alice = id_of("http://ex/alice").unwrap();
        let knows = id_of("http://ex/knows").unwrap();
        snapshots.update(|store| {
            store.add_triple(inferray_model::IdTriple::new(carol, knows, alice));
        });

        let (_, body) = http(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(body.contains("\"epoch\":1"), "body: {body}");
        let ask = "ASK { <http://ex/carol> <http://ex/knows> <http://ex/alice> }";
        let (_, body) = http(
            addr,
            &format!(
                "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n{ask}",
                ask.len()
            ),
        );
        assert!(body.contains("\"boolean\":true"), "body: {body}");
        server.shutdown();
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("%3Fx%3D1"), "?x=1");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }

    #[test]
    fn percent_decoding_truncated_escapes_fall_back_to_literals() {
        // Escapes cut off at end-of-input keep the literal bytes instead of
        // panicking or swallowing the tail.
        assert_eq!(percent_decode("%"), "%");
        assert_eq!(percent_decode("%2"), "%2");
        assert_eq!(percent_decode("a%2"), "a%2");
        assert_eq!(percent_decode("ab%"), "ab%");
        // A valid escape flush against end-of-input still decodes.
        assert_eq!(percent_decode("a%20"), "a ");
        assert_eq!(percent_decode("%41"), "A");
        // '+' runs (including a lone one) are spaces, wherever they sit.
        assert_eq!(percent_decode("+"), " ");
        assert_eq!(percent_decode("+++"), "   ");
        assert_eq!(percent_decode("%+"), "% ");
        assert_eq!(percent_decode("+%2"), " %2");
        // One bad escape does not derail later good ones.
        assert_eq!(percent_decode("%%20"), "% ");
        assert_eq!(percent_decode("%2%41"), "%2A");
        assert_eq!(percent_decode(""), "");
    }

    #[test]
    fn post_without_content_length_is_411_and_chunked_is_501() {
        let (server, _snapshots, _dictionary) = start_server();
        let addr = server.local_addr();

        // POST without Content-Length: previously read as an empty body and
        // answered with a misleading "empty query" parse error.
        let (status, body) = http(addr, "POST /sparql HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 411, "body: {body}");
        assert!(body.contains("Content-Length"), "body: {body}");

        let (status, body) = http(
            addr,
            "POST /sparql HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        );
        assert_eq!(status, 501, "body: {body}");
        assert!(body.contains("chunked"), "body: {body}");

        // The same policy guards /update.
        let (status, _) = http(addr, "POST /update HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 411);

        // GET is unaffected: no body is expected or read.
        let (status, _) = http(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        server.shutdown();
    }

    /// An [`UpdateSink`] double recording the bodies it received.
    struct RecordingSink {
        bodies: std::sync::Mutex<Vec<String>>,
    }

    impl UpdateSink for Arc<RecordingSink> {
        fn retract_ntriples(&self, body: &str) -> Result<UpdateOutcome, UpdateError> {
            if body.contains("<broken") {
                return Err(UpdateError::rejected("parse error: broken"));
            }
            let requested = body.lines().filter(|l| !l.trim().is_empty()).count();
            self.bodies.lock().unwrap().push(body.to_owned());
            Ok(UpdateOutcome {
                epoch: 7,
                requested,
                removed: requested,
                triples: 100 - requested,
            })
        }
    }

    #[test]
    fn post_update_routes_to_the_sink_and_reports_json() {
        let (snapshots, dictionary) = service();
        let source = {
            let snapshots = Arc::clone(&snapshots);
            let dictionary = Arc::clone(&dictionary);
            move || SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(&dictionary))
        };
        let sink = Arc::new(RecordingSink {
            bodies: std::sync::Mutex::new(Vec::new()),
        });
        let server = SparqlServer::bind_with_updates(
            "127.0.0.1:0",
            2,
            Arc::new(source),
            Arc::new(Arc::clone(&sink)),
        )
        .expect("bind loopback");
        let addr = server.local_addr();

        let doc = "<http://ex/alice> <http://ex/knows> <http://ex/bob> .\n";
        let (status, body) = http(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Type: application/n-triples\r\nContent-Length: {}\r\n\r\n{doc}",
                doc.len()
            ),
        );
        assert_eq!(status, 200, "body: {body}");
        assert_eq!(
            body,
            "{\"epoch\":7,\"requested\":1,\"removed\":1,\"triples\":99}\n"
        );
        assert_eq!(sink.bodies.lock().unwrap().as_slice(), &[doc.to_owned()]);

        // Sink errors surface as 400 with the message.
        let bad = "<broken";
        let (status, body) = http(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{bad}",
                bad.len()
            ),
        );
        assert_eq!(status, 400);
        assert!(body.contains("parse error"), "body: {body}");

        // GET on /update is an unknown path.
        let (status, _) = http(addr, "GET /update HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 404);
        server.shutdown();
    }

    #[test]
    fn post_update_without_a_sink_is_404() {
        let (server, _snapshots, _dictionary) = start_server();
        let addr = server.local_addr();
        let doc = "<http://ex/a> <http://ex/b> <http://ex/c> .\n";
        let (status, body) = http(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{doc}",
                doc.len()
            ),
        );
        assert_eq!(status, 404);
        assert!(body.contains("not enabled"), "body: {body}");
        server.shutdown();
    }

    /// Raw variant of [`http`]: the full response including headers.
    fn http_raw(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(with_close(request).as_bytes())
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        response
    }

    /// A sink that is permanently degraded to read-only.
    struct ReadOnlySink;

    impl UpdateSink for ReadOnlySink {
        fn retract_ntriples(&self, _body: &str) -> Result<UpdateOutcome, UpdateError> {
            Err(UpdateError::Unavailable {
                message: "dataset is read-only: WAL append failed".to_owned(),
                retry_after_secs: 30,
            })
        }
    }

    struct StaticDurability;

    impl DurabilityReporter for StaticDurability {
        fn durability_json(&self) -> String {
            "{\"read_only\":true,\"wal_records\":3}".to_owned()
        }
    }

    fn bind_full(
        config: ServerConfig,
        sink: Option<Arc<dyn UpdateSink>>,
        durability: Option<Arc<dyn DurabilityReporter>>,
    ) -> SparqlServer {
        bind_validating(config, sink, durability, None)
    }

    fn bind_validating(
        config: ServerConfig,
        sink: Option<Arc<dyn UpdateSink>>,
        durability: Option<Arc<dyn DurabilityReporter>>,
        validation: Option<Arc<dyn ValidationReporter>>,
    ) -> SparqlServer {
        let (snapshots, dictionary) = service();
        let source =
            move || SnapshotQueryEngine::new(snapshots.snapshot(), Arc::clone(&dictionary));
        SparqlServer::bind_with(
            "127.0.0.1:0",
            config,
            Arc::new(source),
            sink,
            durability,
            validation,
        )
        .expect("bind loopback")
    }

    #[test]
    fn oversized_bodies_get_413_without_being_read() {
        let server = bind_full(
            ServerConfig {
                max_body_bytes: 1024,
                ..ServerConfig::default()
            },
            None,
            None,
        );
        let addr = server.local_addr();
        // Announce 2 KiB but do not send it: the refusal must not wait for
        // the body.
        let (status, body) = http(
            addr,
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: 2048\r\n\r\n",
        );
        assert_eq!(status, 413, "body: {body}");
        assert!(body.contains("body too large"), "body: {body}");
        server.shutdown();
    }

    #[test]
    fn a_stalled_request_head_gets_408() {
        let server = bind_full(
            ServerConfig {
                read_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
            None,
            None,
        );
        let addr = server.local_addr();
        // Send half a request line, then stall past the read timeout.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"GET /status HT").expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 408"), "response: {response}");
        server.shutdown();
    }

    #[test]
    fn a_stalled_post_body_gets_408() {
        let server = bind_full(
            ServerConfig {
                read_timeout: Duration::from_millis(150),
                ..ServerConfig::default()
            },
            None,
            None,
        );
        let addr = server.local_addr();
        // Promise 100 bytes, send 10, stall.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\nSELECT * {")
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 408"), "response: {response}");
        server.shutdown();
    }

    #[test]
    fn a_read_only_sink_degrades_update_to_503_with_retry_after() {
        let server = bind_full(ServerConfig::default(), Some(Arc::new(ReadOnlySink)), None);
        let addr = server.local_addr();
        let doc = "<http://ex/a> <http://ex/b> <http://ex/c> .\n";
        let response = http_raw(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{doc}",
                doc.len()
            ),
        );
        assert!(
            response.starts_with("HTTP/1.1 503 Service Unavailable"),
            "response: {response}"
        );
        assert!(response.contains("Retry-After: 30"), "response: {response}");
        assert!(response.contains("read-only"), "response: {response}");
        // Reads keep serving while writes are refused.
        let (status, _) = http(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        server.shutdown();
    }

    #[test]
    fn status_splices_in_the_durability_report() {
        let server = bind_full(
            ServerConfig::default(),
            None,
            Some(Arc::new(StaticDurability)),
        );
        let addr = server.local_addr();
        let (status, body) = http(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            body.contains("\"durability\":{\"read_only\":true,\"wal_records\":3}"),
            "body: {body}"
        );
        assert!(body.contains("\"epoch\":0"), "body: {body}");
        server.shutdown();
    }

    /// A sink whose dataset refuses every write with a shape violation.
    struct ShapeGatedSink;

    impl UpdateSink for ShapeGatedSink {
        fn retract_ntriples(&self, _body: &str) -> Result<UpdateOutcome, UpdateError> {
            Err(UpdateError::Invalid {
                message: "1 shape violation(s)".to_owned(),
                violations_json: "{\"total\":1,\"violations\":[{\"focus\":\"<urn:x>\",\
                                  \"shape\":\"S\",\"path\":\"urn:p\",\"line\":1,\"col\":20,\
                                  \"message\":\"0 value(s), at least 1 required\"}]}"
                    .to_owned(),
            })
        }
    }

    struct StaticValidation;

    impl ValidationReporter for StaticValidation {
        fn validation_json_into(&self, out: &mut String) {
            out.push_str("{\"shapes\":2,\"validated_epoch\":0,\"rejected_writes\":1}");
        }
    }

    #[test]
    fn shape_refusals_answer_422_with_the_violation_report() {
        let server = bind_validating(
            ServerConfig::default(),
            Some(Arc::new(ShapeGatedSink)),
            None,
            Some(Arc::new(StaticValidation)),
        );
        let addr = server.local_addr();
        let doc = "<http://ex/a> <http://ex/b> <http://ex/c> .\n";
        let response = http_raw(
            addr,
            &format!(
                "POST /update HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{doc}",
                doc.len()
            ),
        );
        assert!(
            response.starts_with("HTTP/1.1 422 Unprocessable Entity"),
            "response: {response}"
        );
        assert!(
            response.contains("\"error\":\"1 shape violation(s)\""),
            "response: {response}"
        );
        assert!(
            response.contains("\"violations\":{\"total\":1"),
            "response: {response}"
        );
        assert!(
            response.contains("\"line\":1,\"col\":20"),
            "response: {response}"
        );
        // The gate refused before publishing: reads still serve, and the
        // validation object is spliced into /status.
        let (status, body) = http(addr, "GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        assert_eq!(status, 200);
        assert!(
            body.contains(
                "\"validation\":{\"shapes\":2,\"validated_epoch\":0,\"rejected_writes\":1}"
            ),
            "body: {body}"
        );
        server.shutdown();
    }

    #[test]
    fn update_actions_route_assert_and_reject_unknown() {
        let sink = Arc::new(RecordingSink {
            bodies: std::sync::Mutex::new(Vec::new()),
        });
        let server = bind_full(
            ServerConfig::default(),
            Some(Arc::new(Arc::clone(&sink))),
            None,
        );
        let addr = server.local_addr();
        let doc = "<http://ex/a> <http://ex/b> <http://ex/c> .\n";
        // The default RecordingSink has no assert path: the trait default
        // rejects with 400.
        let (status, body) = http(
            addr,
            &format!(
                "POST /update?action=assert HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{doc}",
                doc.len()
            ),
        );
        assert_eq!(status, 400, "body: {body}");
        assert!(body.contains("asserts are not supported"), "body: {body}");
        // Unknown actions are named in the diagnostic.
        let (status, body) = http(
            addr,
            &format!(
                "POST /update?action=merge HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{doc}",
                doc.len()
            ),
        );
        assert_eq!(status, 400, "body: {body}");
        assert!(body.contains("unknown action 'merge'"), "body: {body}");
        // An explicit retract behaves like the default.
        let (status, _) = http(
            addr,
            &format!(
                "POST /update?action=retract HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{doc}",
                doc.len()
            ),
        );
        assert_eq!(status, 200);
        assert_eq!(sink.bodies.lock().unwrap().len(), 1);
        server.shutdown();
    }

    /// Reads one framed response off a persistent connection: status line,
    /// headers, then exactly `Content-Length` body bytes — the stream stays
    /// positioned at the next response.
    fn read_response(reader: &mut BufReader<TcpStream>) -> (u16, String, String) {
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read header line");
            assert!(!line.is_empty(), "connection closed mid-head: {head}");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .expect("status code");
        let length: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length header")
            .trim()
            .parse()
            .expect("numeric Content-Length");
        let mut body = vec![0u8; length];
        reader.read_exact(&mut body).expect("read body");
        (status, head, String::from_utf8(body).expect("utf-8 body"))
    }

    #[test]
    fn keep_alive_serves_pipelined_requests_and_sees_midstream_publishes() {
        let (server, snapshots, dictionary) = start_server();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = BufReader::new(stream);

        // Request 1: default HTTP/1.1 keeps the connection open.
        reader
            .get_mut()
            .write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let (status, head, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: keep-alive"), "head: {head}");
        assert!(body.contains("\"epoch\":0"), "body: {body}");

        // Publish a new epoch between two requests of the same connection.
        let id_of = |iri: &str| dictionary.id_of(&Term::iri(iri.to_owned()));
        let carol = id_of("http://ex/carol").unwrap();
        let alice = id_of("http://ex/alice").unwrap();
        let knows = id_of("http://ex/knows").unwrap();
        snapshots.update(|store| {
            store.add_triple(inferray_model::IdTriple::new(carol, knows, alice));
        });

        // Request 2 (same connection) answers from the new epoch.
        reader
            .get_mut()
            .write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let (_, _, body) = read_response(&mut reader);
        assert!(body.contains("\"epoch\":1"), "body: {body}");

        // Pipelining: several requests written back-to-back before reading
        // any response, mixing queries and a parse error (a route-level 400
        // must not kill the connection).
        let ask = "ASK { <http://ex/carol> <http://ex/knows> <http://ex/alice> }";
        let mut burst = format!(
            "POST /sparql HTTP/1.1\r\nHost: t\r\nContent-Type: application/sparql-query\r\nContent-Length: {}\r\n\r\n{ask}",
            ask.len()
        );
        burst.push_str("GET /sparql?query=nonsense HTTP/1.1\r\nHost: t\r\n\r\n");
        burst.push_str("GET /status HTTP/1.1\r\nHost: t\r\n\r\n");
        reader.get_mut().write_all(burst.as_bytes()).expect("send");
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("\"boolean\":true"), "body: {body}");
        let (status, head, _) = read_response(&mut reader);
        assert_eq!(status, 400);
        assert!(head.contains("Connection: keep-alive"), "head: {head}");
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert!(body.contains("\"triples\":4"), "body: {body}");

        // `Connection: close` is honored: response says so and EOF follows.
        reader
            .get_mut()
            .write_all(b"GET /status HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .expect("send");
        let (status, head, _) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert!(head.contains("Connection: close"), "head: {head}");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("drain");
        assert!(rest.is_empty(), "bytes after close: {rest}");
        server.shutdown();
    }

    #[test]
    fn head_requests_return_get_headers_without_a_body() {
        let (server, _snapshots, _dictionary) = start_server();
        let addr = server.local_addr();
        let stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut reader = BufReader::new(stream);

        // HEAD /status announces the GET body length but sends none — the
        // next response must start right after the blank line.
        reader
            .get_mut()
            .write_all(b"HEAD /status HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let mut head = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read header line");
            if line == "\r\n" {
                break;
            }
            head.push_str(&line);
        }
        assert!(head.starts_with("HTTP/1.1 200"), "head: {head}");
        let announced: usize = head
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length")
            .trim()
            .parse()
            .expect("numeric");
        assert!(announced > 0);

        // GET on the same connection: the body length matches what HEAD
        // announced, proving no body bytes leaked into the stream.
        reader
            .get_mut()
            .write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let (status, _, body) = read_response(&mut reader);
        assert_eq!(status, 200);
        assert_eq!(body.len(), announced);

        // HEAD /sparql evaluates the query and frames the result length.
        let query = percent_encode_for_test("SELECT ?x WHERE { ?x <http://ex/knows> ?y }");
        reader
            .get_mut()
            .write_all(
                format!(
                    "HEAD /sparql?query={query} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .expect("send");
        let mut rest = String::new();
        reader.read_to_string(&mut rest).expect("read");
        assert!(rest.starts_with("HTTP/1.1 200"), "response: {rest}");
        let announced: usize = rest
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .expect("Content-Length")
            .trim()
            .parse()
            .expect("numeric");
        assert!(announced > 0);
        let after_head = rest.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or("");
        assert!(after_head.is_empty(), "HEAD sent a body: {after_head}");
        server.shutdown();
    }

    #[test]
    fn keep_alive_can_be_disabled_in_config() {
        let server = bind_full(
            ServerConfig {
                keep_alive: false,
                ..ServerConfig::default()
            },
            None,
            None,
        );
        let addr = server.local_addr();
        // No Connection header from the client: the server still closes.
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /status HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("send");
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read");
        assert!(response.starts_with("HTTP/1.1 200"), "response: {response}");
        assert!(
            response.contains("Connection: close"),
            "response: {response}"
        );
        server.shutdown();
    }

    /// Just enough encoding for the test queries (space and reserved chars).
    fn percent_encode_for_test(query: &str) -> String {
        let mut out = String::new();
        for byte in query.bytes() {
            match byte {
                b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                    out.push(byte as char)
                }
                other => out.push_str(&format!("%{other:02X}")),
            }
        }
        out
    }
}
