//! Rule-program static analysis: parse, check, and compile user-defined
//! rulesets into the scheduler's vocabulary.
//!
//! The pipeline has two stages:
//!
//! 1. **[`analyze`]** — purely symbolic: the parser ([`parse`] module) turns
//!    a textual datalog-style rule file into [`SymRule`]s, then the check
//!    passes vet safety/range-restriction, duplicate and dead rules,
//!    disconnected patterns, shadowing, and the predicate dependency graph.
//!    Every finding is a positioned [`Diagnostic`] with a stable `RA…` code
//!    (table in `docs/rules.md`).
//! 2. **[`Analysis::compile`]** — lowers the rules against a
//!    [`Dictionary`], derives each rule's input/output signature
//!    ([`DerivedInputs`]/[`DerivedOutputs`] — the same vocabulary the §4.3
//!    scheduler and the delete–rederive probes consume), and recognizes
//!    rules that are alpha-equivalent to catalog built-ins so they keep
//!    their hand-written executors.
//!
//! [`crate::Ruleset::from_analyzed`] turns the compiled result into a
//! runnable ruleset; `inferray-cli rules check|explain` exposes the
//! diagnostics and the derived signatures on the command line.

pub mod builtin;
mod check;
mod compile;
pub mod cost;
mod diag;
mod exec;
mod parse;
mod signature;

pub use compile::{recognize, Atom, CompiledRule, CompiledRuleset, Term};
pub use diag::{Diagnostic, Severity};
pub use exec::{apply_compiled, supports};
pub use parse::{Span, SymAtom, SymRule, SymTerm};
pub use signature::{DerivedInputs, DerivedOutputs};

use inferray_dictionary::Dictionary;

/// The result of the symbolic stage: parsed rules plus every parse/check
/// diagnostic, sorted by position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Analysis {
    /// The rules that parsed, in file order.
    pub rules: Vec<SymRule>,
    /// Parse and check findings, sorted by position then code.
    pub diagnostics: Vec<Diagnostic>,
}

/// Parses and checks a rule file. Never fails: findings (including syntax
/// errors) are reported through [`Analysis::diagnostics`].
pub fn analyze(text: &str) -> Analysis {
    let (rules, mut diagnostics) = parse::parse(text);
    diagnostics.extend(check::check(&rules));
    diagnostics.sort_by(|a, b| (a.line, a.col, a.code).cmp(&(b.line, b.col, b.code)));
    Analysis { rules, diagnostics }
}

impl Analysis {
    /// `true` when any finding is an error — the file must not be loaded.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Lowers the analyzed rules against `dict`, deriving signatures and
    /// recognizing built-ins. `Err` carries every error-severity diagnostic
    /// (symbolic-stage errors, or `RA010` lowering failures).
    pub fn compile(&self, dict: &mut Dictionary) -> Result<CompiledRuleset, Vec<Diagnostic>> {
        if self.has_errors() {
            return Err(self.diagnostics.clone());
        }
        compile::lower(&self.rules, dict)
    }
}

/// Convenience: analyze + compile + build a runnable [`crate::Ruleset`].
/// `Err` carries the diagnostics that made the file unloadable.
pub fn load_ruleset(text: &str, dict: &mut Dictionary) -> Result<crate::Ruleset, Vec<Diagnostic>> {
    let analysis = analyze(text);
    let compiled = analysis.compile(dict)?;
    Ok(crate::Ruleset::from_analyzed(&compiled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sorts_diagnostics_by_position() {
        let analysis = analyze(
            "rule b: ?x <urn:p> ?y => ?x <urn:q> ?z .\nrule a: ?x <urn:p> ?y => ?q <urn:r> ?y .",
        );
        assert!(analysis.has_errors());
        assert_eq!(analysis.diagnostics.len(), 2);
        assert!(analysis.diagnostics[0].line <= analysis.diagnostics[1].line);
    }

    #[test]
    fn compile_refuses_files_with_errors() {
        let mut dict = Dictionary::new();
        let analysis = analyze("rule bad: ?x <urn:p> ?y => ?x <urn:p> ?z .");
        let err = analysis.compile(&mut dict).expect_err("unsafe rule");
        assert!(err.iter().any(|d| d.code == "RA003"));
    }
}
