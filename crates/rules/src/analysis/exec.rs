//! The generic semi-naive executor for analyzer-compiled rules, plus the
//! one-step support probe the delete–rederive path uses.
//!
//! Built-in rules recognized by the analyzer run through their hand-written
//! class executors; everything else lands here: a backtracking join over the
//! sorted pair tables that evaluates the body atoms in written order. Like
//! the hand-written executors it performs **no** presence filtering — during
//! rederivation after an over-deletion the stores intentionally lack the
//! deleted triples, and a derivation must be reported even when it
//! reproduces an existing pair (the merge dedups).

use super::compile::{Atom, CompiledRule, Term};
use crate::context::RuleContext;
use inferray_model::ids::is_property_id;
use inferray_model::IdTriple;
use inferray_store::{InferredBuffer, TripleStore};

/// Variable bindings, indexed by `Term::Var` number.
type Bindings = Vec<Option<u64>>;

fn resolve(term: Term, bindings: &Bindings) -> Option<u64> {
    match term {
        Term::Const(value) => Some(value),
        Term::Var(v) => bindings[v as usize],
    }
}

/// Unifies `term` with `value`; returns `None` on mismatch, `Some(v)` with
/// the variable that was newly bound (for undo), `Some(None)` otherwise.
#[allow(clippy::option_option)]
fn unify(term: Term, value: u64, bindings: &mut Bindings) -> Option<Option<u32>> {
    match term {
        Term::Const(c) => (c == value).then_some(None),
        Term::Var(v) => match bindings[v as usize] {
            Some(bound) => (bound == value).then_some(None),
            None => {
                bindings[v as usize] = Some(value);
                Some(Some(v))
            }
        },
    }
}

fn undo(newly: Option<u32>, bindings: &mut Bindings) {
    if let Some(v) = newly {
        bindings[v as usize] = None;
    }
}

/// Matches one atom against one table, continuing with `cont` for every
/// consistent extension of `bindings`. Returns `false` when `cont` asked to
/// stop the search.
fn match_in_table(
    atom: &Atom,
    table: &inferray_store::PropertyTable,
    bindings: &mut Bindings,
    cont: &mut dyn FnMut(&mut Bindings) -> bool,
) -> bool {
    match (resolve(atom.s, bindings), resolve(atom.o, bindings)) {
        (Some(s), Some(o)) => !table.contains_pair(s, o) || cont(bindings),
        (Some(s), None) => {
            for o in table.objects_of(s).collect::<Vec<_>>() {
                let Some(newly) = unify(atom.o, o, bindings) else {
                    continue;
                };
                let keep = cont(bindings);
                undo(newly, bindings);
                if !keep {
                    return false;
                }
            }
            true
        }
        (None, Some(o)) => {
            for s in table.subjects_of(o).collect::<Vec<_>>() {
                let Some(newly) = unify(atom.s, s, bindings) else {
                    continue;
                };
                let keep = cont(bindings);
                undo(newly, bindings);
                if !keep {
                    return false;
                }
            }
            true
        }
        (None, None) => {
            for (s, o) in table.iter_pairs() {
                let Some(newly_s) = unify(atom.s, s, bindings) else {
                    continue;
                };
                let Some(newly_o) = unify(atom.o, o, bindings) else {
                    undo(newly_s, bindings);
                    continue;
                };
                let keep = cont(bindings);
                undo(newly_o, bindings);
                undo(newly_s, bindings);
                if !keep {
                    return false;
                }
            }
            true
        }
    }
}

/// Matches one atom against `store`, dispatching on whether the predicate is
/// resolved. Returns `false` when the continuation stopped the search.
fn match_atom(
    atom: &Atom,
    store: &TripleStore,
    bindings: &mut Bindings,
    cont: &mut dyn FnMut(&mut Bindings) -> bool,
) -> bool {
    match resolve(atom.p, bindings) {
        Some(p) => {
            // A predicate variable bound from a subject/object position can
            // hold a resource identifier — no table, no match.
            if !is_property_id(p) {
                return true;
            }
            match store.table(p) {
                Some(table) => match_in_table(atom, table, bindings, cont),
                None => true,
            }
        }
        None => {
            for (p, table) in store.iter_tables() {
                let Some(newly) = unify(atom.p, p, bindings) else {
                    continue;
                };
                let keep = match_in_table(atom, table, bindings, cont);
                undo(newly, bindings);
                if !keep {
                    return false;
                }
            }
            true
        }
    }
}

/// Solves body atoms `idx..` with atom `new_idx` matched against `ctx.new`
/// and the rest against `ctx.main`.
fn solve(
    rule: &CompiledRule,
    idx: usize,
    new_idx: usize,
    ctx: &RuleContext<'_>,
    bindings: &mut Bindings,
    sink: &mut dyn FnMut(&mut Bindings) -> bool,
) -> bool {
    let Some(atom) = rule.body.get(idx) else {
        return sink(bindings);
    };
    let store = if idx == new_idx { ctx.new } else { ctx.main };
    match_atom(atom, store, bindings, &mut |bindings| {
        solve(rule, idx + 1, new_idx, ctx, bindings, sink)
    })
}

fn emit(rule: &CompiledRule, bindings: &Bindings, out: &mut InferredBuffer) {
    for atom in &rule.head {
        let (Some(s), Some(p), Some(o)) = (
            resolve(atom.s, bindings),
            resolve(atom.p, bindings),
            resolve(atom.o, bindings),
        ) else {
            debug_assert!(false, "safety check guarantees ground heads");
            continue;
        };
        // Mirrors the hand-written γ/δ executors: a head predicate bound to
        // a non-property identifier has no table to land in.
        if !is_property_id(p) {
            continue;
        }
        out.add(p, s, o);
    }
}

/// Fires `rule` semi-naively: for each body position `i`, joins atom `i`
/// against `ctx.new` and every other atom against `ctx.main` (`new ⊆ main`),
/// the same union of passes the hand-written executors implement. Derived
/// pairs append to `out`; the caller's merge dedups.
pub fn apply_compiled(rule: &CompiledRule, ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    let mut bindings: Bindings = vec![None; rule.var_count as usize];
    for new_idx in 0..rule.body.len() {
        solve(rule, 0, new_idx, ctx, &mut bindings, &mut |bindings| {
            emit(rule, bindings, out);
            true
        });
    }
}

/// One-step support probe: `true` when some body match of `rule` in `store`
/// derives exactly `triple` — sound and complete for a single derivation
/// step, exactly like the hand-written probes in [`crate::support`].
pub fn supports(rule: &CompiledRule, store: &TripleStore, triple: IdTriple) -> bool {
    for head in &rule.head {
        let mut bindings: Bindings = vec![None; rule.var_count as usize];
        let Some(u_s) = unify(head.s, triple.s, &mut bindings) else {
            continue;
        };
        let Some(u_p) = unify(head.p, triple.p, &mut bindings) else {
            undo(u_s, &mut bindings);
            continue;
        };
        if unify(head.o, triple.o, &mut bindings).is_none() {
            undo(u_p, &mut bindings);
            undo(u_s, &mut bindings);
            continue;
        }
        let mut found = false;
        solve_all(rule, 0, store, &mut bindings, &mut found);
        if found {
            return true;
        }
        // Bindings are discarded between head alternatives; no undo needed.
    }
    false
}

fn solve_all(
    rule: &CompiledRule,
    idx: usize,
    store: &TripleStore,
    bindings: &mut Bindings,
    found: &mut bool,
) -> bool {
    let Some(atom) = rule.body.get(idx) else {
        *found = true;
        return false; // stop the search — one witness is enough
    };
    match_atom(atom, store, bindings, &mut |bindings| {
        solve_all(rule, idx + 1, store, bindings, found)
    })
}

#[cfg(test)]
mod tests {
    use super::super::parse::parse;
    use super::*;
    use inferray_dictionary::Dictionary;
    use inferray_model::ids::{nth_property_id, nth_resource_id};
    use std::collections::BTreeSet;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    fn compile(text: &str, dict: &mut Dictionary) -> CompiledRule {
        let (rules, diags) = parse(text);
        assert!(diags.is_empty(), "{diags:?}");
        super::super::compile::lower(&rules, dict)
            .expect("lowers")
            .rules[0]
            .clone()
    }

    fn derived(
        rule: &CompiledRule,
        main: &TripleStore,
        new: &TripleStore,
    ) -> BTreeSet<(u64, u64, u64)> {
        let ctx = RuleContext::new(main, new);
        let mut out = InferredBuffer::new();
        apply_compiled(rule, &ctx, &mut out);
        out.iter()
            .flat_map(|(p, pairs)| {
                pairs
                    .chunks_exact(2)
                    .map(move |so| (so[0], p, so[1]))
                    .collect::<Vec<_>>()
            })
            .collect()
    }

    #[test]
    fn transitive_join_over_constant_predicate() {
        let mut dict = Dictionary::new();
        let rule = compile(
            "rule gp: ?x <urn:parent> ?y, ?y <urn:parent> ?z => ?x <urn:grandparent> ?z .",
            &mut dict,
        );
        let parent = dict.id_of_iri("urn:parent").unwrap();
        let grandparent = dict.id_of_iri("urn:grandparent").unwrap();
        let a = nth_resource_id(9_000);
        let main = store(&[(a, parent, a + 1), (a + 1, parent, a + 2)]);
        let got = derived(&rule, &main, &main);
        assert_eq!(got, BTreeSet::from([(a, grandparent, a + 2)]));
    }

    #[test]
    fn semi_naive_split_covers_both_orders() {
        let mut dict = Dictionary::new();
        let rule = compile(
            "rule gp: ?x <urn:parent> ?y, ?y <urn:parent> ?z => ?x <urn:grandparent> ?z .",
            &mut dict,
        );
        let parent = dict.id_of_iri("urn:parent").unwrap();
        let grandparent = dict.id_of_iri("urn:grandparent").unwrap();
        let a = nth_resource_id(9_100);
        // Old pair a→b, new pair b→c: only the (old, new) order derives.
        let main = store(&[(a, parent, a + 1), (a + 1, parent, a + 2)]);
        let new = store(&[(a + 1, parent, a + 2)]);
        assert_eq!(
            derived(&rule, &main, &new),
            BTreeSet::from([(a, grandparent, a + 2)])
        );
        // New pair a→b, old pair b→c: the (new, old) order derives.
        let new = store(&[(a, parent, a + 1)]);
        assert_eq!(
            derived(&rule, &main, &new),
            BTreeSet::from([(a, grandparent, a + 2)])
        );
        // Exclusively-old pairs with an unrelated new table derive nothing.
        let other = nth_property_id(950);
        let new = store(&[(a + 7, other, a + 8)]);
        assert!(derived(&rule, &main, &new).is_empty());
    }

    #[test]
    fn variable_predicate_iterates_tables_and_guards_heads() {
        let mut dict = Dictionary::new();
        let rule = compile(
            "rule inv: ?p <urn:flips> ?q, ?x ?p ?y => ?y ?q ?x .",
            &mut dict,
        );
        let flips = dict.id_of_iri("urn:flips").unwrap();
        let p = nth_property_id(951);
        let q = nth_property_id(952);
        let a = nth_resource_id(9_200);
        // q resolves to a property: the head lands in q's table. A schema
        // pair whose object is a plain resource produces nothing.
        let main = store(&[(p, flips, q), (a, p, a + 1), (p, flips, a + 9)]);
        assert_eq!(
            derived(&rule, &main, &main),
            BTreeSet::from([(a + 1, q, a)])
        );
    }

    #[test]
    fn repeated_variables_unify() {
        let mut dict = Dictionary::new();
        let rule = compile(
            "rule selfloop: ?x <urn:p> ?x => ?x <urn:loop> ?x .",
            &mut dict,
        );
        let p = dict.id_of_iri("urn:p").unwrap();
        let looped = dict.id_of_iri("urn:loop").unwrap();
        let a = nth_resource_id(9_300);
        let main = store(&[(a, p, a), (a + 1, p, a + 2)]);
        assert_eq!(
            derived(&rule, &main, &main),
            BTreeSet::from([(a, looped, a)])
        );
    }

    #[test]
    fn support_probe_finds_one_step_witnesses() {
        let mut dict = Dictionary::new();
        let rule = compile(
            "rule gp: ?x <urn:parent> ?y, ?y <urn:parent> ?z => ?x <urn:grandparent> ?z .",
            &mut dict,
        );
        let parent = dict.id_of_iri("urn:parent").unwrap();
        let grandparent = dict.id_of_iri("urn:grandparent").unwrap();
        let a = nth_resource_id(9_400);
        let main = store(&[(a, parent, a + 1), (a + 1, parent, a + 2)]);
        assert!(supports(&rule, &main, IdTriple::new(a, grandparent, a + 2)));
        assert!(!supports(
            &rule,
            &main,
            IdTriple::new(a, grandparent, a + 1)
        ));
        assert!(!supports(&rule, &main, IdTriple::new(a, parent, a + 1)));
        // Remove a premise: the derivation is no longer supported.
        let partial = store(&[(a, parent, a + 1)]);
        assert!(!supports(
            &rule,
            &partial,
            IdTriple::new(a, grandparent, a + 2)
        ));
    }
}
