//! Per-rule cost estimates over a concrete dataset.
//!
//! `inferray-cli rules explain --data FILE` pairs the static signature dump
//! with a dynamic estimate: for every body atom, how many sorted pairs the
//! sort-merge scan touches, and a left-fold join-size estimate derived from
//! the store's bounded distinct-key counters
//! ([`PropertyTable::distinct_subjects`] /
//! [`PropertyTable::distinct_objects`](inferray_store::PropertyTable::distinct_objects)).
//! The estimator is deliberately the query planner's model — independence
//! across atoms, `|A ⋈ B| ≈ |A|·|B| / max(d_join, 1)` — so `rules explain`
//! predicts the same relative ordering the scheduler will observe.
//!
//! The counters for objects come from the ⟨o,s⟩ cache; callers should run
//! [`TripleStore::ensure_all_os`](inferray_store::TripleStore::ensure_all_os)
//! first, otherwise object-side selectivity falls back to the pair count.

use super::compile::{Atom, CompiledRule, Term};
use inferray_dictionary::Dictionary;
use inferray_model::ids::is_property_id;
use inferray_store::{DistinctCount, TripleStore};

/// Probe budget handed to the distinct-key estimators: tables with up to
/// this many key runs are counted exactly, larger ones extrapolated from
/// the scanned prefix.
pub const DISTINCT_BUDGET: usize = 1024;

/// Scan and selectivity statistics for one body atom.
#[derive(Debug, Clone)]
pub struct AtomCost {
    /// The atom rendered back to rule syntax (`?v0 <iri> ?v1`).
    pub pattern: String,
    /// Pairs the sort-merge scan of this atom touches — the predicate's
    /// table length, or the whole store when the predicate is a variable.
    pub rows: usize,
    /// Distinct subjects of the predicate's table (`None` when the
    /// predicate is a variable or resolves to no table).
    pub distinct_subjects: Option<DistinctCount>,
    /// Distinct objects, from the ⟨o,s⟩ cache (`None` when the predicate
    /// is a variable, resolves to no table, or the cache is absent).
    pub distinct_objects: Option<DistinctCount>,
}

/// The derived estimate for one rule body.
#[derive(Debug, Clone)]
pub struct RuleCost {
    /// Per-atom statistics, in body order.
    pub atoms: Vec<AtomCost>,
    /// Estimated number of body bindings after joining every atom
    /// left-to-right (0 for an empty body).
    pub est_bindings: f64,
    /// Total pairs scanned across all atoms — the lower bound on the work
    /// one firing of the rule performs.
    pub scanned: usize,
}

impl RuleCost {
    /// `est_bindings` rounded for display, saturating at `u64::MAX`.
    pub fn est_rounded(&self) -> u64 {
        if self.est_bindings >= u64::MAX as f64 {
            u64::MAX
        } else {
            self.est_bindings.round() as u64
        }
    }
}

fn term_str(term: Term, dict: &Dictionary) -> String {
    match term {
        Term::Var(v) => format!("?v{v}"),
        Term::Const(c) => match dict.decode(c) {
            Some(decoded) => decoded.to_string(),
            None => format!("#{c}"),
        },
    }
}

fn atom_cost(atom: &Atom, store: &TripleStore, dict: &Dictionary) -> AtomCost {
    let pattern = format!(
        "{} {} {}",
        term_str(atom.s, dict),
        term_str(atom.p, dict),
        term_str(atom.o, dict)
    );
    match atom.p.as_const() {
        Some(p) if is_property_id(p) => {
            let table = store.table(p).filter(|t| !t.is_empty());
            AtomCost {
                pattern,
                rows: table.map_or(0, |t| t.len()),
                distinct_subjects: table.map(|t| t.distinct_subjects(DISTINCT_BUDGET)),
                distinct_objects: table.and_then(|t| t.distinct_objects(DISTINCT_BUDGET)),
            }
        }
        // A constant that is not a property id (or an unknown term lowered
        // to a fresh id) matches nothing.
        Some(_) => AtomCost {
            pattern,
            rows: 0,
            distinct_subjects: None,
            distinct_objects: None,
        },
        // Variable predicate: the scan walks every table.
        None => AtomCost {
            pattern,
            rows: store.len(),
            distinct_subjects: None,
            distinct_objects: None,
        },
    }
}

fn is_bound(term: Term, bound: &[u32]) -> bool {
    term.as_var().is_some_and(|v| bound.contains(&v))
}

fn bind_vars(atom: &Atom, bound: &mut Vec<u32>) {
    for term in [atom.s, atom.p, atom.o] {
        if let Some(v) = term.as_var() {
            if !bound.contains(&v) {
                bound.push(v);
            }
        }
    }
}

/// Distinct-key count of the most selective join column this atom shares
/// with the already-bound variables, or `None` for a cross product.
fn join_selectivity(
    atom: &Atom,
    cost: &AtomCost,
    bound: &[u32],
    store: &TripleStore,
) -> Option<usize> {
    let mut best: Option<usize> = None;
    let mut consider = |d: usize| {
        best = Some(best.map_or(d, |b| b.max(d)));
    };
    if is_bound(atom.s, bound) {
        // Without a table there is nothing to join; `rows` (0) is the
        // honest fallback either way.
        consider(cost.distinct_subjects.map_or(cost.rows, |d| d.count));
    }
    if is_bound(atom.o, bound) {
        consider(cost.distinct_objects.map_or(cost.rows, |d| d.count));
    }
    if is_bound(atom.p, bound) {
        consider(store.property_ids().count());
    }
    best
}

/// Estimates the cost of one rule body over `store`, folding atoms
/// left-to-right exactly as the generic executor binds them.
pub fn estimate(rule: &CompiledRule, store: &TripleStore, dict: &Dictionary) -> RuleCost {
    let atoms: Vec<AtomCost> = rule
        .body
        .iter()
        .map(|a| atom_cost(a, store, dict))
        .collect();
    let mut bound: Vec<u32> = Vec::new();
    let mut est = 0.0f64;
    for (i, (atom, cost)) in rule.body.iter().zip(&atoms).enumerate() {
        let rows = cost.rows as f64;
        if i == 0 {
            est = rows;
        } else {
            match join_selectivity(atom, cost, &bound, store) {
                Some(d) => est = est * rows / d.max(1) as f64,
                // No shared variable: a cross product.
                None => est *= rows,
            }
        }
        bind_vars(atom, &mut bound);
    }
    RuleCost {
        est_bindings: est,
        scanned: atoms.iter().map(|a| a.rows).sum(),
        atoms,
    }
}

#[cfg(test)]
mod tests {
    use super::super::analyze;
    use super::*;
    use inferray_model::Triple;

    fn load(triples: &[(&str, &str, &str)]) -> (TripleStore, Dictionary) {
        let mut dict = Dictionary::new();
        let mut store = TripleStore::new();
        for (s, p, o) in triples {
            let t = dict.encode_triple(&Triple::iris(*s, *p, *o)).unwrap();
            store.add_triple(t);
        }
        store.finalize();
        store.ensure_all_os();
        (store, dict)
    }

    fn compile_one(text: &str, dict: &mut Dictionary) -> CompiledRule {
        let analysis = analyze(text);
        let compiled = analysis.compile(dict).expect("rule compiles");
        compiled.rules.into_iter().next().expect("one rule")
    }

    #[test]
    fn single_atom_cost_is_the_table_scan() {
        let (store, mut dict) = load(&[
            ("urn:a", "urn:p", "urn:b"),
            ("urn:b", "urn:p", "urn:c"),
            ("urn:c", "urn:q", "urn:d"),
        ]);
        let rule = compile_one("rule r: ?x <urn:p> ?y => ?y <urn:r> ?x .", &mut dict);
        let cost = estimate(&rule, &store, &dict);
        assert_eq!(cost.atoms.len(), 1);
        assert_eq!(cost.atoms[0].rows, 2);
        assert_eq!(cost.scanned, 2);
        assert_eq!(cost.est_rounded(), 2);
        let subjects = cost.atoms[0].distinct_subjects.expect("const predicate");
        assert!(subjects.exact);
        assert_eq!(subjects.count, 2);
        assert_eq!(
            cost.atoms[0]
                .distinct_objects
                .expect("os cache built")
                .count,
            2
        );
    }

    #[test]
    fn join_estimate_divides_by_the_shared_column() {
        // ⟨urn:p⟩ has 4 pairs with 2 distinct objects; ⟨urn:q⟩ has 2 pairs
        // with 2 distinct subjects. Joining ?y (object of atom 0, subject
        // of atom 1): est = 4 * 2 / 2 = 4.
        let (store, mut dict) = load(&[
            ("urn:a", "urn:p", "urn:x"),
            ("urn:b", "urn:p", "urn:x"),
            ("urn:c", "urn:p", "urn:y"),
            ("urn:d", "urn:p", "urn:y"),
            ("urn:x", "urn:q", "urn:k"),
            ("urn:y", "urn:q", "urn:k"),
        ]);
        let rule = compile_one(
            "rule chain: ?x <urn:p> ?y, ?y <urn:q> ?z => ?x <urn:r> ?z .",
            &mut dict,
        );
        let cost = estimate(&rule, &store, &dict);
        assert_eq!(cost.atoms[0].rows, 4);
        assert_eq!(cost.atoms[1].rows, 2);
        assert_eq!(cost.scanned, 6);
        assert_eq!(cost.est_rounded(), 4);
    }

    #[test]
    fn disconnected_atoms_multiply_as_a_cross_product() {
        let (store, mut dict) = load(&[
            ("urn:a", "urn:p", "urn:b"),
            ("urn:b", "urn:p", "urn:c"),
            ("urn:c", "urn:q", "urn:d"),
        ]);
        // ?a/?b vs ?c/?d share nothing (the checker flags this RA006
        // warning, which does not block compilation).
        let rule = compile_one(
            "rule cross: ?a <urn:p> ?b, ?c <urn:q> ?d => ?a <urn:r> ?d .",
            &mut dict,
        );
        let cost = estimate(&rule, &store, &dict);
        assert_eq!(cost.est_rounded(), 2);
        assert_eq!(cost.scanned, 3);
    }

    #[test]
    fn unknown_predicates_scan_nothing() {
        let (store, mut dict) = load(&[("urn:a", "urn:p", "urn:b")]);
        let rule = compile_one("rule r: ?x <urn:nope> ?y => ?x <urn:r> ?y .", &mut dict);
        let cost = estimate(&rule, &store, &dict);
        assert_eq!(cost.atoms[0].rows, 0);
        assert_eq!(cost.est_rounded(), 0);
    }

    #[test]
    fn variable_predicates_scan_the_whole_store() {
        let (store, mut dict) = load(&[("urn:a", "urn:p", "urn:b"), ("urn:c", "urn:q", "urn:d")]);
        let rule = compile_one("rule any: ?x ?p ?y => ?y ?p ?x .", &mut dict);
        let cost = estimate(&rule, &store, &dict);
        assert_eq!(cost.atoms[0].rows, store.len());
        assert!(cost.atoms[0].distinct_subjects.is_none());
    }
}
