//! The rule-file front end: a self-contained byte lexer and a recursive
//! parser for the textual datalog-style syntax.
//!
//! ```text
//! @prefix ex: <http://example.org/> .
//!
//! # body => head, both comma-separated triple patterns.
//! rule grandparent: ?x ex:parent ?y, ?y ex:parent ?z => ?x ex:grandparent ?z .
//! ```
//!
//! Terms are `?var`, `<absolute-iri>`, `prefix:local`, or the Turtle
//! shorthand `a` for `rdf:type` (predicate position only). Comments run from
//! `#` to end of line. Parse errors are reported as positioned `RA001`
//! diagnostics (unknown prefixes as `RA002`) and recovery skips to the next
//! `.` so one bad rule does not hide the findings in the rest of the file.

use super::diag::{Diagnostic, Severity};
use inferray_model::vocab;
use std::collections::HashMap;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// A symbolic (pre-dictionary) term of a triple pattern.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SymTerm {
    /// `?name`.
    Var(String),
    /// A resolved absolute IRI.
    Iri(String),
}

/// A symbolic triple pattern `s p o`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymAtom {
    /// Subject term.
    pub s: SymTerm,
    /// Predicate term.
    pub p: SymTerm,
    /// Object term.
    pub o: SymTerm,
    /// Position of the pattern's first token.
    pub span: Span,
}

/// A parsed rule: `rule NAME: body => head .`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymRule {
    /// The declared rule name.
    pub name: String,
    /// Position of the `rule` keyword.
    pub span: Span,
    /// Body (antecedent) patterns, in written order.
    pub body: Vec<SymAtom>,
    /// Head (consequent) patterns, in written order.
    pub head: Vec<SymAtom>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Var(String),
    Iri(String),
    Pname(String, String),
    Colon,
    Comma,
    Dot,
    Arrow,
    AtPrefix,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(n) => format!("`{n}`"),
            Tok::Var(n) => format!("`?{n}`"),
            Tok::Iri(i) => format!("`<{i}>`"),
            Tok::Pname(p, l) => format!("`{p}:{l}`"),
            Tok::Colon => "`:`".into(),
            Tok::Comma => "`,`".into(),
            Tok::Dot => "`.`".into(),
            Tok::Arrow => "`=>`".into(),
            Tok::AtPrefix => "`@prefix`".into(),
            Tok::Eof => "end of file".into(),
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn skip_trivia(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.bump();
            } else if b == b'#' {
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn take_name(&mut self) -> String {
        let start = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.bump();
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    /// The next token and its span; lexing errors become `RA001`.
    fn next(&mut self, diags: &mut Vec<Diagnostic>) -> (Tok, Span) {
        loop {
            self.skip_trivia();
            let span = Span {
                line: self.line,
                col: self.col,
            };
            let Some(b) = self.peek() else {
                return (Tok::Eof, span);
            };
            match b {
                b',' => {
                    self.bump();
                    return (Tok::Comma, span);
                }
                b'.' => {
                    self.bump();
                    return (Tok::Dot, span);
                }
                b':' => {
                    self.bump();
                    return (Tok::Colon, span);
                }
                b'=' if self.peek_at(1) == Some(b'>') => {
                    self.bump();
                    self.bump();
                    return (Tok::Arrow, span);
                }
                b'@' => {
                    self.bump();
                    let word = self.take_name();
                    if word == "prefix" {
                        return (Tok::AtPrefix, span);
                    }
                    diags.push(Diagnostic::new(
                        "RA001",
                        Severity::Error,
                        span.line,
                        span.col,
                        format!("unknown directive `@{word}` (only `@prefix` is supported)"),
                    ));
                }
                b'?' => {
                    self.bump();
                    let name = self.take_name();
                    if name.is_empty() {
                        diags.push(Diagnostic::new(
                            "RA001",
                            Severity::Error,
                            span.line,
                            span.col,
                            "`?` must be followed by a variable name",
                        ));
                    } else {
                        return (Tok::Var(name), span);
                    }
                }
                b'<' => {
                    self.bump();
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'>' && c != b'\n') {
                        self.bump();
                    }
                    if self.peek() == Some(b'>') {
                        let iri =
                            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                        self.bump();
                        return (Tok::Iri(iri), span);
                    }
                    diags.push(Diagnostic::new(
                        "RA001",
                        Severity::Error,
                        span.line,
                        span.col,
                        "unterminated IRI: missing `>` before end of line",
                    ));
                }
                _ if is_name_byte(b) => {
                    let name = self.take_name();
                    // `prefix:local` — but `NAME:` followed by anything else
                    // (whitespace, `?`, …) lexes as Ident + Colon so rule
                    // headers parse.
                    if self.peek() == Some(b':') && self.peek_at(1).is_some_and(is_name_byte) {
                        self.bump();
                        let local = self.take_name();
                        return (Tok::Pname(name, local), span);
                    }
                    return (Tok::Ident(name), span);
                }
                _ => {
                    self.bump();
                    diags.push(Diagnostic::new(
                        "RA001",
                        Severity::Error,
                        span.line,
                        span.col,
                        format!("unexpected character `{}`", b as char),
                    ));
                }
            }
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    span: Span,
    prefixes: HashMap<String, String>,
    diags: Vec<Diagnostic>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let mut diags = Vec::new();
        let mut lexer = Lexer::new(text);
        let (tok, span) = lexer.next(&mut diags);
        Parser {
            lexer,
            tok,
            span,
            prefixes: HashMap::new(),
            diags,
        }
    }

    fn advance(&mut self) {
        let (tok, span) = self.lexer.next(&mut self.diags);
        self.tok = tok;
        self.span = span;
    }

    fn error_here(&mut self, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(
            "RA001",
            Severity::Error,
            self.span.line,
            self.span.col,
            message,
        ));
    }

    /// Skips tokens through the next `.` (or EOF) — the statement-level
    /// recovery point.
    fn recover(&mut self) {
        loop {
            match self.tok {
                Tok::Dot => {
                    self.advance();
                    return;
                }
                Tok::Eof => return,
                _ => self.advance(),
            }
        }
    }

    fn expect_dot(&mut self) {
        if self.tok == Tok::Dot {
            self.advance();
        } else {
            let found = self.tok.describe();
            self.error_here(format!("expected `.` to end the statement, found {found}"));
            self.recover();
        }
    }

    fn parse_prefix(&mut self) {
        self.advance(); // past @prefix
        let ns = match &self.tok {
            Tok::Ident(name) => name.clone(),
            other => {
                let found = other.describe();
                self.error_here(format!(
                    "expected a prefix name after `@prefix`, found {found}"
                ));
                self.recover();
                return;
            }
        };
        self.advance();
        if self.tok != Tok::Colon {
            let found = self.tok.describe();
            self.error_here(format!("expected `:` after the prefix name, found {found}"));
            self.recover();
            return;
        }
        self.advance();
        let iri = match &self.tok {
            Tok::Iri(iri) => iri.clone(),
            other => {
                let found = other.describe();
                self.error_here(format!("expected `<iri>` after the prefix, found {found}"));
                self.recover();
                return;
            }
        };
        self.advance();
        self.prefixes.insert(ns, iri);
        self.expect_dot();
    }

    /// One term; predicate position admits the `a` shorthand.
    fn parse_term(&mut self, predicate_position: bool) -> Option<SymTerm> {
        let term = match &self.tok {
            Tok::Var(name) => SymTerm::Var(name.clone()),
            Tok::Iri(iri) => SymTerm::Iri(iri.clone()),
            Tok::Pname(prefix, local) => match self.prefixes.get(prefix) {
                Some(ns) => SymTerm::Iri(format!("{ns}{local}")),
                None => {
                    let prefix = prefix.clone();
                    self.diags.push(Diagnostic::new(
                        "RA002",
                        Severity::Error,
                        self.span.line,
                        self.span.col,
                        format!("unknown prefix `{prefix}:` — declare it with `@prefix`"),
                    ));
                    SymTerm::Iri(format!("urn:inferray:unknown-prefix:{prefix}:{local}"))
                }
            },
            Tok::Ident(name) if name == "a" && predicate_position => {
                SymTerm::Iri(vocab::RDF_TYPE.to_string())
            }
            other => {
                let found = other.describe();
                let hint = if matches!(other, Tok::Ident(n) if n == "a") {
                    " (`a` is only valid in predicate position)"
                } else {
                    ""
                };
                self.error_here(format!(
                    "expected a term (`?var`, `<iri>` or `prefix:local`), found {found}{hint}"
                ));
                return None;
            }
        };
        self.advance();
        Some(term)
    }

    fn parse_atom(&mut self) -> Option<SymAtom> {
        let span = self.span;
        let s = self.parse_term(false)?;
        let p = self.parse_term(true)?;
        let o = self.parse_term(false)?;
        Some(SymAtom { s, p, o, span })
    }

    /// `atom (, atom)*` terminated by `=>` or `.` (not consumed).
    fn parse_atoms(&mut self) -> Option<Vec<SymAtom>> {
        let mut atoms = vec![self.parse_atom()?];
        while self.tok == Tok::Comma {
            self.advance();
            atoms.push(self.parse_atom()?);
        }
        Some(atoms)
    }

    fn parse_rule(&mut self) -> Option<SymRule> {
        let span = self.span;
        self.advance(); // past `rule`
        let name = match &self.tok {
            Tok::Ident(name) => name.clone(),
            other => {
                let found = other.describe();
                self.error_here(format!("expected a rule name after `rule`, found {found}"));
                return None;
            }
        };
        self.advance();
        if self.tok != Tok::Colon {
            let found = self.tok.describe();
            self.error_here(format!("expected `:` after the rule name, found {found}"));
            return None;
        }
        self.advance();
        let body = self.parse_atoms()?;
        if self.tok != Tok::Arrow {
            let found = self.tok.describe();
            self.error_here(format!(
                "expected `=>` between body and head, found {found}"
            ));
            return None;
        }
        self.advance();
        let head = self.parse_atoms()?;
        if self.tok != Tok::Dot {
            let found = self.tok.describe();
            self.error_here(format!("expected `.` to end the rule, found {found}"));
            return None;
        }
        self.advance();
        Some(SymRule {
            name,
            span,
            body,
            head,
        })
    }

    fn parse_file(mut self) -> (Vec<SymRule>, Vec<Diagnostic>) {
        let mut rules = Vec::new();
        loop {
            match &self.tok {
                Tok::Eof => break,
                Tok::AtPrefix => self.parse_prefix(),
                Tok::Ident(name) if name == "rule" => match self.parse_rule() {
                    Some(rule) => rules.push(rule),
                    None => self.recover(),
                },
                other => {
                    let found = other.describe();
                    self.error_here(format!(
                        "expected `rule` or `@prefix` at top level, found {found}"
                    ));
                    self.recover();
                }
            }
        }
        (rules, self.diags)
    }
}

/// Parses a rule file into symbolic rules plus `RA001`/`RA002` diagnostics.
pub fn parse(text: &str) -> (Vec<SymRule>, Vec<Diagnostic>) {
    Parser::new(text).parse_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(text: &str) -> Vec<SymRule> {
        let (rules, diags) = parse(text);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        rules
    }

    #[test]
    fn parses_prefixed_rule() {
        let rules = ok("@prefix ex: <http://example.org/> .\n\
                        rule gp: ?x ex:parent ?y, ?y ex:parent ?z => ?x ex:grandparent ?z .\n");
        assert_eq!(rules.len(), 1);
        let rule = &rules[0];
        assert_eq!(rule.name, "gp");
        assert_eq!(rule.body.len(), 2);
        assert_eq!(rule.head.len(), 1);
        assert_eq!(
            rule.body[0].p,
            SymTerm::Iri("http://example.org/parent".into())
        );
        assert_eq!(rule.body[0].s, SymTerm::Var("x".into()));
        assert_eq!(rule.span, Span { line: 2, col: 1 });
    }

    #[test]
    fn a_is_rdf_type_in_predicate_position_only() {
        let rules = ok("@prefix ex: <http://example.org/> .\nrule t: ?x a ex:C => ?x a ex:D .\n");
        assert_eq!(rules[0].body[0].p, SymTerm::Iri(vocab::RDF_TYPE.into()));
        let (_, diags) = parse("rule t: a <urn:p> ?y => ?y <urn:p> ?y .");
        assert!(diags.iter().any(|d| d.code == "RA001"));
    }

    #[test]
    fn comments_and_absolute_iris() {
        let rules = ok("# a comment\nrule t: ?x <urn:p> ?y => ?y <urn:q> ?x . # trailing\n");
        assert_eq!(rules[0].head[0].p, SymTerm::Iri("urn:q".into()));
    }

    #[test]
    fn unknown_prefix_is_ra002_with_position() {
        let (rules, diags) = parse("rule t: ?x nope:p ?y => ?x <urn:q> ?y .");
        assert_eq!(rules.len(), 1, "recovery keeps the rule");
        let d = diags.iter().find(|d| d.code == "RA002").expect("RA002");
        assert_eq!((d.line, d.col), (1, 12));
        assert!(d.is_error());
    }

    #[test]
    fn syntax_error_recovers_at_dot() {
        let (rules, diags) = parse(
            "rule broken: ?x => ?y .\n\
             rule fine: ?x <urn:p> ?y => ?y <urn:p> ?x .\n",
        );
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].name, "fine");
        assert!(diags.iter().any(|d| d.code == "RA001" && d.line == 1));
    }

    #[test]
    fn unterminated_iri_and_missing_dot() {
        let (_, diags) = parse("rule t: ?x <urn:p ?y => ?x <urn:q> ?y .");
        assert!(diags.iter().any(|d| d.code == "RA001"));
        let (rules, diags) = parse("rule t: ?x <urn:p> ?y => ?x <urn:q> ?y");
        assert!(rules.is_empty());
        assert!(diags.iter().any(|d| d.code == "RA001"));
    }
}
