//! The built-in catalog re-expressed as rule text.
//!
//! Every Table 5 row has a canonical textual form here, written so that its
//! *derived* signature is byte-identical to the handwritten catalog row
//! (body atoms in the catalog's `Properties` order, head atoms in write
//! order) — the anchor test in `crates/rules/tests/analysis_builtins.rs`
//! asserts exactly that. [`fragment_file_text`] renders a fragment's members
//! into the shipped `rules/*.rules` files, and the analyzer's
//! builtin-recognition table is compiled from the same texts, so a user file
//! containing a built-in rule (modulo variable names) maps back onto the
//! hand-optimized executor instead of the generic join.

use crate::catalog::RuleId;
use crate::ruleset::{Fragment, Ruleset};

/// The `@prefix` block every canonical rule text assumes.
pub const PRELUDE: &str = "@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .\n\
                           @prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .\n\
                           @prefix owl: <http://www.w3.org/2002/07/owl#> .\n";

/// Canonical rule text per catalog row, in catalog (Table 5) order.
pub(crate) const CANONICAL: &[(RuleId, &str)] = &[
    (
        RuleId::CaxEqc1,
        "rule CAX-EQC1: ?c1 owl:equivalentClass ?c2, ?x a ?c1 => ?x a ?c2 .",
    ),
    (
        RuleId::CaxEqc2,
        "rule CAX-EQC2: ?c1 owl:equivalentClass ?c2, ?x a ?c2 => ?x a ?c1 .",
    ),
    (
        RuleId::CaxSco,
        "rule CAX-SCO: ?c1 rdfs:subClassOf ?c2, ?x a ?c1 => ?x a ?c2 .",
    ),
    (
        RuleId::EqRepO,
        "rule EQ-REP-O: ?o1 owl:sameAs ?o2, ?s ?p ?o1 => ?s ?p ?o2 .",
    ),
    (
        RuleId::EqRepP,
        "rule EQ-REP-P: ?p1 owl:sameAs ?p2, ?s ?p1 ?o => ?s ?p2 ?o .",
    ),
    (
        RuleId::EqRepS,
        "rule EQ-REP-S: ?s1 owl:sameAs ?s2, ?s1 ?p ?o => ?s2 ?p ?o .",
    ),
    (RuleId::EqSym, "rule EQ-SYM: ?x owl:sameAs ?y => ?y owl:sameAs ?x ."),
    (
        RuleId::EqTrans,
        "rule EQ-TRANS: ?x owl:sameAs ?y, ?y owl:sameAs ?z => ?x owl:sameAs ?z .",
    ),
    (
        RuleId::PrpDom,
        "rule PRP-DOM: ?p rdfs:domain ?c, ?x ?p ?y => ?x a ?c .",
    ),
    (
        RuleId::PrpEqp1,
        "rule PRP-EQP1: ?p1 owl:equivalentProperty ?p2, ?x ?p1 ?y => ?x ?p2 ?y .",
    ),
    (
        RuleId::PrpEqp2,
        "rule PRP-EQP2: ?p1 owl:equivalentProperty ?p2, ?x ?p2 ?y => ?x ?p1 ?y .",
    ),
    (
        RuleId::PrpFp,
        "rule PRP-FP: ?p a owl:FunctionalProperty, ?x ?p ?y1, ?x ?p ?y2 => ?y1 owl:sameAs ?y2 .",
    ),
    (
        RuleId::PrpIfp,
        "rule PRP-IFP: ?p a owl:InverseFunctionalProperty, ?x1 ?p ?y, ?x2 ?p ?y => ?x1 owl:sameAs ?x2 .",
    ),
    (
        RuleId::PrpInv1,
        "rule PRP-INV1: ?p1 owl:inverseOf ?p2, ?x ?p1 ?y => ?y ?p2 ?x .",
    ),
    (
        RuleId::PrpInv2,
        "rule PRP-INV2: ?p1 owl:inverseOf ?p2, ?x ?p2 ?y => ?y ?p1 ?x .",
    ),
    (
        RuleId::PrpRng,
        "rule PRP-RNG: ?p rdfs:range ?c, ?x ?p ?y => ?y a ?c .",
    ),
    (
        RuleId::PrpSpo1,
        "rule PRP-SPO1: ?p1 rdfs:subPropertyOf ?p2, ?x ?p1 ?y => ?x ?p2 ?y .",
    ),
    (
        RuleId::PrpSymp,
        "rule PRP-SYMP: ?p a owl:SymmetricProperty, ?x ?p ?y => ?y ?p ?x .",
    ),
    (
        RuleId::PrpTrp,
        "rule PRP-TRP: ?p a owl:TransitiveProperty, ?x ?p ?y, ?y ?p ?z => ?x ?p ?z .",
    ),
    (
        RuleId::ScmDom1,
        "rule SCM-DOM1: ?p rdfs:domain ?c1, ?c1 rdfs:subClassOf ?c2 => ?p rdfs:domain ?c2 .",
    ),
    (
        RuleId::ScmDom2,
        "rule SCM-DOM2: ?p2 rdfs:domain ?c, ?p1 rdfs:subPropertyOf ?p2 => ?p1 rdfs:domain ?c .",
    ),
    (
        RuleId::ScmEqc1,
        "rule SCM-EQC1: ?c1 owl:equivalentClass ?c2 => ?c1 rdfs:subClassOf ?c2, ?c2 rdfs:subClassOf ?c1 .",
    ),
    (
        RuleId::ScmEqc2,
        "rule SCM-EQC2: ?c1 rdfs:subClassOf ?c2, ?c2 rdfs:subClassOf ?c1 => ?c1 owl:equivalentClass ?c2 .",
    ),
    (
        RuleId::ScmEqp1,
        "rule SCM-EQP1: ?p1 owl:equivalentProperty ?p2 => ?p1 rdfs:subPropertyOf ?p2, ?p2 rdfs:subPropertyOf ?p1 .",
    ),
    (
        RuleId::ScmEqp2,
        "rule SCM-EQP2: ?p1 rdfs:subPropertyOf ?p2, ?p2 rdfs:subPropertyOf ?p1 => ?p1 owl:equivalentProperty ?p2 .",
    ),
    (
        RuleId::ScmRng1,
        "rule SCM-RNG1: ?p rdfs:range ?c1, ?c1 rdfs:subClassOf ?c2 => ?p rdfs:range ?c2 .",
    ),
    (
        RuleId::ScmRng2,
        "rule SCM-RNG2: ?p2 rdfs:range ?c, ?p1 rdfs:subPropertyOf ?p2 => ?p1 rdfs:range ?c .",
    ),
    (
        RuleId::ScmSco,
        "rule SCM-SCO: ?c1 rdfs:subClassOf ?c2, ?c2 rdfs:subClassOf ?c3 => ?c1 rdfs:subClassOf ?c3 .",
    ),
    (
        RuleId::ScmSpo,
        "rule SCM-SPO: ?p1 rdfs:subPropertyOf ?p2, ?p2 rdfs:subPropertyOf ?p3 => ?p1 rdfs:subPropertyOf ?p3 .",
    ),
    (
        RuleId::ScmCls,
        "rule SCM-CLS: ?c a owl:Class => ?c rdfs:subClassOf ?c, ?c owl:equivalentClass ?c, ?c rdfs:subClassOf owl:Thing, owl:Nothing rdfs:subClassOf ?c .",
    ),
    (
        RuleId::ScmDp,
        "rule SCM-DP: ?p a owl:DatatypeProperty => ?p rdfs:subPropertyOf ?p, ?p owl:equivalentProperty ?p .",
    ),
    (
        RuleId::ScmOp,
        "rule SCM-OP: ?p a owl:ObjectProperty => ?p rdfs:subPropertyOf ?p, ?p owl:equivalentProperty ?p .",
    ),
    (
        RuleId::Rdfs4,
        "rule RDFS4: ?x ?p ?y => ?x a rdfs:Resource, ?y a rdfs:Resource .",
    ),
    (
        RuleId::Rdfs8,
        "rule RDFS8: ?x a rdfs:Class => ?x rdfs:subClassOf rdfs:Resource .",
    ),
    (
        RuleId::Rdfs12,
        "rule RDFS12: ?x a rdfs:ContainerMembershipProperty => ?x rdfs:subPropertyOf rdfs:member .",
    ),
    (
        RuleId::Rdfs13,
        "rule RDFS13: ?x a rdfs:Datatype => ?x rdfs:subClassOf rdfs:Literal .",
    ),
    (
        RuleId::Rdfs6,
        "rule RDFS6: ?x a rdf:Property => ?x rdfs:subPropertyOf ?x .",
    ),
    (
        RuleId::Rdfs10,
        "rule RDFS10: ?x a rdfs:Class => ?x rdfs:subClassOf ?x .",
    ),
];

/// The canonical text of one built-in rule.
pub fn rule_text(id: RuleId) -> &'static str {
    CANONICAL
        .iter()
        .find(|(rule, _)| *rule == id)
        .map(|(_, text)| *text)
        .expect("every catalog row has a canonical text")
}

/// Renders a fragment's member rules as a loadable `.rules` file — the
/// generator behind the shipped `rules/*.rules` files (kept in sync by the
/// fragment-file test).
pub fn fragment_file_text(fragment: Fragment) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# {} — the built-in fragment re-expressed as a rule file.\n\
         # Generated from inferray_rules::analysis::builtin::fragment_file_text;\n\
         # the analyzer re-derives the handwritten catalog signatures from this\n\
         # text byte-identically (see crates/rules/tests/analysis_builtins.rs).\n",
        fragment.name()
    ));
    out.push_str(PRELUDE);
    out.push('\n');
    for rule in Ruleset::for_fragment(fragment).rules() {
        out.push_str(rule_text(*rule));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CATALOG;

    #[test]
    fn every_catalog_row_has_a_text_in_catalog_order() {
        assert_eq!(CANONICAL.len(), CATALOG.len());
        for (entry, info) in CANONICAL.iter().zip(CATALOG.iter()) {
            assert_eq!(entry.0, info.id);
            assert!(
                entry.1.starts_with(&format!("rule {}:", info.name)),
                "{} text must declare the catalog name",
                info.name
            );
        }
    }

    #[test]
    fn fragment_files_contain_exactly_the_member_rules() {
        for fragment in Fragment::ALL {
            let text = fragment_file_text(fragment);
            let members = Ruleset::for_fragment(fragment).len();
            assert_eq!(
                text.lines().filter(|l| l.starts_with("rule ")).count(),
                members,
                "{fragment}"
            );
        }
    }
}
