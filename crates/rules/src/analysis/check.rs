//! The analyzer's pass pipeline over parsed rules: safety, duplicate and
//! dead-rule detection, shadowing, and the predicate dependency graph.
//!
//! Every pass emits positioned diagnostics (`RA003`–`RA008`); only the
//! error-severity ones make a file unloadable. The passes are purely
//! symbolic — they run before any dictionary is involved, so `rules check`
//! can vet a file without a store.

use super::diag::{Diagnostic, Severity};
use super::parse::{SymAtom, SymRule, SymTerm};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// Runs every check pass over the parsed rules.
pub fn check(rules: &[SymRule]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_names(rules, &mut diags);
    for rule in rules {
        check_safety(rule, &mut diags);
        check_dead(rule, &mut diags);
        check_unbound_patterns(rule, &mut diags);
    }
    check_shadowing(rules, &mut diags);
    check_recursion(rules, &mut diags);
    diags
}

/// RA004: rule names must be unique — the name is the retraction/scheduling
/// identity of the rule, so a duplicate would make diagnostics and
/// `rules explain` output ambiguous.
fn check_names(rules: &[SymRule], diags: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<&str, &SymRule> = HashMap::new();
    for rule in rules {
        if let Some(first) = seen.get(rule.name.as_str()) {
            diags.push(Diagnostic::new(
                "RA004",
                Severity::Error,
                rule.span.line,
                rule.span.col,
                format!(
                    "duplicate rule name `{}` (first defined at {}:{})",
                    rule.name, first.span.line, first.span.col
                ),
            ));
        } else {
            seen.insert(&rule.name, rule);
        }
    }
}

fn vars_of(atom: &SymAtom) -> impl Iterator<Item = &str> {
    [&atom.s, &atom.p, &atom.o].into_iter().filter_map(|t| {
        if let SymTerm::Var(name) = t {
            Some(name.as_str())
        } else {
            None
        }
    })
}

/// RA003: range restriction (safety) — every head variable must be bound by
/// a body atom, otherwise the head is not ground when the body matches.
fn check_safety(rule: &SymRule, diags: &mut Vec<Diagnostic>) {
    let bound: HashSet<&str> = rule.body.iter().flat_map(vars_of).collect();
    let mut reported: HashSet<&str> = HashSet::new();
    for atom in &rule.head {
        for var in vars_of(atom) {
            if !bound.contains(var) && reported.insert(var) {
                diags.push(Diagnostic::new(
                    "RA003",
                    Severity::Error,
                    atom.span.line,
                    atom.span.col,
                    format!(
                        "head variable `?{var}` of rule `{}` is not bound by any body atom",
                        rule.name
                    ),
                ));
            }
        }
    }
}

/// RA005: a rule whose every head atom already occurs (syntactically) in its
/// body derives nothing but its own premises — dead by construction.
fn check_dead(rule: &SymRule, diags: &mut Vec<Diagnostic>) {
    let tautological = |head: &SymAtom| {
        rule.body
            .iter()
            .any(|b| b.s == head.s && b.p == head.p && b.o == head.o)
    };
    if !rule.head.is_empty() && rule.head.iter().all(tautological) {
        diags.push(Diagnostic::new(
            "RA005",
            Severity::Error,
            rule.span.line,
            rule.span.col,
            format!(
                "dead rule `{}`: every head atom repeats a body atom, so it can only re-derive its own premises",
                rule.name
            ),
        ));
    }
}

/// RA006: a body atom with no constant position and no variable shared with
/// the rest of the rule constrains nothing — it turns the join into a blind
/// whole-store cross product that cannot influence the head.
fn check_unbound_patterns(rule: &SymRule, diags: &mut Vec<Diagnostic>) {
    for (i, atom) in rule.body.iter().enumerate() {
        let all_vars = matches!(
            (&atom.s, &atom.p, &atom.o),
            (SymTerm::Var(_), SymTerm::Var(_), SymTerm::Var(_))
        );
        if !all_vars {
            continue;
        }
        let mine: HashSet<&str> = vars_of(atom).collect();
        let shared = rule
            .body
            .iter()
            .enumerate()
            .filter(|&(j, _)| j != i)
            .flat_map(|(_, other)| vars_of(other))
            .chain(rule.head.iter().flat_map(vars_of))
            .any(|v| mine.contains(v));
        if !shared {
            diags.push(Diagnostic::new(
                "RA006",
                Severity::Error,
                atom.span.line,
                atom.span.col,
                format!(
                    "pattern with no bound position in rule `{}`: none of its variables appears in another atom or the head",
                    rule.name
                ),
            ));
        }
    }
}

/// A canonical, alpha-renamed form of a rule: variables are numbered by
/// first occurrence (body then head, subject/predicate/object order), so two
/// rules that differ only in variable names compare equal.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(super) enum CanonTerm {
    /// Variable, numbered by first occurrence.
    Var(u32),
    /// IRI constant.
    Const(String),
}

pub(super) type CanonAtom = (CanonTerm, CanonTerm, CanonTerm);

/// Canonicalizes `(body, head)` — shared by the shadowing pass and the
/// builtin-recognition table.
pub(super) fn canonicalize(rule: &SymRule) -> (Vec<CanonAtom>, Vec<CanonAtom>) {
    let mut numbers: HashMap<String, u32> = HashMap::new();
    let mut conv = |term: &SymTerm| match term {
        SymTerm::Iri(iri) => CanonTerm::Const(iri.clone()),
        SymTerm::Var(name) => {
            let next = numbers.len() as u32;
            CanonTerm::Var(*numbers.entry(name.clone()).or_insert(next))
        }
    };
    let mut atoms = |list: &[SymAtom]| {
        list.iter()
            .map(|a| (conv(&a.s), conv(&a.p), conv(&a.o)))
            .collect::<Vec<_>>()
    };
    let body = atoms(&rule.body);
    let head = atoms(&rule.head);
    (body, head)
}

/// RA007: a rule that is alpha-equivalent to an earlier one (same body, same
/// — or subsumed — head) is a duplicate or shadowed definition: it can never
/// derive anything the earlier rule does not.
fn check_shadowing(rules: &[SymRule], diags: &mut Vec<Diagnostic>) {
    let canon: Vec<_> = rules.iter().map(canonicalize).collect();
    for (i, rule) in rules.iter().enumerate() {
        for j in 0..i {
            if canon[i].0 != canon[j].0 {
                continue;
            }
            let mine: BTreeSet<&CanonAtom> = canon[i].1.iter().collect();
            let theirs: BTreeSet<&CanonAtom> = canon[j].1.iter().collect();
            let verdict = if mine == theirs {
                "duplicate of"
            } else if mine.is_subset(&theirs) {
                "shadowed by"
            } else {
                continue;
            };
            diags.push(Diagnostic::new(
                "RA007",
                Severity::Warning,
                rule.span.line,
                rule.span.col,
                format!(
                    "rule `{}` is a {verdict} rule `{}` ({}:{}) up to variable renaming",
                    rule.name, rules[j].name, rules[j].span.line, rules[j].span.col
                ),
            ));
            break;
        }
    }
}

/// RA008: the predicate dependency graph (body predicate → head predicate,
/// constants only). Cycles are *allowed* — the engine evaluates to a fixed
/// point — but each recursive rule is classified with an info diagnostic, so
/// `rules check` shows which part of a program drives iteration count.
fn check_recursion(rules: &[SymRule], diags: &mut Vec<Diagnostic>) {
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for rule in rules {
        for body in &rule.body {
            let SymTerm::Iri(from) = &body.p else {
                continue;
            };
            for head in &rule.head {
                if let SymTerm::Iri(to) = &head.p {
                    edges.entry(from).or_default().insert(to);
                }
            }
        }
    }
    // A predicate is cyclic when it reaches itself through at least one edge.
    let mut cyclic: HashSet<&str> = HashSet::new();
    for &start in edges.keys() {
        let mut stack: Vec<&str> = edges[start].iter().copied().collect();
        let mut seen: HashSet<&str> = HashSet::new();
        while let Some(node) = stack.pop() {
            if node == start {
                cyclic.insert(start);
                break;
            }
            if seen.insert(node) {
                if let Some(next) = edges.get(node) {
                    stack.extend(next.iter().copied());
                }
            }
        }
    }
    for rule in rules {
        let recursive = rule.head.iter().any(|h| match &h.p {
            SymTerm::Iri(p) => cyclic.contains(p.as_str()),
            SymTerm::Var(_) => false,
        });
        if recursive {
            diags.push(Diagnostic::new(
                "RA008",
                Severity::Info,
                rule.span.line,
                rule.span.col,
                format!(
                    "rule `{}` derives a predicate that is part of a dependency cycle — evaluated to a fixed point",
                    rule.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse::parse;
    use super::*;

    fn diags_for(text: &str) -> Vec<Diagnostic> {
        let (rules, parse_diags) = parse(text);
        assert!(parse_diags.is_empty(), "parse: {parse_diags:?}");
        check(&rules)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn unsafe_head_variable_is_ra003() {
        let diags = diags_for("rule bad: ?x <urn:p> ?y => ?x <urn:q> ?z .");
        assert_eq!(codes(&diags), vec!["RA003"]);
        assert!(diags[0].message.contains("?z"));
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn duplicate_name_is_ra004() {
        let diags = diags_for(
            "rule r: ?x <urn:p> ?y => ?y <urn:p> ?x .\nrule r: ?x <urn:q> ?y => ?y <urn:q> ?x .",
        );
        assert!(codes(&diags).contains(&"RA004"));
        let d = diags.iter().find(|d| d.code == "RA004").unwrap();
        assert_eq!(d.line, 2);
        assert!(d.message.contains("first defined at 1:1"));
    }

    #[test]
    fn dead_rule_is_ra005() {
        let diags = diags_for("rule noop: ?x <urn:p> ?y => ?x <urn:p> ?y .");
        assert!(codes(&diags).contains(&"RA005"));
        // Deriving at least one new atom is not dead.
        let diags = diags_for("rule half: ?x <urn:p> ?y => ?x <urn:p> ?y, ?y <urn:p> ?x .");
        assert!(!codes(&diags).contains(&"RA005"));
    }

    #[test]
    fn disconnected_all_variable_pattern_is_ra006() {
        let diags = diags_for("rule bad: ?x <urn:p> ?y, ?a ?b ?c => ?x <urn:q> ?y .");
        assert!(codes(&diags).contains(&"RA006"));
        // Sharing one variable with the head is enough (RDFS4 shape).
        let diags = diags_for("rule ok: ?a ?b ?c => ?a <urn:q> ?a .");
        assert!(!codes(&diags).contains(&"RA006"));
        // Sharing with another body atom is enough too.
        let diags = diags_for("rule ok2: ?x <urn:p> ?y, ?y ?b ?c => ?x <urn:q> ?x .");
        assert!(!codes(&diags).contains(&"RA006"));
    }

    #[test]
    fn alpha_duplicate_is_ra007_warning() {
        let diags = diags_for(
            "rule one: ?x <urn:p> ?y => ?y <urn:p> ?x .\nrule two: ?a <urn:p> ?b => ?b <urn:p> ?a .",
        );
        let d = diags.iter().find(|d| d.code == "RA007").unwrap();
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("duplicate of"));
        assert_eq!(d.line, 2);
    }

    #[test]
    fn subsumed_head_is_shadowed() {
        let diags = diags_for(
            "rule big: ?x <urn:p> ?y => ?y <urn:p> ?x, ?x <urn:q> ?y .\n\
             rule small: ?a <urn:p> ?b => ?b <urn:p> ?a .",
        );
        let d = diags.iter().find(|d| d.code == "RA007").unwrap();
        assert!(d.message.contains("shadowed by"));
    }

    #[test]
    fn recursion_is_ra008_info() {
        let diags = diags_for(
            "rule trans: ?x <urn:p> ?y, ?y <urn:p> ?z => ?x <urn:p> ?z .\n\
             rule feed: ?x <urn:q> ?y => ?x <urn:r> ?y .",
        );
        let ra008: Vec<_> = diags.iter().filter(|d| d.code == "RA008").collect();
        assert_eq!(ra008.len(), 1);
        assert_eq!(ra008[0].severity, Severity::Info);
        assert_eq!(ra008[0].line, 1);
        // Two-rule cycle is detected as well.
        let diags = diags_for(
            "rule ab: ?x <urn:a> ?y => ?x <urn:b> ?y .\n\
             rule ba: ?x <urn:b> ?y => ?x <urn:a> ?y .",
        );
        assert_eq!(diags.iter().filter(|d| d.code == "RA008").count(), 2);
    }

    #[test]
    fn clean_program_has_no_findings() {
        let diags = diags_for(
            "rule gp: ?x <urn:parent> ?y, ?y <urn:parent> ?z => ?x <urn:grandparent> ?z .",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }
}
