//! Derived scheduling signatures: the owned mirror of the catalog's
//! [`RuleInputs`]/[`RuleOutputs`] vocabulary, plus the derivation that maps a
//! compiled rule's body/head shape onto it.
//!
//! The catalog rows use `&'static [u64]` property lists; analyzer-loaded
//! rules need owned lists, so [`DerivedInputs`]/[`DerivedOutputs`] duplicate
//! the enum shape with `Vec<u64>` and carry the *single* implementation of
//! the scheduling/rederivation predicates — the catalog path converts via
//! [`From`] and delegates, which is also what makes the byte-identity test
//! between handwritten and derived signatures meaningful.

use super::compile::{Atom, Term};
use crate::catalog::{RuleInputs, RuleOutputs, SchemaSide};
use crate::context::RuleContext;
use inferray_dictionary::wellknown as wk;
use inferray_store::TripleStore;
use std::collections::BTreeSet;

/// The input (scheduling) signature of a rule, §4.3: which property tables
/// the rule reads, possibly indirectly through a schema or marker table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivedInputs {
    /// Reads exactly these property tables.
    Properties(Vec<u64>),
    /// Reads the tables named on `side` of the `schema` table's pairs
    /// (γ/δ rules), plus the schema table itself.
    PropertyVariable {
        /// The schema property whose pairs name the data tables.
        schema: u64,
        /// Which side of the schema pair names them.
        side: SchemaSide,
    },
    /// Reads the tables of every property declared `rdf:type marker`, plus
    /// the declarations themselves.
    MarkedProperties {
        /// The marker class.
        marker: u64,
    },
    /// May read any table, but only while the `guard` table is non-empty
    /// (the sameAs replacement scans).
    AnyGuardedBy {
        /// The property whose table gates the rule.
        guard: u64,
    },
    /// May read any table unconditionally (whole-store scan).
    AnyProperty,
}

/// The output signature of a rule: which property tables its head can write
/// — the rederivation seed of the delete–rederive maintenance path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DerivedOutputs {
    /// Writes exactly these property tables.
    Properties(Vec<u64>),
    /// Writes tables named on `side` of the `schema` table's pairs.
    PropertyVariable {
        /// The schema property whose pairs name the written tables.
        schema: u64,
        /// Which side of the schema pair names them.
        side: SchemaSide,
    },
    /// Writes tables of properties declared `rdf:type marker`.
    MarkedProperties {
        /// The marker class.
        marker: u64,
    },
    /// May write any table.
    AnyProperty,
}

impl From<RuleInputs> for DerivedInputs {
    fn from(inputs: RuleInputs) -> Self {
        match inputs {
            RuleInputs::Properties(props) => DerivedInputs::Properties(props.to_vec()),
            RuleInputs::PropertyVariable { schema, side } => {
                DerivedInputs::PropertyVariable { schema, side }
            }
            RuleInputs::MarkedProperties { marker } => DerivedInputs::MarkedProperties { marker },
            RuleInputs::AnyGuardedBy { guard } => DerivedInputs::AnyGuardedBy { guard },
            RuleInputs::AnyProperty => DerivedInputs::AnyProperty,
        }
    }
}

impl From<RuleOutputs> for DerivedOutputs {
    fn from(outputs: RuleOutputs) -> Self {
        match outputs {
            RuleOutputs::Properties(props) => DerivedOutputs::Properties(props.to_vec()),
            RuleOutputs::PropertyVariable { schema, side } => {
                DerivedOutputs::PropertyVariable { schema, side }
            }
            RuleOutputs::MarkedProperties { marker } => DerivedOutputs::MarkedProperties { marker },
            RuleOutputs::AnyProperty => DerivedOutputs::AnyProperty,
        }
    }
}

impl DerivedInputs {
    /// `true` when the rule may derive something not already in `main`,
    /// given that exactly the tables of `changed` received new pairs —
    /// the §4.3 scheduling decision for one rule.
    pub fn changed(&self, main: &TripleStore, new: &TripleStore, changed: &BTreeSet<u64>) -> bool {
        match self {
            DerivedInputs::Properties(props) => props.iter().any(|p| changed.contains(p)),
            DerivedInputs::AnyProperty => true,
            DerivedInputs::AnyGuardedBy { guard } => {
                changed.contains(guard) || main.table(*guard).is_some_and(|t| !t.is_empty())
            }
            DerivedInputs::PropertyVariable { schema, side } => {
                if changed.contains(schema) {
                    return true;
                }
                let Some(table) = main.table(*schema) else {
                    return false;
                };
                match side {
                    SchemaSide::Subject => table.iter_pairs().any(|(s, _)| changed.contains(&s)),
                    SchemaSide::Object => table.iter_pairs().any(|(_, o)| changed.contains(&o)),
                }
            }
            DerivedInputs::MarkedProperties { marker } => {
                // A property newly declared with the marker feeds the rule
                // even when its data table is old …
                if !RuleContext::subjects_with_object(new, wk::RDF_TYPE, *marker).is_empty() {
                    return true;
                }
                // … and so do new pairs in the table of any declared property.
                RuleContext::subjects_with_object(main, wk::RDF_TYPE, *marker)
                    .iter()
                    .any(|p| changed.contains(p))
            }
        }
    }

    /// `true` for the whole-store variants — the imprecise fallbacks the
    /// `RA009` note reports.
    pub fn is_whole_store(&self) -> bool {
        matches!(
            self,
            DerivedInputs::AnyGuardedBy { .. } | DerivedInputs::AnyProperty
        )
    }
}

impl DerivedOutputs {
    /// `true` when the rule's head can land a triple in one of the
    /// `deleted` tables, given the current store — the rederivation seed
    /// decision of the delete–rederive path.
    pub fn may_write(&self, main: &TripleStore, deleted: &BTreeSet<u64>) -> bool {
        match self {
            DerivedOutputs::Properties(props) => props.iter().any(|p| deleted.contains(p)),
            DerivedOutputs::PropertyVariable { schema, side } => {
                main.table(*schema).is_some_and(|table| {
                    table.iter_pairs().any(|(s, o)| {
                        let named = match side {
                            SchemaSide::Subject => s,
                            SchemaSide::Object => o,
                        };
                        deleted.contains(&named)
                    })
                })
            }
            DerivedOutputs::MarkedProperties { marker } => {
                RuleContext::subjects_with_object(main, wk::RDF_TYPE, *marker)
                    .iter()
                    .any(|p| deleted.contains(p))
            }
            DerivedOutputs::AnyProperty => true,
        }
    }
}

fn side_name(side: SchemaSide) -> &'static str {
    match side {
        SchemaSide::Subject => "subject",
        SchemaSide::Object => "object",
    }
}

impl std::fmt::Display for DerivedInputs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerivedInputs::Properties(props) => write!(f, "properties {props:?}"),
            DerivedInputs::PropertyVariable { schema, side } => {
                write!(
                    f,
                    "tables named by the {} of schema {schema}",
                    side_name(*side)
                )
            }
            DerivedInputs::MarkedProperties { marker } => {
                write!(f, "tables of properties declared rdf:type {marker}")
            }
            DerivedInputs::AnyGuardedBy { guard } => {
                write!(f, "any table while guard {guard} is non-empty")
            }
            DerivedInputs::AnyProperty => write!(f, "any table (whole-store scan)"),
        }
    }
}

impl std::fmt::Display for DerivedOutputs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DerivedOutputs::Properties(props) => write!(f, "properties {props:?}"),
            DerivedOutputs::PropertyVariable { schema, side } => {
                write!(
                    f,
                    "tables named by the {} of schema {schema}",
                    side_name(*side)
                )
            }
            DerivedOutputs::MarkedProperties { marker } => {
                write!(f, "tables of properties declared rdf:type {marker}")
            }
            DerivedOutputs::AnyProperty => write!(f, "any table"),
        }
    }
}

/// Derives the input signature from a lowered body.
///
/// * Every predicate constant ⇒ [`DerivedInputs::Properties`] (body order,
///   first occurrence wins).
/// * Exactly one predicate variable whose binder is the *only*
///   constant-predicate atom ⇒ the precise dynamic shapes: a
///   `?p rdf:type Marker` binder is [`DerivedInputs::MarkedProperties`], a
///   schema atom with `?p` on one side is [`DerivedInputs::PropertyVariable`].
/// * Anything else falls back to the whole-store shapes, gated on the first
///   constant-predicate table when one exists: that atom must match for the
///   body to match, so an empty guard table proves the rule cannot fire —
///   conservative but sound for arbitrary extra atoms.
pub(super) fn derive_inputs(body: &[Atom]) -> DerivedInputs {
    let const_preds: Vec<u64> = body.iter().filter_map(|a| a.p.as_const()).collect();
    let var_preds: BTreeSet<u32> = body.iter().filter_map(|a| a.p.as_var()).collect();
    if var_preds.is_empty() {
        let mut props = Vec::new();
        for p in const_preds {
            if !props.contains(&p) {
                props.push(p);
            }
        }
        return DerivedInputs::Properties(props);
    }
    if var_preds.len() == 1 {
        let pv = Term::Var(*var_preds.iter().next().expect("non-empty"));
        let const_atoms: Vec<&Atom> = body.iter().filter(|a| a.p.as_const().is_some()).collect();
        if let [schema] = const_atoms.as_slice() {
            let sp = schema.p.as_const().expect("constant predicate");
            if sp == wk::RDF_TYPE && schema.s == pv {
                if let Some(marker) = schema.o.as_const() {
                    return DerivedInputs::MarkedProperties { marker };
                }
            }
            let on_s = schema.s == pv;
            let on_o = schema.o == pv;
            if on_s != on_o {
                let side = if on_s {
                    SchemaSide::Subject
                } else {
                    SchemaSide::Object
                };
                return DerivedInputs::PropertyVariable { schema: sp, side };
            }
        }
    }
    match const_preds.first() {
        Some(&guard) => DerivedInputs::AnyGuardedBy { guard },
        None => DerivedInputs::AnyProperty,
    }
}

/// Derives the output signature from a lowered head given its body.
///
/// Constant head predicates collect into [`DerivedOutputs::Properties`]; a
/// variable head predicate is classified by how the body binds it (marker
/// declaration ⇒ `MarkedProperties`, one side of a constant-predicate schema
/// atom ⇒ `PropertyVariable`); anything unclassifiable — or a mix of
/// incompatible classes — widens to [`DerivedOutputs::AnyProperty`].
pub(super) fn derive_outputs(head: &[Atom], body: &[Atom]) -> DerivedOutputs {
    let mut props: Vec<u64> = Vec::new();
    let mut dynamic: Option<DerivedOutputs> = None;
    let mut widen = false;
    for atom in head {
        match atom.p {
            Term::Const(p) => {
                if !props.contains(&p) {
                    props.push(p);
                }
            }
            Term::Var(v) => match (&dynamic, classify_head_pred(v, body)) {
                (_, None) => widen = true,
                (None, Some(class)) => dynamic = Some(class),
                (Some(prev), Some(class)) if *prev == class => {}
                _ => widen = true,
            },
        }
    }
    if widen {
        return DerivedOutputs::AnyProperty;
    }
    match (props.is_empty(), dynamic) {
        (false, None) => DerivedOutputs::Properties(props),
        (true, Some(class)) => class,
        // Mixed constant + dynamic heads write both kinds of table; the
        // signature vocabulary has no union, so widen.
        (false, Some(_)) => DerivedOutputs::AnyProperty,
        // An empty head cannot parse, but stay total.
        (true, None) => DerivedOutputs::AnyProperty,
    }
}

fn classify_head_pred(v: u32, body: &[Atom]) -> Option<DerivedOutputs> {
    let var = Term::Var(v);
    for atom in body {
        if atom.p == Term::Const(wk::RDF_TYPE) && atom.s == var {
            if let Some(marker) = atom.o.as_const() {
                return Some(DerivedOutputs::MarkedProperties { marker });
            }
        }
    }
    for atom in body {
        let Some(schema) = atom.p.as_const() else {
            continue;
        };
        let on_s = atom.s == var;
        let on_o = atom.o == var;
        if on_s != on_o {
            let side = if on_s {
                SchemaSide::Subject
            } else {
                SchemaSide::Object
            };
            return Some(DerivedOutputs::PropertyVariable { schema, side });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = wk::RDF_TYPE;

    fn atom(s: Term, p: Term, o: Term) -> Atom {
        Atom { s, p, o }
    }

    #[test]
    fn constant_bodies_collect_properties_in_order() {
        let body = [
            atom(
                Term::Var(0),
                Term::Const(wk::RDFS_SUB_CLASS_OF),
                Term::Var(1),
            ),
            atom(Term::Var(2), Term::Const(P), Term::Var(0)),
            atom(Term::Var(2), Term::Const(P), Term::Var(1)),
        ];
        assert_eq!(
            derive_inputs(&body),
            DerivedInputs::Properties(vec![wk::RDFS_SUB_CLASS_OF, P])
        );
    }

    #[test]
    fn marker_binder_is_marked_properties() {
        let body = [
            atom(
                Term::Var(0),
                Term::Const(P),
                Term::Const(wk::OWL_TRANSITIVE_PROPERTY),
            ),
            atom(Term::Var(1), Term::Var(0), Term::Var(2)),
        ];
        assert_eq!(
            derive_inputs(&body),
            DerivedInputs::MarkedProperties {
                marker: wk::OWL_TRANSITIVE_PROPERTY
            }
        );
    }

    #[test]
    fn schema_binder_is_property_variable() {
        let body = [
            atom(Term::Var(0), Term::Const(wk::RDFS_DOMAIN), Term::Var(1)),
            atom(Term::Var(2), Term::Var(0), Term::Var(3)),
        ];
        assert_eq!(
            derive_inputs(&body),
            DerivedInputs::PropertyVariable {
                schema: wk::RDFS_DOMAIN,
                side: SchemaSide::Subject
            }
        );
    }

    #[test]
    fn unanchored_variable_predicate_falls_back_guarded() {
        // EQ-REP-S shape: ?s1 sameAs ?s2, ?s1 ?p ?o — ?p unanchored.
        let body = [
            atom(Term::Var(0), Term::Const(wk::OWL_SAME_AS), Term::Var(1)),
            atom(Term::Var(0), Term::Var(2), Term::Var(3)),
        ];
        assert_eq!(
            derive_inputs(&body),
            DerivedInputs::AnyGuardedBy {
                guard: wk::OWL_SAME_AS
            }
        );
        assert!(derive_inputs(&body).is_whole_store());
    }

    #[test]
    fn lone_variable_pattern_is_any_property() {
        let body = [atom(Term::Var(0), Term::Var(1), Term::Var(2))];
        assert_eq!(derive_inputs(&body), DerivedInputs::AnyProperty);
    }

    #[test]
    fn output_classification() {
        // Marker-bound head predicate.
        let body = [
            atom(
                Term::Var(0),
                Term::Const(P),
                Term::Const(wk::OWL_SYMMETRIC_PROPERTY),
            ),
            atom(Term::Var(1), Term::Var(0), Term::Var(2)),
        ];
        let head = [atom(Term::Var(2), Term::Var(0), Term::Var(1))];
        assert_eq!(
            derive_outputs(&head, &body),
            DerivedOutputs::MarkedProperties {
                marker: wk::OWL_SYMMETRIC_PROPERTY
            }
        );
        // Schema-bound on the object side (EQ-REP-P head).
        let body = [
            atom(Term::Var(0), Term::Const(wk::OWL_SAME_AS), Term::Var(1)),
            atom(Term::Var(2), Term::Var(0), Term::Var(3)),
        ];
        let head = [atom(Term::Var(2), Term::Var(1), Term::Var(3))];
        assert_eq!(
            derive_outputs(&head, &body),
            DerivedOutputs::PropertyVariable {
                schema: wk::OWL_SAME_AS,
                side: SchemaSide::Object
            }
        );
        // Unclassifiable head predicate widens.
        let head = [atom(Term::Var(2), Term::Var(4), Term::Var(3))];
        assert_eq!(derive_outputs(&head, &body), DerivedOutputs::AnyProperty);
        // Mixed constant + dynamic widens.
        let head = [
            atom(Term::Var(2), Term::Const(P), Term::Var(3)),
            atom(Term::Var(2), Term::Var(1), Term::Var(3)),
        ];
        assert_eq!(derive_outputs(&head, &body), DerivedOutputs::AnyProperty);
    }

    #[test]
    fn conversions_mirror_the_catalog_enums() {
        assert_eq!(
            DerivedInputs::from(RuleInputs::Properties(&[1, 2])),
            DerivedInputs::Properties(vec![1, 2])
        );
        assert_eq!(
            DerivedOutputs::from(RuleOutputs::AnyProperty),
            DerivedOutputs::AnyProperty
        );
    }
}
