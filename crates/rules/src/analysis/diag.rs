//! Positioned diagnostics for the rule analyzer.
//!
//! Mirrors the shape of the `verify-lint` pass: every finding carries a
//! stable code (`RA001`…), a severity, and a 1-based `line:col` position in
//! the rule file, so tooling can grep and gate on the output. The code table
//! lives in `docs/rules.md`.

/// How severe a finding is.
///
/// Only [`Severity::Error`] findings make a rule file unloadable;
/// warnings and infos are advisory (duplicate definitions, recursion
/// classification, signature-precision notes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory classification (e.g. a rule participates in a cycle).
    Info,
    /// Suspicious but loadable (e.g. a shadowed rule).
    Warning,
    /// The file is rejected (e.g. an unsafe head variable).
    Error,
}

impl Severity {
    /// Lower-case label used in the rendered diagnostic.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One analyzer finding, positioned at `line:col` (1-based) in the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code, `RA001`… — see the table in `docs/rules.md`.
    pub code: &'static str,
    /// How severe the finding is.
    pub severity: Severity,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic at `(line, col)`.
    pub fn new(
        code: &'static str,
        severity: Severity,
        line: u32,
        col: u32,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            line,
            col,
            message: message.into(),
        }
    }

    /// `true` for [`Severity::Error`].
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl std::fmt::Display for Diagnostic {
    /// `RA003: 3:14: error: head variable ?z is not bound …` — the CLI
    /// prefixes the file path to make the full machine-readable line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}: {}",
            self.code,
            self.line,
            self.col,
            self.severity.label(),
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_machine_readable() {
        let d = Diagnostic::new("RA003", Severity::Error, 3, 14, "head variable ?z unbound");
        assert_eq!(
            d.to_string(),
            "RA003: 3:14: error: head variable ?z unbound"
        );
        assert!(d.is_error());
        assert!(!Diagnostic::new("RA008", Severity::Info, 1, 1, "x").is_error());
    }

    #[test]
    fn severity_orders_error_highest() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }
}
