//! Lowering: symbolic rules → dictionary-encoded [`CompiledRule`]s with
//! derived signatures, plus recognition of built-in catalog rules.
//!
//! Constant terms are interned through the *same* property/resource routing
//! the dictionary applies to data triples (`Dictionary::encode_triple`): a
//! constant in predicate position is always a property; a subject/object
//! constant is a property exactly when the predicate puts it in a
//! property-hierarchy position (`rdfs:subPropertyOf`,
//! `owl:equivalentProperty`, `owl:inverseOf`, the subject side of
//! `rdfs:domain`/`rdfs:range`, or an `rdf:type` declaration with a
//! property-class object). Keeping the routing identical is what makes a
//! compiled rule address exactly the tables the data occupies.

use super::check::canonicalize;
use super::diag::{Diagnostic, Severity};
use super::parse::{parse, SymAtom, SymRule, SymTerm};
use super::signature::{derive_inputs, derive_outputs, DerivedInputs, DerivedOutputs};
use crate::catalog::RuleId;
use inferray_dictionary::{wellknown as wk, Dictionary};
use inferray_model::{vocab, Term as ModelTerm};
use std::collections::HashMap;
use std::sync::OnceLock;

/// A term of a lowered triple pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A variable, numbered by first occurrence within its rule.
    Var(u32),
    /// A dictionary-encoded constant.
    Const(u64),
}

impl Term {
    /// The constant value, if this is a constant.
    pub fn as_const(self) -> Option<u64> {
        match self {
            Term::Const(value) => Some(value),
            Term::Var(_) => None,
        }
    }

    /// The variable number, if this is a variable.
    pub fn as_var(self) -> Option<u32> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }
}

/// A lowered triple pattern `s p o`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Atom {
    /// Subject term.
    pub s: Term,
    /// Predicate term.
    pub p: Term,
    /// Object term.
    pub o: Term,
}

/// One analyzer-compiled rule, ready for the generic semi-naive executor
/// and the scheduling/rederivation machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledRule {
    /// The declared rule name.
    pub name: String,
    /// Number of distinct variables (`Term::Var(v)` has `v < var_count`).
    pub var_count: u32,
    /// Body patterns, in written order.
    pub body: Vec<Atom>,
    /// Head patterns, in written order.
    pub head: Vec<Atom>,
    /// Derived input (scheduling) signature.
    pub inputs: DerivedInputs,
    /// Derived output (rederivation) signature.
    pub outputs: DerivedOutputs,
}

/// The result of compiling an analyzed rule file against a dictionary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledRuleset {
    /// The compiled rules, in file order.
    pub rules: Vec<CompiledRule>,
    /// Per rule: the catalog builtin it is alpha-equivalent to, if any.
    pub recognized: Vec<Option<RuleId>>,
    /// Advisory notes produced during lowering (`RA009` fallbacks).
    pub notes: Vec<Diagnostic>,
}

impl CompiledRuleset {
    /// The recognized builtin of rule `i`, if any.
    pub fn builtin_of(&self, i: usize) -> Option<RuleId> {
        self.recognized.get(i).copied().flatten()
    }
}

/// The `rdf:type` objects that mark their subject as a *property* — must
/// stay in lock-step with the dictionary's `object_is_property_class`.
const PROPERTY_CLASS_IRIS: &[&str] = &[
    vocab::RDF_PROPERTY,
    vocab::RDFS_CONTAINER_MEMBERSHIP_PROPERTY,
    vocab::OWL_TRANSITIVE_PROPERTY,
    vocab::OWL_SYMMETRIC_PROPERTY,
    vocab::OWL_FUNCTIONAL_PROPERTY,
    vocab::OWL_INVERSE_FUNCTIONAL_PROPERTY,
    vocab::OWL_DATATYPE_PROPERTY,
    vocab::OWL_OBJECT_PROPERTY,
];

struct RuleLowerer<'a> {
    dict: &'a mut Dictionary,
    vars: HashMap<String, u32>,
    diags: Vec<Diagnostic>,
}

impl RuleLowerer<'_> {
    fn var(&mut self, name: &str) -> Term {
        let next = self.vars.len() as u32;
        Term::Var(*self.vars.entry(name.to_string()).or_insert(next))
    }

    fn property(&mut self, iri: &str, atom: &SymAtom) -> Term {
        match self.dict.encode_as_property(&ModelTerm::iri(iri)) {
            Ok(id) => Term::Const(id),
            Err(err) => {
                self.diags.push(Diagnostic::new(
                    "RA010",
                    Severity::Error,
                    atom.span.line,
                    atom.span.col,
                    format!("`<{iri}>` cannot be used as a property: {err}"),
                ));
                Term::Const(0)
            }
        }
    }

    fn resource(&mut self, iri: &str) -> Term {
        Term::Const(self.dict.encode_as_resource(&ModelTerm::iri(iri)))
    }

    /// Mirrors `Dictionary::encode_triple`'s property/resource routing for
    /// one pattern whose positions may be variables.
    fn atom(&mut self, atom: &SymAtom) -> Atom {
        let p = match &atom.p {
            SymTerm::Var(name) => self.var(name),
            SymTerm::Iri(iri) => self.property(iri, atom),
        };
        let subject_is_property = match p.as_const() {
            Some(pred) => {
                matches!(
                    pred,
                    x if x == wk::RDFS_SUB_PROPERTY_OF
                        || x == wk::RDFS_DOMAIN
                        || x == wk::RDFS_RANGE
                        || x == wk::OWL_EQUIVALENT_PROPERTY
                        || x == wk::OWL_INVERSE_OF
                ) || (pred == wk::RDF_TYPE
                    && matches!(&atom.o, SymTerm::Iri(o) if PROPERTY_CLASS_IRIS.contains(&o.as_str())))
            }
            None => false,
        };
        let object_is_property = matches!(
            p.as_const(),
            Some(x) if x == wk::RDFS_SUB_PROPERTY_OF
                || x == wk::OWL_EQUIVALENT_PROPERTY
                || x == wk::OWL_INVERSE_OF
        );
        let s = match &atom.s {
            SymTerm::Var(name) => self.var(name),
            SymTerm::Iri(iri) if subject_is_property => self.property(iri, atom),
            SymTerm::Iri(iri) => self.resource(iri),
        };
        let o = match &atom.o {
            SymTerm::Var(name) => self.var(name),
            SymTerm::Iri(iri) if object_is_property => self.property(iri, atom),
            SymTerm::Iri(iri) => self.resource(iri),
        };
        Atom { s, p, o }
    }
}

fn lower_rule(rule: &SymRule, dict: &mut Dictionary) -> (CompiledRule, Vec<Diagnostic>) {
    let mut lowerer = RuleLowerer {
        dict,
        vars: HashMap::new(),
        diags: Vec::new(),
    };
    let body: Vec<Atom> = rule.body.iter().map(|a| lowerer.atom(a)).collect();
    let head: Vec<Atom> = rule.head.iter().map(|a| lowerer.atom(a)).collect();
    let inputs = derive_inputs(&body);
    let outputs = derive_outputs(&head, &body);
    let mut diags = lowerer.diags;
    if inputs.is_whole_store() && body.len() > 1 {
        diags.push(Diagnostic::new(
            "RA009",
            Severity::Info,
            rule.span.line,
            rule.span.col,
            format!(
                "rule `{}` has no precise input signature ({}): it is considered on every iteration while its guard holds",
                rule.name, inputs
            ),
        ));
    }
    (
        CompiledRule {
            name: rule.name.clone(),
            var_count: lowerer.vars.len() as u32,
            body,
            head,
            inputs,
            outputs,
        },
        diags,
    )
}

/// Lowers analyzed rules against `dict`, deriving signatures and recognizing
/// built-ins. `Err` carries the `RA010` lowering errors (plus any advisory
/// notes); symbolic-stage errors must be handled before calling this.
pub(super) fn lower(
    rules: &[SymRule],
    dict: &mut Dictionary,
) -> Result<CompiledRuleset, Vec<Diagnostic>> {
    let mut compiled = Vec::with_capacity(rules.len());
    let mut recognized = Vec::with_capacity(rules.len());
    let mut notes = Vec::new();
    for rule in rules {
        let (lowered, diags) = lower_rule(rule, dict);
        notes.extend(diags);
        recognized.push(recognize(rule));
        compiled.push(lowered);
    }
    if notes.iter().any(Diagnostic::is_error) {
        return Err(notes);
    }
    Ok(CompiledRuleset {
        rules: compiled,
        recognized,
        notes,
    })
}

type CanonRule = (Vec<super::check::CanonAtom>, Vec<super::check::CanonAtom>);

fn canonical_builtins() -> &'static Vec<(RuleId, CanonRule)> {
    static TABLE: OnceLock<Vec<(RuleId, CanonRule)>> = OnceLock::new();
    TABLE.get_or_init(|| {
        super::builtin::CANONICAL
            .iter()
            .map(|&(id, text)| {
                let source = format!("{}{}", super::builtin::PRELUDE, text);
                let (rules, diags) = parse(&source);
                debug_assert!(diags.is_empty(), "canonical text for {id:?}: {diags:?}");
                debug_assert_eq!(rules.len(), 1);
                (id, canonicalize(&rules[0]))
            })
            .collect()
    })
}

/// The catalog builtin `rule` is alpha-equivalent to, if any. Recognition is
/// purely structural (variable renaming only — atom order matters), which is
/// exactly how the shipped fragment files are generated, so round-tripping
/// through text always recognizes.
pub fn recognize(rule: &SymRule) -> Option<RuleId> {
    let canon = canonicalize(rule);
    canonical_builtins()
        .iter()
        .find(|(_, builtin)| *builtin == canon)
        .map(|&(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_one(text: &str) -> (CompiledRule, Option<RuleId>, Dictionary) {
        let mut dict = Dictionary::new();
        let (rules, diags) = parse(text);
        assert!(diags.is_empty(), "{diags:?}");
        let compiled = lower(&rules, &mut dict).expect("lowers");
        (compiled.rules[0].clone(), compiled.recognized[0], dict)
    }

    #[test]
    fn lowers_wellknown_constants_to_wellknown_ids() {
        let (rule, recognized, _) = compile_one(&format!(
            "{}{}",
            super::super::builtin::PRELUDE,
            "rule t: ?c1 rdfs:subClassOf ?c2, ?x a ?c1 => ?x a ?c2 ."
        ));
        assert_eq!(rule.body[0].p, Term::Const(wk::RDFS_SUB_CLASS_OF));
        assert_eq!(rule.body[1].p, Term::Const(wk::RDF_TYPE));
        assert_eq!(rule.var_count, 3);
        assert_eq!(
            recognized,
            Some(RuleId::CaxSco),
            "shape match despite the name"
        );
    }

    #[test]
    fn property_position_routing_matches_encode_triple() {
        // A marker object stays a resource; a subPropertyOf object becomes a
        // property; an rdf:type subject with a property-class object becomes
        // a property.
        let (rule, _, dict) = compile_one(&format!(
            "{}{}",
            super::super::builtin::PRELUDE,
            "rule t: <urn:my-p> a owl:TransitiveProperty => <urn:my-p> rdfs:subPropertyOf rdfs:member ."
        ));
        assert_eq!(rule.body[0].o, Term::Const(wk::OWL_TRANSITIVE_PROPERTY));
        let my_p = rule.body[0].s.as_const().expect("constant");
        assert!(inferray_model::ids::is_property_id(my_p));
        assert_eq!(rule.head[0].s, Term::Const(my_p));
        assert_eq!(rule.head[0].o, Term::Const(wk::RDFS_MEMBER));
        assert_eq!(dict.id_of_iri("urn:my-p"), Some(my_p));
    }

    #[test]
    fn custom_rule_gets_derived_signature_and_no_recognition() {
        let (rule, recognized, dict) = compile_one(
            "rule gp: ?x <urn:parent> ?y, ?y <urn:parent> ?z => ?x <urn:grandparent> ?z .",
        );
        assert_eq!(recognized, None);
        let parent = dict.id_of_iri("urn:parent").expect("interned");
        let grandparent = dict.id_of_iri("urn:grandparent").expect("interned");
        assert_eq!(rule.inputs, DerivedInputs::Properties(vec![parent]));
        assert_eq!(rule.outputs, DerivedOutputs::Properties(vec![grandparent]));
    }

    #[test]
    fn whole_store_fallback_notes_ra009() {
        let mut dict = Dictionary::new();
        let (rules, _) = parse(&format!(
            "{}{}",
            super::super::builtin::PRELUDE,
            "rule r: ?s1 owl:sameAs ?s2, ?s1 ?p ?o => ?s2 ?p ?o ."
        ));
        let compiled = lower(&rules, &mut dict).expect("lowers");
        assert_eq!(
            compiled.notes.iter().filter(|d| d.code == "RA009").count(),
            1
        );
        assert_eq!(compiled.notes[0].severity, Severity::Info);
        assert_eq!(compiled.recognized[0], Some(RuleId::EqRepS));
    }

    #[test]
    fn every_canonical_text_recognizes_itself() {
        for &(id, text) in super::super::builtin::CANONICAL {
            let source = format!("{}{}", super::super::builtin::PRELUDE, text);
            let (rules, diags) = parse(&source);
            assert!(diags.is_empty(), "{id:?}: {diags:?}");
            assert_eq!(recognize(&rules[0]), Some(id));
        }
    }
}
