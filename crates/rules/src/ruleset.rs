//! Rulesets: the RDFS / ρDF / RDFS-Plus fragments in their default and full
//! flavours.
//!
//! "Systems usually perform incomplete RDFS reasoning and consider only rules
//! whose antecedents are made of two-way joins … single-antecedent rules
//! derive triples that do not convey interesting knowledge" (§1). The
//! benchmark therefore distinguishes, per fragment, a *default* version
//! (filled circles of Table 5) from a *full* version that adds the
//! half-circle rules.

use crate::analysis::{CompiledRule, CompiledRuleset, DerivedInputs, DerivedOutputs};
use crate::catalog::{Membership, RuleClass, RuleId, RuleInputs, RuleOutputs, CATALOG};
use inferray_store::TripleStore;
use std::collections::{BTreeMap, BTreeSet};

/// The inference fragments evaluated in the paper (§6, "Rulesets").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fragment {
    /// ρDF — the minimal meaningful subset of RDFS.
    RhoDf,
    /// RDFS, default flavour (meaningful rules only).
    RdfsDefault,
    /// RDFS, full flavour (adds the axiomatic RDFS4/6/8/10/12/13 rules).
    RdfsFull,
    /// RDFS-Plus, default flavour.
    RdfsPlus,
    /// RDFS-Plus, full flavour (adds SCM-CLS / SCM-DP / SCM-OP / RDFS4).
    RdfsPlusFull,
}

impl Fragment {
    /// All fragments, in benchmark order.
    pub const ALL: [Fragment; 5] = [
        Fragment::RhoDf,
        Fragment::RdfsDefault,
        Fragment::RdfsFull,
        Fragment::RdfsPlus,
        Fragment::RdfsPlusFull,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Fragment::RhoDf => "rho-df",
            Fragment::RdfsDefault => "RDFS-default",
            Fragment::RdfsFull => "RDFS-Full",
            Fragment::RdfsPlus => "RDFS-Plus",
            Fragment::RdfsPlusFull => "RDFS-Plus-Full",
        }
    }

    /// The membership column of Table 5 relevant to this fragment, and
    /// whether the full flavour is requested.
    fn membership(self, rule: RuleId) -> (Membership, bool) {
        let info = rule.info();
        match self {
            Fragment::RhoDf => (info.rho_df, false),
            Fragment::RdfsDefault => (info.rdfs, false),
            Fragment::RdfsFull => (info.rdfs, true),
            Fragment::RdfsPlus => (info.rdfs_plus, false),
            Fragment::RdfsPlusFull => (info.rdfs_plus, true),
        }
    }

    /// `true` when `rule` belongs to this fragment.
    pub fn includes(self, rule: RuleId) -> bool {
        let (membership, full) = self.membership(rule);
        if full {
            membership.in_full()
        } else {
            membership.in_default()
        }
    }
}

impl std::fmt::Display for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete, ordered set of rules to execute, together with the
/// property→rules dependency index derived from the catalog's input
/// signatures (§4.3): which rules must re-fire when a given property table
/// receives new pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ruleset {
    /// The fragment this ruleset realizes.
    pub fragment: Fragment,
    rules: Vec<RuleId>,
    /// Bitmask (bit = `RuleId as usize`) of the member rules with a dynamic
    /// input signature (γ/δ property-variable, marked-properties, guarded or
    /// unconditional whole-store scans) — their dependency edges are
    /// evaluated against the stores at scheduling time.
    dynamic_mask: u64,
    /// Property id → bitmask of the member rules with that property in
    /// their *fixed* input signature.
    by_property: BTreeMap<u64, u64>,
    /// Analyzer-compiled rules with no built-in equivalent, in file order.
    /// They run through the generic semi-naive executor and are scheduled /
    /// rederived through their derived signatures.
    custom: Vec<CompiledRule>,
    /// Whether the dedicated transitive-closure stage may run before the
    /// fixed point. `true` for the baked-in fragments; analyzer-loaded
    /// rulesets that are not an exact fragment fall back to the in-loop θ
    /// executors, which reach the same fixed point without the stage.
    closure_stage: bool,
}

/// A reference to one rule of a [`Ruleset`]: a catalog built-in or an
/// analyzer-compiled custom rule (an index into
/// [`Ruleset::custom_rules`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleRef {
    /// A Table 5 rule with a hand-written executor.
    Builtin(RuleId),
    /// A custom rule, by position in [`Ruleset::custom_rules`].
    Custom(usize),
}

/// The catalog-position bit of a rule (38 rules < 64, so one `u64` suffices).
fn rule_bit(rule: RuleId) -> u64 {
    1u64 << (rule as usize)
}

impl Ruleset {
    /// Builds the ruleset of a fragment from the catalog.
    pub fn for_fragment(fragment: Fragment) -> Self {
        let rules = CATALOG
            .iter()
            .filter(|info| fragment.includes(info.id))
            .map(|info| info.id)
            .collect();
        Self::with_dependency_index(fragment, rules)
    }

    /// A custom ruleset (used by tests and by the ablation benchmarks).
    pub fn custom(fragment: Fragment, rules: Vec<RuleId>) -> Self {
        Self::with_dependency_index(fragment, rules)
    }

    /// Builds a ruleset from an analyzed + compiled rule file
    /// ([`crate::analysis`]). Rules recognized as catalog built-ins keep
    /// their hand-written executors (deduplicated, in Table 5 order); the
    /// rest become [`RuleRef::Custom`] rules in file order. When the
    /// built-ins are exactly a baked-in fragment and nothing else, the
    /// result *is* that fragment's ruleset — closure stage included.
    pub fn from_analyzed(compiled: &CompiledRuleset) -> Self {
        let mut builtins: Vec<RuleId> = Vec::new();
        let mut custom: Vec<CompiledRule> = Vec::new();
        for (i, rule) in compiled.rules.iter().enumerate() {
            match compiled.builtin_of(i) {
                Some(id) => {
                    if !builtins.contains(&id) {
                        builtins.push(id);
                    }
                }
                None => custom.push(rule.clone()),
            }
        }
        builtins.sort_by_key(|&r| r as usize);
        for (i, rule) in custom.iter().enumerate() {
            assert!(
                custom[..i].iter().all(|earlier| earlier.name != rule.name),
                "duplicate rule name `{}` in ruleset",
                rule.name
            );
        }
        if custom.is_empty() {
            if let Some(fragment) = Fragment::ALL
                .into_iter()
                .find(|&f| Self::for_fragment(f).rules == builtins)
            {
                return Self::for_fragment(fragment);
            }
        }
        // The nominal fragment only labels the ruleset; every scheduling
        // decision flows from the member rules themselves, and the closure
        // stage is disabled in favour of the in-loop θ executors.
        let mut ruleset = Self::with_dependency_index(Fragment::RdfsDefault, builtins);
        ruleset.custom = custom;
        ruleset.closure_stage = false;
        ruleset
    }

    fn with_dependency_index(fragment: Fragment, rules: Vec<RuleId>) -> Self {
        for (i, &rule) in rules.iter().enumerate() {
            assert!(
                !rules[..i].contains(&rule),
                "duplicate rule `{rule}` in ruleset"
            );
        }
        let mut dynamic_mask = 0u64;
        let mut by_property: BTreeMap<u64, u64> = BTreeMap::new();
        for &rule in &rules {
            match rule.inputs() {
                RuleInputs::Properties(props) => {
                    for &p in props {
                        *by_property.entry(p).or_insert(0) |= rule_bit(rule);
                    }
                }
                _ => dynamic_mask |= rule_bit(rule),
            }
        }
        Ruleset {
            fragment,
            rules,
            dynamic_mask,
            by_property,
            custom: Vec::new(),
            closure_stage: true,
        }
    }

    /// The built-in member rules, in Table 5 order.
    pub fn rules(&self) -> &[RuleId] {
        &self.rules
    }

    /// The analyzer-compiled custom rules, in file order.
    pub fn custom_rules(&self) -> &[CompiledRule] {
        &self.custom
    }

    /// Whether the dedicated transitive-closure stage may run for this
    /// ruleset (always true for the baked-in fragments).
    pub fn runs_closure_stage(&self) -> bool {
        self.closure_stage
    }

    /// Number of rules, built-in and custom.
    pub fn len(&self) -> usize {
        self.rules.len() + self.custom.len()
    }

    /// `true` when the ruleset is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty() && self.custom.is_empty()
    }

    /// `true` when the ruleset contains `rule`.
    pub fn contains(&self, rule: RuleId) -> bool {
        self.rules.contains(&rule)
    }

    /// The rules that are *not* handled by the transitive-closure stage
    /// (everything except the θ class) — the ones the fixed-point loop
    /// dispatches to per-rule threads.
    pub fn fixed_point_rules(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .copied()
            .filter(|r| r.class() != RuleClass::Theta)
            .collect()
    }

    /// The θ (closure) rules of the ruleset.
    pub fn theta_rules(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .copied()
            .filter(|r| r.class() == RuleClass::Theta)
            .collect()
    }

    /// The member rules that *may* read the table of property `p`: the rules
    /// with `p` in their fixed signature, the dynamic rules anchored at `p`
    /// (schema / marker-declaration / guard table), and the unconditional
    /// whole-store scans. In Table 5 order.
    pub fn rules_reading(&self, p: u64) -> Vec<RuleId> {
        let mut mask = self.by_property.get(&p).copied().unwrap_or(0);
        for &rule in &self.rules {
            let inputs = rule.inputs();
            if inputs == RuleInputs::AnyProperty || inputs.anchor() == Some(p) {
                mask |= rule_bit(rule);
            }
        }
        self.rules_in_mask(mask)
    }

    /// The subset of the ruleset that can derive something new given that
    /// exactly the tables of `new` received new pairs in the previous
    /// iteration (`new ⊆ main`), in Table 5 order.
    ///
    /// This is the §4.3 scheduling decision: a rule whose input tables are
    /// all unchanged sees the same `main` projection it saw when it last
    /// fired and an empty `new` projection, so re-firing it can only
    /// reproduce duplicates. Fixed signatures are answered by the
    /// dependency index; the dynamic signatures are evaluated against the
    /// stores — the data tables a γ/δ rule reads are the ones its (small)
    /// schema table names, and the tables the functional/symmetric/
    /// transitive rules read are the ones declared with the marker class.
    pub fn scheduled_rules(&self, main: &TripleStore, new: &TripleStore) -> Vec<RuleId> {
        let changed: BTreeSet<u64> = new.property_ids().collect();
        let mut mask = 0u64;
        for &p in &changed {
            mask |= self.by_property.get(&p).copied().unwrap_or(0);
        }
        for &rule in &self.rules {
            if self.dynamic_mask & rule_bit(rule) != 0
                && dynamic_inputs_changed(rule.inputs(), main, new, &changed)
            {
                mask |= rule_bit(rule);
            }
        }
        self.rules_in_mask(mask)
    }

    /// The subset of the ruleset whose heads can **write** one of the
    /// `deleted` property tables, given the current store, in Table 5 order
    /// — the rederivation seed of the delete–rederive maintenance path
    /// (docs/maintenance.md).
    ///
    /// After over-deletion, only the tables that lost pairs can be missing
    /// entailed triples, so the first rederive iteration needs exactly the
    /// rules whose output signature reaches one of those tables; every rule
    /// a multi-step rederivation needs beyond that is picked up by the
    /// ordinary input-driven scheduling of the following iterations (the
    /// intermediate triples it consumes are themselves missing, hence also
    /// in a deleted table).
    pub fn rederive_rules(&self, main: &TripleStore, deleted: &BTreeSet<u64>) -> Vec<RuleId> {
        if deleted.is_empty() {
            return Vec::new();
        }
        self.rules
            .iter()
            .copied()
            .filter(|&rule| outputs_may_write(rule.outputs(), main, deleted))
            .collect()
    }

    fn rules_in_mask(&self, mask: u64) -> Vec<RuleId> {
        self.rules
            .iter()
            .copied()
            .filter(|&r| mask & rule_bit(r) != 0)
            .collect()
    }

    /// Every rule of the ruleset: built-ins in Table 5 order, then the
    /// custom rules in file order.
    pub fn all_refs(&self) -> Vec<RuleRef> {
        self.refs_from(self.rules.clone(), 0..self.custom.len())
    }

    /// The rules the fixed-point loop dispatches: every non-θ built-in plus
    /// every custom rule (custom rules are never θ-classified — the generic
    /// executor converges through the ordinary iterations).
    pub fn fixed_point_refs(&self) -> Vec<RuleRef> {
        self.refs_from(self.fixed_point_rules(), 0..self.custom.len())
    }

    /// [`Ruleset::scheduled_rules`] extended over the custom rules: their
    /// derived input signatures are evaluated exactly like the dynamic
    /// built-in signatures.
    pub fn scheduled_refs(&self, main: &TripleStore, new: &TripleStore) -> Vec<RuleRef> {
        let changed: BTreeSet<u64> = new.property_ids().collect();
        let custom =
            (0..self.custom.len()).filter(|&i| self.custom[i].inputs.changed(main, new, &changed));
        self.refs_from(self.scheduled_rules(main, new), custom)
    }

    /// [`Ruleset::rederive_rules`] extended over the custom rules, through
    /// their derived output signatures.
    pub fn rederive_refs(&self, main: &TripleStore, deleted: &BTreeSet<u64>) -> Vec<RuleRef> {
        if deleted.is_empty() {
            return Vec::new();
        }
        let custom =
            (0..self.custom.len()).filter(|&i| self.custom[i].outputs.may_write(main, deleted));
        self.refs_from(self.rederive_rules(main, deleted), custom)
    }

    fn refs_from(
        &self,
        builtins: Vec<RuleId>,
        custom: impl IntoIterator<Item = usize>,
    ) -> Vec<RuleRef> {
        builtins
            .into_iter()
            .map(RuleRef::Builtin)
            .chain(custom.into_iter().map(RuleRef::Custom))
            .collect()
    }
}

/// Evaluates a dynamic input signature: `true` when the rule may derive
/// something that is not already in `main`, given that exactly the tables of
/// `changed` received new pairs. Delegates to the single implementation on
/// [`DerivedInputs`], which analyzer-compiled rules use directly.
fn dynamic_inputs_changed(
    inputs: RuleInputs,
    main: &TripleStore,
    new: &TripleStore,
    changed: &BTreeSet<u64>,
) -> bool {
    DerivedInputs::from(inputs).changed(main, new, changed)
}

/// Evaluates an output signature against the store: `true` when the rule's
/// head can land a triple in one of the `deleted` tables. Delegates to
/// [`DerivedOutputs`].
fn outputs_may_write(outputs: RuleOutputs, main: &TripleStore, deleted: &BTreeSet<u64>) -> bool {
    DerivedOutputs::from(outputs).may_write(main, deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown as wk;

    #[test]
    fn fragment_sizes() {
        assert_eq!(Ruleset::for_fragment(Fragment::RhoDf).len(), 8);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsDefault).len(), 10);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsFull).len(), 16);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsPlus).len(), 29);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsPlusFull).len(), 33);
    }

    #[test]
    fn rho_df_contains_exactly_the_paper_rules() {
        let ruleset = Ruleset::for_fragment(Fragment::RhoDf);
        let expected = [
            RuleId::CaxSco,
            RuleId::PrpDom,
            RuleId::PrpRng,
            RuleId::PrpSpo1,
            RuleId::ScmDom2,
            RuleId::ScmRng2,
            RuleId::ScmSco,
            RuleId::ScmSpo,
        ];
        assert_eq!(ruleset.rules(), &expected);
    }

    #[test]
    fn rdfs_full_adds_only_axiomatic_rules() {
        let default: std::collections::HashSet<_> = Ruleset::for_fragment(Fragment::RdfsDefault)
            .rules()
            .to_vec()
            .into_iter()
            .collect();
        let full: std::collections::HashSet<_> = Ruleset::for_fragment(Fragment::RdfsFull)
            .rules()
            .to_vec()
            .into_iter()
            .collect();
        let extra: Vec<_> = full.difference(&default).collect();
        assert_eq!(extra.len(), 6);
        for rule in [
            RuleId::Rdfs4,
            RuleId::Rdfs6,
            RuleId::Rdfs8,
            RuleId::Rdfs10,
            RuleId::Rdfs12,
            RuleId::Rdfs13,
        ] {
            assert!(full.contains(&rule));
            assert!(!default.contains(&rule));
        }
    }

    #[test]
    fn theta_rules_are_separated_from_fixed_point_rules() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsPlus);
        let theta = ruleset.theta_rules();
        assert_eq!(
            theta,
            vec![
                RuleId::EqTrans,
                RuleId::PrpTrp,
                RuleId::ScmSco,
                RuleId::ScmSpo
            ]
        );
        let fp = ruleset.fixed_point_rules();
        assert_eq!(fp.len() + theta.len(), ruleset.len());
        assert!(!fp.contains(&RuleId::ScmSco));
    }

    #[test]
    fn rdfs_fragments_never_include_owl_rules() {
        for fragment in [Fragment::RhoDf, Fragment::RdfsDefault, Fragment::RdfsFull] {
            let ruleset = Ruleset::for_fragment(fragment);
            assert!(!ruleset.contains(RuleId::CaxEqc1));
            assert!(!ruleset.contains(RuleId::PrpTrp));
            assert!(!ruleset.contains(RuleId::EqSym));
        }
    }

    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    #[test]
    fn dependency_index_schedules_only_affected_rules() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsDefault);
        let knows = nth_property_id(900);
        let person = 9_800_000u64;
        let main = store(&[
            (knows, wk::RDFS_DOMAIN, person),
            (person, wk::RDFS_SUB_CLASS_OF, person + 1),
            (person + 10, knows, person + 11),
            (person + 10, wk::RDF_TYPE, person),
        ]);
        // Only rdf:type changed: the schema rules must not fire again —
        // CAX-SCO (reads rdf:type) must; the γ rules must not either, since
        // rdf:type is not a data property named by any domain/range/
        // subPropertyOf pair.
        let new = store(&[(person + 10, wk::RDF_TYPE, person)]);
        let scheduled = ruleset.scheduled_rules(&main, &new);
        assert_eq!(scheduled, vec![RuleId::CaxSco]);
        // A data property named by a domain pair changed: PRP-DOM comes
        // back (and only it — `knows` has no range/subPropertyOf pair).
        let new = store(&[(person + 12, knows, person + 13)]);
        let scheduled = ruleset.scheduled_rules(&main, &new);
        assert_eq!(scheduled, vec![RuleId::PrpDom]);
        // subClassOf changed: the schema rules reading it come back.
        let new = store(&[(person, wk::RDFS_SUB_CLASS_OF, person + 1)]);
        let scheduled = ruleset.scheduled_rules(&main, &new);
        assert!(scheduled.contains(&RuleId::CaxSco));
        assert!(scheduled.contains(&RuleId::ScmSco));
        assert!(scheduled.contains(&RuleId::ScmDom1));
        assert!(!scheduled.contains(&RuleId::ScmDom2));
        assert!(!scheduled.contains(&RuleId::ScmSpo));
    }

    #[test]
    fn marked_property_rules_follow_declarations() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsPlus);
        let part_of = nth_property_id(901);
        let other = nth_property_id(902);
        let a = 9_810_000u64;
        let main = store(&[
            (part_of, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
            (a, part_of, a + 1),
            (a, other, a + 2),
        ]);
        // New pairs on the declared transitive property: PRP-TRP fires.
        let new = store(&[(a, part_of, a + 1)]);
        assert!(ruleset
            .scheduled_rules(&main, &new)
            .contains(&RuleId::PrpTrp));
        // New pairs on an undeclared property: PRP-TRP is skipped.
        let new = store(&[(a, other, a + 2)]);
        assert!(!ruleset
            .scheduled_rules(&main, &new)
            .contains(&RuleId::PrpTrp));
        // A new declaration alone re-fires the rule even though the data
        // table is old.
        let new = store(&[(other, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY)]);
        assert!(ruleset
            .scheduled_rules(&main, &new)
            .contains(&RuleId::PrpTrp));
    }

    #[test]
    fn same_as_scans_fire_only_while_same_as_pairs_exist() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsPlus);
        let knows = nth_property_id(903);
        let a = 9_820_000u64;
        let without_same_as = store(&[(a, knows, a + 1)]);
        let new = store(&[(a, knows, a + 1)]);
        let scheduled = ruleset.scheduled_rules(&without_same_as, &new);
        assert!(!scheduled.contains(&RuleId::EqRepS));
        assert!(!scheduled.contains(&RuleId::EqRepO));
        let with_same_as = store(&[(a, knows, a + 1), (a, wk::OWL_SAME_AS, a + 2)]);
        let scheduled = ruleset.scheduled_rules(&with_same_as, &new);
        assert!(scheduled.contains(&RuleId::EqRepS));
        assert!(scheduled.contains(&RuleId::EqRepO));
    }

    #[test]
    fn scheduled_rules_preserve_table5_order_and_membership() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsPlus);
        let p = nth_property_id(904);
        let c = 9_830_000u64;
        // A change in every fixed schema table plus marked declarations:
        // the schedule is the full ruleset, in the same order.
        let everything = store(&[
            (c, wk::RDF_TYPE, c + 1),
            (c, wk::RDFS_SUB_CLASS_OF, c + 1),
            (p, wk::RDFS_SUB_PROPERTY_OF, p),
            (p, wk::RDFS_DOMAIN, c),
            (p, wk::RDFS_RANGE, c),
            (c, wk::OWL_SAME_AS, c + 2),
            (c, wk::OWL_EQUIVALENT_CLASS, c + 3),
            (p, wk::OWL_EQUIVALENT_PROPERTY, p),
            (p, wk::OWL_INVERSE_OF, p),
            (p, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
            (p, wk::RDF_TYPE, wk::OWL_INVERSE_FUNCTIONAL_PROPERTY),
            (p, wk::RDF_TYPE, wk::OWL_SYMMETRIC_PROPERTY),
            (p, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
        ]);
        let scheduled = ruleset.scheduled_rules(&everything, &everything.clone());
        assert_eq!(scheduled, ruleset.rules());
        // Nothing changed (empty `new`): nothing is scheduled except the
        // sameAs scans (a sameAs table exists in main).
        let empty = TripleStore::new();
        let minimal = ruleset.scheduled_rules(&everything, &empty);
        assert_eq!(minimal, vec![RuleId::EqRepO, RuleId::EqRepS]);
        // A rule outside the ruleset is never scheduled even if its input
        // changed.
        let rho = Ruleset::for_fragment(Fragment::RhoDf);
        let same_as = store(&[(c, wk::OWL_SAME_AS, c + 2)]);
        let scheduled = rho.scheduled_rules(&same_as, &same_as.clone());
        assert!(!scheduled.contains(&RuleId::EqSym));
    }

    #[test]
    fn rederive_rules_follow_output_signatures() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsDefault);
        let knows = nth_property_id(905);
        let person = 9_840_000u64;
        let main = store(&[
            (knows, wk::RDFS_DOMAIN, person),
            (person, wk::RDFS_SUB_CLASS_OF, person + 1),
            (person + 10, knows, person + 11),
        ]);
        // rdf:type pairs were deleted: exactly the rules that can write the
        // rdf:type table come back — CAX-SCO, PRP-DOM and PRP-RNG, nothing
        // that writes only schema tables.
        let deleted: BTreeSet<u64> = [wk::RDF_TYPE].into_iter().collect();
        let scheduled = ruleset.rederive_rules(&main, &deleted);
        assert_eq!(
            scheduled,
            vec![RuleId::CaxSco, RuleId::PrpDom, RuleId::PrpRng]
        );
        // subClassOf pairs were deleted: the subClassOf writers come back.
        let deleted: BTreeSet<u64> = [wk::RDFS_SUB_CLASS_OF].into_iter().collect();
        let scheduled = ruleset.rederive_rules(&main, &deleted);
        assert_eq!(scheduled, vec![RuleId::ScmSco]);
        // A data property named by a domain pair lost pairs: only the γ/δ
        // rules whose *output* is named by a surviving schema pair fire —
        // `knows` appears as an object of no subPropertyOf pair, so even
        // PRP-SPO1 stays off.
        let deleted: BTreeSet<u64> = [knows].into_iter().collect();
        assert!(ruleset.rederive_rules(&main, &deleted).is_empty());
        // Unless a schema pair names it as an output.
        let with_spo = store(&[
            (knows, wk::RDFS_DOMAIN, person),
            (nth_property_id(906), wk::RDFS_SUB_PROPERTY_OF, knows),
        ]);
        assert_eq!(
            with_spo.table(wk::RDFS_SUB_PROPERTY_OF).unwrap().len(),
            1,
            "schema pair present"
        );
        assert_eq!(
            ruleset.rederive_rules(&with_spo, &deleted),
            vec![RuleId::PrpSpo1]
        );
        // Nothing deleted: nothing to rederive.
        assert!(ruleset.rederive_rules(&main, &BTreeSet::new()).is_empty());
    }

    #[test]
    fn rederive_rules_handle_markers_and_any_property_outputs() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsPlus);
        let part_of = nth_property_id(907);
        let a = 9_850_000u64;
        let main = store(&[
            (part_of, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
            (a, part_of, a + 1),
        ]);
        // The declared transitive property lost pairs: PRP-TRP can rewrite
        // it; the sameAs replacement rules can write *any* table, so they
        // are always part of the seed.
        let deleted: BTreeSet<u64> = [part_of].into_iter().collect();
        let scheduled = ruleset.rederive_rules(&main, &deleted);
        assert!(scheduled.contains(&RuleId::PrpTrp));
        assert!(scheduled.contains(&RuleId::EqRepO));
        assert!(scheduled.contains(&RuleId::EqRepS));
        assert!(!scheduled.contains(&RuleId::CaxSco));
        assert!(
            !scheduled.contains(&RuleId::PrpSymp),
            "not declared symmetric"
        );
        // sameAs pairs lost: every rule with a fixed owl:sameAs output.
        let deleted: BTreeSet<u64> = [wk::OWL_SAME_AS].into_iter().collect();
        let scheduled = ruleset.rederive_rules(&main, &deleted);
        for rule in [
            RuleId::EqSym,
            RuleId::EqTrans,
            RuleId::PrpFp,
            RuleId::PrpIfp,
        ] {
            assert!(scheduled.contains(&rule), "{rule} writes owl:sameAs");
        }
    }

    #[test]
    fn rules_reading_a_property() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsDefault);
        let readers = ruleset.rules_reading(wk::RDFS_DOMAIN);
        assert!(readers.contains(&RuleId::ScmDom1));
        assert!(readers.contains(&RuleId::ScmDom2));
        assert!(
            readers.contains(&RuleId::PrpDom),
            "PRP-DOM is anchored at rdfs:domain"
        );
        assert!(!readers.contains(&RuleId::CaxSco));
        let full = Ruleset::for_fragment(Fragment::RdfsPlusFull);
        let readers = full.rules_reading(wk::RDFS_LABEL);
        assert_eq!(readers, vec![RuleId::Rdfs4], "only the whole-store scan");
    }

    #[test]
    fn custom_ruleset() {
        let rs = Ruleset::custom(Fragment::RdfsDefault, vec![RuleId::CaxSco]);
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(RuleId::CaxSco));
        assert!(!Ruleset::custom(Fragment::RdfsDefault, vec![]).contains(RuleId::CaxSco));
        assert!(Ruleset::custom(Fragment::RdfsDefault, vec![]).is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(Fragment::RhoDf.to_string(), "rho-df");
        assert_eq!(Fragment::RdfsPlus.to_string(), "RDFS-Plus");
    }
}
