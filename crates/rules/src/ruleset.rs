//! Rulesets: the RDFS / ρDF / RDFS-Plus fragments in their default and full
//! flavours.
//!
//! "Systems usually perform incomplete RDFS reasoning and consider only rules
//! whose antecedents are made of two-way joins … single-antecedent rules
//! derive triples that do not convey interesting knowledge" (§1). The
//! benchmark therefore distinguishes, per fragment, a *default* version
//! (filled circles of Table 5) from a *full* version that adds the
//! half-circle rules.

use crate::catalog::{Membership, RuleClass, RuleId, CATALOG};

/// The inference fragments evaluated in the paper (§6, "Rulesets").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fragment {
    /// ρDF — the minimal meaningful subset of RDFS.
    RhoDf,
    /// RDFS, default flavour (meaningful rules only).
    RdfsDefault,
    /// RDFS, full flavour (adds the axiomatic RDFS4/6/8/10/12/13 rules).
    RdfsFull,
    /// RDFS-Plus, default flavour.
    RdfsPlus,
    /// RDFS-Plus, full flavour (adds SCM-CLS / SCM-DP / SCM-OP / RDFS4).
    RdfsPlusFull,
}

impl Fragment {
    /// All fragments, in benchmark order.
    pub const ALL: [Fragment; 5] = [
        Fragment::RhoDf,
        Fragment::RdfsDefault,
        Fragment::RdfsFull,
        Fragment::RdfsPlus,
        Fragment::RdfsPlusFull,
    ];

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Fragment::RhoDf => "rho-df",
            Fragment::RdfsDefault => "RDFS-default",
            Fragment::RdfsFull => "RDFS-Full",
            Fragment::RdfsPlus => "RDFS-Plus",
            Fragment::RdfsPlusFull => "RDFS-Plus-Full",
        }
    }

    /// The membership column of Table 5 relevant to this fragment, and
    /// whether the full flavour is requested.
    fn membership(self, rule: RuleId) -> (Membership, bool) {
        let info = rule.info();
        match self {
            Fragment::RhoDf => (info.rho_df, false),
            Fragment::RdfsDefault => (info.rdfs, false),
            Fragment::RdfsFull => (info.rdfs, true),
            Fragment::RdfsPlus => (info.rdfs_plus, false),
            Fragment::RdfsPlusFull => (info.rdfs_plus, true),
        }
    }

    /// `true` when `rule` belongs to this fragment.
    pub fn includes(self, rule: RuleId) -> bool {
        let (membership, full) = self.membership(rule);
        if full {
            membership.in_full()
        } else {
            membership.in_default()
        }
    }
}

impl std::fmt::Display for Fragment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete, ordered set of rules to execute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ruleset {
    /// The fragment this ruleset realizes.
    pub fragment: Fragment,
    rules: Vec<RuleId>,
}

impl Ruleset {
    /// Builds the ruleset of a fragment from the catalog.
    pub fn for_fragment(fragment: Fragment) -> Self {
        let rules = CATALOG
            .iter()
            .filter(|info| fragment.includes(info.id))
            .map(|info| info.id)
            .collect();
        Ruleset { fragment, rules }
    }

    /// A custom ruleset (used by tests and by the ablation benchmarks).
    pub fn custom(fragment: Fragment, rules: Vec<RuleId>) -> Self {
        Ruleset { fragment, rules }
    }

    /// The rules, in Table 5 order.
    pub fn rules(&self) -> &[RuleId] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// `true` when the ruleset is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// `true` when the ruleset contains `rule`.
    pub fn contains(&self, rule: RuleId) -> bool {
        self.rules.contains(&rule)
    }

    /// The rules that are *not* handled by the transitive-closure stage
    /// (everything except the θ class) — the ones the fixed-point loop
    /// dispatches to per-rule threads.
    pub fn fixed_point_rules(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .copied()
            .filter(|r| r.class() != RuleClass::Theta)
            .collect()
    }

    /// The θ (closure) rules of the ruleset.
    pub fn theta_rules(&self) -> Vec<RuleId> {
        self.rules
            .iter()
            .copied()
            .filter(|r| r.class() == RuleClass::Theta)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_sizes() {
        assert_eq!(Ruleset::for_fragment(Fragment::RhoDf).len(), 8);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsDefault).len(), 10);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsFull).len(), 16);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsPlus).len(), 29);
        assert_eq!(Ruleset::for_fragment(Fragment::RdfsPlusFull).len(), 33);
    }

    #[test]
    fn rho_df_contains_exactly_the_paper_rules() {
        let ruleset = Ruleset::for_fragment(Fragment::RhoDf);
        let expected = [
            RuleId::CaxSco,
            RuleId::PrpDom,
            RuleId::PrpRng,
            RuleId::PrpSpo1,
            RuleId::ScmDom2,
            RuleId::ScmRng2,
            RuleId::ScmSco,
            RuleId::ScmSpo,
        ];
        assert_eq!(ruleset.rules(), &expected);
    }

    #[test]
    fn rdfs_full_adds_only_axiomatic_rules() {
        let default: std::collections::HashSet<_> =
            Ruleset::for_fragment(Fragment::RdfsDefault).rules().to_vec().into_iter().collect();
        let full: std::collections::HashSet<_> =
            Ruleset::for_fragment(Fragment::RdfsFull).rules().to_vec().into_iter().collect();
        let extra: Vec<_> = full.difference(&default).collect();
        assert_eq!(extra.len(), 6);
        for rule in [
            RuleId::Rdfs4,
            RuleId::Rdfs6,
            RuleId::Rdfs8,
            RuleId::Rdfs10,
            RuleId::Rdfs12,
            RuleId::Rdfs13,
        ] {
            assert!(full.contains(&rule));
            assert!(!default.contains(&rule));
        }
    }

    #[test]
    fn theta_rules_are_separated_from_fixed_point_rules() {
        let ruleset = Ruleset::for_fragment(Fragment::RdfsPlus);
        let theta = ruleset.theta_rules();
        assert_eq!(
            theta,
            vec![RuleId::EqTrans, RuleId::PrpTrp, RuleId::ScmSco, RuleId::ScmSpo]
        );
        let fp = ruleset.fixed_point_rules();
        assert_eq!(fp.len() + theta.len(), ruleset.len());
        assert!(!fp.contains(&RuleId::ScmSco));
    }

    #[test]
    fn rdfs_fragments_never_include_owl_rules() {
        for fragment in [Fragment::RhoDf, Fragment::RdfsDefault, Fragment::RdfsFull] {
            let ruleset = Ruleset::for_fragment(fragment);
            assert!(!ruleset.contains(RuleId::CaxEqc1));
            assert!(!ruleset.contains(RuleId::PrpTrp));
            assert!(!ruleset.contains(RuleId::EqSym));
        }
    }

    #[test]
    fn custom_ruleset() {
        let rs = Ruleset::custom(Fragment::RdfsDefault, vec![RuleId::CaxSco]);
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(RuleId::CaxSco));
        assert!(!Ruleset::custom(Fragment::RdfsDefault, vec![]).contains(RuleId::CaxSco));
        assert!(Ruleset::custom(Fragment::RdfsDefault, vec![]).is_empty());
    }

    #[test]
    fn display_names() {
        assert_eq!(Fragment::RhoDf.to_string(), "rho-df");
        assert_eq!(Fragment::RdfsPlus.to_string(), "RDFS-Plus");
    }
}
