//! The common interface every reasoner in the benchmark implements.
//!
//! The paper compares Inferray against systems with very different internals
//! (hash-join datalog, RETE, Hadoop). The reproduction mirrors that through a
//! single trait: a [`Materializer`] receives a finalized
//! [`TripleStore`](inferray_store::TripleStore) and computes the full
//! materialization in place, reporting uniform statistics. The benchmark
//! harness drives Inferray and the baselines through this trait only.

use inferray_store::{AccessProfile, TripleStore};
use std::time::Duration;

/// Statistics of one materialization run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct InferenceStats {
    /// Triples in the store before inference.
    pub input_triples: usize,
    /// Triples in the store after inference (input + inferred).
    pub output_triples: usize,
    /// Fixed-point iterations executed (1 for single-pass strategies).
    pub iterations: usize,
    /// Raw pairs produced by rule executors before any duplicate
    /// elimination (the quantity whose growth the paper's §2.1 discusses).
    pub derived_raw: usize,
    /// Duplicates eliminated (within-iteration and against the main store).
    pub duplicates_removed: usize,
    /// Wall-clock time of the run.
    pub duration: Duration,
    /// Software memory-access profile (Figures 7–8 substitution).
    pub profile: AccessProfile,
}

impl InferenceStats {
    /// Triples added by inference.
    pub fn inferred_triples(&self) -> usize {
        self.output_triples.saturating_sub(self.input_triples)
    }

    /// Inference throughput in triples per second (inferred / duration).
    pub fn triples_per_second(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.inferred_triples() as f64 / secs
        }
    }
}

/// A forward-chaining reasoner that materializes a ruleset over a store.
pub trait Materializer {
    /// Short engine name used in benchmark tables (e.g. `"inferray"`).
    fn name(&self) -> &'static str;

    /// Runs materialization in place: after the call, `store` contains the
    /// input triples plus everything the engine's ruleset derives.
    fn materialize(&mut self, store: &mut TripleStore) -> InferenceStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inferred_and_throughput() {
        let stats = InferenceStats {
            input_triples: 100,
            output_triples: 400,
            iterations: 3,
            derived_raw: 1000,
            duplicates_removed: 700,
            duration: Duration::from_millis(500),
            profile: AccessProfile::default(),
        };
        assert_eq!(stats.inferred_triples(), 300);
        assert!((stats.triples_per_second() - 600.0).abs() < 1e-9);
    }

    #[test]
    fn zero_duration_gives_zero_throughput() {
        let stats = InferenceStats::default();
        assert_eq!(stats.triples_per_second(), 0.0);
        assert_eq!(stats.inferred_triples(), 0);
    }
}
