//! The rule catalog — Table 5 of the paper.
//!
//! Every rule supported by Inferray is described here: its identifier, the
//! rule *class* it was pigeonholed into (§4.4), and its membership in each of
//! the three rule fragments (RDFS, ρDF, RDFS-Plus). Membership distinguishes
//! full members from the "half-circle" rules that "do not produce meaningful
//! triples and are used only in full versions of rulesets".
//!
//! The executors live in [`crate::executors`]; this module is pure metadata,
//! which the ruleset builder ([`crate::ruleset`]) and the benchmark harness
//! introspect.

use std::fmt;

/// Identifier of each of the 38 rules of Table 5, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum RuleId {
    CaxEqc1,
    CaxEqc2,
    CaxSco,
    EqRepO,
    EqRepP,
    EqRepS,
    EqSym,
    EqTrans,
    PrpDom,
    PrpEqp1,
    PrpEqp2,
    PrpFp,
    PrpIfp,
    PrpInv1,
    PrpInv2,
    PrpRng,
    PrpSpo1,
    PrpSymp,
    PrpTrp,
    ScmDom1,
    ScmDom2,
    ScmEqc1,
    ScmEqc2,
    ScmEqp1,
    ScmEqp2,
    ScmRng1,
    ScmRng2,
    ScmSco,
    ScmSpo,
    ScmCls,
    ScmDp,
    ScmOp,
    Rdfs4,
    Rdfs8,
    Rdfs12,
    Rdfs13,
    Rdfs6,
    Rdfs10,
}

impl RuleId {
    /// Every rule, in Table 5 order.
    pub const ALL: [RuleId; 38] = [
        RuleId::CaxEqc1,
        RuleId::CaxEqc2,
        RuleId::CaxSco,
        RuleId::EqRepO,
        RuleId::EqRepP,
        RuleId::EqRepS,
        RuleId::EqSym,
        RuleId::EqTrans,
        RuleId::PrpDom,
        RuleId::PrpEqp1,
        RuleId::PrpEqp2,
        RuleId::PrpFp,
        RuleId::PrpIfp,
        RuleId::PrpInv1,
        RuleId::PrpInv2,
        RuleId::PrpRng,
        RuleId::PrpSpo1,
        RuleId::PrpSymp,
        RuleId::PrpTrp,
        RuleId::ScmDom1,
        RuleId::ScmDom2,
        RuleId::ScmEqc1,
        RuleId::ScmEqc2,
        RuleId::ScmEqp1,
        RuleId::ScmEqp2,
        RuleId::ScmRng1,
        RuleId::ScmRng2,
        RuleId::ScmSco,
        RuleId::ScmSpo,
        RuleId::ScmCls,
        RuleId::ScmDp,
        RuleId::ScmOp,
        RuleId::Rdfs4,
        RuleId::Rdfs8,
        RuleId::Rdfs12,
        RuleId::Rdfs13,
        RuleId::Rdfs6,
        RuleId::Rdfs10,
    ];

    /// The metadata record of this rule.
    pub fn info(self) -> &'static RuleInfo {
        &CATALOG[self as usize]
    }

    /// The canonical rule name used in the paper (e.g. `CAX-SCO`).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// The execution class of the rule.
    pub fn class(self) -> RuleClass {
        self.info().class
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The execution classes of §4.4 (plus the single-antecedent "trivial" class
/// and the three-antecedent functional-property class, which the paper
/// mentions but does not letter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleClass {
    /// Two-table sort-merge join on subject or object (α).
    Alpha,
    /// Self-join of one property table, subject against object (β).
    Beta,
    /// Fixed-property antecedent joined on the *property* of the second
    /// pattern — requires iterating over property tables (γ).
    Gamma,
    /// The second antecedent's table is copied (possibly reversed) into the
    /// head's table (δ).
    Delta,
    /// The four `owl:sameAs` replacement rules, handled by a dedicated loop.
    SameAs,
    /// Transitivity rules, handled by the dedicated closure stage (θ).
    Theta,
    /// Single-antecedent rules.
    Trivial,
    /// Three-antecedent functional / inverse-functional property rules.
    Functional,
}

impl fmt::Display for RuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            RuleClass::Alpha => "α",
            RuleClass::Beta => "β",
            RuleClass::Gamma => "γ",
            RuleClass::Delta => "δ",
            RuleClass::SameAs => "same-as",
            RuleClass::Theta => "θ",
            RuleClass::Trivial => "trivial",
            RuleClass::Functional => "functional",
        };
        f.write_str(label)
    }
}

/// Whether (and how) a rule belongs to a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Membership {
    /// Not part of the fragment (empty circle in Table 5).
    No,
    /// Part of the fragment's default and full versions (filled circle).
    Default,
    /// Only part of the *full* version of the fragment (half circle) —
    /// derives triples "that do not convey interesting knowledge, but
    /// satisfy the logician".
    FullOnly,
}

impl Membership {
    /// `true` when the rule runs in the default version of the fragment.
    pub fn in_default(self) -> bool {
        matches!(self, Membership::Default)
    }

    /// `true` when the rule runs in the full version of the fragment.
    pub fn in_full(self) -> bool {
        !matches!(self, Membership::No)
    }
}

/// One row of Table 5.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule identifier.
    pub id: RuleId,
    /// Canonical (paper) name.
    pub name: &'static str,
    /// Row number in Table 5 (1-based).
    pub table5_row: u8,
    /// Execution class.
    pub class: RuleClass,
    /// Membership in plain RDFS.
    pub rdfs: Membership,
    /// Membership in ρDF.
    pub rho_df: Membership,
    /// Membership in RDFS-Plus.
    pub rdfs_plus: Membership,
    /// One-line description (body ⇒ head).
    pub description: &'static str,
}

use Membership::{Default as D, FullOnly as F, No as N};
use RuleClass::*;

/// The full catalog, in Table 5 order (index = `RuleId as usize`).
pub static CATALOG: [RuleInfo; 38] = [
    RuleInfo { id: RuleId::CaxEqc1, name: "CAX-EQC1", table5_row: 1, class: Alpha, rdfs: N, rho_df: N, rdfs_plus: D, description: "c1 owl:equivalentClass c2, x rdf:type c1 ⇒ x rdf:type c2" },
    RuleInfo { id: RuleId::CaxEqc2, name: "CAX-EQC2", table5_row: 2, class: Alpha, rdfs: N, rho_df: N, rdfs_plus: D, description: "c1 owl:equivalentClass c2, x rdf:type c2 ⇒ x rdf:type c1" },
    RuleInfo { id: RuleId::CaxSco, name: "CAX-SCO", table5_row: 3, class: Alpha, rdfs: D, rho_df: D, rdfs_plus: D, description: "c1 rdfs:subClassOf c2, x rdf:type c1 ⇒ x rdf:type c2" },
    RuleInfo { id: RuleId::EqRepO, name: "EQ-REP-O", table5_row: 4, class: SameAs, rdfs: N, rho_df: N, rdfs_plus: D, description: "o1 owl:sameAs o2, s p o1 ⇒ s p o2" },
    RuleInfo { id: RuleId::EqRepP, name: "EQ-REP-P", table5_row: 5, class: SameAs, rdfs: N, rho_df: N, rdfs_plus: D, description: "p1 owl:sameAs p2, s p1 o ⇒ s p2 o" },
    RuleInfo { id: RuleId::EqRepS, name: "EQ-REP-S", table5_row: 6, class: SameAs, rdfs: N, rho_df: N, rdfs_plus: D, description: "s1 owl:sameAs s2, s1 p o ⇒ s2 p o" },
    RuleInfo { id: RuleId::EqSym, name: "EQ-SYM", table5_row: 7, class: Trivial, rdfs: N, rho_df: N, rdfs_plus: D, description: "x owl:sameAs y ⇒ y owl:sameAs x" },
    RuleInfo { id: RuleId::EqTrans, name: "EQ-TRANS", table5_row: 8, class: Theta, rdfs: N, rho_df: N, rdfs_plus: D, description: "x owl:sameAs y, y owl:sameAs z ⇒ x owl:sameAs z" },
    RuleInfo { id: RuleId::PrpDom, name: "PRP-DOM", table5_row: 9, class: Gamma, rdfs: D, rho_df: D, rdfs_plus: D, description: "p rdfs:domain c, x p y ⇒ x rdf:type c" },
    RuleInfo { id: RuleId::PrpEqp1, name: "PRP-EQP1", table5_row: 10, class: Delta, rdfs: N, rho_df: N, rdfs_plus: D, description: "p1 owl:equivalentProperty p2, x p1 y ⇒ x p2 y" },
    RuleInfo { id: RuleId::PrpEqp2, name: "PRP-EQP2", table5_row: 11, class: Delta, rdfs: N, rho_df: N, rdfs_plus: D, description: "p1 owl:equivalentProperty p2, x p2 y ⇒ x p1 y" },
    RuleInfo { id: RuleId::PrpFp, name: "PRP-FP", table5_row: 12, class: Functional, rdfs: N, rho_df: N, rdfs_plus: D, description: "p a owl:FunctionalProperty, x p y1, x p y2 ⇒ y1 owl:sameAs y2" },
    RuleInfo { id: RuleId::PrpIfp, name: "PRP-IFP", table5_row: 13, class: Functional, rdfs: N, rho_df: N, rdfs_plus: D, description: "p a owl:InverseFunctionalProperty, x1 p y, x2 p y ⇒ x1 owl:sameAs x2" },
    RuleInfo { id: RuleId::PrpInv1, name: "PRP-INV1", table5_row: 14, class: Delta, rdfs: N, rho_df: N, rdfs_plus: D, description: "p1 owl:inverseOf p2, x p1 y ⇒ y p2 x" },
    RuleInfo { id: RuleId::PrpInv2, name: "PRP-INV2", table5_row: 15, class: Delta, rdfs: N, rho_df: N, rdfs_plus: D, description: "p1 owl:inverseOf p2, x p2 y ⇒ y p1 x" },
    RuleInfo { id: RuleId::PrpRng, name: "PRP-RNG", table5_row: 16, class: Gamma, rdfs: D, rho_df: D, rdfs_plus: D, description: "p rdfs:range c, x p y ⇒ y rdf:type c" },
    RuleInfo { id: RuleId::PrpSpo1, name: "PRP-SPO1", table5_row: 17, class: Gamma, rdfs: D, rho_df: D, rdfs_plus: D, description: "p1 rdfs:subPropertyOf p2, x p1 y ⇒ x p2 y" },
    RuleInfo { id: RuleId::PrpSymp, name: "PRP-SYMP", table5_row: 18, class: Gamma, rdfs: N, rho_df: N, rdfs_plus: D, description: "p a owl:SymmetricProperty, x p y ⇒ y p x" },
    RuleInfo { id: RuleId::PrpTrp, name: "PRP-TRP", table5_row: 19, class: Theta, rdfs: N, rho_df: N, rdfs_plus: D, description: "p a owl:TransitiveProperty, x p y, y p z ⇒ x p z" },
    RuleInfo { id: RuleId::ScmDom1, name: "SCM-DOM1", table5_row: 20, class: Alpha, rdfs: D, rho_df: N, rdfs_plus: D, description: "p rdfs:domain c1, c1 rdfs:subClassOf c2 ⇒ p rdfs:domain c2" },
    RuleInfo { id: RuleId::ScmDom2, name: "SCM-DOM2", table5_row: 21, class: Alpha, rdfs: D, rho_df: D, rdfs_plus: D, description: "p2 rdfs:domain c, p1 rdfs:subPropertyOf p2 ⇒ p1 rdfs:domain c" },
    RuleInfo { id: RuleId::ScmEqc1, name: "SCM-EQC1", table5_row: 22, class: Trivial, rdfs: N, rho_df: N, rdfs_plus: D, description: "c1 owl:equivalentClass c2 ⇒ c1 rdfs:subClassOf c2, c2 rdfs:subClassOf c1" },
    RuleInfo { id: RuleId::ScmEqc2, name: "SCM-EQC2", table5_row: 23, class: Beta, rdfs: N, rho_df: N, rdfs_plus: D, description: "c1 rdfs:subClassOf c2, c2 rdfs:subClassOf c1 ⇒ c1 owl:equivalentClass c2" },
    RuleInfo { id: RuleId::ScmEqp1, name: "SCM-EQP1", table5_row: 24, class: Trivial, rdfs: N, rho_df: N, rdfs_plus: D, description: "p1 owl:equivalentProperty p2 ⇒ p1 rdfs:subPropertyOf p2, p2 rdfs:subPropertyOf p1" },
    RuleInfo { id: RuleId::ScmEqp2, name: "SCM-EQP2", table5_row: 25, class: Beta, rdfs: N, rho_df: N, rdfs_plus: D, description: "p1 rdfs:subPropertyOf p2, p2 rdfs:subPropertyOf p1 ⇒ p1 owl:equivalentProperty p2" },
    RuleInfo { id: RuleId::ScmRng1, name: "SCM-RNG1", table5_row: 26, class: Alpha, rdfs: D, rho_df: N, rdfs_plus: D, description: "p rdfs:range c1, c1 rdfs:subClassOf c2 ⇒ p rdfs:range c2" },
    RuleInfo { id: RuleId::ScmRng2, name: "SCM-RNG2", table5_row: 27, class: Alpha, rdfs: D, rho_df: D, rdfs_plus: D, description: "p2 rdfs:range c, p1 rdfs:subPropertyOf p2 ⇒ p1 rdfs:range c" },
    RuleInfo { id: RuleId::ScmSco, name: "SCM-SCO", table5_row: 28, class: Theta, rdfs: D, rho_df: D, rdfs_plus: D, description: "c1 rdfs:subClassOf c2, c2 rdfs:subClassOf c3 ⇒ c1 rdfs:subClassOf c3" },
    RuleInfo { id: RuleId::ScmSpo, name: "SCM-SPO", table5_row: 29, class: Theta, rdfs: D, rho_df: D, rdfs_plus: D, description: "p1 rdfs:subPropertyOf p2, p2 rdfs:subPropertyOf p3 ⇒ p1 rdfs:subPropertyOf p3" },
    RuleInfo { id: RuleId::ScmCls, name: "SCM-CLS", table5_row: 30, class: Trivial, rdfs: N, rho_df: N, rdfs_plus: F, description: "c a owl:Class ⇒ c ⊑ c, c ≡ c, c ⊑ owl:Thing, owl:Nothing ⊑ c" },
    RuleInfo { id: RuleId::ScmDp, name: "SCM-DP", table5_row: 31, class: Trivial, rdfs: N, rho_df: N, rdfs_plus: F, description: "p a owl:DatatypeProperty ⇒ p rdfs:subPropertyOf p, p owl:equivalentProperty p" },
    RuleInfo { id: RuleId::ScmOp, name: "SCM-OP", table5_row: 32, class: Trivial, rdfs: N, rho_df: N, rdfs_plus: F, description: "p a owl:ObjectProperty ⇒ p rdfs:subPropertyOf p, p owl:equivalentProperty p" },
    RuleInfo { id: RuleId::Rdfs4, name: "RDFS4", table5_row: 33, class: Trivial, rdfs: F, rho_df: F, rdfs_plus: F, description: "x p y ⇒ x rdf:type rdfs:Resource, y rdf:type rdfs:Resource" },
    RuleInfo { id: RuleId::Rdfs8, name: "RDFS8", table5_row: 34, class: Trivial, rdfs: F, rho_df: N, rdfs_plus: N, description: "x a rdfs:Class ⇒ x rdfs:subClassOf rdfs:Resource" },
    RuleInfo { id: RuleId::Rdfs12, name: "RDFS12", table5_row: 35, class: Trivial, rdfs: F, rho_df: N, rdfs_plus: N, description: "x a rdfs:ContainerMembershipProperty ⇒ x rdfs:subPropertyOf rdfs:member" },
    RuleInfo { id: RuleId::Rdfs13, name: "RDFS13", table5_row: 36, class: Trivial, rdfs: F, rho_df: N, rdfs_plus: N, description: "x a rdfs:Datatype ⇒ x rdfs:subClassOf rdfs:Literal" },
    RuleInfo { id: RuleId::Rdfs6, name: "RDFS6", table5_row: 37, class: Trivial, rdfs: F, rho_df: N, rdfs_plus: N, description: "x a rdf:Property ⇒ x rdfs:subPropertyOf x" },
    RuleInfo { id: RuleId::Rdfs10, name: "RDFS10", table5_row: 38, class: Trivial, rdfs: F, rho_df: N, rdfs_plus: N, description: "x a rdfs:Class ⇒ x rdfs:subClassOf x" },
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_is_indexed_by_rule_id() {
        for (i, rule) in RuleId::ALL.iter().enumerate() {
            assert_eq!(*rule as usize, i);
            assert_eq!(CATALOG[i].id, *rule);
            assert_eq!(CATALOG[i].table5_row as usize, i + 1);
            assert_eq!(rule.info().name, rule.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = CATALOG.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 38);
    }

    #[test]
    fn fragment_sizes_match_table5() {
        // Filled circles per column of Table 5.
        let rdfs_default = CATALOG.iter().filter(|r| r.rdfs.in_default()).count();
        let rho_default = CATALOG.iter().filter(|r| r.rho_df.in_default()).count();
        let plus_default = CATALOG.iter().filter(|r| r.rdfs_plus.in_default()).count();
        assert_eq!(rdfs_default, 10, "RDFS default rules");
        assert_eq!(rho_default, 8, "ρDF default rules");
        assert_eq!(plus_default, 29, "RDFS-Plus default rules");
        // Full versions add the half-circle rules.
        let rdfs_full = CATALOG.iter().filter(|r| r.rdfs.in_full()).count();
        let rho_full = CATALOG.iter().filter(|r| r.rho_df.in_full()).count();
        let plus_full = CATALOG.iter().filter(|r| r.rdfs_plus.in_full()).count();
        assert_eq!(rdfs_full, 16);
        assert_eq!(rho_full, 9);
        assert_eq!(plus_full, 33);
    }

    #[test]
    fn class_assignment_matches_table5() {
        assert_eq!(RuleId::CaxSco.class(), RuleClass::Alpha);
        assert_eq!(RuleId::ScmDom1.class(), RuleClass::Alpha);
        assert_eq!(RuleId::ScmEqc2.class(), RuleClass::Beta);
        assert_eq!(RuleId::PrpDom.class(), RuleClass::Gamma);
        assert_eq!(RuleId::PrpSpo1.class(), RuleClass::Gamma);
        assert_eq!(RuleId::PrpInv1.class(), RuleClass::Delta);
        assert_eq!(RuleId::EqRepS.class(), RuleClass::SameAs);
        assert_eq!(RuleId::ScmSco.class(), RuleClass::Theta);
        assert_eq!(RuleId::PrpTrp.class(), RuleClass::Theta);
        assert_eq!(RuleId::EqSym.class(), RuleClass::Trivial);
        assert_eq!(RuleId::PrpFp.class(), RuleClass::Functional);
    }

    #[test]
    fn every_rdfs_rule_is_in_rdfs_plus_except_the_legacy_axiomatic_ones() {
        for info in CATALOG.iter() {
            if info.rdfs.in_default() {
                assert!(
                    info.rdfs_plus.in_default(),
                    "{} is a default RDFS rule but not an RDFS-Plus rule",
                    info.name
                );
            }
        }
    }

    #[test]
    fn rho_df_is_a_subset_of_rdfs() {
        for info in CATALOG.iter() {
            if info.rho_df.in_default() {
                assert!(info.rdfs.in_default(), "{} in ρDF but not RDFS", info.name);
            }
        }
    }

    #[test]
    fn display_of_classes_and_rules() {
        assert_eq!(RuleId::CaxSco.to_string(), "CAX-SCO");
        assert_eq!(RuleClass::Alpha.to_string(), "α");
        assert_eq!(RuleClass::SameAs.to_string(), "same-as");
    }
}
