//! The rule catalog — Table 5 of the paper.
//!
//! Every rule supported by Inferray is described here: its identifier, the
//! rule *class* it was pigeonholed into (§4.4), and its membership in each of
//! the three rule fragments (RDFS, ρDF, RDFS-Plus). Membership distinguishes
//! full members from the "half-circle" rules that "do not produce meaningful
//! triples and are used only in full versions of rulesets".
//!
//! The executors live in [`crate::executors`]; this module is pure metadata,
//! which the ruleset builder ([`crate::ruleset`]) and the benchmark harness
//! introspect.

use std::fmt;

/// Identifier of each of the 38 rules of Table 5, in the paper's order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum RuleId {
    CaxEqc1,
    CaxEqc2,
    CaxSco,
    EqRepO,
    EqRepP,
    EqRepS,
    EqSym,
    EqTrans,
    PrpDom,
    PrpEqp1,
    PrpEqp2,
    PrpFp,
    PrpIfp,
    PrpInv1,
    PrpInv2,
    PrpRng,
    PrpSpo1,
    PrpSymp,
    PrpTrp,
    ScmDom1,
    ScmDom2,
    ScmEqc1,
    ScmEqc2,
    ScmEqp1,
    ScmEqp2,
    ScmRng1,
    ScmRng2,
    ScmSco,
    ScmSpo,
    ScmCls,
    ScmDp,
    ScmOp,
    Rdfs4,
    Rdfs8,
    Rdfs12,
    Rdfs13,
    Rdfs6,
    Rdfs10,
}

impl RuleId {
    /// Every rule, in Table 5 order.
    pub const ALL: [RuleId; 38] = [
        RuleId::CaxEqc1,
        RuleId::CaxEqc2,
        RuleId::CaxSco,
        RuleId::EqRepO,
        RuleId::EqRepP,
        RuleId::EqRepS,
        RuleId::EqSym,
        RuleId::EqTrans,
        RuleId::PrpDom,
        RuleId::PrpEqp1,
        RuleId::PrpEqp2,
        RuleId::PrpFp,
        RuleId::PrpIfp,
        RuleId::PrpInv1,
        RuleId::PrpInv2,
        RuleId::PrpRng,
        RuleId::PrpSpo1,
        RuleId::PrpSymp,
        RuleId::PrpTrp,
        RuleId::ScmDom1,
        RuleId::ScmDom2,
        RuleId::ScmEqc1,
        RuleId::ScmEqc2,
        RuleId::ScmEqp1,
        RuleId::ScmEqp2,
        RuleId::ScmRng1,
        RuleId::ScmRng2,
        RuleId::ScmSco,
        RuleId::ScmSpo,
        RuleId::ScmCls,
        RuleId::ScmDp,
        RuleId::ScmOp,
        RuleId::Rdfs4,
        RuleId::Rdfs8,
        RuleId::Rdfs12,
        RuleId::Rdfs13,
        RuleId::Rdfs6,
        RuleId::Rdfs10,
    ];

    /// The metadata record of this rule.
    pub fn info(self) -> &'static RuleInfo {
        &CATALOG[self as usize]
    }

    /// The canonical rule name used in the paper (e.g. `CAX-SCO`).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// The execution class of the rule.
    pub fn class(self) -> RuleClass {
        self.info().class
    }

    /// The input signature of the rule (the property tables it reads).
    pub fn inputs(self) -> RuleInputs {
        self.info().inputs
    }

    /// The output signature of the rule (the property tables it writes).
    pub fn outputs(self) -> RuleOutputs {
        self.info().outputs
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The execution classes of §4.4 (plus the single-antecedent "trivial" class
/// and the three-antecedent functional-property class, which the paper
/// mentions but does not letter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleClass {
    /// Two-table sort-merge join on subject or object (α).
    Alpha,
    /// Self-join of one property table, subject against object (β).
    Beta,
    /// Fixed-property antecedent joined on the *property* of the second
    /// pattern — requires iterating over property tables (γ).
    Gamma,
    /// The second antecedent's table is copied (possibly reversed) into the
    /// head's table (δ).
    Delta,
    /// The four `owl:sameAs` replacement rules, handled by a dedicated loop.
    SameAs,
    /// Transitivity rules, handled by the dedicated closure stage (θ).
    Theta,
    /// Single-antecedent rules.
    Trivial,
    /// Three-antecedent functional / inverse-functional property rules.
    Functional,
}

impl fmt::Display for RuleClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label = match self {
            RuleClass::Alpha => "α",
            RuleClass::Beta => "β",
            RuleClass::Gamma => "γ",
            RuleClass::Delta => "δ",
            RuleClass::SameAs => "same-as",
            RuleClass::Theta => "θ",
            RuleClass::Trivial => "trivial",
            RuleClass::Functional => "functional",
        };
        f.write_str(label)
    }
}

/// The input signature of a rule: which property tables its antecedents
/// read. This is the §4.3 rule-dependency graph — a rule can only derive
/// something it has not derived before when at least one of its input tables
/// received genuinely new pairs in the previous iteration, so the
/// fixed-point loop skips every rule whose inputs are unchanged.
///
/// The signature must be **conservative**: scheduling a rule whose inputs
/// did not change only costs a wasted (duplicate-producing) firing, while
/// missing a real input would lose derivations. Three of the variants are
/// *dynamic*: which data tables a γ/δ rule reads is named by its schema
/// table (e.g. the subjects of `rdfs:domain` pairs), and which tables the
/// functional/symmetric/transitive rules read is named by marker
/// declarations (`⟨p, rdf:type, owl:FunctionalProperty⟩`), so the scheduler
/// evaluates those against the current store
/// ([`crate::Ruleset::scheduled_rules`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleInputs {
    /// The rule reads only these fixed schema property tables.
    Properties(&'static [u64]),
    /// γ/δ-style: the rule reads the fixed `schema` table plus the data
    /// tables named on the given `side` of the schema pairs (e.g. `PRP-DOM`
    /// reads `rdfs:domain` and the table of every property appearing as a
    /// *subject* of a domain pair).
    PropertyVariable {
        /// The fixed schema property table driving the rule.
        schema: u64,
        /// Which component of a schema pair names a data table.
        side: SchemaSide,
    },
    /// The rule reads the declarations `⟨p, rdf:type, marker⟩` and the data
    /// table of every declared `p` (the functional / inverse-functional /
    /// symmetric / transitive property rules).
    MarkedProperties {
        /// The `rdf:type` object marking the properties the rule iterates.
        marker: u64,
    },
    /// The rule scans tables of arbitrary properties, but only while the
    /// `guard` table is non-empty (the `EQ-REP-S/O` replacement loop is
    /// driven by `owl:sameAs` pairs whose subjects can occur anywhere).
    AnyGuardedBy {
        /// The property whose table must be non-empty for the rule to fire.
        guard: u64,
    },
    /// The rule unconditionally scans every table (`RDFS4`).
    AnyProperty,
}

/// Which component of a schema pair names the data tables a
/// [`RuleInputs::PropertyVariable`] rule reads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemaSide {
    /// The subject of each schema pair is a data property the rule reads.
    Subject,
    /// The object of each schema pair is a data property the rule reads.
    Object,
}

/// The output signature of a rule: which property tables its head can write.
///
/// This is the *write* half of the §4.3 dependency graph, the mirror image
/// of [`RuleInputs`]. The incremental maintenance path (delete–rederive,
/// docs/maintenance.md) uses it to seed rederivation: after over-deletion
/// only the tables that lost pairs can be missing anything, so the first
/// rederive iteration needs to fire only the rules whose outputs can land
/// in one of those tables. Like the input signatures, output signatures
/// must be **conservative**: declaring too wide an output merely wastes a
/// duplicate-producing firing, while declaring too narrow a one would leave
/// entailed triples unrestored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleOutputs {
    /// The head writes only these fixed property tables.
    Properties(&'static [u64]),
    /// γ/δ-style: the head's property is named on the given `side` of the
    /// `schema` table's pairs (e.g. `PRP-SPO1` writes the table of every
    /// property appearing as an *object* of a `rdfs:subPropertyOf` pair).
    PropertyVariable {
        /// The fixed schema property table naming the output tables.
        schema: u64,
        /// Which component of a schema pair names an output table.
        side: SchemaSide,
    },
    /// The head writes the table of every property declared
    /// `⟨p, rdf:type, marker⟩` (e.g. `PRP-SYMP` mirrors pairs within the
    /// declared symmetric properties' own tables).
    MarkedProperties {
        /// The `rdf:type` object marking the properties the rule writes.
        marker: u64,
    },
    /// The head can write any table (the `EQ-REP-S/O` replacement rules
    /// copy pairs under their original, arbitrary predicate).
    AnyProperty,
}

impl RuleOutputs {
    /// Fixed-property output signature: the head writes exactly `props`.
    /// (Shared constructor — see [`RuleInputs::on`].)
    pub const fn writes(props: &'static [u64]) -> RuleOutputs {
        RuleOutputs::Properties(props)
    }

    /// γ/δ property-variable output signature: the head's property is named
    /// on `side` of the `schema` pairs.
    pub const fn via(schema: u64, side: SchemaSide) -> RuleOutputs {
        RuleOutputs::PropertyVariable { schema, side }
    }

    /// Marked-properties output signature: the head writes tables of the
    /// properties declared `⟨p, rdf:type, marker⟩`.
    pub const fn marked(marker: u64) -> RuleOutputs {
        RuleOutputs::MarkedProperties { marker }
    }

    /// The fixed properties written (empty for the dynamic variants).
    pub fn properties(self) -> &'static [u64] {
        match self {
            RuleOutputs::Properties(props) => props,
            _ => &[],
        }
    }

    /// `true` when the rule may write tables of arbitrary properties rather
    /// than a fixed list.
    pub fn is_dynamic(self) -> bool {
        !matches!(self, RuleOutputs::Properties(_))
    }
}

impl RuleInputs {
    /// Fixed-property input signature: the rule reads exactly `props`.
    ///
    /// These constructors are the single spelling of a signature — the
    /// catalog rows, the catalog tests and the rule analyzer
    /// ([`crate::analysis`]) all build signatures through them, so the
    /// byte-identity assertions between handwritten and derived rows cannot
    /// drift on representation.
    pub const fn on(props: &'static [u64]) -> RuleInputs {
        RuleInputs::Properties(props)
    }

    /// γ/δ property-variable signature: the rule reads `schema` plus the
    /// data tables named on `side` of the schema pairs.
    pub const fn via(schema: u64, side: SchemaSide) -> RuleInputs {
        RuleInputs::PropertyVariable { schema, side }
    }

    /// Marked-properties signature: the rule reads the declarations
    /// `⟨p, rdf:type, marker⟩` and every declared `p`'s table.
    pub const fn marked(marker: u64) -> RuleInputs {
        RuleInputs::MarkedProperties { marker }
    }

    /// Guarded whole-store scan: arbitrary tables, gated on `guard` being
    /// non-empty.
    pub const fn any_with(guard: u64) -> RuleInputs {
        RuleInputs::AnyGuardedBy { guard }
    }

    /// `true` when the rule may scan tables of arbitrary properties (the
    /// dynamic variants) rather than a fixed list.
    pub fn is_dynamic(self) -> bool {
        !matches!(self, RuleInputs::Properties(_))
    }

    /// The fixed properties read (empty for the dynamic variants).
    pub fn properties(self) -> &'static [u64] {
        match self {
            RuleInputs::Properties(props) => props,
            _ => &[],
        }
    }

    /// The fixed schema property anchoring the signature, if any: the
    /// declared properties for [`RuleInputs::Properties`] are themselves the
    /// anchors; the dynamic variants are anchored by their schema / marker /
    /// guard table. Used by the dependency index and the documentation
    /// table.
    pub fn anchor(self) -> Option<u64> {
        match self {
            RuleInputs::Properties(_) => None,
            RuleInputs::PropertyVariable { schema, .. } => Some(schema),
            RuleInputs::MarkedProperties { .. } => Some(wk::RDF_TYPE),
            RuleInputs::AnyGuardedBy { guard } => Some(guard),
            RuleInputs::AnyProperty => None,
        }
    }
}

/// Whether (and how) a rule belongs to a fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Membership {
    /// Not part of the fragment (empty circle in Table 5).
    No,
    /// Part of the fragment's default and full versions (filled circle).
    Default,
    /// Only part of the *full* version of the fragment (half circle) —
    /// derives triples "that do not convey interesting knowledge, but
    /// satisfy the logician".
    FullOnly,
}

impl Membership {
    /// `true` when the rule runs in the default version of the fragment.
    pub fn in_default(self) -> bool {
        matches!(self, Membership::Default)
    }

    /// `true` when the rule runs in the full version of the fragment.
    pub fn in_full(self) -> bool {
        !matches!(self, Membership::No)
    }
}

/// One row of Table 5.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule identifier.
    pub id: RuleId,
    /// Canonical (paper) name.
    pub name: &'static str,
    /// Row number in Table 5 (1-based).
    pub table5_row: u8,
    /// Execution class.
    pub class: RuleClass,
    /// Membership in plain RDFS.
    pub rdfs: Membership,
    /// Membership in ρDF.
    pub rho_df: Membership,
    /// Membership in RDFS-Plus.
    pub rdfs_plus: Membership,
    /// Input signature: the property tables the rule's antecedents read.
    pub inputs: RuleInputs,
    /// Output signature: the property tables the rule's head can write.
    pub outputs: RuleOutputs,
    /// One-line description (body ⇒ head).
    pub description: &'static str,
}

use inferray_dictionary::wellknown as wk;
use Membership::{Default as D, FullOnly as F, No as N};
use RuleClass::*;
use RuleInputs::AnyProperty as ANY;
use SchemaSide::{Object as O, Subject as S};

// The rows below build every signature through the shared constructors on
// `RuleInputs`/`RuleOutputs` — the same ones the tests and the rule
// analyzer use, so there is exactly one spelling of each signature shape.
use RuleOutputs::AnyProperty as W_ANY;

/// The full catalog, in Table 5 order (index = `RuleId as usize`).
pub static CATALOG: [RuleInfo; 38] = [
    RuleInfo {
        id: RuleId::CaxEqc1,
        name: "CAX-EQC1",
        table5_row: 1,
        class: Alpha,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::OWL_EQUIVALENT_CLASS, wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDF_TYPE]),
        description: "c1 owl:equivalentClass c2, x rdf:type c1 ⇒ x rdf:type c2",
    },
    RuleInfo {
        id: RuleId::CaxEqc2,
        name: "CAX-EQC2",
        table5_row: 2,
        class: Alpha,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::OWL_EQUIVALENT_CLASS, wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDF_TYPE]),
        description: "c1 owl:equivalentClass c2, x rdf:type c2 ⇒ x rdf:type c1",
    },
    RuleInfo {
        id: RuleId::CaxSco,
        name: "CAX-SCO",
        table5_row: 3,
        class: Alpha,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_SUB_CLASS_OF, wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDF_TYPE]),
        description: "c1 rdfs:subClassOf c2, x rdf:type c1 ⇒ x rdf:type c2",
    },
    RuleInfo {
        id: RuleId::EqRepO,
        name: "EQ-REP-O",
        table5_row: 4,
        class: SameAs,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::any_with(wk::OWL_SAME_AS),
        outputs: W_ANY,
        description: "o1 owl:sameAs o2, s p o1 ⇒ s p o2",
    },
    RuleInfo {
        id: RuleId::EqRepP,
        name: "EQ-REP-P",
        table5_row: 5,
        class: SameAs,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::OWL_SAME_AS, S),
        outputs: RuleOutputs::via(wk::OWL_SAME_AS, O),
        description: "p1 owl:sameAs p2, s p1 o ⇒ s p2 o",
    },
    RuleInfo {
        id: RuleId::EqRepS,
        name: "EQ-REP-S",
        table5_row: 6,
        class: SameAs,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::any_with(wk::OWL_SAME_AS),
        outputs: W_ANY,
        description: "s1 owl:sameAs s2, s1 p o ⇒ s2 p o",
    },
    RuleInfo {
        id: RuleId::EqSym,
        name: "EQ-SYM",
        table5_row: 7,
        class: Trivial,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::OWL_SAME_AS]),
        outputs: RuleOutputs::writes(&[wk::OWL_SAME_AS]),
        description: "x owl:sameAs y ⇒ y owl:sameAs x",
    },
    RuleInfo {
        id: RuleId::EqTrans,
        name: "EQ-TRANS",
        table5_row: 8,
        class: Theta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::OWL_SAME_AS]),
        outputs: RuleOutputs::writes(&[wk::OWL_SAME_AS]),
        description: "x owl:sameAs y, y owl:sameAs z ⇒ x owl:sameAs z",
    },
    RuleInfo {
        id: RuleId::PrpDom,
        name: "PRP-DOM",
        table5_row: 9,
        class: Gamma,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::RDFS_DOMAIN, S),
        outputs: RuleOutputs::writes(&[wk::RDF_TYPE]),
        description: "p rdfs:domain c, x p y ⇒ x rdf:type c",
    },
    RuleInfo {
        id: RuleId::PrpEqp1,
        name: "PRP-EQP1",
        table5_row: 10,
        class: Delta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::OWL_EQUIVALENT_PROPERTY, S),
        outputs: RuleOutputs::via(wk::OWL_EQUIVALENT_PROPERTY, O),
        description: "p1 owl:equivalentProperty p2, x p1 y ⇒ x p2 y",
    },
    RuleInfo {
        id: RuleId::PrpEqp2,
        name: "PRP-EQP2",
        table5_row: 11,
        class: Delta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::OWL_EQUIVALENT_PROPERTY, O),
        outputs: RuleOutputs::via(wk::OWL_EQUIVALENT_PROPERTY, S),
        description: "p1 owl:equivalentProperty p2, x p2 y ⇒ x p1 y",
    },
    RuleInfo {
        id: RuleId::PrpFp,
        name: "PRP-FP",
        table5_row: 12,
        class: Functional,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::marked(wk::OWL_FUNCTIONAL_PROPERTY),
        outputs: RuleOutputs::writes(&[wk::OWL_SAME_AS]),
        description: "p a owl:FunctionalProperty, x p y1, x p y2 ⇒ y1 owl:sameAs y2",
    },
    RuleInfo {
        id: RuleId::PrpIfp,
        name: "PRP-IFP",
        table5_row: 13,
        class: Functional,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::marked(wk::OWL_INVERSE_FUNCTIONAL_PROPERTY),
        outputs: RuleOutputs::writes(&[wk::OWL_SAME_AS]),
        description: "p a owl:InverseFunctionalProperty, x1 p y, x2 p y ⇒ x1 owl:sameAs x2",
    },
    RuleInfo {
        id: RuleId::PrpInv1,
        name: "PRP-INV1",
        table5_row: 14,
        class: Delta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::OWL_INVERSE_OF, S),
        outputs: RuleOutputs::via(wk::OWL_INVERSE_OF, O),
        description: "p1 owl:inverseOf p2, x p1 y ⇒ y p2 x",
    },
    RuleInfo {
        id: RuleId::PrpInv2,
        name: "PRP-INV2",
        table5_row: 15,
        class: Delta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::OWL_INVERSE_OF, O),
        outputs: RuleOutputs::via(wk::OWL_INVERSE_OF, S),
        description: "p1 owl:inverseOf p2, x p2 y ⇒ y p1 x",
    },
    RuleInfo {
        id: RuleId::PrpRng,
        name: "PRP-RNG",
        table5_row: 16,
        class: Gamma,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::RDFS_RANGE, S),
        outputs: RuleOutputs::writes(&[wk::RDF_TYPE]),
        description: "p rdfs:range c, x p y ⇒ y rdf:type c",
    },
    RuleInfo {
        id: RuleId::PrpSpo1,
        name: "PRP-SPO1",
        table5_row: 17,
        class: Gamma,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::via(wk::RDFS_SUB_PROPERTY_OF, S),
        outputs: RuleOutputs::via(wk::RDFS_SUB_PROPERTY_OF, O),
        description: "p1 rdfs:subPropertyOf p2, x p1 y ⇒ x p2 y",
    },
    RuleInfo {
        id: RuleId::PrpSymp,
        name: "PRP-SYMP",
        table5_row: 18,
        class: Gamma,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::marked(wk::OWL_SYMMETRIC_PROPERTY),
        outputs: RuleOutputs::marked(wk::OWL_SYMMETRIC_PROPERTY),
        description: "p a owl:SymmetricProperty, x p y ⇒ y p x",
    },
    RuleInfo {
        id: RuleId::PrpTrp,
        name: "PRP-TRP",
        table5_row: 19,
        class: Theta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::marked(wk::OWL_TRANSITIVE_PROPERTY),
        outputs: RuleOutputs::marked(wk::OWL_TRANSITIVE_PROPERTY),
        description: "p a owl:TransitiveProperty, x p y, y p z ⇒ x p z",
    },
    RuleInfo {
        id: RuleId::ScmDom1,
        name: "SCM-DOM1",
        table5_row: 20,
        class: Alpha,
        rdfs: D,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_DOMAIN, wk::RDFS_SUB_CLASS_OF]),
        outputs: RuleOutputs::writes(&[wk::RDFS_DOMAIN]),
        description: "p rdfs:domain c1, c1 rdfs:subClassOf c2 ⇒ p rdfs:domain c2",
    },
    RuleInfo {
        id: RuleId::ScmDom2,
        name: "SCM-DOM2",
        table5_row: 21,
        class: Alpha,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_DOMAIN, wk::RDFS_SUB_PROPERTY_OF]),
        outputs: RuleOutputs::writes(&[wk::RDFS_DOMAIN]),
        description: "p2 rdfs:domain c, p1 rdfs:subPropertyOf p2 ⇒ p1 rdfs:domain c",
    },
    RuleInfo {
        id: RuleId::ScmEqc1,
        name: "SCM-EQC1",
        table5_row: 22,
        class: Trivial,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::OWL_EQUIVALENT_CLASS]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_CLASS_OF]),
        description: "c1 owl:equivalentClass c2 ⇒ c1 rdfs:subClassOf c2, c2 rdfs:subClassOf c1",
    },
    RuleInfo {
        id: RuleId::ScmEqc2,
        name: "SCM-EQC2",
        table5_row: 23,
        class: Beta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_SUB_CLASS_OF]),
        outputs: RuleOutputs::writes(&[wk::OWL_EQUIVALENT_CLASS]),
        description: "c1 rdfs:subClassOf c2, c2 rdfs:subClassOf c1 ⇒ c1 owl:equivalentClass c2",
    },
    RuleInfo {
        id: RuleId::ScmEqp1,
        name: "SCM-EQP1",
        table5_row: 24,
        class: Trivial,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::OWL_EQUIVALENT_PROPERTY]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_PROPERTY_OF]),
        description:
            "p1 owl:equivalentProperty p2 ⇒ p1 rdfs:subPropertyOf p2, p2 rdfs:subPropertyOf p1",
    },
    RuleInfo {
        id: RuleId::ScmEqp2,
        name: "SCM-EQP2",
        table5_row: 25,
        class: Beta,
        rdfs: N,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_SUB_PROPERTY_OF]),
        outputs: RuleOutputs::writes(&[wk::OWL_EQUIVALENT_PROPERTY]),
        description:
            "p1 rdfs:subPropertyOf p2, p2 rdfs:subPropertyOf p1 ⇒ p1 owl:equivalentProperty p2",
    },
    RuleInfo {
        id: RuleId::ScmRng1,
        name: "SCM-RNG1",
        table5_row: 26,
        class: Alpha,
        rdfs: D,
        rho_df: N,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_RANGE, wk::RDFS_SUB_CLASS_OF]),
        outputs: RuleOutputs::writes(&[wk::RDFS_RANGE]),
        description: "p rdfs:range c1, c1 rdfs:subClassOf c2 ⇒ p rdfs:range c2",
    },
    RuleInfo {
        id: RuleId::ScmRng2,
        name: "SCM-RNG2",
        table5_row: 27,
        class: Alpha,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_RANGE, wk::RDFS_SUB_PROPERTY_OF]),
        outputs: RuleOutputs::writes(&[wk::RDFS_RANGE]),
        description: "p2 rdfs:range c, p1 rdfs:subPropertyOf p2 ⇒ p1 rdfs:range c",
    },
    RuleInfo {
        id: RuleId::ScmSco,
        name: "SCM-SCO",
        table5_row: 28,
        class: Theta,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_SUB_CLASS_OF]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_CLASS_OF]),
        description: "c1 rdfs:subClassOf c2, c2 rdfs:subClassOf c3 ⇒ c1 rdfs:subClassOf c3",
    },
    RuleInfo {
        id: RuleId::ScmSpo,
        name: "SCM-SPO",
        table5_row: 29,
        class: Theta,
        rdfs: D,
        rho_df: D,
        rdfs_plus: D,
        inputs: RuleInputs::on(&[wk::RDFS_SUB_PROPERTY_OF]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_PROPERTY_OF]),
        description:
            "p1 rdfs:subPropertyOf p2, p2 rdfs:subPropertyOf p3 ⇒ p1 rdfs:subPropertyOf p3",
    },
    RuleInfo {
        id: RuleId::ScmCls,
        name: "SCM-CLS",
        table5_row: 30,
        class: Trivial,
        rdfs: N,
        rho_df: N,
        rdfs_plus: F,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_CLASS_OF, wk::OWL_EQUIVALENT_CLASS]),
        description: "c a owl:Class ⇒ c ⊑ c, c ≡ c, c ⊑ owl:Thing, owl:Nothing ⊑ c",
    },
    RuleInfo {
        id: RuleId::ScmDp,
        name: "SCM-DP",
        table5_row: 31,
        class: Trivial,
        rdfs: N,
        rho_df: N,
        rdfs_plus: F,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_PROPERTY_OF, wk::OWL_EQUIVALENT_PROPERTY]),
        description:
            "p a owl:DatatypeProperty ⇒ p rdfs:subPropertyOf p, p owl:equivalentProperty p",
    },
    RuleInfo {
        id: RuleId::ScmOp,
        name: "SCM-OP",
        table5_row: 32,
        class: Trivial,
        rdfs: N,
        rho_df: N,
        rdfs_plus: F,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_PROPERTY_OF, wk::OWL_EQUIVALENT_PROPERTY]),
        description: "p a owl:ObjectProperty ⇒ p rdfs:subPropertyOf p, p owl:equivalentProperty p",
    },
    RuleInfo {
        id: RuleId::Rdfs4,
        name: "RDFS4",
        table5_row: 33,
        class: Trivial,
        rdfs: F,
        rho_df: F,
        rdfs_plus: F,
        inputs: ANY,
        outputs: RuleOutputs::writes(&[wk::RDF_TYPE]),
        description: "x p y ⇒ x rdf:type rdfs:Resource, y rdf:type rdfs:Resource",
    },
    RuleInfo {
        id: RuleId::Rdfs8,
        name: "RDFS8",
        table5_row: 34,
        class: Trivial,
        rdfs: F,
        rho_df: N,
        rdfs_plus: N,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_CLASS_OF]),
        description: "x a rdfs:Class ⇒ x rdfs:subClassOf rdfs:Resource",
    },
    RuleInfo {
        id: RuleId::Rdfs12,
        name: "RDFS12",
        table5_row: 35,
        class: Trivial,
        rdfs: F,
        rho_df: N,
        rdfs_plus: N,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_PROPERTY_OF]),
        description: "x a rdfs:ContainerMembershipProperty ⇒ x rdfs:subPropertyOf rdfs:member",
    },
    RuleInfo {
        id: RuleId::Rdfs13,
        name: "RDFS13",
        table5_row: 36,
        class: Trivial,
        rdfs: F,
        rho_df: N,
        rdfs_plus: N,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_CLASS_OF]),
        description: "x a rdfs:Datatype ⇒ x rdfs:subClassOf rdfs:Literal",
    },
    RuleInfo {
        id: RuleId::Rdfs6,
        name: "RDFS6",
        table5_row: 37,
        class: Trivial,
        rdfs: F,
        rho_df: N,
        rdfs_plus: N,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_PROPERTY_OF]),
        description: "x a rdf:Property ⇒ x rdfs:subPropertyOf x",
    },
    RuleInfo {
        id: RuleId::Rdfs10,
        name: "RDFS10",
        table5_row: 38,
        class: Trivial,
        rdfs: F,
        rho_df: N,
        rdfs_plus: N,
        inputs: RuleInputs::on(&[wk::RDF_TYPE]),
        outputs: RuleOutputs::writes(&[wk::RDFS_SUB_CLASS_OF]),
        description: "x a rdfs:Class ⇒ x rdfs:subClassOf x",
    },
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_is_indexed_by_rule_id() {
        for (i, rule) in RuleId::ALL.iter().enumerate() {
            assert_eq!(*rule as usize, i);
            assert_eq!(CATALOG[i].id, *rule);
            assert_eq!(CATALOG[i].table5_row as usize, i + 1);
            assert_eq!(rule.info().name, rule.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let names: HashSet<&str> = CATALOG.iter().map(|r| r.name).collect();
        assert_eq!(names.len(), 38);
    }

    #[test]
    fn fragment_sizes_match_table5() {
        // Filled circles per column of Table 5.
        let rdfs_default = CATALOG.iter().filter(|r| r.rdfs.in_default()).count();
        let rho_default = CATALOG.iter().filter(|r| r.rho_df.in_default()).count();
        let plus_default = CATALOG.iter().filter(|r| r.rdfs_plus.in_default()).count();
        assert_eq!(rdfs_default, 10, "RDFS default rules");
        assert_eq!(rho_default, 8, "ρDF default rules");
        assert_eq!(plus_default, 29, "RDFS-Plus default rules");
        // Full versions add the half-circle rules.
        let rdfs_full = CATALOG.iter().filter(|r| r.rdfs.in_full()).count();
        let rho_full = CATALOG.iter().filter(|r| r.rho_df.in_full()).count();
        let plus_full = CATALOG.iter().filter(|r| r.rdfs_plus.in_full()).count();
        assert_eq!(rdfs_full, 16);
        assert_eq!(rho_full, 9);
        assert_eq!(plus_full, 33);
    }

    #[test]
    fn class_assignment_matches_table5() {
        assert_eq!(RuleId::CaxSco.class(), RuleClass::Alpha);
        assert_eq!(RuleId::ScmDom1.class(), RuleClass::Alpha);
        assert_eq!(RuleId::ScmEqc2.class(), RuleClass::Beta);
        assert_eq!(RuleId::PrpDom.class(), RuleClass::Gamma);
        assert_eq!(RuleId::PrpSpo1.class(), RuleClass::Gamma);
        assert_eq!(RuleId::PrpInv1.class(), RuleClass::Delta);
        assert_eq!(RuleId::EqRepS.class(), RuleClass::SameAs);
        assert_eq!(RuleId::ScmSco.class(), RuleClass::Theta);
        assert_eq!(RuleId::PrpTrp.class(), RuleClass::Theta);
        assert_eq!(RuleId::EqSym.class(), RuleClass::Trivial);
        assert_eq!(RuleId::PrpFp.class(), RuleClass::Functional);
    }

    #[test]
    fn every_rdfs_rule_is_in_rdfs_plus_except_the_legacy_axiomatic_ones() {
        for info in CATALOG.iter() {
            if info.rdfs.in_default() {
                assert!(
                    info.rdfs_plus.in_default(),
                    "{} is a default RDFS rule but not an RDFS-Plus rule",
                    info.name
                );
            }
        }
    }

    #[test]
    fn rho_df_is_a_subset_of_rdfs() {
        for info in CATALOG.iter() {
            if info.rho_df.in_default() {
                assert!(info.rdfs.in_default(), "{} in ρDF but not RDFS", info.name);
            }
        }
    }

    #[test]
    fn input_signatures_match_the_executor_reads() {
        // α joins read exactly their two antecedent tables.
        assert_eq!(
            RuleId::CaxSco.inputs().properties(),
            &[wk::RDFS_SUB_CLASS_OF, wk::RDF_TYPE]
        );
        assert!(!RuleId::CaxSco.inputs().is_dynamic());
        // Single-antecedent rules read their one table.
        assert_eq!(RuleId::EqSym.inputs().properties(), &[wk::OWL_SAME_AS]);
        assert_eq!(
            RuleId::ScmSco.inputs().properties(),
            &[wk::RDFS_SUB_CLASS_OF]
        );
        // γ/δ rules are driven by their schema table.
        assert_eq!(
            RuleId::PrpDom.inputs(),
            RuleInputs::via(wk::RDFS_DOMAIN, SchemaSide::Subject)
        );
        assert_eq!(
            RuleId::PrpInv2.inputs(),
            RuleInputs::via(wk::OWL_INVERSE_OF, SchemaSide::Object)
        );
        assert_eq!(RuleId::PrpDom.inputs().anchor(), Some(wk::RDFS_DOMAIN));
        // Functional/symmetric/transitive rules are driven by declarations.
        assert_eq!(
            RuleId::PrpFp.inputs(),
            RuleInputs::marked(wk::OWL_FUNCTIONAL_PROPERTY)
        );
        assert_eq!(RuleId::PrpTrp.inputs().anchor(), Some(wk::RDF_TYPE));
        // The sameAs replacement loop scans everything while sameAs pairs
        // exist; RDFS4 scans everything unconditionally.
        assert_eq!(
            RuleId::EqRepS.inputs(),
            RuleInputs::any_with(wk::OWL_SAME_AS)
        );
        assert_eq!(RuleId::Rdfs4.inputs(), RuleInputs::AnyProperty);
        assert_eq!(RuleId::Rdfs4.inputs().anchor(), None);
        for rule in [RuleId::PrpDom, RuleId::EqRepS, RuleId::PrpFp, RuleId::Rdfs4] {
            assert!(rule.inputs().is_dynamic(), "{rule} has a dynamic signature");
            assert!(rule.inputs().properties().is_empty());
        }
    }

    #[test]
    fn fixed_input_signatures_are_never_empty() {
        for info in CATALOG.iter() {
            if !info.inputs.is_dynamic() {
                assert!(
                    !info.inputs.properties().is_empty(),
                    "{} declares no inputs at all",
                    info.name
                );
            }
        }
    }

    #[test]
    fn display_of_classes_and_rules() {
        assert_eq!(RuleId::CaxSco.to_string(), "CAX-SCO");
        assert_eq!(RuleClass::Alpha.to_string(), "α");
        assert_eq!(RuleClass::SameAs.to_string(), "same-as");
    }

    #[test]
    fn output_signatures_match_the_executor_writes() {
        // The type-producing joins write exactly the rdf:type table.
        assert_eq!(RuleId::CaxSco.outputs().properties(), &[wk::RDF_TYPE]);
        assert_eq!(RuleId::PrpDom.outputs().properties(), &[wk::RDF_TYPE]);
        assert_eq!(RuleId::Rdfs4.outputs().properties(), &[wk::RDF_TYPE]);
        // Functional rules emit sameAs links.
        assert_eq!(RuleId::PrpFp.outputs().properties(), &[wk::OWL_SAME_AS]);
        assert_eq!(RuleId::EqTrans.outputs().properties(), &[wk::OWL_SAME_AS]);
        // γ/δ rules write the table named by their schema pairs — on the
        // side *opposite* to the one their input signature reads (PRP-SPO1
        // reads the subjects' tables and writes the objects').
        assert_eq!(
            RuleId::PrpSpo1.outputs(),
            RuleOutputs::via(wk::RDFS_SUB_PROPERTY_OF, SchemaSide::Object)
        );
        assert_eq!(
            RuleId::PrpInv2.outputs(),
            RuleOutputs::via(wk::OWL_INVERSE_OF, SchemaSide::Subject)
        );
        // Marked rules write back into the declared properties' own tables.
        assert_eq!(
            RuleId::PrpTrp.outputs(),
            RuleOutputs::marked(wk::OWL_TRANSITIVE_PROPERTY)
        );
        // The subject/object replacement rules can write any table.
        assert_eq!(RuleId::EqRepS.outputs(), RuleOutputs::AnyProperty);
        assert!(RuleId::EqRepS.outputs().is_dynamic());
        assert!(RuleId::EqRepS.outputs().properties().is_empty());
        // ... but the predicate replacement writes the aliases named by the
        // sameAs pairs' objects.
        assert_eq!(
            RuleId::EqRepP.outputs(),
            RuleOutputs::via(wk::OWL_SAME_AS, SchemaSide::Object)
        );
        // Multi-head trivial rules declare every table they touch.
        assert_eq!(
            RuleId::ScmCls.outputs().properties(),
            &[wk::RDFS_SUB_CLASS_OF, wk::OWL_EQUIVALENT_CLASS]
        );
    }

    #[test]
    fn fixed_output_signatures_are_never_empty() {
        for info in CATALOG.iter() {
            if !info.outputs.is_dynamic() {
                assert!(
                    !info.outputs.properties().is_empty(),
                    "{} declares no outputs at all",
                    info.name
                );
            }
        }
    }
}
