//! Lowering checked shapes against a [`Dictionary`] into target selectors
//! and constraint evaluators over identifier space.
//!
//! The lowering is **read-only**: unlike the rule compiler, it never interns
//! or promotes a term. A shape that names an IRI the dictionary has never
//! seen is still meaningful — the term cannot occur in any triple of the
//! store, so the corresponding selector matches nothing (`class`/
//! `subjects-of` targets), the property path has zero values everywhere
//! (`count`), and a value test against it can never succeed (`class`/`in`
//! checks). Keeping the compile side-effect-free is what lets the serving
//! path validate a candidate store *before* deciding whether to publish it,
//! without entangling validation with the dictionary promotion machinery.
//!
//! Because identifiers are resolved at compile time, a compiled shape set is
//! only valid against the dictionary it was compiled with (or an append-only
//! extension that did not promote any resolved identifier); the serving
//! layer recompiles per write, exactly as it does for rule programs.

use super::check::name_map;
use super::parse::{SymClause, SymShape, SymTarget, SymValue};
use crate::analysis::Span;
use inferray_dictionary::Dictionary;
use inferray_model::{vocab, Term};

/// A compiled target selector. `None` identifiers mean the named term is not
/// in the dictionary: the selector matches no node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Target {
    /// Nodes with `rdf:type C`.
    Class(Option<u64>),
    /// Nodes with at least one pair in the property's table.
    SubjectsOf(Option<u64>),
    /// Every node occurring in subject position.
    All,
}

/// A compiled constraint check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Check {
    /// Between `min` and `max` (inclusive; `None` = unbounded) values.
    Count {
        /// Minimum number of values.
        min: u64,
        /// Maximum number of values, if bounded.
        max: Option<u64>,
        /// Position of the (first) `count` clause.
        span: Span,
    },
    /// Every value is a literal with this datatype IRI.
    Datatype {
        /// The required datatype IRI (textual: literal datatypes live inside
        /// the term, not in identifier space).
        iri: String,
        /// Position of the `datatype` clause.
        span: Span,
    },
    /// Every value has `rdf:type class` in the store.
    Class {
        /// The class identifier, when the dictionary knows the IRI.
        class: Option<u64>,
        /// Position of the `class` clause.
        span: Span,
    },
    /// Every value is one of the enumerated identifiers.
    In {
        /// Sorted identifiers of the enumerated terms that the dictionary
        /// knows. Terms it has never seen cannot occur in the store and are
        /// dropped — they could never match.
        values: Vec<u64>,
        /// Position of the `in` clause.
        span: Span,
    },
    /// Every value conforms to the referenced shape.
    Node {
        /// Index of the referenced shape in [`CompiledShapes::shapes`].
        shape: usize,
        /// Position of the `node` clause.
        span: Span,
    },
}

impl Check {
    /// The source position of the clause this check was compiled from.
    pub fn span(&self) -> Span {
        match self {
            Check::Count { span, .. }
            | Check::Datatype { span, .. }
            | Check::Class { span, .. }
            | Check::In { span, .. }
            | Check::Node { span, .. } => *span,
        }
    }
}

/// A compiled constraint: a property path and its checks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledConstraint {
    /// The path's property identifier; `None` when the dictionary has never
    /// seen the IRI as a property (its table is empty everywhere).
    pub path: Option<u64>,
    /// The path IRI, for reporting.
    pub path_iri: String,
    /// Position of the path term.
    pub span: Span,
    /// The checks, in written order (`count` clauses folded into one).
    pub checks: Vec<Check>,
}

/// A compiled shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledShape {
    /// The declared name.
    pub name: String,
    /// Position of the `shape` keyword.
    pub span: Span,
    /// The target selector.
    pub target: Target,
    /// The constraints.
    pub constraints: Vec<CompiledConstraint>,
}

/// A compiled shape program, ready to validate stores encoded by the
/// dictionary it was compiled against.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledShapes {
    /// The shapes, in file order (indices are what `node` checks reference).
    pub shapes: Vec<CompiledShape>,
    /// The `rdf:type` property identifier, used by `class` targets and
    /// checks. `None` on a store with no typed node at all.
    pub rdf_type: Option<u64>,
}

impl CompiledShapes {
    /// The property identifiers whose pairs carry value-dependent checks
    /// (`class` / `node`): a change to a *value's* neighborhood can flip the
    /// verdict of any subject pointing at it through one of these. The
    /// incremental validator uses this set to close the dirty-node frontier.
    pub fn dependent_paths(&self) -> Vec<u64> {
        let mut paths: Vec<u64> = self
            .shapes
            .iter()
            .flat_map(|s| s.constraints.iter())
            .filter(|c| {
                c.checks
                    .iter()
                    .any(|k| matches!(k, Check::Class { .. } | Check::Node { .. }))
            })
            .filter_map(|c| c.path)
            .collect();
        paths.sort_unstable();
        paths.dedup();
        paths
    }
}

fn resolve_iri(dict: &Dictionary, iri: &str) -> Option<u64> {
    dict.id_of_iri(iri)
}

/// Lowers checked shapes against `dict`. Must only be called on shapes that
/// passed [`super::check::check`] without errors: duplicate names, unknown
/// references and reference cycles are assumed absent (an unresolved `node`
/// reference falls back to the shape itself being skipped, never a panic).
pub fn lower(shapes: &[SymShape], dict: &Dictionary) -> CompiledShapes {
    let names = name_map(shapes);
    let compiled = shapes
        .iter()
        .map(|shape| {
            let target = match &shape.target {
                SymTarget::Class(iri) => Target::Class(resolve_iri(dict, iri)),
                SymTarget::SubjectsOf(iri) => Target::SubjectsOf(resolve_iri(dict, iri)),
                SymTarget::All => Target::All,
            };
            let constraints = shape
                .constraints
                .iter()
                .map(|constraint| {
                    let mut checks = Vec::new();
                    // Fold every `count` clause into one effective bound
                    // (the check pass already rejected contradictions).
                    let mut count: Option<(u64, Option<u64>, Span)> = None;
                    for clause in &constraint.clauses {
                        match clause {
                            SymClause::Count { min, max, span } => {
                                count = Some(match count {
                                    None => (*min, *max, *span),
                                    Some((m, x, s)) => (
                                        m.max(*min),
                                        match (x, *max) {
                                            (Some(a), Some(b)) => Some(a.min(b)),
                                            (a, b) => a.or(b),
                                        },
                                        s,
                                    ),
                                });
                            }
                            SymClause::Datatype { iri, span } => checks.push(Check::Datatype {
                                iri: iri.clone(),
                                span: *span,
                            }),
                            SymClause::Class { iri, span } => checks.push(Check::Class {
                                class: resolve_iri(dict, iri),
                                span: *span,
                            }),
                            SymClause::In { values, span } => {
                                let mut ids: Vec<u64> = values
                                    .iter()
                                    .filter_map(|v| match v {
                                        SymValue::Iri(iri) => dict.id_of_iri(iri),
                                        SymValue::Literal(s) => {
                                            dict.id_of(&Term::plain_literal(s.clone()))
                                        }
                                    })
                                    .collect();
                                ids.sort_unstable();
                                ids.dedup();
                                checks.push(Check::In {
                                    values: ids,
                                    span: *span,
                                });
                            }
                            SymClause::Node { name, span } => {
                                if let Some(&shape) = names.get(name.as_str()) {
                                    checks.push(Check::Node { shape, span: *span });
                                }
                            }
                        }
                    }
                    if let Some((min, max, span)) = count {
                        checks.insert(0, Check::Count { min, max, span });
                    }
                    CompiledConstraint {
                        path: resolve_iri(dict, &constraint.path),
                        path_iri: constraint.path.clone(),
                        span: constraint.span,
                        checks,
                    }
                })
                .collect();
            CompiledShape {
                name: shape.name.clone(),
                span: shape.span,
                target,
                constraints,
            }
        })
        .collect();
    CompiledShapes {
        shapes: compiled,
        rdf_type: dict.id_of_iri(vocab::RDF_TYPE),
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse::parse;
    use super::*;
    use inferray_model::Triple;

    fn dict_with(triples: &[(&str, &str, &str)]) -> Dictionary {
        let mut dict = Dictionary::new();
        for (s, p, o) in triples {
            dict.encode_triple(&Triple::iris(*s, *p, *o)).unwrap();
        }
        dict
    }

    fn compile(text: &str, dict: &Dictionary) -> CompiledShapes {
        let (shapes, diags) = parse(text);
        assert!(diags.is_empty(), "{diags:?}");
        lower(&shapes, dict)
    }

    #[test]
    fn resolves_known_terms_and_defaults_unknown_to_none() {
        let dict = dict_with(&[("urn:x", "urn:p", "urn:v")]);
        let compiled = compile(
            "shape S targets subjects-of <urn:p> {\n\
               <urn:p> count [1..2] in ( <urn:v> <urn:ghost> ) ;\n\
               <urn:q> count [0..0] ;\n\
             } .",
            &dict,
        );
        let shape = &compiled.shapes[0];
        let p = dict.id_of_iri("urn:p").unwrap();
        assert_eq!(shape.target, Target::SubjectsOf(Some(p)));
        assert_eq!(shape.constraints[0].path, Some(p));
        // `urn:ghost` is unknown: it can never occur in the store, so the
        // enumeration keeps only `urn:v`.
        assert_eq!(
            shape.constraints[0].checks[1],
            Check::In {
                values: vec![dict.id_of_iri("urn:v").unwrap()],
                span: Span { line: 2, col: 22 }
            }
        );
        assert_eq!(shape.constraints[1].path, None);
    }

    #[test]
    fn count_clauses_fold_and_node_references_resolve() {
        let dict = Dictionary::new();
        let compiled = compile(
            "shape A targets all { <urn:p> count [1..*] count [0..3] node B ; } .\n\
             shape B targets all { <urn:q> count [1..*] ; } .",
            &dict,
        );
        let checks = &compiled.shapes[0].constraints[0].checks;
        assert!(matches!(
            checks[0],
            Check::Count {
                min: 1,
                max: Some(3),
                ..
            }
        ));
        assert!(matches!(checks[1], Check::Node { shape: 1, .. }));
        assert!(
            compiled.rdf_type.is_some(),
            "rdf:type is pre-interned by the dictionary"
        );
    }

    #[test]
    fn dependent_paths_cover_class_and_node_checks() {
        let dict = dict_with(&[("urn:x", "urn:p", "urn:v"), ("urn:x", "urn:q", "urn:v")]);
        let compiled = compile(
            "shape A targets all { <urn:p> class <urn:C> ; <urn:q> count [0..1] ; } .\n\
             shape B targets all { <urn:q> node A ; } .",
            &dict,
        );
        let p = dict.id_of_iri("urn:p").unwrap();
        let q = dict.id_of_iri("urn:q").unwrap();
        let mut expect = vec![p, q];
        expect.sort_unstable();
        assert_eq!(compiled.dependent_paths(), expect);
    }
}
