//! Shape-constraint static analysis and validation: a SHACL-lite language
//! compiled onto the snapshot/delta machinery.
//!
//! The pipeline mirrors the rule analyzer ([`crate::analysis`]) stage for
//! stage:
//!
//! 1. **[`analyze`]** — purely symbolic: the parser ([`parse`] module) turns
//!    a textual shape file into [`SymShape`]s, then the check passes vet
//!    cardinality bounds, duplicate/dead/shadowed shapes, the `node`
//!    reference graph and whole-store targets. Every finding is a positioned
//!    [`Diagnostic`] with a stable `SH…` code (table in `docs/shapes.md`),
//!    sharing the rule analyzer's diagnostic type so tooling renders both
//!    the same way.
//! 2. **[`ShapeAnalysis::compile`]** — lowers the shapes against a
//!    [`Dictionary`] (read-only — see [`compile`]) into target selectors and
//!    constraint evaluators over identifier space.
//! 3. **[`validate`]** / **[`validate_delta`]** — evaluate a compiled
//!    program over the sorted pair tables: full snapshots fan out over
//!    `inferray-parallel`; the incremental path re-validates only nodes
//!    incident to changed pairs (plus the value-dependent closure) and is
//!    proven equal to full re-validation.
//!
//! `inferray-cli shapes check|validate` exposes the diagnostics and the
//! validator on the command line; `serve --shapes` gates `POST /update`
//! behind a green validation.

mod check;
mod compile;
mod parse;
mod validate;

pub use crate::analysis::{Diagnostic, Severity, Span};
pub use compile::{Check, CompiledConstraint, CompiledShape, CompiledShapes, Target};
pub use parse::{SymClause, SymConstraint, SymShape, SymTarget, SymValue};
pub use validate::{
    conforms, dirty_nodes, validate, validate_delta, ValidationReport, Violation, ViolationKind,
};

use inferray_dictionary::Dictionary;

/// The result of the symbolic stage: parsed shapes plus every parse/check
/// diagnostic, sorted by position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeAnalysis {
    /// The shapes that parsed, in file order.
    pub shapes: Vec<SymShape>,
    /// Parse and check findings, sorted by position then code.
    pub diagnostics: Vec<Diagnostic>,
}

/// Parses and checks a shape file. Never fails: findings (including syntax
/// errors) are reported through [`ShapeAnalysis::diagnostics`].
pub fn analyze(text: &str) -> ShapeAnalysis {
    let (shapes, mut diagnostics) = parse::parse(text);
    diagnostics.extend(check::check(&shapes));
    diagnostics.sort_by(|a, b| (a.line, a.col, a.code).cmp(&(b.line, b.col, b.code)));
    ShapeAnalysis {
        shapes,
        diagnostics,
    }
}

impl ShapeAnalysis {
    /// `true` when any finding is an error — the file must not be loaded.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Lowers the analyzed shapes against `dict`. Unlike the rule compiler
    /// this never mutates the dictionary — shapes naming unknown terms
    /// compile to selectors/checks that match nothing (see [`compile`]).
    /// `Err` carries every error-severity diagnostic of the symbolic stage.
    pub fn compile(&self, dict: &Dictionary) -> Result<CompiledShapes, Vec<Diagnostic>> {
        if self.has_errors() {
            return Err(self
                .diagnostics
                .iter()
                .filter(|d| d.is_error())
                .cloned()
                .collect());
        }
        Ok(compile::lower(&self.shapes, dict))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_sorts_diagnostics_by_position() {
        let analysis = analyze(
            "shape B targets all { <urn:p> count [3..1] ; } .\n\
             shape B targets all { <urn:p> in ( ) ; } .",
        );
        assert!(analysis.has_errors());
        let lines: Vec<u32> = analysis.diagnostics.iter().map(|d| d.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }

    #[test]
    fn compile_refuses_files_with_errors() {
        let dict = Dictionary::new();
        let analysis = analyze("shape S targets all { <urn:p> count [3..1] ; } .");
        let err = analysis.compile(&dict).expect_err("contradictory bounds");
        assert!(err.iter().all(Diagnostic::is_error));
        assert!(err.iter().any(|d| d.code == "SH003"));
    }

    #[test]
    fn warnings_do_not_block_compilation() {
        let dict = Dictionary::new();
        let analysis = analyze("shape S targets all { } .");
        assert!(!analysis.has_errors());
        assert!(analysis
            .diagnostics
            .iter()
            .any(|d| d.code == "SH005" || d.code == "SH008"));
        let compiled = analysis.compile(&dict).expect("warnings are loadable");
        assert_eq!(compiled.shapes.len(), 1);
    }
}
