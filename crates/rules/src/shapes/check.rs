//! Static checks over parsed shapes: everything that can be decided without
//! a dictionary or a store.
//!
//! | code  | severity | finding |
//! |-------|----------|---------|
//! | SH003 | error    | contradictory cardinality bounds (min > max) |
//! | SH004 | error    | duplicate shape name |
//! | SH005 | warning  | dead shape: empty constraint block |
//! | SH006 | warning  | shadowed shape: identical target and constraints |
//! | SH007 | error    | shape-reference cycle through `node` clauses |
//! | SH008 | info     | whole-store target (`targets all`) fallback |
//! | SH009 | error    | reference to an undefined shape |
//! | SH010 | error    | empty `in` enumeration (unsatisfiable) |
//!
//! (`SH001`/`SH002` — syntax and unknown prefixes — are emitted by the
//! parser.) The code table with examples lives in `docs/shapes.md`.

use super::parse::{SymClause, SymShape, SymTarget, SymValue};
use crate::analysis::{Diagnostic, Severity};
use std::collections::HashMap;

/// Runs every static check over the parsed shapes.
pub fn check(shapes: &[SymShape]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_names(shapes, &mut diags);
    check_clauses(shapes, &mut diags);
    check_dead(shapes, &mut diags);
    check_shadowed(shapes, &mut diags);
    check_references(shapes, &mut diags);
    check_targets(shapes, &mut diags);
    diags
}

/// The first definition of each shape name (later duplicates are `SH004`
/// errors and never compiled, so "first wins" is the resolution rule).
pub fn name_map(shapes: &[SymShape]) -> HashMap<&str, usize> {
    let mut map = HashMap::new();
    for (i, shape) in shapes.iter().enumerate() {
        map.entry(shape.name.as_str()).or_insert(i);
    }
    map
}

fn check_names(shapes: &[SymShape], diags: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<&str, &SymShape> = HashMap::new();
    for shape in shapes {
        match seen.get(shape.name.as_str()) {
            Some(first) => diags.push(Diagnostic::new(
                "SH004",
                Severity::Error,
                shape.span.line,
                shape.span.col,
                format!(
                    "duplicate shape name `{}` (first defined at {}:{})",
                    shape.name, first.span.line, first.span.col
                ),
            )),
            None => {
                seen.insert(&shape.name, shape);
            }
        }
    }
}

/// Per-clause findings: contradictory folded cardinality bounds (`SH003`)
/// and unsatisfiable empty enumerations (`SH010`).
fn check_clauses(shapes: &[SymShape], diags: &mut Vec<Diagnostic>) {
    for shape in shapes {
        for constraint in &shape.constraints {
            // Fold every `count` clause of the constraint: the effective
            // bounds are the intersection, so a contradiction can come from
            // one clause (`[3..1]`) or from the combination of several
            // (`count [2..*] count [0..1]`).
            let mut min = 0u64;
            let mut max: Option<u64> = None;
            let mut reported = false;
            for clause in &constraint.clauses {
                match clause {
                    SymClause::Count { min: m, max: x, .. } => {
                        min = min.max(*m);
                        max = match (max, *x) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        if let Some(bound) = max {
                            if min > bound && !reported {
                                reported = true;
                                let span = clause.span();
                                diags.push(Diagnostic::new(
                                    "SH003",
                                    Severity::Error,
                                    span.line,
                                    span.col,
                                    format!(
                                        "contradictory cardinality bounds on `<{}>`: \
                                         minimum {min} exceeds maximum {bound}",
                                        constraint.path
                                    ),
                                ));
                            }
                        }
                    }
                    SymClause::In { values, span } if values.is_empty() => {
                        diags.push(Diagnostic::new(
                            "SH010",
                            Severity::Error,
                            span.line,
                            span.col,
                            format!(
                                "empty `in` enumeration on `<{}>`: no value can satisfy it",
                                constraint.path
                            ),
                        ));
                    }
                    _ => {}
                }
            }
        }
    }
}

fn check_dead(shapes: &[SymShape], diags: &mut Vec<Diagnostic>) {
    for shape in shapes {
        if shape.constraints.is_empty() {
            diags.push(Diagnostic::new(
                "SH005",
                Severity::Warning,
                shape.span.line,
                shape.span.col,
                format!(
                    "dead shape: `{}` has no constraints and can never report a violation",
                    shape.name
                ),
            ));
        }
    }
}

/// A canonical, order-insensitive rendering of a shape's target and
/// constraints (IRIs are already prefix-expanded by the parser), so two
/// shapes that differ only in name, whitespace or constraint order compare
/// equal.
fn canonicalize(shape: &SymShape) -> String {
    let target = match &shape.target {
        SymTarget::Class(iri) => format!("class <{iri}>"),
        SymTarget::SubjectsOf(iri) => format!("subjects-of <{iri}>"),
        SymTarget::All => "all".to_string(),
    };
    let mut constraints: Vec<String> = shape
        .constraints
        .iter()
        .map(|c| {
            let mut clauses: Vec<String> = c
                .clauses
                .iter()
                .map(|clause| match clause {
                    SymClause::Count { min, max, .. } => match max {
                        Some(max) => format!("count {min}..{max}"),
                        None => format!("count {min}..*"),
                    },
                    SymClause::Datatype { iri, .. } => format!("datatype <{iri}>"),
                    SymClause::Class { iri, .. } => format!("class <{iri}>"),
                    SymClause::In { values, .. } => {
                        let mut values: Vec<String> = values
                            .iter()
                            .map(|v| match v {
                                SymValue::Iri(iri) => format!("<{iri}>"),
                                SymValue::Literal(s) => format!("{s:?}"),
                            })
                            .collect();
                        values.sort_unstable();
                        format!("in {}", values.join(" "))
                    }
                    SymClause::Node { name, .. } => format!("node {name}"),
                })
                .collect();
            clauses.sort_unstable();
            format!("<{}> {}", c.path, clauses.join(" "))
        })
        .collect();
    constraints.sort_unstable();
    format!("{target} {{ {} }}", constraints.join(" ; "))
}

fn check_shadowed(shapes: &[SymShape], diags: &mut Vec<Diagnostic>) {
    let mut seen: HashMap<String, &SymShape> = HashMap::new();
    for shape in shapes {
        let canonical = canonicalize(shape);
        match seen.get(&canonical) {
            // A duplicate *name* is already an SH004 error; the shadow
            // warning is for distinct names validating the same thing.
            Some(first) if first.name != shape.name => diags.push(Diagnostic::new(
                "SH006",
                Severity::Warning,
                shape.span.line,
                shape.span.col,
                format!(
                    "shape `{}` is shadowed by `{}` ({}:{}): identical target and constraints",
                    shape.name, first.name, first.span.line, first.span.col
                ),
            )),
            Some(_) => {}
            None => {
                seen.insert(canonical, shape);
            }
        }
    }
}

fn check_references(shapes: &[SymShape], diags: &mut Vec<Diagnostic>) {
    let names = name_map(shapes);
    // SH009: every `node NAME` must resolve.
    for shape in shapes {
        for constraint in &shape.constraints {
            for clause in &constraint.clauses {
                if let SymClause::Node { name, span } = clause {
                    if !names.contains_key(name.as_str()) {
                        diags.push(Diagnostic::new(
                            "SH009",
                            Severity::Error,
                            span.line,
                            span.col,
                            format!("reference to undefined shape `{name}`"),
                        ));
                    }
                }
            }
        }
    }
    // SH007: the `node` reference graph must be acyclic, or conformance
    // checking would not terminate. Three-color DFS from every shape; a back
    // edge is reported at the clause that closes the cycle.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    fn visit(
        shapes: &[SymShape],
        names: &HashMap<&str, usize>,
        colors: &mut [Color],
        stack: &mut Vec<usize>,
        at: usize,
        diags: &mut Vec<Diagnostic>,
    ) {
        colors[at] = Color::Gray;
        stack.push(at);
        for constraint in &shapes[at].constraints {
            for clause in &constraint.clauses {
                let SymClause::Node { name, span } = clause else {
                    continue;
                };
                let Some(&next) = names.get(name.as_str()) else {
                    continue;
                };
                match colors[next] {
                    Color::White => visit(shapes, names, colors, stack, next, diags),
                    Color::Gray => {
                        let from = stack.iter().position(|&i| i == next).unwrap_or(0);
                        let mut path: Vec<&str> = stack[from..]
                            .iter()
                            .map(|&i| shapes[i].name.as_str())
                            .collect();
                        path.push(name);
                        diags.push(Diagnostic::new(
                            "SH007",
                            Severity::Error,
                            span.line,
                            span.col,
                            format!("shape-reference cycle: {}", path.join(" -> ")),
                        ));
                    }
                    Color::Black => {}
                }
            }
        }
        stack.pop();
        colors[at] = Color::Black;
    }
    let mut colors = vec![Color::White; shapes.len()];
    let mut stack = Vec::new();
    for i in 0..shapes.len() {
        if colors[i] == Color::White {
            visit(shapes, &names, &mut colors, &mut stack, i, diags);
        }
    }
}

fn check_targets(shapes: &[SymShape], diags: &mut Vec<Diagnostic>) {
    for shape in shapes {
        if shape.target == SymTarget::All {
            diags.push(Diagnostic::new(
                "SH008",
                Severity::Info,
                shape.target_span.line,
                shape.target_span.col,
                format!(
                    "whole-store target: every subject in the store becomes a focus node \
                     of `{}`",
                    shape.name
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::parse::parse;
    use super::*;

    fn diags_for(text: &str) -> Vec<Diagnostic> {
        let (shapes, parse_diags) = parse(text);
        assert!(
            parse_diags.is_empty(),
            "unexpected parse diagnostics: {parse_diags:?}"
        );
        check(&shapes)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn contradictory_bounds_single_and_folded() {
        let d = diags_for("shape S targets class <urn:C> { <urn:p> count [3..1] ; } .");
        assert_eq!(codes(&d), vec!["SH003"]);
        let d =
            diags_for("shape S targets class <urn:C> { <urn:p> count [2..*] count [0..1] ; } .");
        assert_eq!(codes(&d), vec!["SH003"]);
        assert!(d[0].message.contains("minimum 2 exceeds maximum 1"));
        // Satisfiable folds stay silent.
        let d =
            diags_for("shape S targets class <urn:C> { <urn:p> count [1..*] count [0..3] ; } .");
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn duplicate_names_are_errors() {
        let d = diags_for(
            "shape S targets class <urn:C> { <urn:p> count [0..1] ; } .\n\
             shape S targets class <urn:D> { <urn:q> count [0..1] ; } .",
        );
        assert_eq!(codes(&d), vec!["SH004"]);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn dead_and_shadowed_shapes_warn() {
        let d = diags_for("shape Empty targets class <urn:C> { } .");
        assert_eq!(codes(&d), vec!["SH005"]);
        assert!(!d[0].is_error());
        let d = diags_for(
            "shape A targets class <urn:C> { <urn:p> count [0..1] datatype <urn:d> ; } .\n\
             shape B targets class <urn:C> { <urn:p> datatype <urn:d> count [0..1] ; } .",
        );
        assert_eq!(codes(&d), vec!["SH006"]);
        assert!(d[0].message.contains("shadowed by `A`"));
    }

    #[test]
    fn reference_cycles_and_unknown_references() {
        let d = diags_for(
            "shape A targets class <urn:C> { <urn:p> node B ; } .\n\
             shape B targets class <urn:D> { <urn:q> node A ; } .",
        );
        assert_eq!(codes(&d), vec!["SH007"]);
        assert!(d[0].message.contains("A -> B -> A"));
        let d = diags_for("shape A targets class <urn:C> { <urn:p> node Ghost ; } .");
        assert_eq!(codes(&d), vec!["SH009"]);
        // Self-reference is the smallest cycle.
        let d = diags_for("shape A targets class <urn:C> { <urn:p> node A ; } .");
        assert_eq!(codes(&d), vec!["SH007"]);
        // A DAG of references is fine.
        let d = diags_for(
            "shape A targets class <urn:C> { <urn:p> node B ; } .\n\
             shape B targets class <urn:D> { <urn:q> count [1..*] ; } .",
        );
        assert!(d.is_empty(), "{d:?}");
    }

    #[test]
    fn whole_store_target_notes_and_empty_in() {
        let d = diags_for("shape S targets all { <urn:p> count [0..1] ; } .");
        assert_eq!(codes(&d), vec!["SH008"]);
        assert_eq!(d[0].severity, Severity::Info);
        let d = diags_for("shape S targets class <urn:C> { <urn:p> in ( ) ; } .");
        assert_eq!(codes(&d), vec!["SH010"]);
    }
}
