//! The shape-file front end: a self-contained byte lexer and a recursive
//! parser for the textual SHACL-lite syntax.
//!
//! ```text
//! @prefix ex: <http://example.org/> .
//!
//! shape Person targets class ex:Person {
//!   ex:name  count [1..1] ;
//!   ex:age   count [0..1] datatype <http://www.w3.org/2001/XMLSchema#integer> ;
//!   ex:knows class ex:Person node Person ;
//! } .
//! ```
//!
//! The grammar reuses the rule-file conventions (`@prefix` directives,
//! `<absolute-iri>` / `prefix:local` terms, `#` comments, `.`-terminated
//! statements) and adds the shape block: a target selector (`class C`,
//! `subjects-of p`, or the whole-store fallback `all`) followed by
//! `;`-terminated constraints, each a property path and one or more clauses
//! (`count [min..max]`, `datatype`, `class`, `in ( … )`, `node NAME`).
//! Parse errors are reported as positioned `SH001` diagnostics (unknown
//! prefixes as `SH002`) and recovery skips to the next `.` so one bad shape
//! does not hide the findings in the rest of the file.

use crate::analysis::{Diagnostic, Severity, Span};
use inferray_model::vocab;
use std::collections::HashMap;

/// A symbolic (pre-dictionary) value of an `in ( … )` enumeration.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum SymValue {
    /// A resolved absolute IRI.
    Iri(String),
    /// A plain (untyped, untagged) string literal.
    Literal(String),
}

/// The target selector of a shape: which nodes become focus nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymTarget {
    /// `targets class C` — every node with `rdf:type C`.
    Class(String),
    /// `targets subjects-of p` — every node with at least one `p` pair.
    SubjectsOf(String),
    /// `targets all` — every node that occurs in subject position.
    All,
}

/// One clause of a constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymClause {
    /// `count [min..max]` (`*` for an open maximum).
    Count {
        /// Minimum number of values (inclusive).
        min: u64,
        /// Maximum number of values (inclusive); `None` means unbounded.
        max: Option<u64>,
        /// Position of the `count` keyword.
        span: Span,
    },
    /// `datatype <iri>` — every value must be a literal of this datatype.
    Datatype {
        /// The required datatype IRI.
        iri: String,
        /// Position of the `datatype` keyword.
        span: Span,
    },
    /// `class C` — every value must have `rdf:type C`.
    Class {
        /// The required class IRI.
        iri: String,
        /// Position of the `class` keyword.
        span: Span,
    },
    /// `in ( v… )` — every value must be one of the enumerated terms.
    In {
        /// The allowed values.
        values: Vec<SymValue>,
        /// Position of the `in` keyword.
        span: Span,
    },
    /// `node NAME` — every value must conform to the named shape.
    Node {
        /// The referenced shape name.
        name: String,
        /// Position of the `node` keyword.
        span: Span,
    },
}

impl SymClause {
    /// The position of the clause keyword.
    pub fn span(&self) -> Span {
        match self {
            SymClause::Count { span, .. }
            | SymClause::Datatype { span, .. }
            | SymClause::Class { span, .. }
            | SymClause::In { span, .. }
            | SymClause::Node { span, .. } => *span,
        }
    }
}

/// One constraint of a shape: a property path and its clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymConstraint {
    /// The property path (an absolute IRI).
    pub path: String,
    /// Position of the path term.
    pub span: Span,
    /// The clauses, in written order (at least one).
    pub clauses: Vec<SymClause>,
}

/// A parsed shape: `shape NAME targets T { constraints } .`
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymShape {
    /// The declared shape name.
    pub name: String,
    /// Position of the `shape` keyword.
    pub span: Span,
    /// The target selector.
    pub target: SymTarget,
    /// Position of the target selector keyword.
    pub target_span: Span,
    /// The constraints, in written order.
    pub constraints: Vec<SymConstraint>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Int(u64),
    Iri(String),
    Pname(String, String),
    Str(String),
    Colon,
    Dot,
    DotDot,
    Star,
    Semi,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    LParen,
    RParen,
    AtPrefix,
    Eof,
}

impl Tok {
    fn describe(&self) -> String {
        match self {
            Tok::Ident(n) => format!("`{n}`"),
            Tok::Int(n) => format!("`{n}`"),
            Tok::Iri(i) => format!("`<{i}>`"),
            Tok::Pname(p, l) => format!("`{p}:{l}`"),
            Tok::Str(s) => format!("`\"{s}\"`"),
            Tok::Colon => "`:`".into(),
            Tok::Dot => "`.`".into(),
            Tok::DotDot => "`..`".into(),
            Tok::Star => "`*`".into(),
            Tok::Semi => "`;`".into(),
            Tok::LBrace => "`{`".into(),
            Tok::RBrace => "`}`".into(),
            Tok::LBracket => "`[`".into(),
            Tok::RBracket => "`]`".into(),
            Tok::LParen => "`(`".into(),
            Tok::RParen => "`)`".into(),
            Tok::AtPrefix => "`@prefix`".into(),
            Tok::Eof => "end of file".into(),
        }
    }
}

fn is_name_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'-'
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(text: &'a str) -> Self {
        Lexer {
            bytes: text.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn bump(&mut self) -> u8 {
        let b = self.bytes[self.pos];
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        b
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn skip_trivia(&mut self) {
        while let Some(b) = self.peek() {
            if b.is_ascii_whitespace() {
                self.bump();
            } else if b == b'#' {
                while let Some(c) = self.peek() {
                    self.bump();
                    if c == b'\n' {
                        break;
                    }
                }
            } else {
                break;
            }
        }
    }

    fn take_name(&mut self) -> String {
        let start = self.pos;
        while self.peek().is_some_and(is_name_byte) {
            self.bump();
        }
        String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned()
    }

    /// The next token and its span; lexing errors become `SH001`.
    fn next(&mut self, diags: &mut Vec<Diagnostic>) -> (Tok, Span) {
        loop {
            self.skip_trivia();
            let span = Span {
                line: self.line,
                col: self.col,
            };
            let Some(b) = self.peek() else {
                return (Tok::Eof, span);
            };
            match b {
                b'.' if self.peek_at(1) == Some(b'.') => {
                    self.bump();
                    self.bump();
                    return (Tok::DotDot, span);
                }
                b'.' => {
                    self.bump();
                    return (Tok::Dot, span);
                }
                b':' => {
                    self.bump();
                    return (Tok::Colon, span);
                }
                b'*' => {
                    self.bump();
                    return (Tok::Star, span);
                }
                b';' => {
                    self.bump();
                    return (Tok::Semi, span);
                }
                b'{' => {
                    self.bump();
                    return (Tok::LBrace, span);
                }
                b'}' => {
                    self.bump();
                    return (Tok::RBrace, span);
                }
                b'[' => {
                    self.bump();
                    return (Tok::LBracket, span);
                }
                b']' => {
                    self.bump();
                    return (Tok::RBracket, span);
                }
                b'(' => {
                    self.bump();
                    return (Tok::LParen, span);
                }
                b')' => {
                    self.bump();
                    return (Tok::RParen, span);
                }
                b'@' => {
                    self.bump();
                    let word = self.take_name();
                    if word == "prefix" {
                        return (Tok::AtPrefix, span);
                    }
                    diags.push(Diagnostic::new(
                        "SH001",
                        Severity::Error,
                        span.line,
                        span.col,
                        format!("unknown directive `@{word}` (only `@prefix` is supported)"),
                    ));
                }
                b'"' => {
                    self.bump();
                    let mut lexical = String::new();
                    loop {
                        match self.peek() {
                            Some(b'"') => {
                                self.bump();
                                return (Tok::Str(lexical), span);
                            }
                            Some(b'\\') => {
                                self.bump();
                                match self.peek() {
                                    Some(c @ (b'"' | b'\\')) => {
                                        self.bump();
                                        lexical.push(c as char);
                                    }
                                    _ => {
                                        diags.push(Diagnostic::new(
                                            "SH001",
                                            Severity::Error,
                                            span.line,
                                            span.col,
                                            "unsupported escape in string literal \
                                             (only `\\\"` and `\\\\`)",
                                        ));
                                        break;
                                    }
                                }
                            }
                            Some(b'\n') | None => {
                                diags.push(Diagnostic::new(
                                    "SH001",
                                    Severity::Error,
                                    span.line,
                                    span.col,
                                    "unterminated string literal: missing `\"` before end of line",
                                ));
                                break;
                            }
                            Some(_) => {
                                let c = self.bump();
                                lexical.push(c as char);
                            }
                        }
                    }
                }
                b'<' => {
                    self.bump();
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != b'>' && c != b'\n') {
                        self.bump();
                    }
                    if self.peek() == Some(b'>') {
                        let iri =
                            String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned();
                        self.bump();
                        return (Tok::Iri(iri), span);
                    }
                    diags.push(Diagnostic::new(
                        "SH001",
                        Severity::Error,
                        span.line,
                        span.col,
                        "unterminated IRI: missing `>` before end of line",
                    ));
                }
                _ if is_name_byte(b) => {
                    let name = self.take_name();
                    if name.bytes().all(|c| c.is_ascii_digit()) {
                        if let Ok(n) = name.parse::<u64>() {
                            return (Tok::Int(n), span);
                        }
                    }
                    // `prefix:local` — but `NAME:` followed by anything else
                    // lexes as Ident + Colon.
                    if self.peek() == Some(b':') && self.peek_at(1).is_some_and(is_name_byte) {
                        self.bump();
                        let local = self.take_name();
                        return (Tok::Pname(name, local), span);
                    }
                    return (Tok::Ident(name), span);
                }
                _ => {
                    self.bump();
                    diags.push(Diagnostic::new(
                        "SH001",
                        Severity::Error,
                        span.line,
                        span.col,
                        format!("unexpected character `{}`", b as char),
                    ));
                }
            }
        }
    }
}

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
    span: Span,
    prefixes: HashMap<String, String>,
    diags: Vec<Diagnostic>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        let mut diags = Vec::new();
        let mut lexer = Lexer::new(text);
        let (tok, span) = lexer.next(&mut diags);
        Parser {
            lexer,
            tok,
            span,
            prefixes: HashMap::new(),
            diags,
        }
    }

    fn advance(&mut self) {
        let (tok, span) = self.lexer.next(&mut self.diags);
        self.tok = tok;
        self.span = span;
    }

    fn error_here(&mut self, message: impl Into<String>) {
        self.diags.push(Diagnostic::new(
            "SH001",
            Severity::Error,
            self.span.line,
            self.span.col,
            message,
        ));
    }

    /// Skips tokens through the next `.` (or EOF) — the statement-level
    /// recovery point.
    fn recover(&mut self) {
        loop {
            match self.tok {
                Tok::Dot => {
                    self.advance();
                    return;
                }
                Tok::Eof => return,
                _ => self.advance(),
            }
        }
    }

    fn expect_dot(&mut self) {
        if self.tok == Tok::Dot {
            self.advance();
        } else {
            let found = self.tok.describe();
            self.error_here(format!("expected `.` to end the statement, found {found}"));
            self.recover();
        }
    }

    fn parse_prefix(&mut self) {
        self.advance(); // past @prefix
        let ns = match &self.tok {
            Tok::Ident(name) => name.clone(),
            other => {
                let found = other.describe();
                self.error_here(format!(
                    "expected a prefix name after `@prefix`, found {found}"
                ));
                self.recover();
                return;
            }
        };
        self.advance();
        if self.tok != Tok::Colon {
            let found = self.tok.describe();
            self.error_here(format!("expected `:` after the prefix name, found {found}"));
            self.recover();
            return;
        }
        self.advance();
        let iri = match &self.tok {
            Tok::Iri(iri) => iri.clone(),
            other => {
                let found = other.describe();
                self.error_here(format!("expected `<iri>` after the prefix, found {found}"));
                self.recover();
                return;
            }
        };
        self.advance();
        self.prefixes.insert(ns, iri);
        self.expect_dot();
    }

    /// One IRI term; `path_position` admits the `a` shorthand for `rdf:type`.
    fn parse_iri(&mut self, path_position: bool) -> Option<String> {
        let iri = match &self.tok {
            Tok::Iri(iri) => iri.clone(),
            Tok::Pname(prefix, local) => match self.prefixes.get(prefix) {
                Some(ns) => format!("{ns}{local}"),
                None => {
                    let prefix = prefix.clone();
                    let local = local.clone();
                    self.diags.push(Diagnostic::new(
                        "SH002",
                        Severity::Error,
                        self.span.line,
                        self.span.col,
                        format!("unknown prefix `{prefix}:` — declare it with `@prefix`"),
                    ));
                    format!("urn:inferray:unknown-prefix:{prefix}:{local}")
                }
            },
            Tok::Ident(name) if name == "a" && path_position => vocab::RDF_TYPE.to_string(),
            other => {
                let found = other.describe();
                let hint = if matches!(other, Tok::Ident(n) if n == "a") {
                    " (`a` is only valid in path position)"
                } else {
                    ""
                };
                self.error_here(format!(
                    "expected an IRI (`<iri>` or `prefix:local`), found {found}{hint}"
                ));
                return None;
            }
        };
        self.advance();
        Some(iri)
    }

    /// `count [min..max]` after the `count` keyword was seen.
    fn parse_count(&mut self, span: Span) -> Option<SymClause> {
        self.advance(); // past `count`
        if self.tok != Tok::LBracket {
            let found = self.tok.describe();
            self.error_here(format!("expected `[` after `count`, found {found}"));
            return None;
        }
        self.advance();
        let min = match self.tok {
            Tok::Int(n) => n,
            ref other => {
                let found = other.describe();
                self.error_here(format!("expected a minimum count, found {found}"));
                return None;
            }
        };
        self.advance();
        if self.tok != Tok::DotDot {
            let found = self.tok.describe();
            self.error_here(format!("expected `..` between the bounds, found {found}"));
            return None;
        }
        self.advance();
        let max = match self.tok {
            Tok::Int(n) => Some(n),
            Tok::Star => None,
            ref other => {
                let found = other.describe();
                self.error_here(format!("expected a maximum count or `*`, found {found}"));
                return None;
            }
        };
        self.advance();
        if self.tok != Tok::RBracket {
            let found = self.tok.describe();
            self.error_here(format!("expected `]` to close the bounds, found {found}"));
            return None;
        }
        self.advance();
        Some(SymClause::Count { min, max, span })
    }

    /// `in ( value… )` after the `in` keyword was seen.
    fn parse_in(&mut self, span: Span) -> Option<SymClause> {
        self.advance(); // past `in`
        if self.tok != Tok::LParen {
            let found = self.tok.describe();
            self.error_here(format!("expected `(` after `in`, found {found}"));
            return None;
        }
        self.advance();
        let mut values = Vec::new();
        loop {
            match &self.tok {
                Tok::RParen => {
                    self.advance();
                    return Some(SymClause::In { values, span });
                }
                Tok::Str(lexical) => {
                    values.push(SymValue::Literal(lexical.clone()));
                    self.advance();
                }
                Tok::Iri(_) | Tok::Pname(..) => {
                    let iri = self.parse_iri(false)?;
                    values.push(SymValue::Iri(iri));
                }
                other => {
                    let found = other.describe();
                    self.error_here(format!(
                        "expected an IRI, a string literal or `)` in the enumeration, \
                         found {found}"
                    ));
                    return None;
                }
            }
        }
    }

    /// One constraint: `path clause+ ;`.
    fn parse_constraint(&mut self) -> Option<SymConstraint> {
        let span = self.span;
        let path = self.parse_iri(true)?;
        let mut clauses = Vec::new();
        loop {
            let clause_span = self.span;
            match &self.tok {
                Tok::Semi => {
                    self.advance();
                    break;
                }
                Tok::Ident(kw) if kw == "count" => {
                    clauses.push(self.parse_count(clause_span)?);
                }
                Tok::Ident(kw) if kw == "datatype" => {
                    self.advance();
                    let iri = self.parse_iri(false)?;
                    clauses.push(SymClause::Datatype {
                        iri,
                        span: clause_span,
                    });
                }
                Tok::Ident(kw) if kw == "class" => {
                    self.advance();
                    let iri = self.parse_iri(false)?;
                    clauses.push(SymClause::Class {
                        iri,
                        span: clause_span,
                    });
                }
                Tok::Ident(kw) if kw == "in" => {
                    clauses.push(self.parse_in(clause_span)?);
                }
                Tok::Ident(kw) if kw == "node" => {
                    self.advance();
                    let name = match &self.tok {
                        Tok::Ident(name) => name.clone(),
                        other => {
                            let found = other.describe();
                            self.error_here(format!(
                                "expected a shape name after `node`, found {found}"
                            ));
                            return None;
                        }
                    };
                    self.advance();
                    clauses.push(SymClause::Node {
                        name,
                        span: clause_span,
                    });
                }
                other => {
                    let found = other.describe();
                    self.error_here(format!(
                        "expected a constraint clause (`count`, `datatype`, `class`, `in`, \
                         `node`) or `;`, found {found}"
                    ));
                    return None;
                }
            }
        }
        if clauses.is_empty() {
            self.diags.push(Diagnostic::new(
                "SH001",
                Severity::Error,
                span.line,
                span.col,
                format!("constraint on `<{path}>` has no clauses"),
            ));
            return None;
        }
        Some(SymConstraint {
            path,
            span,
            clauses,
        })
    }

    fn parse_shape(&mut self) -> Option<SymShape> {
        let span = self.span;
        self.advance(); // past `shape`
        let name = match &self.tok {
            Tok::Ident(name) => name.clone(),
            other => {
                let found = other.describe();
                self.error_here(format!(
                    "expected a shape name after `shape`, found {found}"
                ));
                return None;
            }
        };
        self.advance();
        if !matches!(&self.tok, Tok::Ident(kw) if kw == "targets") {
            let found = self.tok.describe();
            self.error_here(format!(
                "expected `targets` after the shape name, found {found}"
            ));
            return None;
        }
        self.advance();
        let target_span = self.span;
        let target = match &self.tok {
            Tok::Ident(kw) if kw == "class" => {
                self.advance();
                SymTarget::Class(self.parse_iri(false)?)
            }
            Tok::Ident(kw) if kw == "subjects-of" => {
                self.advance();
                SymTarget::SubjectsOf(self.parse_iri(false)?)
            }
            Tok::Ident(kw) if kw == "all" => {
                self.advance();
                SymTarget::All
            }
            other => {
                let found = other.describe();
                self.error_here(format!(
                    "expected a target selector (`class C`, `subjects-of p` or `all`), \
                     found {found}"
                ));
                return None;
            }
        };
        if self.tok != Tok::LBrace {
            let found = self.tok.describe();
            self.error_here(format!(
                "expected `{{` to open the constraint block, found {found}"
            ));
            return None;
        }
        self.advance();
        let mut constraints = Vec::new();
        loop {
            match &self.tok {
                Tok::RBrace => {
                    self.advance();
                    break;
                }
                Tok::Eof => {
                    self.error_here("unexpected end of file inside a shape block");
                    return None;
                }
                _ => constraints.push(self.parse_constraint()?),
            }
        }
        if self.tok != Tok::Dot {
            let found = self.tok.describe();
            self.error_here(format!("expected `.` to end the shape, found {found}"));
            return None;
        }
        self.advance();
        Some(SymShape {
            name,
            span,
            target,
            target_span,
            constraints,
        })
    }

    fn parse_file(mut self) -> (Vec<SymShape>, Vec<Diagnostic>) {
        let mut shapes = Vec::new();
        loop {
            match &self.tok {
                Tok::Eof => break,
                Tok::AtPrefix => self.parse_prefix(),
                Tok::Ident(name) if name == "shape" => match self.parse_shape() {
                    Some(shape) => shapes.push(shape),
                    None => self.recover(),
                },
                other => {
                    let found = other.describe();
                    self.error_here(format!(
                        "expected `shape` or `@prefix` at top level, found {found}"
                    ));
                    self.recover();
                }
            }
        }
        (shapes, self.diags)
    }
}

/// Parses a shape file into symbolic shapes plus `SH001`/`SH002` diagnostics.
pub fn parse(text: &str) -> (Vec<SymShape>, Vec<Diagnostic>) {
    Parser::new(text).parse_file()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(text: &str) -> Vec<SymShape> {
        let (shapes, diags) = parse(text);
        assert!(diags.is_empty(), "unexpected diagnostics: {diags:?}");
        shapes
    }

    #[test]
    fn parses_a_full_shape() {
        let shapes = ok("@prefix ex: <http://example.org/> .\n\
             shape Person targets class ex:Person {\n\
               ex:name count [1..1] ;\n\
               ex:age count [0..1] datatype <urn:xsd:integer> ;\n\
               ex:knows class ex:Person node Person ;\n\
               ex:status in ( \"active\" ex:Retired ) ;\n\
             } .\n");
        assert_eq!(shapes.len(), 1);
        let shape = &shapes[0];
        assert_eq!(shape.name, "Person");
        assert_eq!(
            shape.target,
            SymTarget::Class("http://example.org/Person".into())
        );
        assert_eq!(shape.constraints.len(), 4);
        assert_eq!(shape.constraints[0].path, "http://example.org/name");
        assert_eq!(
            shape.constraints[0].clauses[0],
            SymClause::Count {
                min: 1,
                max: Some(1),
                span: Span { line: 3, col: 9 }
            }
        );
        assert_eq!(shape.constraints[2].clauses.len(), 2);
        assert_eq!(
            shape.constraints[3].clauses[0],
            SymClause::In {
                values: vec![
                    SymValue::Literal("active".into()),
                    SymValue::Iri("http://example.org/Retired".into()),
                ],
                span: Span { line: 6, col: 11 }
            }
        );
    }

    #[test]
    fn open_maximum_and_subjects_of_target() {
        let shapes = ok("shape S targets subjects-of <urn:p> { <urn:q> count [1..*] ; } .");
        assert_eq!(shapes[0].target, SymTarget::SubjectsOf("urn:p".into()));
        assert_eq!(
            shapes[0].constraints[0].clauses[0],
            SymClause::Count {
                min: 1,
                max: None,
                span: Span { line: 1, col: 47 }
            }
        );
    }

    #[test]
    fn a_is_rdf_type_in_path_position() {
        let shapes = ok("shape S targets all { a count [1..*] ; } .");
        assert_eq!(shapes[0].target, SymTarget::All);
        assert_eq!(shapes[0].constraints[0].path, vocab::RDF_TYPE);
    }

    #[test]
    fn unknown_prefix_is_sh002_with_position() {
        let (shapes, diags) = parse("shape S targets class nope:C { <urn:p> count [0..1] ; } .");
        assert_eq!(shapes.len(), 1, "recovery keeps the shape");
        let d = diags.iter().find(|d| d.code == "SH002").expect("SH002");
        assert_eq!((d.line, d.col), (1, 23));
        assert!(d.is_error());
    }

    #[test]
    fn syntax_error_recovers_at_dot() {
        let (shapes, diags) = parse(
            "shape Broken targets class <urn:C> { <urn:p> bogus ; } .\n\
             shape Fine targets all { <urn:p> count [0..1] ; } .\n",
        );
        assert_eq!(shapes.len(), 1);
        assert_eq!(shapes[0].name, "Fine");
        assert!(diags.iter().any(|d| d.code == "SH001" && d.line == 1));
    }

    #[test]
    fn missing_semicolon_and_unterminated_block() {
        let (_, diags) = parse("shape S targets all { <urn:p> count [0..1] } .");
        assert!(diags.iter().any(|d| d.code == "SH001"));
        let (shapes, diags) = parse("shape S targets all { <urn:p> count [0..1] ;");
        assert!(shapes.is_empty());
        assert!(diags.iter().any(|d| d.code == "SH001"));
    }

    #[test]
    fn constraint_without_clauses_is_an_error() {
        let (shapes, diags) = parse("shape S targets all { <urn:p> ; } .");
        assert!(shapes.is_empty());
        assert!(diags
            .iter()
            .any(|d| d.code == "SH001" && d.message.contains("no clauses")));
    }

    #[test]
    fn string_escapes_and_unterminated_string() {
        let shapes = ok("shape S targets all { <urn:p> in ( \"a\\\"b\" ) ; } .");
        assert_eq!(
            shapes[0].constraints[0].clauses[0],
            SymClause::In {
                values: vec![SymValue::Literal("a\"b".into())],
                span: Span { line: 1, col: 31 }
            }
        );
        let (_, diags) = parse("shape S targets all { <urn:p> in ( \"oops ) ; } .");
        assert!(diags.iter().any(|d| d.code == "SH001"));
    }
}
