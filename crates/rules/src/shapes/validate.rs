//! Shape validation over the sorted pair tables: full snapshots in parallel,
//! and the incremental `validate_delta` that re-validates only nodes
//! incident to changed pairs.
//!
//! This module is on the serving hot path (every gated write runs it before
//! publishing), so it is written to the same discipline as the server: no
//! panicking constructs, all table access through the non-panicking read
//! APIs (`objects_of`/`contains_pair` work on the plain ⟨s,o⟩ layout and
//! never demand the lazily built ⟨o,s⟩ cache).
//!
//! ## The incremental protocol
//!
//! `validate_delta(old, new)` must produce the exact violation set of a full
//! validation of `new`, given a report for `old`. The node set whose verdict
//! can have changed is computed in two steps:
//!
//! 1. **Incident nodes**: diff every property table of `old` and `new`
//!    (two-pointer walk over the sorted pair arrays, tables compared lazily
//!    so untouched properties cost one slice equality); both endpoints of
//!    every differing pair are dirty. This covers every verdict component
//!    that only reads the focus node's own rows — target membership
//!    (`class`/`subjects-of`/`all` all key on the node's own pairs),
//!    `count`, `datatype` and `in` checks.
//! 2. **Dependent closure**: a `class` or `node` check on path `p` reads the
//!    *value's* neighborhood, so a subject `s` with `⟨s,o⟩ ∈ new(p)` and a
//!    dirty `o` is dirty too. Iterating to a fixed point walks chains of
//!    `node` references (statically acyclic, so the iteration is bounded by
//!    the reference depth).
//!
//! The new report is then the old one minus every violation whose focus is
//! dirty, plus a fresh check of every dirty node — equality with full
//! re-validation is proven by `tests/shape_validation.rs` over random
//! extend/retract sequences.

use super::compile::{Check, CompiledShapes, Target};
use inferray_dictionary::Dictionary;
use inferray_model::term::{RDF_LANG_STRING, XSD_STRING};
use inferray_model::Term;
use inferray_parallel::ThreadPool;
use inferray_store::{PropertyTable, TripleStore};
use std::collections::HashSet;

/// Why a focus node violates a constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ViolationKind {
    /// Fewer values than the declared minimum.
    CountBelow {
        /// Number of values found.
        found: u64,
        /// Declared minimum.
        min: u64,
    },
    /// More values than the declared maximum.
    CountAbove {
        /// Number of values found.
        found: u64,
        /// Declared maximum.
        max: u64,
    },
    /// A value is not a literal of the required datatype.
    Datatype {
        /// The offending value.
        value: u64,
    },
    /// A value lacks the required `rdf:type`.
    Class {
        /// The offending value.
        value: u64,
    },
    /// A value is outside the enumerated set.
    In {
        /// The offending value.
        value: u64,
    },
    /// A value does not conform to the referenced shape.
    Node {
        /// The offending value.
        value: u64,
        /// Index of the referenced shape.
        shape: usize,
    },
}

/// One violation: a focus node failing one clause of one shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    /// The focus node.
    pub focus: u64,
    /// Index of the shape in [`CompiledShapes::shapes`].
    pub shape: usize,
    /// Index of the constraint within the shape.
    pub constraint: usize,
    /// 1-based line of the violated clause in the shape file.
    pub line: u32,
    /// 1-based column of the violated clause.
    pub col: u32,
    /// What went wrong.
    pub kind: ViolationKind,
}

/// The outcome of validating a store against a compiled shape program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Every violation, sorted by `(focus, shape, constraint, position)`.
    pub violations: Vec<Violation>,
    /// Number of `(shape, focus)` evaluations performed to produce this
    /// report (for an incremental report: only the re-checked ones).
    pub focus_checks: u64,
}

impl ValidationReport {
    /// `true` when the store conforms.
    pub fn conforms(&self) -> bool {
        self.violations.is_empty()
    }
}

fn empty_table() -> &'static PropertyTable {
    static EMPTY: std::sync::OnceLock<PropertyTable> = std::sync::OnceLock::new();
    EMPTY.get_or_init(PropertyTable::new)
}

fn table(store: &TripleStore, p: Option<u64>) -> &PropertyTable {
    match p.and_then(|p| store.table(p)) {
        Some(table) => table,
        None => empty_table(),
    }
}

/// `true` when `value` is a literal whose effective datatype is `iri`
/// (plain literals are `xsd:string`, language-tagged ones `rdf:langString`).
fn has_datatype(dict: &Dictionary, value: u64, iri: &str) -> bool {
    match dict.decode(value) {
        Some(Term::Literal {
            datatype, language, ..
        }) => {
            let effective = match (language, datatype) {
                (Some(_), _) => RDF_LANG_STRING,
                (None, Some(dt)) => dt.as_str(),
                (None, None) => XSD_STRING,
            };
            effective == iri
        }
        _ => false,
    }
}

/// `true` when `node` has `rdf:type class` in `store`.
fn has_type(shapes: &CompiledShapes, store: &TripleStore, node: u64, class: Option<u64>) -> bool {
    match (shapes.rdf_type, class) {
        (Some(rdf_type), Some(class)) => table(store, Some(rdf_type)).contains_pair(node, class),
        _ => false,
    }
}

/// `true` when `node` satisfies every constraint of `shapes.shapes[si]`
/// (irrespective of the shape's target). Short-circuits on the first
/// failure; `node` checks recurse through the statically acyclic reference
/// graph.
pub fn conforms(
    shapes: &CompiledShapes,
    si: usize,
    node: u64,
    store: &TripleStore,
    dict: &Dictionary,
) -> bool {
    let Some(shape) = shapes.shapes.get(si) else {
        return true;
    };
    for constraint in &shape.constraints {
        let values = table(store, constraint.path).objects_of(node);
        let mut count = 0u64;
        let mut failed = false;
        // One pass over the values evaluates every per-value check; the
        // count checks need only the total.
        for value in values {
            count += 1;
            for check in &constraint.checks {
                let ok = match check {
                    Check::Count { .. } => true,
                    Check::Datatype { iri, .. } => has_datatype(dict, value, iri),
                    Check::Class { class, .. } => has_type(shapes, store, value, *class),
                    Check::In { values, .. } => values.binary_search(&value).is_ok(),
                    Check::Node { shape, .. } => conforms(shapes, *shape, value, store, dict),
                };
                if !ok {
                    failed = true;
                    break;
                }
            }
            if failed {
                return false;
            }
        }
        for check in &constraint.checks {
            if let Check::Count { min, max, .. } = check {
                if count < *min || max.is_some_and(|m| count > m) {
                    return false;
                }
            }
        }
    }
    true
}

/// Validates `focus` against shape `si`, appending violations to `out`.
fn check_focus(
    shapes: &CompiledShapes,
    si: usize,
    focus: u64,
    store: &TripleStore,
    dict: &Dictionary,
    out: &mut Vec<Violation>,
) {
    let Some(shape) = shapes.shapes.get(si) else {
        return;
    };
    for (ci, constraint) in shape.constraints.iter().enumerate() {
        let mut count = 0u64;
        for value in table(store, constraint.path).objects_of(focus) {
            count += 1;
            for check in &constraint.checks {
                let kind = match check {
                    Check::Count { .. } => continue,
                    Check::Datatype { iri, .. } if !has_datatype(dict, value, iri) => {
                        ViolationKind::Datatype { value }
                    }
                    Check::Class { class, .. } if !has_type(shapes, store, value, *class) => {
                        ViolationKind::Class { value }
                    }
                    Check::In { values, .. } if values.binary_search(&value).is_err() => {
                        ViolationKind::In { value }
                    }
                    Check::Node { shape, .. } if !conforms(shapes, *shape, value, store, dict) => {
                        ViolationKind::Node {
                            value,
                            shape: *shape,
                        }
                    }
                    _ => continue,
                };
                let span = check.span();
                out.push(Violation {
                    focus,
                    shape: si,
                    constraint: ci,
                    line: span.line,
                    col: span.col,
                    kind,
                });
            }
        }
        for check in &constraint.checks {
            if let Check::Count { min, max, span } = check {
                let kind = if count < *min {
                    Some(ViolationKind::CountBelow {
                        found: count,
                        min: *min,
                    })
                } else {
                    max.filter(|m| count > *m)
                        .map(|max| ViolationKind::CountAbove { found: count, max })
                };
                if let Some(kind) = kind {
                    out.push(Violation {
                        focus,
                        shape: si,
                        constraint: ci,
                        line: span.line,
                        col: span.col,
                        kind,
                    });
                }
            }
        }
    }
}

/// The focus nodes of shape `si` in `store`, sorted and deduplicated.
fn focus_nodes(shapes: &CompiledShapes, si: usize, store: &TripleStore) -> Vec<u64> {
    let Some(shape) = shapes.shapes.get(si) else {
        return Vec::new();
    };
    let mut nodes = match &shape.target {
        Target::Class(class) => match (shapes.rdf_type, class) {
            (Some(rdf_type), Some(class)) => table(store, Some(rdf_type))
                .iter_pairs()
                .filter(|&(_, o)| o == *class)
                .map(|(s, _)| s)
                .collect(),
            _ => Vec::new(),
        },
        Target::SubjectsOf(p) => table(store, *p).iter_pairs().map(|(s, _)| s).collect(),
        Target::All => {
            let mut nodes = Vec::new();
            for (_, t) in store.iter_tables() {
                nodes.extend(t.iter_pairs().map(|(s, _)| s));
            }
            nodes
        }
    };
    nodes.sort_unstable();
    nodes.dedup();
    nodes
}

/// `true` when `node` is a focus node of shape `si` in `store` — the
/// membership test the incremental path runs per dirty node instead of
/// recomputing whole target sets.
fn is_focus(shapes: &CompiledShapes, si: usize, node: u64, store: &TripleStore) -> bool {
    let Some(shape) = shapes.shapes.get(si) else {
        return false;
    };
    match &shape.target {
        Target::Class(class) => has_type(shapes, store, node, *class),
        Target::SubjectsOf(p) => table(store, *p).objects_of(node).next().is_some(),
        Target::All => store
            .iter_tables()
            .any(|(_, t)| t.objects_of(node).next().is_some()),
    }
}

/// Validates the full store, fanning focus-node chunks out over `pool`.
pub fn validate(
    shapes: &CompiledShapes,
    store: &TripleStore,
    dict: &Dictionary,
    pool: &ThreadPool,
) -> ValidationReport {
    // Per-shape focus lists, chunked so every worker gets comparable work.
    let mut units: Vec<(usize, Vec<u64>)> = Vec::new();
    let mut total_focus = 0u64;
    for si in 0..shapes.shapes.len() {
        let nodes = focus_nodes(shapes, si, store);
        total_focus += nodes.len() as u64;
        let chunk = (nodes.len() / (pool.threads() * 2).max(1)).max(256);
        for piece in nodes.chunks(chunk) {
            if !piece.is_empty() {
                units.push((si, piece.to_vec()));
            }
        }
    }
    let tasks: Vec<_> = units
        .into_iter()
        .map(|(si, nodes)| {
            move || {
                let mut out = Vec::new();
                for &focus in &nodes {
                    check_focus(shapes, si, focus, store, dict, &mut out);
                }
                out
            }
        })
        .collect();
    let mut violations: Vec<Violation> = pool.run_ordered(tasks).into_iter().flatten().collect();
    violations.sort_unstable();
    ValidationReport {
        violations,
        focus_checks: total_focus,
    }
}

/// Both endpoints of every pair present in exactly one of the two sorted
/// arrays (two-pointer symmetric difference).
fn diff_pairs(old: &[u64], new: &[u64], dirty: &mut HashSet<u64>) {
    let (mut i, mut j) = (0usize, 0usize);
    while i < old.len() && j < new.len() {
        let a = (old[i], old[i + 1]);
        let b = (new[j], new[j + 1]);
        match a.cmp(&b) {
            std::cmp::Ordering::Equal => {
                i += 2;
                j += 2;
            }
            std::cmp::Ordering::Less => {
                dirty.insert(a.0);
                dirty.insert(a.1);
                i += 2;
            }
            std::cmp::Ordering::Greater => {
                dirty.insert(b.0);
                dirty.insert(b.1);
                j += 2;
            }
        }
    }
    while i < old.len() {
        dirty.insert(old[i]);
        dirty.insert(old[i + 1]);
        i += 2;
    }
    while j < new.len() {
        dirty.insert(new[j]);
        dirty.insert(new[j + 1]);
        j += 2;
    }
}

/// The nodes whose verdict may differ between `old` and `new`: endpoints of
/// changed pairs, closed over the value-dependent paths of `shapes`.
pub fn dirty_nodes(shapes: &CompiledShapes, old: &TripleStore, new: &TripleStore) -> HashSet<u64> {
    let mut dirty = HashSet::new();
    let mut properties: Vec<u64> = old.property_ids().chain(new.property_ids()).collect();
    properties.sort_unstable();
    properties.dedup();
    for p in properties {
        let old_pairs = table(old, Some(p)).pairs();
        let new_pairs = table(new, Some(p)).pairs();
        if old_pairs != new_pairs {
            diff_pairs(old_pairs, new_pairs, &mut dirty);
        }
    }
    if dirty.is_empty() {
        return dirty;
    }
    // Close over value-dependent checks: a subject pointing (through a
    // `class`/`node`-checked path) at a dirty value is dirty too. The loop
    // reaches a fixed point within the depth of the acyclic `node` graph.
    let dependent = shapes.dependent_paths();
    loop {
        let mut grew = false;
        for &p in &dependent {
            for (s, o) in table(new, Some(p)).iter_pairs() {
                if dirty.contains(&o) && dirty.insert(s) {
                    grew = true;
                }
            }
        }
        if !grew {
            return dirty;
        }
    }
}

/// Incrementally re-validates after a write: `previous` must be the report
/// of `old` under the same compiled shapes, and the result equals
/// `validate(shapes, new, …)` exactly (see the module docs for the
/// argument, `tests/shape_validation.rs` for the property test).
pub fn validate_delta(
    shapes: &CompiledShapes,
    old: &TripleStore,
    new: &TripleStore,
    dict: &Dictionary,
    previous: &ValidationReport,
) -> ValidationReport {
    let dirty = dirty_nodes(shapes, old, new);
    let mut violations: Vec<Violation> = previous
        .violations
        .iter()
        .filter(|v| !dirty.contains(&v.focus))
        .copied()
        .collect();
    let mut focus_checks = 0u64;
    let mut nodes: Vec<u64> = dirty.into_iter().collect();
    nodes.sort_unstable();
    for si in 0..shapes.shapes.len() {
        for &node in &nodes {
            if is_focus(shapes, si, node, new) {
                focus_checks += 1;
                check_focus(shapes, si, node, new, dict, &mut violations);
            }
        }
    }
    violations.sort_unstable();
    ValidationReport {
        violations,
        focus_checks,
    }
}

#[cfg(test)]
mod tests {
    use super::super::analyze;
    use super::*;
    use inferray_model::Triple;

    fn load(triples: &[(&str, &str, &str)]) -> (TripleStore, Dictionary) {
        let mut dict = Dictionary::new();
        let mut store = TripleStore::new();
        for (s, p, o) in triples {
            let t = dict.encode_triple(&Triple::iris(*s, *p, *o)).unwrap();
            store.add_triple(t);
        }
        store.finalize();
        (store, dict)
    }

    fn compile(text: &str, dict: &Dictionary) -> CompiledShapes {
        let analysis = analyze(text);
        analysis.compile(dict).expect("shape program compiles")
    }

    const TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

    #[test]
    fn count_class_and_in_violations_with_positions() {
        let (store, dict) = load(&[
            ("urn:alice", TYPE, "urn:Person"),
            ("urn:alice", "urn:knows", "urn:bob"),
            ("urn:bob", TYPE, "urn:Person"),
            ("urn:bob", "urn:knows", "urn:ghost"),
        ]);
        let shapes = compile(
            "shape Person targets class <urn:Person> {\n\
               <urn:knows> class <urn:Person> ;\n\
               <urn:name> count [1..*] ;\n\
             } .",
            &dict,
        );
        let report = validate(&shapes, &store, &dict, inferray_parallel::global());
        // bob knows a non-Person; both alice and bob lack a name.
        assert_eq!(report.violations.len(), 3);
        let ghost = dict.id_of_iri("urn:ghost").unwrap();
        let class_violation = report
            .violations
            .iter()
            .find(|v| matches!(v.kind, ViolationKind::Class { value } if value == ghost))
            .expect("class violation");
        assert_eq!((class_violation.line, class_violation.col), (2, 13));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::CountBelow { found: 0, min: 1 })));
        assert!(!report.conforms());
    }

    #[test]
    fn datatype_and_in_checks() {
        let mut dict = Dictionary::new();
        let mut store = TripleStore::new();
        for t in [
            Triple::new(
                Term::iri("urn:x"),
                Term::iri("urn:age"),
                Term::typed_literal("7", "http://www.w3.org/2001/XMLSchema#integer"),
            ),
            Triple::new(
                Term::iri("urn:x"),
                Term::iri("urn:status"),
                Term::plain_literal("active"),
            ),
            Triple::new(
                Term::iri("urn:y"),
                Term::iri("urn:age"),
                Term::plain_literal("old"),
            ),
            Triple::new(
                Term::iri("urn:y"),
                Term::iri("urn:status"),
                Term::plain_literal("dormant"),
            ),
        ] {
            let t = dict.encode_triple(&t).unwrap();
            store.add_triple(t);
        }
        store.finalize();
        let shapes = compile(
            "shape S targets all {\n\
               <urn:age> datatype <http://www.w3.org/2001/XMLSchema#integer> ;\n\
               <urn:status> in ( \"active\" \"inactive\" ) ;\n\
             } .",
            &dict,
        );
        let report = validate(&shapes, &store, &dict, inferray_parallel::global());
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations.iter().all(|v| matches!(
            v.kind,
            ViolationKind::Datatype { .. } | ViolationKind::In { .. }
        )));
    }

    #[test]
    fn node_references_recurse() {
        let (store, dict) = load(&[
            ("urn:a", "urn:knows", "urn:b"),
            ("urn:b", "urn:name", "urn:n"),
            ("urn:a", "urn:name", "urn:n"),
            ("urn:c", "urn:knows", "urn:nameless"),
        ]);
        let shapes = compile(
            "shape Knower targets subjects-of <urn:knows> { <urn:knows> node Named ; } .\n\
             shape Named targets all { <urn:name> count [1..*] ; } .",
            &dict,
        );
        let report = validate(&shapes, &store, &dict, inferray_parallel::global());
        let nameless = dict.id_of_iri("urn:nameless").unwrap();
        let c = dict.id_of_iri("urn:c").unwrap();
        // `c -> nameless` violates Knower, and `c` (an `all` focus of
        // Named, being a subject) lacks a name itself. `nameless` occurs
        // only in object position, so it is not an `all` focus node.
        assert_eq!(report.violations.len(), 2);
        assert!(report.violations.iter().all(|v| v.focus == c));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::Node { value, .. } if value == nameless)));
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v.kind, ViolationKind::CountBelow { found: 0, min: 1 })));
    }

    #[test]
    fn delta_agrees_with_full_revalidation_on_a_hand_case() {
        let (old, mut dict) = load(&[
            ("urn:alice", TYPE, "urn:Person"),
            ("urn:alice", "urn:name", "urn:n1"),
        ]);
        let shapes_text = "shape Person targets class <urn:Person> {\n\
                             <urn:name> count [1..1] ;\n\
                           } .";
        let shapes = compile(shapes_text, &dict);
        let previous = validate(&shapes, &old, &dict, inferray_parallel::global());
        assert!(previous.conforms());

        // Bob arrives without a name; alice gains a second one.
        let mut new = old.clone();
        for (s, p, o) in [
            ("urn:bob", TYPE, "urn:Person"),
            ("urn:alice", "urn:name", "urn:n2"),
        ] {
            let t = dict.encode_triple(&Triple::iris(s, p, o)).unwrap();
            new.add_triple(t);
        }
        new.finalize();
        let shapes = compile(shapes_text, &dict);
        let full = validate(&shapes, &new, &dict, inferray_parallel::global());
        let previous = validate(&shapes, &old, &dict, inferray_parallel::global());
        let delta = validate_delta(&shapes, &old, &new, &dict, &previous);
        assert_eq!(full.violations, delta.violations);
        assert_eq!(full.violations.len(), 2);
    }

    #[test]
    fn dirty_nodes_close_over_dependent_paths() {
        let (old, dict) = load(&[
            ("urn:a", "urn:knows", "urn:b"),
            ("urn:b", TYPE, "urn:Person"),
        ]);
        // Retract b's type: a is not incident to the changed pair but its
        // class-checked value is, so the closure must pull a in.
        let mut new = old.clone();
        let b = dict.id_of_iri("urn:b").unwrap();
        let ty = dict.id_of_iri(TYPE).unwrap();
        let person = dict.id_of_iri("urn:Person").unwrap();
        new.retract([inferray_model::IdTriple::new(b, ty, person)]);
        let shapes = compile(
            "shape S targets subjects-of <urn:knows> { <urn:knows> class <urn:Person> ; } .",
            &dict,
        );
        let dirty = dirty_nodes(&shapes, &old, &new);
        let a = dict.id_of_iri("urn:a").unwrap();
        assert!(dirty.contains(&a), "dependent subject must be dirty");
        let previous = validate(&shapes, &old, &dict, inferray_parallel::global());
        assert!(previous.conforms());
        let full = validate(&shapes, &new, &dict, inferray_parallel::global());
        let delta = validate_delta(&shapes, &old, &new, &dict, &previous);
        assert_eq!(full.violations, delta.violations);
        assert_eq!(full.violations.len(), 1);
    }
}
