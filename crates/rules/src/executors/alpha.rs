//! α-rules: two-table sort-merge joins (Figure 4 of the paper).
//!
//! Each α-rule joins two *different* property tables, on the subject or the
//! object of each side, and emits one triple per match into a fixed head
//! property. The worked example of Figure 4 is `CAX-SCO`: joining the
//! `rdfs:subClassOf` table (on its subject) with the `rdf:type` table (on its
//! object) yields the instances of the subclass, each re-typed with the
//! superclass.
//!
//! Semi-naive evaluation runs the join twice per iteration: once with the
//! left antecedent restricted to the previous iteration's *new* triples, once
//! with the right antecedent restricted to them.

use super::join::{merge_join, JoinSide};
use crate::context::RuleContext;
use inferray_dictionary::wellknown;
use inferray_store::{InferredBuffer, TripleStore};
use std::borrow::Cow;

/// Declarative description of an α-rule.
#[derive(Debug, Clone, Copy)]
pub struct AlphaSpec {
    /// Property table of the first (left) antecedent.
    pub left_prop: u64,
    /// Component of the left table the join binds.
    pub left_side: JoinSide,
    /// Property table of the second (right) antecedent.
    pub right_prop: u64,
    /// Component of the right table the join binds.
    pub right_side: JoinSide,
    /// Property of the derived triple.
    pub out_prop: u64,
    /// When `false` the derived pair is `(left payload, right payload)`;
    /// when `true` it is `(right payload, left payload)`.
    pub swap_output: bool,
}

/// Runs an α-rule (both semi-naive passes).
pub fn apply_alpha(spec: &AlphaSpec, ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    // Pass 1: left from new, right from main.
    join_pass(spec, ctx.new, ctx.main, out);
    // Pass 2: left from main, right from new.
    join_pass(spec, ctx.main, ctx.new, out);
}

fn join_pass(
    spec: &AlphaSpec,
    left_store: &TripleStore,
    right_store: &TripleStore,
    out: &mut InferredBuffer,
) {
    let left = view(left_store, spec.left_prop, spec.left_side);
    if left.is_empty() {
        return;
    }
    let right = view(right_store, spec.right_prop, spec.right_side);
    if right.is_empty() {
        return;
    }
    merge_join(&left, &right, |_key, lp, rp| {
        if spec.swap_output {
            out.add(spec.out_prop, rp, lp);
        } else {
            out.add(spec.out_prop, lp, rp);
        }
    });
}

fn view<'a>(store: &'a TripleStore, prop: u64, side: JoinSide) -> Cow<'a, [u64]> {
    match side {
        JoinSide::Subject => Cow::Borrowed(RuleContext::subject_view(store, prop)),
        JoinSide::Object => RuleContext::object_view(store, prop),
    }
}

/// CAX-SCO: `c1 ⊑ c2, x a c1 ⇒ x a c2`.
pub fn cax_sco(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_alpha(
        &AlphaSpec {
            left_prop: wellknown::RDFS_SUB_CLASS_OF,
            left_side: JoinSide::Subject,
            right_prop: wellknown::RDF_TYPE,
            right_side: JoinSide::Object,
            out_prop: wellknown::RDF_TYPE,
            swap_output: true,
        },
        ctx,
        out,
    );
}

/// CAX-EQC1: `c1 ≡ c2, x a c1 ⇒ x a c2`.
pub fn cax_eqc1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_alpha(
        &AlphaSpec {
            left_prop: wellknown::OWL_EQUIVALENT_CLASS,
            left_side: JoinSide::Subject,
            right_prop: wellknown::RDF_TYPE,
            right_side: JoinSide::Object,
            out_prop: wellknown::RDF_TYPE,
            swap_output: true,
        },
        ctx,
        out,
    );
}

/// CAX-EQC2: `c1 ≡ c2, x a c2 ⇒ x a c1`.
pub fn cax_eqc2(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_alpha(
        &AlphaSpec {
            left_prop: wellknown::OWL_EQUIVALENT_CLASS,
            left_side: JoinSide::Object,
            right_prop: wellknown::RDF_TYPE,
            right_side: JoinSide::Object,
            out_prop: wellknown::RDF_TYPE,
            swap_output: true,
        },
        ctx,
        out,
    );
}

/// SCM-DOM1: `p domain c1, c1 ⊑ c2 ⇒ p domain c2`.
pub fn scm_dom1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_alpha(
        &AlphaSpec {
            left_prop: wellknown::RDFS_DOMAIN,
            left_side: JoinSide::Object,
            right_prop: wellknown::RDFS_SUB_CLASS_OF,
            right_side: JoinSide::Subject,
            out_prop: wellknown::RDFS_DOMAIN,
            swap_output: false,
        },
        ctx,
        out,
    );
}

/// SCM-RNG1: `p range c1, c1 ⊑ c2 ⇒ p range c2`.
pub fn scm_rng1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_alpha(
        &AlphaSpec {
            left_prop: wellknown::RDFS_RANGE,
            left_side: JoinSide::Object,
            right_prop: wellknown::RDFS_SUB_CLASS_OF,
            right_side: JoinSide::Subject,
            out_prop: wellknown::RDFS_RANGE,
            swap_output: false,
        },
        ctx,
        out,
    );
}

/// SCM-DOM2: `p2 domain c, p1 ⊑ₚ p2 ⇒ p1 domain c`.
pub fn scm_dom2(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_alpha(
        &AlphaSpec {
            left_prop: wellknown::RDFS_DOMAIN,
            left_side: JoinSide::Subject,
            right_prop: wellknown::RDFS_SUB_PROPERTY_OF,
            right_side: JoinSide::Object,
            out_prop: wellknown::RDFS_DOMAIN,
            swap_output: true,
        },
        ctx,
        out,
    );
}

/// SCM-RNG2: `p2 range c, p1 ⊑ₚ p2 ⇒ p1 range c`.
pub fn scm_rng2(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_alpha(
        &AlphaSpec {
            left_prop: wellknown::RDFS_RANGE,
            left_side: JoinSide::Subject,
            right_prop: wellknown::RDFS_SUB_PROPERTY_OF,
            right_side: JoinSide::Object,
            out_prop: wellknown::RDFS_RANGE,
            swap_output: true,
        },
        ctx,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::test_support::{derive, store};
    use inferray_dictionary::wellknown as wk;

    const HUMAN: u64 = 1_000_000;
    const MAMMAL: u64 = 1_000_001;
    const BART: u64 = 1_000_002;
    const LISA: u64 = 1_000_003;
    const HAS_CHILD: u64 = 500;
    const HAS_SON: u64 = 501;

    #[test]
    fn cax_sco_paper_figure4_example() {
        // human ⊑ mammal, Bart a human, Lisa a human ⇒ Bart/Lisa a mammal.
        let main = store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (BART, wk::RDF_TYPE, HUMAN),
            (LISA, wk::RDF_TYPE, HUMAN),
        ]);
        let derived = derive(&main, cax_sco);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(BART, wk::RDF_TYPE, MAMMAL), (LISA, wk::RDF_TYPE, MAMMAL)]
        );
    }

    #[test]
    fn cax_sco_without_matching_instances_derives_nothing() {
        let main = store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (BART, wk::RDF_TYPE, MAMMAL), // already typed with the superclass
        ]);
        let derived = derive(&main, cax_sco);
        assert!(derived.is_empty());
    }

    #[test]
    fn cax_eqc_rules_work_in_both_directions() {
        let main = store(&[
            (HUMAN, wk::OWL_EQUIVALENT_CLASS, MAMMAL),
            (BART, wk::RDF_TYPE, HUMAN),
            (LISA, wk::RDF_TYPE, MAMMAL),
        ]);
        let d1 = derive(&main, cax_eqc1);
        assert!(d1.contains(&(BART, wk::RDF_TYPE, MAMMAL)));
        assert!(!d1.contains(&(LISA, wk::RDF_TYPE, HUMAN)));
        let d2 = derive(&main, cax_eqc2);
        assert!(d2.contains(&(LISA, wk::RDF_TYPE, HUMAN)));
        assert!(!d2.contains(&(BART, wk::RDF_TYPE, MAMMAL)));
    }

    #[test]
    fn scm_dom1_and_rng1_propagate_up_the_class_hierarchy() {
        let main = store(&[
            (HAS_CHILD, wk::RDFS_DOMAIN, HUMAN),
            (HAS_CHILD, wk::RDFS_RANGE, HUMAN),
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
        ]);
        let dom = derive(&main, scm_dom1);
        assert_eq!(dom.len(), 1);
        assert!(dom.contains(&(HAS_CHILD, wk::RDFS_DOMAIN, MAMMAL)));
        let rng = derive(&main, scm_rng1);
        assert!(rng.contains(&(HAS_CHILD, wk::RDFS_RANGE, MAMMAL)));
    }

    #[test]
    fn scm_dom2_and_rng2_propagate_down_the_property_hierarchy() {
        let main = store(&[
            (HAS_CHILD, wk::RDFS_DOMAIN, HUMAN),
            (HAS_CHILD, wk::RDFS_RANGE, MAMMAL),
            (HAS_SON, wk::RDFS_SUB_PROPERTY_OF, HAS_CHILD),
        ]);
        let dom = derive(&main, scm_dom2);
        assert!(dom.contains(&(HAS_SON, wk::RDFS_DOMAIN, HUMAN)));
        let rng = derive(&main, scm_rng2);
        assert!(rng.contains(&(HAS_SON, wk::RDFS_RANGE, MAMMAL)));
    }

    #[test]
    fn semi_naive_passes_cover_new_on_either_side() {
        // main has everything, new only has the instance triple: the join
        // must still fire (pass 2: left=main schema, right=new instances).
        let main = store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (BART, wk::RDF_TYPE, HUMAN),
        ]);
        let new = store(&[(BART, wk::RDF_TYPE, HUMAN)]);
        let ctx = RuleContext::new(&main, &new);
        let mut out = InferredBuffer::new();
        cax_sco(&ctx, &mut out);
        let derived = crate::executors::test_support::buffer_to_set(&out);
        assert!(derived.contains(&(BART, wk::RDF_TYPE, MAMMAL)));

        // Symmetric situation: only the schema triple is new.
        let new = store(&[(HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL)]);
        let ctx = RuleContext::new(&main, &new);
        let mut out = InferredBuffer::new();
        cax_sco(&ctx, &mut out);
        let derived = crate::executors::test_support::buffer_to_set(&out);
        assert!(derived.contains(&(BART, wk::RDF_TYPE, MAMMAL)));
    }

    #[test]
    fn missing_tables_are_handled_gracefully() {
        let main = store(&[(BART, wk::RDF_TYPE, HUMAN)]); // no subClassOf table
        let derived = derive(&main, cax_sco);
        assert!(derived.is_empty());
    }
}
