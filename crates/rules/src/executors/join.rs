//! The generic sort-merge join over two sorted pair views.
//!
//! A *view* is a flat `[key0, payload0, key1, payload1, …]` array sorted on
//! `(key, payload)`. The ⟨s,o⟩-sorted table is a subject-keyed view; the
//! ⟨o,s⟩ cache is an object-keyed view. The join walks both views once,
//! emitting the cross product of every equal-key group — the access pattern
//! is purely sequential, which is the whole point of the paper's design.

/// Which component of a property table a join binds to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinSide {
    /// Join on the subject: use the ⟨s,o⟩-sorted array (payload = object).
    Subject,
    /// Join on the object: use the ⟨o,s⟩-sorted array (payload = subject).
    Object,
}

/// Sort-merge join of two sorted views. For every pair of entries with equal
/// keys, `emit(key, left_payload, right_payload)` is called.
pub fn merge_join(left: &[u64], right: &[u64], mut emit: impl FnMut(u64, u64, u64)) {
    debug_assert!(left.len().is_multiple_of(2) && right.len().is_multiple_of(2));
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        let lk = left[i];
        let rk = right[j];
        if lk < rk {
            i += 2;
        } else if lk > rk {
            j += 2;
        } else {
            // Find the extent of the equal-key group on both sides.
            let mut i_end = i;
            while i_end < left.len() && left[i_end] == lk {
                i_end += 2;
            }
            let mut j_end = j;
            while j_end < right.len() && right[j_end] == rk {
                j_end += 2;
            }
            for li in (i..i_end).step_by(2) {
                for rj in (j..j_end).step_by(2) {
                    emit(lk, left[li + 1], right[rj + 1]);
                }
            }
            i = i_end;
            j = j_end;
        }
    }
}

/// Counts the matches a [`merge_join`] would emit (used by tests and by the
/// benchmark harness to size buffers).
pub fn merge_join_count(left: &[u64], right: &[u64]) -> usize {
    let mut count = 0usize;
    merge_join(left, right, |_, _, _| count += 1);
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sides_produce_no_matches() {
        assert_eq!(merge_join_count(&[], &[]), 0);
        assert_eq!(merge_join_count(&[1, 2], &[]), 0);
        assert_eq!(merge_join_count(&[], &[1, 2]), 0);
    }

    #[test]
    fn disjoint_keys_produce_no_matches() {
        assert_eq!(merge_join_count(&[1, 10, 3, 30], &[2, 20, 4, 40]), 0);
    }

    #[test]
    fn single_match() {
        let mut results = Vec::new();
        merge_join(&[1, 10, 2, 20], &[2, 200, 3, 300], |k, l, r| {
            results.push((k, l, r));
        });
        assert_eq!(results, vec![(2, 20, 200)]);
    }

    #[test]
    fn equal_key_groups_emit_the_cross_product() {
        // Left has key 5 twice, right has key 5 three times → 6 matches.
        let left = [5u64, 1, 5, 2, 7, 9];
        let right = [4u64, 0, 5, 10, 5, 11, 5, 12];
        let mut results = Vec::new();
        merge_join(&left, &right, |k, l, r| results.push((k, l, r)));
        assert_eq!(results.len(), 6);
        assert!(results.contains(&(5, 1, 10)));
        assert!(results.contains(&(5, 2, 12)));
        assert!(!results.iter().any(|&(k, _, _)| k == 7));
    }

    #[test]
    fn join_is_symmetric_in_count() {
        let a = [1u64, 0, 1, 1, 2, 0, 3, 0];
        let b = [1u64, 5, 2, 6, 2, 7];
        assert_eq!(merge_join_count(&a, &b), merge_join_count(&b, &a));
        assert_eq!(merge_join_count(&a, &b), 4);
    }
}
