//! PRP-FP / PRP-IFP: the three-antecedent functional-property rules.
//!
//! "PRP-FP and PRP-IFP are identical (except for the first property), the
//! system iterates on all functional and inverse-functional properties, and
//! performs self-joins on each property table. For PRP-FP, sorted property
//! tables on ⟨s,o⟩ and ⟨o,s⟩ allow linear-time self-joins. The total
//! complexity is O(k·n)" (§4.4).
//!
//! For every group of pairs sharing a subject (PRP-FP) or an object
//! (PRP-IFP), the executor emits `owl:sameAs` links between *consecutive*
//! distinct values of the group rather than the full quadratic set — the
//! symmetric/transitive closure of `owl:sameAs` (EQ-SYM + EQ-TRANS) restores
//! the complete relation at the fixed-point, exactly as in the original
//! system.

use crate::context::RuleContext;
use inferray_dictionary::wellknown;
use inferray_model::ids::is_property_id;
use inferray_store::InferredBuffer;

/// PRP-FP: `p a owl:FunctionalProperty, x p y1, x p y2 (y1 ≠ y2) ⇒ y1 sameAs y2`.
pub fn prp_fp(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    let functional = RuleContext::subjects_with_object(
        ctx.main,
        wellknown::RDF_TYPE,
        wellknown::OWL_FUNCTIONAL_PROPERTY,
    );
    for p in functional {
        if !is_property_id(p) {
            continue;
        }
        let Some(table) = ctx.main.table(p) else {
            continue;
        };
        // ⟨s,o⟩ order: pairs with the same subject are adjacent.
        emit_links_between_group_values(table.pairs(), out);
    }
}

/// PRP-IFP: `p a owl:InverseFunctionalProperty, x1 p y, x2 p y (x1 ≠ x2) ⇒ x1 sameAs x2`.
pub fn prp_ifp(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    let inverse_functional = RuleContext::subjects_with_object(
        ctx.main,
        wellknown::RDF_TYPE,
        wellknown::OWL_INVERSE_FUNCTIONAL_PROPERTY,
    );
    for p in inverse_functional {
        if !is_property_id(p) {
            continue;
        }
        let Some(table) = ctx.main.table(p) else {
            continue;
        };
        // ⟨o,s⟩ order: pairs with the same object are adjacent.
        let view = RuleContext::object_view_of(table);
        emit_links_between_group_values(&view, out);
    }
}

/// Walks a key-sorted flat pair view and, inside every equal-key group, emits
/// `owl:sameAs` links between consecutive distinct payload values.
fn emit_links_between_group_values(view: &[u64], out: &mut InferredBuffer) {
    let mut i = 0usize;
    while i < view.len() {
        let key = view[i];
        let mut previous = view[i + 1];
        let mut j = i + 2;
        while j < view.len() && view[j] == key {
            let value = view[j + 1];
            if value != previous {
                out.add(wellknown::OWL_SAME_AS, previous, value);
            }
            previous = value;
            j += 2;
        }
        i = j;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::test_support::{derive, store};
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;

    const ALICE: u64 = 6_000_000;
    const BOB: u64 = 6_000_001;
    const EMAIL_A: u64 = 6_000_002;
    const EMAIL_B: u64 = 6_000_003;
    const EMAIL_C: u64 = 6_000_004;

    #[test]
    fn prp_fp_links_multiple_values_of_a_functional_property() {
        let has_mother = nth_property_id(400);
        let main = store(&[
            (has_mother, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
            (ALICE, has_mother, EMAIL_A),
            (ALICE, has_mother, EMAIL_B),
            (ALICE, has_mother, EMAIL_C),
            (BOB, has_mother, EMAIL_A), // single value: nothing derived for BOB
        ]);
        let derived = derive(&main, prp_fp);
        // Consecutive links over the sorted objects of ALICE.
        assert!(derived.contains(&(EMAIL_A, wk::OWL_SAME_AS, EMAIL_B)));
        assert!(derived.contains(&(EMAIL_B, wk::OWL_SAME_AS, EMAIL_C)));
        assert_eq!(derived.len(), 2);
    }

    #[test]
    fn prp_ifp_links_subjects_sharing_a_value() {
        let mailbox = nth_property_id(401);
        let main = store(&[
            (mailbox, wk::RDF_TYPE, wk::OWL_INVERSE_FUNCTIONAL_PROPERTY),
            (ALICE, mailbox, EMAIL_A),
            (BOB, mailbox, EMAIL_A),
            (BOB, mailbox, EMAIL_B), // unique value: no link from this one
        ]);
        let derived = derive(&main, prp_ifp);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(ALICE, wk::OWL_SAME_AS, BOB)]
        );
    }

    #[test]
    fn non_functional_properties_are_ignored() {
        let knows = nth_property_id(402);
        let main = store(&[(ALICE, knows, EMAIL_A), (ALICE, knows, EMAIL_B)]);
        assert!(derive(&main, prp_fp).is_empty());
        assert!(derive(&main, prp_ifp).is_empty());
    }

    #[test]
    fn functional_declaration_without_data_is_a_no_op() {
        let p = nth_property_id(403);
        let main = store(&[(p, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY)]);
        assert!(derive(&main, prp_fp).is_empty());
    }

    #[test]
    fn duplicate_values_do_not_produce_reflexive_links() {
        let p = nth_property_id(404);
        let main = store(&[
            (p, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
            (ALICE, p, EMAIL_A),
            (ALICE, p, EMAIL_A),
        ]);
        // The table is deduplicated at finalize, so only one value remains.
        assert!(derive(&main, prp_fp).is_empty());
    }
}
