//! β-rules: self-joins of one property table, subject against object.
//!
//! `SCM-EQC2` and `SCM-EQP2` detect mutual subsumption: when both `(c1, c2)`
//! and `(c2, c1)` are in the hierarchy table, the two classes (properties)
//! are equivalent. With the table sorted on ⟨s,o⟩ the reversed pair is found
//! by a binary search, so the whole rule is a linear scan of the *new* pairs
//! with a logarithmic probe each — the "standard sort-merge join … with the
//! potential overhead of computing the ⟨o,s⟩-sorted table" the paper
//! describes degenerates to this simpler form because both antecedents use
//! the same table.

use crate::context::RuleContext;
use inferray_dictionary::wellknown;
use inferray_store::InferredBuffer;

/// Generic β executor: for every `(a, b)` in the *new* part of
/// `hierarchy_prop` such that `(b, a)` is in *main*, emit both
/// `⟨a, out_prop, b⟩` and `⟨b, out_prop, a⟩`.
///
/// Both orientations must be emitted from a single new pair: the reversed
/// pair `(b, a)` may be old (in `main` only), in which case no later
/// iteration would ever produce the `⟨b, out_prop, a⟩` head. Duplicates
/// (when both pairs are new) are removed by the merge step.
fn apply_beta(hierarchy_prop: u64, out_prop: u64, ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    let Some(main_table) = ctx.main.table(hierarchy_prop) else {
        return;
    };
    let Some(new_table) = ctx.new.table(hierarchy_prop) else {
        return;
    };
    for (a, b) in new_table.iter_pairs() {
        if main_table.contains_pair(b, a) {
            out.add(out_prop, a, b);
            out.add(out_prop, b, a);
        }
    }
}

/// SCM-EQC2: `c1 ⊑ c2, c2 ⊑ c1 ⇒ c1 ≡ c2`.
pub fn scm_eqc2(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_beta(
        wellknown::RDFS_SUB_CLASS_OF,
        wellknown::OWL_EQUIVALENT_CLASS,
        ctx,
        out,
    );
}

/// SCM-EQP2: `p1 ⊑ₚ p2, p2 ⊑ₚ p1 ⇒ p1 ≡ₚ p2`.
pub fn scm_eqp2(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    apply_beta(
        wellknown::RDFS_SUB_PROPERTY_OF,
        wellknown::OWL_EQUIVALENT_PROPERTY,
        ctx,
        out,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::test_support::{buffer_to_set, derive, store};
    use inferray_dictionary::wellknown as wk;

    const A: u64 = 2_000_000;
    const B: u64 = 2_000_001;
    const C: u64 = 2_000_002;
    const P: u64 = 900;
    const Q: u64 = 901;

    #[test]
    fn mutual_subclasses_become_equivalent() {
        let main = store(&[
            (A, wk::RDFS_SUB_CLASS_OF, B),
            (B, wk::RDFS_SUB_CLASS_OF, A),
            (A, wk::RDFS_SUB_CLASS_OF, C), // one-directional: no equivalence
        ]);
        let derived = derive(&main, scm_eqc2);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![
                (A, wk::OWL_EQUIVALENT_CLASS, B),
                (B, wk::OWL_EQUIVALENT_CLASS, A)
            ]
        );
    }

    #[test]
    fn reflexive_subclass_yields_reflexive_equivalence() {
        let main = store(&[(A, wk::RDFS_SUB_CLASS_OF, A)]);
        let derived = derive(&main, scm_eqc2);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(A, wk::OWL_EQUIVALENT_CLASS, A)]
        );
    }

    #[test]
    fn mutual_subproperties_become_equivalent() {
        let main = store(&[
            (P, wk::RDFS_SUB_PROPERTY_OF, Q),
            (Q, wk::RDFS_SUB_PROPERTY_OF, P),
        ]);
        let derived = derive(&main, scm_eqp2);
        assert!(derived.contains(&(P, wk::OWL_EQUIVALENT_PROPERTY, Q)));
        assert!(derived.contains(&(Q, wk::OWL_EQUIVALENT_PROPERTY, P)));
    }

    #[test]
    fn semi_naive_detects_the_cycle_closed_by_a_new_pair() {
        // (A ⊑ B) is old; (B ⊑ A) arrives in `new`. The rule must fire for
        // the new pair against main and emit *both* orientations of the
        // equivalence: (A ⊑ B) will never be in `new` again, so this is the
        // only chance to derive (A ≡ B).
        let main = store(&[(A, wk::RDFS_SUB_CLASS_OF, B), (B, wk::RDFS_SUB_CLASS_OF, A)]);
        let new = store(&[(B, wk::RDFS_SUB_CLASS_OF, A)]);
        let ctx = RuleContext::new(&main, &new);
        let mut out = InferredBuffer::new();
        scm_eqc2(&ctx, &mut out);
        let derived = buffer_to_set(&out);
        assert!(derived.contains(&(B, wk::OWL_EQUIVALENT_CLASS, A)));
        assert!(derived.contains(&(A, wk::OWL_EQUIVALENT_CLASS, B)));
    }

    #[test]
    fn no_table_no_derivation() {
        let main = store(&[(A, wk::RDF_TYPE, B)]);
        assert!(derive(&main, scm_eqc2).is_empty());
        assert!(derive(&main, scm_eqp2).is_empty());
    }
}
