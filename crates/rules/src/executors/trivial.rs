//! Single-antecedent ("trivial") rules.
//!
//! These rules need no join at all: every matching triple of the *new* store
//! directly produces its head triples. The paper keeps most of them out of
//! the default rulesets because they "derive triples that do not convey
//! interesting knowledge, but satisfy the logician"; they are included in the
//! *full* ruleset flavours (half circles of Table 5).

use crate::context::RuleContext;
use inferray_dictionary::wellknown;
use inferray_store::InferredBuffer;

/// Iterates the `rdf:type` pairs of the *new* store whose object is `class`,
/// calling `handle(subject)` for each.
fn for_new_instances_of(ctx: &RuleContext<'_>, class: u64, mut handle: impl FnMut(u64)) {
    if let Some(table) = ctx.new.table(wellknown::RDF_TYPE) {
        for (s, o) in table.iter_pairs() {
            if o == class {
                handle(s);
            }
        }
    }
}

/// EQ-SYM: `x sameAs y ⇒ y sameAs x`.
pub fn eq_sym(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    if let Some(table) = ctx.new.table(wellknown::OWL_SAME_AS) {
        for (x, y) in table.iter_pairs() {
            if x != y {
                out.add(wellknown::OWL_SAME_AS, y, x);
            }
        }
    }
}

/// SCM-EQC1: `c1 ≡ c2 ⇒ c1 ⊑ c2, c2 ⊑ c1`.
pub fn scm_eqc1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    if let Some(table) = ctx.new.table(wellknown::OWL_EQUIVALENT_CLASS) {
        for (c1, c2) in table.iter_pairs() {
            out.add(wellknown::RDFS_SUB_CLASS_OF, c1, c2);
            out.add(wellknown::RDFS_SUB_CLASS_OF, c2, c1);
        }
    }
}

/// SCM-EQP1: `p1 ≡ₚ p2 ⇒ p1 ⊑ₚ p2, p2 ⊑ₚ p1`.
pub fn scm_eqp1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    if let Some(table) = ctx.new.table(wellknown::OWL_EQUIVALENT_PROPERTY) {
        for (p1, p2) in table.iter_pairs() {
            out.add(wellknown::RDFS_SUB_PROPERTY_OF, p1, p2);
            out.add(wellknown::RDFS_SUB_PROPERTY_OF, p2, p1);
        }
    }
}

/// SCM-CLS: `c a owl:Class ⇒ c ⊑ c, c ≡ c, c ⊑ owl:Thing, owl:Nothing ⊑ c`.
pub fn scm_cls(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::OWL_CLASS, |c| {
        out.add(wellknown::RDFS_SUB_CLASS_OF, c, c);
        out.add(wellknown::OWL_EQUIVALENT_CLASS, c, c);
        out.add(wellknown::RDFS_SUB_CLASS_OF, c, wellknown::OWL_THING);
        out.add(wellknown::RDFS_SUB_CLASS_OF, wellknown::OWL_NOTHING, c);
    });
}

/// SCM-DP: `p a owl:DatatypeProperty ⇒ p ⊑ₚ p, p ≡ₚ p`.
pub fn scm_dp(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::OWL_DATATYPE_PROPERTY, |p| {
        out.add(wellknown::RDFS_SUB_PROPERTY_OF, p, p);
        out.add(wellknown::OWL_EQUIVALENT_PROPERTY, p, p);
    });
}

/// SCM-OP: `p a owl:ObjectProperty ⇒ p ⊑ₚ p, p ≡ₚ p`.
pub fn scm_op(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::OWL_OBJECT_PROPERTY, |p| {
        out.add(wellknown::RDFS_SUB_PROPERTY_OF, p, p);
        out.add(wellknown::OWL_EQUIVALENT_PROPERTY, p, p);
    });
}

/// RDFS4: `x p y ⇒ x a rdfs:Resource, y a rdfs:Resource`.
pub fn rdfs4(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for (_, table) in ctx.new.iter_tables() {
        for (x, y) in table.iter_pairs() {
            out.add(wellknown::RDF_TYPE, x, wellknown::RDFS_RESOURCE);
            out.add(wellknown::RDF_TYPE, y, wellknown::RDFS_RESOURCE);
        }
    }
}

/// RDFS6: `x a rdf:Property ⇒ x ⊑ₚ x`.
pub fn rdfs6(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::RDF_PROPERTY, |x| {
        out.add(wellknown::RDFS_SUB_PROPERTY_OF, x, x);
    });
}

/// RDFS8: `x a rdfs:Class ⇒ x ⊑ rdfs:Resource`.
pub fn rdfs8(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::RDFS_CLASS, |x| {
        out.add(wellknown::RDFS_SUB_CLASS_OF, x, wellknown::RDFS_RESOURCE);
    });
}

/// RDFS10: `x a rdfs:Class ⇒ x ⊑ x`.
pub fn rdfs10(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::RDFS_CLASS, |x| {
        out.add(wellknown::RDFS_SUB_CLASS_OF, x, x);
    });
}

/// RDFS12: `x a rdfs:ContainerMembershipProperty ⇒ x ⊑ₚ rdfs:member`.
pub fn rdfs12(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::RDFS_CONTAINER_MEMBERSHIP_PROPERTY, |x| {
        out.add(wellknown::RDFS_SUB_PROPERTY_OF, x, wellknown::RDFS_MEMBER);
    });
}

/// RDFS13: `x a rdfs:Datatype ⇒ x ⊑ rdfs:Literal`.
pub fn rdfs13(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_new_instances_of(ctx, wellknown::RDFS_DATATYPE, |x| {
        out.add(wellknown::RDFS_SUB_CLASS_OF, x, wellknown::RDFS_LITERAL);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::test_support::{derive, store};
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;

    const A: u64 = 5_000_000;
    const B: u64 = 5_000_001;

    #[test]
    fn eq_sym_adds_the_symmetric_pair_once() {
        let main = store(&[(A, wk::OWL_SAME_AS, B), (B, wk::OWL_SAME_AS, B)]);
        let derived = derive(&main, eq_sym);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(B, wk::OWL_SAME_AS, A)]
        );
    }

    #[test]
    fn scm_eqc1_and_eqp1_expand_equivalences() {
        let p = nth_property_id(300);
        let q = nth_property_id(301);
        let main = store(&[
            (A, wk::OWL_EQUIVALENT_CLASS, B),
            (p, wk::OWL_EQUIVALENT_PROPERTY, q),
        ]);
        let classes = derive(&main, scm_eqc1);
        assert!(classes.contains(&(A, wk::RDFS_SUB_CLASS_OF, B)));
        assert!(classes.contains(&(B, wk::RDFS_SUB_CLASS_OF, A)));
        let props = derive(&main, scm_eqp1);
        assert!(props.contains(&(p, wk::RDFS_SUB_PROPERTY_OF, q)));
        assert!(props.contains(&(q, wk::RDFS_SUB_PROPERTY_OF, p)));
    }

    #[test]
    fn scm_cls_produces_the_four_axioms() {
        let main = store(&[(A, wk::RDF_TYPE, wk::OWL_CLASS)]);
        let derived = derive(&main, scm_cls);
        assert_eq!(derived.len(), 4);
        assert!(derived.contains(&(A, wk::RDFS_SUB_CLASS_OF, A)));
        assert!(derived.contains(&(A, wk::OWL_EQUIVALENT_CLASS, A)));
        assert!(derived.contains(&(A, wk::RDFS_SUB_CLASS_OF, wk::OWL_THING)));
        assert!(derived.contains(&(wk::OWL_NOTHING, wk::RDFS_SUB_CLASS_OF, A)));
    }

    #[test]
    fn scm_dp_and_op_make_properties_self_related() {
        let p = nth_property_id(302);
        let q = nth_property_id(303);
        let main = store(&[
            (p, wk::RDF_TYPE, wk::OWL_DATATYPE_PROPERTY),
            (q, wk::RDF_TYPE, wk::OWL_OBJECT_PROPERTY),
        ]);
        let dp = derive(&main, scm_dp);
        assert!(dp.contains(&(p, wk::RDFS_SUB_PROPERTY_OF, p)));
        assert!(dp.contains(&(p, wk::OWL_EQUIVALENT_PROPERTY, p)));
        assert!(!dp.contains(&(q, wk::RDFS_SUB_PROPERTY_OF, q)));
        let op = derive(&main, scm_op);
        assert!(op.contains(&(q, wk::OWL_EQUIVALENT_PROPERTY, q)));
    }

    #[test]
    fn rdfs4_types_every_node_as_resource() {
        let p = nth_property_id(304);
        let main = store(&[(A, p, B)]);
        let derived = derive(&main, rdfs4);
        assert!(derived.contains(&(A, wk::RDF_TYPE, wk::RDFS_RESOURCE)));
        assert!(derived.contains(&(B, wk::RDF_TYPE, wk::RDFS_RESOURCE)));
    }

    #[test]
    fn rdfs_axiomatic_class_and_property_rules() {
        let main = store(&[
            (A, wk::RDF_TYPE, wk::RDFS_CLASS),
            (B, wk::RDF_TYPE, wk::RDF_PROPERTY),
        ]);
        let d8 = derive(&main, rdfs8);
        assert!(d8.contains(&(A, wk::RDFS_SUB_CLASS_OF, wk::RDFS_RESOURCE)));
        let d10 = derive(&main, rdfs10);
        assert!(d10.contains(&(A, wk::RDFS_SUB_CLASS_OF, A)));
        let d6 = derive(&main, rdfs6);
        assert!(d6.contains(&(B, wk::RDFS_SUB_PROPERTY_OF, B)));
    }

    #[test]
    fn rdfs12_and_13() {
        let main = store(&[
            (A, wk::RDF_TYPE, wk::RDFS_CONTAINER_MEMBERSHIP_PROPERTY),
            (B, wk::RDF_TYPE, wk::RDFS_DATATYPE),
        ]);
        let d12 = derive(&main, rdfs12);
        assert!(d12.contains(&(A, wk::RDFS_SUB_PROPERTY_OF, wk::RDFS_MEMBER)));
        let d13 = derive(&main, rdfs13);
        assert!(d13.contains(&(B, wk::RDFS_SUB_CLASS_OF, wk::RDFS_LITERAL)));
    }

    #[test]
    fn trivial_rules_only_look_at_new_triples() {
        let main = store(&[(A, wk::OWL_SAME_AS, B)]);
        let empty_new = store(&[]);
        let ctx = RuleContext::new(&main, &empty_new);
        let mut out = InferredBuffer::new();
        eq_sym(&ctx, &mut out);
        assert!(out.is_empty(), "single-antecedent rules are driven by new");
    }
}
