//! The `owl:sameAs` replacement rules (EQ-REP-S / EQ-REP-P / EQ-REP-O).
//!
//! "The four same-as rules generate a significant number of triples.
//! Choosing the base table for joining is obvious — since the second triple
//! patterns select the entire database. Inferray handles the four rules with
//! a single loop, iterating over the same-as property table" (§4.4). The
//! executors below follow that plan: the outer loop walks the `owl:sameAs`
//! pairs, the inner loop walks the property tables of the complementary
//! store. `EQ-SYM`, the fourth rule, is a trivial single-antecedent rule and
//! lives in [`crate::executors::trivial`].

use crate::context::RuleContext;
use inferray_dictionary::wellknown;
use inferray_model::ids::is_property_id;
use inferray_store::{InferredBuffer, TripleStore};

/// Iterates the sameAs pairs semi-naively: new pairs against the main data,
/// then all pairs against the new data.
fn for_same_as(
    ctx: &RuleContext<'_>,
    out: &mut InferredBuffer,
    mut handle: impl FnMut(u64, u64, &TripleStore, &mut InferredBuffer),
) {
    if let Some(table) = ctx.new.table(wellknown::OWL_SAME_AS) {
        for (a, b) in table.iter_pairs() {
            if a != b {
                handle(a, b, ctx.main, out);
            }
        }
    }
    if let Some(table) = ctx.main.table(wellknown::OWL_SAME_AS) {
        for (a, b) in table.iter_pairs() {
            if a != b {
                handle(a, b, ctx.new, out);
            }
        }
    }
}

/// EQ-REP-S: `s1 sameAs s2, s1 p o ⇒ s2 p o`.
pub fn eq_rep_s(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_same_as(ctx, out, |s1, s2, data, out| {
        for (p, table) in data.iter_tables() {
            for o in table.objects_of(s1) {
                out.add(p, s2, o);
            }
        }
    });
}

/// EQ-REP-O: `o1 sameAs o2, s p o1 ⇒ s p o2`.
pub fn eq_rep_o(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_same_as(ctx, out, |o1, o2, data, out| {
        for (p, table) in data.iter_tables() {
            let view = RuleContext::object_view_of(table);
            // The object view is sorted on (object, subject); scan the run
            // of `o1` with a binary search for its start.
            let mut index = lower_bound(&view, o1);
            while index < view.len() && view[index] == o1 {
                out.add(p, view[index + 1], o2);
                index += 2;
            }
        }
    });
}

/// EQ-REP-P: `p1 sameAs p2, s p1 o ⇒ s p2 o`.
pub fn eq_rep_p(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_same_as(ctx, out, |p1, p2, data, out| {
        if !is_property_id(p1) || !is_property_id(p2) {
            return;
        }
        if let Some(table) = data.table(p1) {
            out.add_pairs(p2, table.pairs());
        }
    });
}

/// First element offset of the run whose key (first component) is `key` in a
/// key-sorted flat pair view.
fn lower_bound(view: &[u64], key: u64) -> usize {
    let n = view.len() / 2;
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = (lo + hi) / 2;
        if view[2 * mid] < key {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    2 * lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::test_support::{derive, store};
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;

    const ALICE: u64 = 4_000_000;
    const ALIZ: u64 = 4_000_001;
    const BOB: u64 = 4_000_002;
    const LYON: u64 = 4_000_003;

    fn prop(n: usize) -> u64 {
        nth_property_id(200 + n)
    }

    #[test]
    fn eq_rep_s_replaces_subjects() {
        let knows = prop(0);
        let main = store(&[
            (ALICE, wk::OWL_SAME_AS, ALIZ),
            (ALICE, knows, BOB),
            (BOB, knows, LYON),
        ]);
        let derived = derive(&main, eq_rep_s);
        assert!(derived.contains(&(ALIZ, knows, BOB)));
        assert!(!derived.contains(&(ALIZ, knows, LYON)));
        // The sameAs triple itself also has ALICE as subject, so the rule
        // derives (ALIZ sameAs ALIZ) too — harmless, removed as duplicate of
        // nothing (it is genuinely new but trivially true).
        assert!(derived.contains(&(ALIZ, wk::OWL_SAME_AS, ALIZ)));
    }

    #[test]
    fn eq_rep_o_replaces_objects() {
        let knows = prop(0);
        let main = store(&[
            (ALICE, wk::OWL_SAME_AS, ALIZ),
            (BOB, knows, ALICE),
            (BOB, knows, LYON),
        ]);
        let derived = derive(&main, eq_rep_o);
        // Only the object equal to the sameAs subject is substituted; the
        // LYON-valued triple contributes nothing.
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(BOB, knows, ALIZ)]
        );
    }

    #[test]
    fn eq_rep_p_copies_property_tables() {
        let knows = prop(0);
        let acquainted = prop(1);
        let main = store(&[(knows, wk::OWL_SAME_AS, acquainted), (ALICE, knows, BOB)]);
        let derived = derive(&main, eq_rep_p);
        assert!(derived.contains(&(ALICE, acquainted, BOB)));
    }

    #[test]
    fn same_as_between_individuals_does_not_touch_property_tables() {
        let knows = prop(0);
        let main = store(&[(ALICE, wk::OWL_SAME_AS, ALIZ), (ALICE, knows, BOB)]);
        let derived = derive(&main, eq_rep_p);
        // ALICE is not a property id, so EQ-REP-P derives nothing.
        assert!(derived.is_empty());
    }

    #[test]
    fn reflexive_same_as_is_skipped() {
        let knows = prop(0);
        let main = store(&[(ALICE, wk::OWL_SAME_AS, ALICE), (ALICE, knows, BOB)]);
        assert!(derive(&main, eq_rep_s).is_empty());
        assert!(derive(&main, eq_rep_o).is_empty());
    }

    #[test]
    fn no_same_as_table_derives_nothing() {
        let knows = prop(0);
        let main = store(&[(ALICE, knows, BOB)]);
        assert!(derive(&main, eq_rep_s).is_empty());
        assert!(derive(&main, eq_rep_o).is_empty());
        assert!(derive(&main, eq_rep_p).is_empty());
    }

    #[test]
    fn lower_bound_finds_run_starts() {
        let view = [1u64, 9, 3, 9, 3, 10, 7, 0];
        assert_eq!(lower_bound(&view, 1), 0);
        assert_eq!(lower_bound(&view, 3), 2);
        assert_eq!(lower_bound(&view, 7), 6);
        assert_eq!(lower_bound(&view, 0), 0);
        assert_eq!(lower_bound(&view, 8), 8);
    }
}
