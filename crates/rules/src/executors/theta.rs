//! θ-rules: transitivity, handled by the closure machinery.
//!
//! Inferray computes the transitive closures of `rdfs:subClassOf`,
//! `rdfs:subPropertyOf`, `owl:sameAs` and of every declared
//! `owl:TransitiveProperty` **before** the fixed-point loop (§4.1). The
//! executors in this module cover the complementary case: when an iteration
//! of the loop *adds* pairs to one of those tables (e.g. `SCM-EQC1` deriving
//! new `subClassOf` links from an equivalence), the closure of the affected
//! table is recomputed with the same Nuutila machinery and the missing pairs
//! are emitted. When nothing new touched the table the executor is a no-op,
//! so the up-front closure is never repeated.

use crate::context::RuleContext;
use inferray_closure::transitive_closure;
use inferray_dictionary::wellknown;
use inferray_model::ids::is_property_id;
use inferray_store::InferredBuffer;

/// SCM-SCO: transitivity of `rdfs:subClassOf`.
pub fn scm_sco(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    close_if_new(ctx, wellknown::RDFS_SUB_CLASS_OF, false, out);
}

/// SCM-SPO: transitivity of `rdfs:subPropertyOf`.
pub fn scm_spo(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    close_if_new(ctx, wellknown::RDFS_SUB_PROPERTY_OF, false, out);
}

/// EQ-TRANS: transitivity of `owl:sameAs` (which is also symmetric, so the
/// symmetric pairs are added before closing, as in §4.1).
pub fn eq_trans(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    close_if_new(ctx, wellknown::OWL_SAME_AS, true, out);
}

/// PRP-TRP: transitivity of every property declared `owl:TransitiveProperty`.
pub fn prp_trp(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    // Properties newly declared transitive must be closed even if their
    // table did not change this iteration.
    let newly_declared = RuleContext::subjects_with_object(
        ctx.new,
        wellknown::RDF_TYPE,
        wellknown::OWL_TRANSITIVE_PROPERTY,
    );
    let all_declared = RuleContext::subjects_with_object(
        ctx.main,
        wellknown::RDF_TYPE,
        wellknown::OWL_TRANSITIVE_PROPERTY,
    );
    for &p in &all_declared {
        if !is_property_id(p) {
            continue;
        }
        let force = newly_declared.contains(&p);
        if force {
            close_table(ctx, p, false, out);
        } else {
            close_if_new(ctx, p, false, out);
        }
    }
}

/// Recomputes the closure of `prop` when the previous iteration added pairs
/// to it.
fn close_if_new(ctx: &RuleContext<'_>, prop: u64, symmetric: bool, out: &mut InferredBuffer) {
    let has_new = ctx.new.table(prop).is_some_and(|t| !t.is_empty());
    if !has_new {
        return;
    }
    close_table(ctx, prop, symmetric, out);
}

/// Closes the *main* table of `prop`, emitting every closure pair that is not
/// already present.
fn close_table(ctx: &RuleContext<'_>, prop: u64, symmetric: bool, out: &mut InferredBuffer) {
    let Some(table) = ctx.main.table(prop) else {
        return;
    };
    if table.is_empty() {
        return;
    }
    let mut edges = table.to_tuple_pairs();
    if symmetric {
        let swapped: Vec<(u64, u64)> = edges.iter().map(|&(a, b)| (b, a)).collect();
        edges.extend(swapped);
    }
    for (a, b) in transitive_closure(&edges) {
        if !table.contains_pair(a, b) {
            out.add(prop, a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::test_support::{buffer_to_set, derive, store};
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;

    const A: u64 = 7_000_000;
    const B: u64 = 7_000_001;
    const C: u64 = 7_000_002;
    const D: u64 = 7_000_003;

    #[test]
    fn scm_sco_closes_a_chain() {
        let main = store(&[
            (A, wk::RDFS_SUB_CLASS_OF, B),
            (B, wk::RDFS_SUB_CLASS_OF, C),
            (C, wk::RDFS_SUB_CLASS_OF, D),
        ]);
        let derived = derive(&main, scm_sco);
        assert_eq!(derived.len(), 3);
        assert!(derived.contains(&(A, wk::RDFS_SUB_CLASS_OF, C)));
        assert!(derived.contains(&(A, wk::RDFS_SUB_CLASS_OF, D)));
        assert!(derived.contains(&(B, wk::RDFS_SUB_CLASS_OF, D)));
    }

    #[test]
    fn scm_spo_closes_property_hierarchies() {
        let p = nth_property_id(500);
        let q = nth_property_id(501);
        let r = nth_property_id(502);
        let main = store(&[
            (p, wk::RDFS_SUB_PROPERTY_OF, q),
            (q, wk::RDFS_SUB_PROPERTY_OF, r),
        ]);
        let derived = derive(&main, scm_spo);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(p, wk::RDFS_SUB_PROPERTY_OF, r)]
        );
    }

    #[test]
    fn eq_trans_closes_same_as_symmetrically() {
        let main = store(&[(A, wk::OWL_SAME_AS, B), (B, wk::OWL_SAME_AS, C)]);
        let derived = derive(&main, eq_trans);
        // The symmetric-then-transitive closure connects {A, B, C} fully,
        // including reflexive pairs; the two asserted pairs are not repeated.
        assert!(derived.contains(&(A, wk::OWL_SAME_AS, C)));
        assert!(derived.contains(&(C, wk::OWL_SAME_AS, A)));
        assert!(derived.contains(&(B, wk::OWL_SAME_AS, A)));
        assert!(derived.contains(&(A, wk::OWL_SAME_AS, A)));
        assert!(
            !derived.contains(&(A, wk::OWL_SAME_AS, B)),
            "already asserted"
        );
    }

    #[test]
    fn prp_trp_closes_declared_transitive_properties_only() {
        let ancestor = nth_property_id(503);
        let knows = nth_property_id(504);
        let main = store(&[
            (ancestor, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
            (A, ancestor, B),
            (B, ancestor, C),
            (A, knows, B),
            (B, knows, C),
        ]);
        let derived = derive(&main, prp_trp);
        assert!(derived.contains(&(A, ancestor, C)));
        assert!(!derived.iter().any(|&(_, p, _)| p == knows));
    }

    #[test]
    fn theta_rules_are_no_ops_when_nothing_new_touched_the_table() {
        let main = store(&[(A, wk::RDFS_SUB_CLASS_OF, B), (B, wk::RDFS_SUB_CLASS_OF, C)]);
        let empty_new = store(&[]);
        let ctx = RuleContext::new(&main, &empty_new);
        let mut out = InferredBuffer::new();
        scm_sco(&ctx, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn newly_declared_transitive_property_forces_a_closure() {
        let ancestor = nth_property_id(505);
        let main = store(&[
            (ancestor, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
            (A, ancestor, B),
            (B, ancestor, C),
        ]);
        // Only the declaration is new; the ancestor table itself is old.
        let new = store(&[(ancestor, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY)]);
        let ctx = RuleContext::new(&main, &new);
        let mut out = InferredBuffer::new();
        prp_trp(&ctx, &mut out);
        assert!(buffer_to_set(&out).contains(&(A, ancestor, C)));
    }
}
