//! γ- and δ-rules: rules whose second antecedent has a *variable* property.
//!
//! γ-rules (PRP-DOM, PRP-RNG, PRP-SPO1, PRP-SYMP) join a schema table on the
//! property identifier of the data pattern: "the join is performed on the
//! property of the second triple pattern. Consequently, this requires to
//! iterate over several property tables" (§4.4). δ-rules (PRP-EQP1/2,
//! PRP-INV1/2) are the special case where the data table is copied — possibly
//! reversed — into the head's table.
//!
//! Semi-naive evaluation pairs the *new* schema triples with the *main* data
//! tables and the *main* schema triples with the *new* data tables.

use crate::context::RuleContext;
use inferray_dictionary::wellknown;
use inferray_model::ids::is_property_id;
use inferray_store::{InferredBuffer, TripleStore};

/// Drives one γ/δ rule: for every `(s, o)` pair of the schema table
/// `schema_prop` (semi-naive over both stores), calls
/// `handle(s, o, data_store, out)` with the complementary data store.
fn for_schema_and_data(
    ctx: &RuleContext<'_>,
    schema_prop: u64,
    out: &mut InferredBuffer,
    mut handle: impl FnMut(u64, u64, &TripleStore, &mut InferredBuffer),
) {
    if let Some(table) = ctx.new.table(schema_prop) {
        for (s, o) in table.iter_pairs() {
            handle(s, o, ctx.main, out);
        }
    }
    if let Some(table) = ctx.main.table(schema_prop) {
        for (s, o) in table.iter_pairs() {
            handle(s, o, ctx.new, out);
        }
    }
}

/// PRP-DOM: `p domain c, x p y ⇒ x a c`.
pub fn prp_dom(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_schema_and_data(ctx, wellknown::RDFS_DOMAIN, out, |p, c, data, out| {
        if !is_property_id(p) {
            return;
        }
        if let Some(table) = data.table(p) {
            for (x, _) in table.iter_pairs() {
                out.add(wellknown::RDF_TYPE, x, c);
            }
        }
    });
}

/// PRP-RNG: `p range c, x p y ⇒ y a c`.
pub fn prp_rng(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_schema_and_data(ctx, wellknown::RDFS_RANGE, out, |p, c, data, out| {
        if !is_property_id(p) {
            return;
        }
        if let Some(table) = data.table(p) {
            for (_, y) in table.iter_pairs() {
                out.add(wellknown::RDF_TYPE, y, c);
            }
        }
    });
}

/// PRP-SPO1: `p1 ⊑ₚ p2, x p1 y ⇒ x p2 y`.
pub fn prp_spo1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_schema_and_data(
        ctx,
        wellknown::RDFS_SUB_PROPERTY_OF,
        out,
        |p1, p2, data, out| {
            if p1 == p2 || !is_property_id(p1) || !is_property_id(p2) {
                return;
            }
            if let Some(table) = data.table(p1) {
                out.add_pairs(p2, table.pairs());
            }
        },
    );
}

/// PRP-SYMP: `p a owl:SymmetricProperty, x p y ⇒ y p x`.
pub fn prp_symp(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    // Pass 1: newly declared symmetric properties against all data.
    let newly_symmetric = RuleContext::subjects_with_object(
        ctx.new,
        wellknown::RDF_TYPE,
        wellknown::OWL_SYMMETRIC_PROPERTY,
    );
    copy_reversed(&newly_symmetric, ctx.main, out);
    // Pass 2: all symmetric properties against the new data.
    let all_symmetric = RuleContext::subjects_with_object(
        ctx.main,
        wellknown::RDF_TYPE,
        wellknown::OWL_SYMMETRIC_PROPERTY,
    );
    copy_reversed(&all_symmetric, ctx.new, out);
}

fn copy_reversed(properties: &[u64], data: &TripleStore, out: &mut InferredBuffer) {
    for &p in properties {
        if !is_property_id(p) {
            continue;
        }
        if let Some(table) = data.table(p) {
            for (x, y) in table.iter_pairs() {
                out.add(p, y, x);
            }
        }
    }
}

/// PRP-EQP1: `p1 ≡ₚ p2, x p1 y ⇒ x p2 y`.
pub fn prp_eqp1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_schema_and_data(
        ctx,
        wellknown::OWL_EQUIVALENT_PROPERTY,
        out,
        |p1, p2, data, out| {
            if p1 == p2 || !is_property_id(p1) || !is_property_id(p2) {
                return;
            }
            if let Some(table) = data.table(p1) {
                out.add_pairs(p2, table.pairs());
            }
        },
    );
}

/// PRP-EQP2: `p1 ≡ₚ p2, x p2 y ⇒ x p1 y`.
pub fn prp_eqp2(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_schema_and_data(
        ctx,
        wellknown::OWL_EQUIVALENT_PROPERTY,
        out,
        |p1, p2, data, out| {
            if p1 == p2 || !is_property_id(p1) || !is_property_id(p2) {
                return;
            }
            if let Some(table) = data.table(p2) {
                out.add_pairs(p1, table.pairs());
            }
        },
    );
}

/// PRP-INV1: `p1 inverseOf p2, x p1 y ⇒ y p2 x`.
pub fn prp_inv1(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_schema_and_data(ctx, wellknown::OWL_INVERSE_OF, out, |p1, p2, data, out| {
        if !is_property_id(p1) || !is_property_id(p2) {
            return;
        }
        if let Some(table) = data.table(p1) {
            for (x, y) in table.iter_pairs() {
                out.add(p2, y, x);
            }
        }
    });
}

/// PRP-INV2: `p1 inverseOf p2, x p2 y ⇒ y p1 x`.
pub fn prp_inv2(ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    for_schema_and_data(ctx, wellknown::OWL_INVERSE_OF, out, |p1, p2, data, out| {
        if !is_property_id(p1) || !is_property_id(p2) {
            return;
        }
        if let Some(table) = data.table(p2) {
            for (x, y) in table.iter_pairs() {
                out.add(p1, y, x);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::test_support::{derive, store};
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;

    const PERSON: u64 = 3_000_000;
    const CITY: u64 = 3_000_001;
    const ALICE: u64 = 3_000_002;
    const LYON: u64 = 3_000_003;
    const BOB: u64 = 3_000_004;

    fn prop(n: usize) -> u64 {
        // Property ids outside the pre-registered vocabulary.
        nth_property_id(100 + n)
    }

    #[test]
    fn prp_dom_types_the_subject() {
        let lives_in = prop(0);
        let main = store(&[
            (lives_in, wk::RDFS_DOMAIN, PERSON),
            (ALICE, lives_in, LYON),
            (BOB, lives_in, LYON),
        ]);
        let derived = derive(&main, prp_dom);
        assert!(derived.contains(&(ALICE, wk::RDF_TYPE, PERSON)));
        assert!(derived.contains(&(BOB, wk::RDF_TYPE, PERSON)));
        assert_eq!(derived.len(), 2);
    }

    #[test]
    fn prp_rng_types_the_object() {
        let lives_in = prop(0);
        let main = store(&[(lives_in, wk::RDFS_RANGE, CITY), (ALICE, lives_in, LYON)]);
        let derived = derive(&main, prp_rng);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(LYON, wk::RDF_TYPE, CITY)]
        );
    }

    #[test]
    fn prp_spo1_copies_the_subproperty_table() {
        let has_son = prop(1);
        let has_child = prop(2);
        let main = store(&[
            (has_son, wk::RDFS_SUB_PROPERTY_OF, has_child),
            (ALICE, has_son, BOB),
        ]);
        let derived = derive(&main, prp_spo1);
        assert_eq!(
            derived.into_iter().collect::<Vec<_>>(),
            vec![(ALICE, has_child, BOB)]
        );
    }

    #[test]
    fn prp_spo1_skips_reflexive_subproperty_pairs() {
        let p = prop(3);
        let main = store(&[(p, wk::RDFS_SUB_PROPERTY_OF, p), (ALICE, p, BOB)]);
        assert!(derive(&main, prp_spo1).is_empty());
    }

    #[test]
    fn prp_symp_reverses_pairs_of_symmetric_properties() {
        let married_to = prop(4);
        let main = store(&[
            (married_to, wk::RDF_TYPE, wk::OWL_SYMMETRIC_PROPERTY),
            (ALICE, married_to, BOB),
        ]);
        let derived = derive(&main, prp_symp);
        assert!(derived.contains(&(BOB, married_to, ALICE)));
    }

    #[test]
    fn prp_eqp_copies_in_both_directions() {
        let p = prop(5);
        let q = prop(6);
        let main = store(&[
            (p, wk::OWL_EQUIVALENT_PROPERTY, q),
            (ALICE, p, LYON),
            (BOB, q, LYON),
        ]);
        let d1 = derive(&main, prp_eqp1);
        assert!(d1.contains(&(ALICE, q, LYON)));
        assert!(!d1.contains(&(BOB, p, LYON)));
        let d2 = derive(&main, prp_eqp2);
        assert!(d2.contains(&(BOB, p, LYON)));
    }

    #[test]
    fn prp_inv_reverses_in_both_directions() {
        let parent_of = prop(7);
        let child_of = prop(8);
        let main = store(&[
            (parent_of, wk::OWL_INVERSE_OF, child_of),
            (ALICE, parent_of, BOB),
            (LYON, child_of, CITY),
        ]);
        let d1 = derive(&main, prp_inv1);
        assert!(d1.contains(&(BOB, child_of, ALICE)));
        let d2 = derive(&main, prp_inv2);
        assert!(d2.contains(&(CITY, parent_of, LYON)));
    }

    #[test]
    fn schema_pairs_with_non_property_values_are_ignored() {
        // A domain triple whose subject is a resource (data error) must not
        // crash or derive anything.
        let main = store(&[(PERSON, wk::RDFS_DOMAIN, CITY), (ALICE, prop(0), LYON)]);
        assert!(derive(&main, prp_dom).is_empty());
    }

    #[test]
    fn semi_naive_covers_new_data_against_old_schema() {
        let lives_in = prop(0);
        let main = store(&[(lives_in, wk::RDFS_DOMAIN, PERSON), (ALICE, lives_in, LYON)]);
        let new = store(&[(ALICE, lives_in, LYON)]);
        let ctx = RuleContext::new(&main, &new);
        let mut out = InferredBuffer::new();
        prp_dom(&ctx, &mut out);
        let derived = crate::executors::test_support::buffer_to_set(&out);
        assert!(derived.contains(&(ALICE, wk::RDF_TYPE, PERSON)));
    }
}
