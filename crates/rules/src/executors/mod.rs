//! Rule executors, organized by the classes of §4.4.
//!
//! Every executor has the same shape: it reads the [`RuleContext`]
//! (immutable `main` / `new` stores) and appends raw `⟨s,o⟩` pairs to an
//! [`InferredBuffer`]. Duplicate elimination is *not* their job — that
//! happens in the Figure 5 merge step — but executors do apply the cheap
//! skips the paper mentions (e.g. not copying a table onto itself for a
//! reflexive `subPropertyOf` pair).
//!
//! [`apply_rule`] dispatches a [`RuleId`] to its executor; the θ rules are
//! also dispatched here (they recompute the closure of the affected table
//! when the previous iteration added pairs to it), so a caller that simply
//! applies every rule of a ruleset to a fixed-point obtains a complete
//! materialization even without the dedicated up-front closure stage.

pub mod alpha;
pub mod beta;
pub mod functional;
pub mod gamma;
pub mod join;
pub mod same_as;
pub mod theta;
pub mod trivial;

use crate::catalog::RuleId;
use crate::context::RuleContext;
use inferray_store::InferredBuffer;

/// Applies one rule to the context, appending derivations to `out`.
pub fn apply_rule(rule: RuleId, ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    match rule {
        // α — two-table sort-merge joins.
        RuleId::CaxEqc1 => alpha::cax_eqc1(ctx, out),
        RuleId::CaxEqc2 => alpha::cax_eqc2(ctx, out),
        RuleId::CaxSco => alpha::cax_sco(ctx, out),
        RuleId::ScmDom1 => alpha::scm_dom1(ctx, out),
        RuleId::ScmDom2 => alpha::scm_dom2(ctx, out),
        RuleId::ScmRng1 => alpha::scm_rng1(ctx, out),
        RuleId::ScmRng2 => alpha::scm_rng2(ctx, out),
        // β — self-joins.
        RuleId::ScmEqc2 => beta::scm_eqc2(ctx, out),
        RuleId::ScmEqp2 => beta::scm_eqp2(ctx, out),
        // γ / δ — property-variable rules.
        RuleId::PrpDom => gamma::prp_dom(ctx, out),
        RuleId::PrpRng => gamma::prp_rng(ctx, out),
        RuleId::PrpSpo1 => gamma::prp_spo1(ctx, out),
        RuleId::PrpSymp => gamma::prp_symp(ctx, out),
        RuleId::PrpEqp1 => gamma::prp_eqp1(ctx, out),
        RuleId::PrpEqp2 => gamma::prp_eqp2(ctx, out),
        RuleId::PrpInv1 => gamma::prp_inv1(ctx, out),
        RuleId::PrpInv2 => gamma::prp_inv2(ctx, out),
        // same-as.
        RuleId::EqRepS => same_as::eq_rep_s(ctx, out),
        RuleId::EqRepP => same_as::eq_rep_p(ctx, out),
        RuleId::EqRepO => same_as::eq_rep_o(ctx, out),
        // functional properties (three-antecedent rules).
        RuleId::PrpFp => functional::prp_fp(ctx, out),
        RuleId::PrpIfp => functional::prp_ifp(ctx, out),
        // θ — transitivity, recomputed incrementally inside the loop.
        RuleId::ScmSco => theta::scm_sco(ctx, out),
        RuleId::ScmSpo => theta::scm_spo(ctx, out),
        RuleId::EqTrans => theta::eq_trans(ctx, out),
        RuleId::PrpTrp => theta::prp_trp(ctx, out),
        // trivial single-antecedent rules.
        RuleId::EqSym => trivial::eq_sym(ctx, out),
        RuleId::ScmEqc1 => trivial::scm_eqc1(ctx, out),
        RuleId::ScmEqp1 => trivial::scm_eqp1(ctx, out),
        RuleId::ScmCls => trivial::scm_cls(ctx, out),
        RuleId::ScmDp => trivial::scm_dp(ctx, out),
        RuleId::ScmOp => trivial::scm_op(ctx, out),
        RuleId::Rdfs4 => trivial::rdfs4(ctx, out),
        RuleId::Rdfs6 => trivial::rdfs6(ctx, out),
        RuleId::Rdfs8 => trivial::rdfs8(ctx, out),
        RuleId::Rdfs10 => trivial::rdfs10(ctx, out),
        RuleId::Rdfs12 => trivial::rdfs12(ctx, out),
        RuleId::Rdfs13 => trivial::rdfs13(ctx, out),
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Helpers shared by the executor unit tests.

    use crate::context::RuleContext;
    use inferray_model::IdTriple;
    use inferray_store::{InferredBuffer, TripleStore};
    use std::collections::BTreeSet;

    /// Builds a finalized store from `(s, p, o)` tuples.
    pub fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    /// Applies `f` with `new == main` (the first-iteration situation) and
    /// returns the derived triples as a set.
    pub fn derive(
        main: &TripleStore,
        f: impl Fn(&RuleContext<'_>, &mut InferredBuffer),
    ) -> BTreeSet<(u64, u64, u64)> {
        let ctx = RuleContext::new(main, main);
        let mut out = InferredBuffer::new();
        f(&ctx, &mut out);
        buffer_to_set(&out)
    }

    /// Flattens an [`InferredBuffer`] into `(s, p, o)` tuples.
    pub fn buffer_to_set(buffer: &InferredBuffer) -> BTreeSet<(u64, u64, u64)> {
        let mut set = BTreeSet::new();
        for (p, pairs) in buffer.iter() {
            for pair in pairs.chunks_exact(2) {
                set.insert((pair[0], p, pair[1]));
            }
        }
        set
    }
}
