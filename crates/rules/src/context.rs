//! The read-only view the rule executors operate on.

use inferray_store::{PropertyTable, TripleStore};
use std::borrow::Cow;

/// The two stores a rule reads during one fixed-point iteration:
///
/// * `main` — everything known so far (asserted + previously inferred);
/// * `new` — the triples added by the previous iteration (`new ⊆ main`).
///
/// Rules join one antecedent against `new` and the other against `main`
/// (both orders), the classic semi-naive strategy that Algorithm 1 uses to
/// avoid re-deriving from exclusively-old pairs.
#[derive(Debug, Clone, Copy)]
pub struct RuleContext<'a> {
    /// The full store.
    pub main: &'a TripleStore,
    /// The triples discovered in the previous iteration.
    pub new: &'a TripleStore,
}

impl<'a> RuleContext<'a> {
    /// Builds a context from the two stores.
    pub fn new(main: &'a TripleStore, new: &'a TripleStore) -> Self {
        RuleContext { main, new }
    }

    /// The subject-sorted pair view of `prop` in `store` (empty slice when
    /// the table does not exist).
    pub fn subject_view(store: &'a TripleStore, prop: u64) -> &'a [u64] {
        store.table(prop).map(|t| t.pairs()).unwrap_or(&[])
    }

    /// The object-sorted pair view (`[o, s, o, s, …]`) of `prop` in `store`.
    /// Uses the table's ⟨o,s⟩ cache when it has been materialized, and falls
    /// back to computing a temporary copy otherwise, so executors stay
    /// correct even when the orchestrator forgot to call `ensure_os`.
    pub fn object_view(store: &'a TripleStore, prop: u64) -> Cow<'a, [u64]> {
        match store.table(prop) {
            None => Cow::Borrowed(&[][..]),
            Some(table) => Self::object_view_of(table),
        }
    }

    /// Object-sorted view of a single table (cache or computed copy).
    pub fn object_view_of(table: &'a PropertyTable) -> Cow<'a, [u64]> {
        if let Some(cached) = table.os_pairs() {
            Cow::Borrowed(cached)
        } else {
            let mut swapped = inferray_sort::swap_pairs(table.pairs());
            inferray_sort::sort_pairs_auto_dedup(&mut swapped);
            Cow::Owned(swapped)
        }
    }

    /// The subjects `x` such that `⟨x, prop, object⟩ ∈ store`, using the
    /// ⟨o,s⟩ cache when available and a linear scan otherwise. Used by the
    /// rules whose schema antecedent is a `rdf:type` pattern with a fixed
    /// object (PRP-SYMP, PRP-TRP, PRP-FP, PRP-IFP, SCM-CLS, …).
    pub fn subjects_with_object(store: &TripleStore, prop: u64, object: u64) -> Vec<u64> {
        match store.table(prop) {
            None => Vec::new(),
            Some(table) => {
                if table.os_pairs().is_some() {
                    table.subjects_of(object).collect()
                } else {
                    table
                        .iter_pairs()
                        .filter(|&(_, o)| o == object)
                        .map(|(s, _)| s)
                        .collect()
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown;
    use inferray_model::IdTriple;

    fn stores() -> (TripleStore, TripleStore) {
        let main = TripleStore::from_triples([
            IdTriple::new(10, wellknown::RDF_TYPE, 20),
            IdTriple::new(11, wellknown::RDF_TYPE, 20),
            IdTriple::new(12, wellknown::RDF_TYPE, 21),
            IdTriple::new(20, wellknown::RDFS_SUB_CLASS_OF, 21),
        ]);
        let new = TripleStore::from_triples([IdTriple::new(20, wellknown::RDFS_SUB_CLASS_OF, 21)]);
        (main, new)
    }

    #[test]
    fn subject_view_of_missing_table_is_empty() {
        let (main, new) = stores();
        let ctx = RuleContext::new(&main, &new);
        assert!(RuleContext::subject_view(ctx.main, wellknown::RDFS_DOMAIN).is_empty());
        assert_eq!(
            RuleContext::subject_view(ctx.main, wellknown::RDFS_SUB_CLASS_OF),
            &[20, 21]
        );
    }

    #[test]
    fn object_view_falls_back_to_a_computed_copy() {
        let (main, _) = stores();
        let view = RuleContext::object_view(&main, wellknown::RDF_TYPE);
        assert!(matches!(view, Cow::Owned(_)), "no cache was built");
        assert_eq!(view.as_ref(), &[20, 10, 20, 11, 21, 12]);
    }

    #[test]
    fn object_view_uses_the_cache_when_present() {
        let (mut main, _) = stores();
        main.ensure_all_os();
        let view = RuleContext::object_view(&main, wellknown::RDF_TYPE);
        assert!(matches!(view, Cow::Borrowed(_)));
        assert_eq!(view.as_ref(), &[20, 10, 20, 11, 21, 12]);
    }

    #[test]
    fn subjects_with_object_with_and_without_cache() {
        let (mut main, _) = stores();
        let without = RuleContext::subjects_with_object(&main, wellknown::RDF_TYPE, 20);
        main.ensure_all_os();
        let with = RuleContext::subjects_with_object(&main, wellknown::RDF_TYPE, 20);
        assert_eq!(without, vec![10, 11]);
        assert_eq!(with, without);
        assert!(RuleContext::subjects_with_object(&main, wellknown::RDFS_DOMAIN, 20).is_empty());
    }
}
