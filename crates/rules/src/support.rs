//! One-step **support checks** — the rederivation probes of the
//! delete–rederive maintenance path (docs/maintenance.md).
//!
//! [`is_supported`] answers, for one rule and one candidate triple, "can
//! this rule derive the candidate from the triples currently in the
//! store?" — the backward direction of the executors in
//! [`crate::executors`]. Where an executor scans whole tables to emit every
//! consequence, a support check starts from the candidate's constants and
//! needs only a handful of binary searches / cache probes, so probing each
//! over-deleted triple is dramatically cheaper than re-firing the rules
//! over the full store.
//!
//! Contract with the executors (relied on by the byte-identity proof of
//! `tests/retraction_equivalence.rs`):
//!
//! * **sound** — `is_supported(rule, store, t)` implies `t` is entailed by
//!   the store's triples under `rule` (every probe checks actual premises);
//! * **complete at one step** — whenever firing `rule` over the store
//!   (`new == main`) would emit `t`, some support probe returns `true`.
//!   Multi-step rederivations need no deeper search: the maintenance loop
//!   re-asserts the supported candidates and cascades them with the
//!   ordinary semi-naive machinery, which reaches every greater derivation
//!   height.
//!
//! For the θ (closure) rules the probe checks a single two-premise
//! transitivity step. The executors close whole tables at once, but any
//! closure pair they emit is reachable through a chain of such steps, each
//! of which is found as its premises get re-asserted.

use crate::catalog::RuleId;
use crate::context::RuleContext;
use inferray_dictionary::wellknown as wk;
use inferray_model::ids::is_property_id;
use inferray_model::IdTriple;
use inferray_store::{PropertyTable, TripleStore};

/// `true` when `rule` can derive `t` in one step from the triples of
/// `store`. Probes use the ⟨o,s⟩ caches when materialized (callers ensure
/// them before a rederivation pass) and fall back to scans otherwise.
pub fn is_supported(rule: RuleId, store: &TripleStore, t: IdTriple) -> bool {
    let IdTriple { s, p, o } = t;
    match rule {
        // -- α: class/schema joins ----------------------------------------
        RuleId::CaxEqc1 => {
            p == wk::RDF_TYPE
                && subjects_with(store, wk::OWL_EQUIVALENT_CLASS, o)
                    .iter()
                    .any(|&c1| has(store, s, wk::RDF_TYPE, c1))
        }
        RuleId::CaxEqc2 => {
            p == wk::RDF_TYPE
                && objects_of(store, wk::OWL_EQUIVALENT_CLASS, o)
                    .any(|c2| has(store, s, wk::RDF_TYPE, c2))
        }
        RuleId::CaxSco => {
            p == wk::RDF_TYPE
                && subjects_with(store, wk::RDFS_SUB_CLASS_OF, o)
                    .iter()
                    .any(|&c1| has(store, s, wk::RDF_TYPE, c1))
        }
        RuleId::ScmDom1 => {
            p == wk::RDFS_DOMAIN
                && objects_of(store, wk::RDFS_DOMAIN, s)
                    .any(|c1| has(store, c1, wk::RDFS_SUB_CLASS_OF, o))
        }
        RuleId::ScmDom2 => {
            p == wk::RDFS_DOMAIN
                && objects_of(store, wk::RDFS_SUB_PROPERTY_OF, s)
                    .any(|p2| has(store, p2, wk::RDFS_DOMAIN, o))
        }
        RuleId::ScmRng1 => {
            p == wk::RDFS_RANGE
                && objects_of(store, wk::RDFS_RANGE, s)
                    .any(|c1| has(store, c1, wk::RDFS_SUB_CLASS_OF, o))
        }
        RuleId::ScmRng2 => {
            p == wk::RDFS_RANGE
                && objects_of(store, wk::RDFS_SUB_PROPERTY_OF, s)
                    .any(|p2| has(store, p2, wk::RDFS_RANGE, o))
        }
        // -- β: mutual subsumption ----------------------------------------
        RuleId::ScmEqc2 => {
            p == wk::OWL_EQUIVALENT_CLASS
                && has(store, s, wk::RDFS_SUB_CLASS_OF, o)
                && has(store, o, wk::RDFS_SUB_CLASS_OF, s)
        }
        RuleId::ScmEqp2 => {
            p == wk::OWL_EQUIVALENT_PROPERTY
                && has(store, s, wk::RDFS_SUB_PROPERTY_OF, o)
                && has(store, o, wk::RDFS_SUB_PROPERTY_OF, s)
        }
        // -- γ / δ: property-variable rules -------------------------------
        RuleId::PrpDom => {
            p == wk::RDF_TYPE
                && subjects_with(store, wk::RDFS_DOMAIN, o)
                    .iter()
                    .any(|&dp| is_property_id(dp) && subject_occurs(store, dp, s))
        }
        RuleId::PrpRng => {
            p == wk::RDF_TYPE
                && subjects_with(store, wk::RDFS_RANGE, o)
                    .iter()
                    .any(|&rp| is_property_id(rp) && object_occurs(store, rp, s))
        }
        RuleId::PrpSpo1 => {
            is_property_id(p)
                && subjects_with(store, wk::RDFS_SUB_PROPERTY_OF, p)
                    .iter()
                    .any(|&p1| p1 != p && is_property_id(p1) && has(store, s, p1, o))
        }
        RuleId::PrpEqp1 => {
            is_property_id(p)
                && subjects_with(store, wk::OWL_EQUIVALENT_PROPERTY, p)
                    .iter()
                    .any(|&p1| is_property_id(p1) && has(store, s, p1, o))
        }
        RuleId::PrpEqp2 => {
            is_property_id(p)
                && objects_of(store, wk::OWL_EQUIVALENT_PROPERTY, p)
                    .any(|p2| is_property_id(p2) && has(store, s, p2, o))
        }
        RuleId::PrpInv1 => {
            is_property_id(p)
                && subjects_with(store, wk::OWL_INVERSE_OF, p)
                    .iter()
                    .any(|&p1| is_property_id(p1) && has(store, o, p1, s))
        }
        RuleId::PrpInv2 => {
            is_property_id(p)
                && objects_of(store, wk::OWL_INVERSE_OF, p)
                    .any(|p2| is_property_id(p2) && has(store, o, p2, s))
        }
        RuleId::PrpSymp => declared(store, p, wk::OWL_SYMMETRIC_PROPERTY) && has(store, o, p, s),
        // -- functional properties ----------------------------------------
        RuleId::PrpFp => {
            p == wk::OWL_SAME_AS
                && s != o
                && marked_properties(store, wk::OWL_FUNCTIONAL_PROPERTY)
                    .iter()
                    .any(|&fp| {
                        is_property_id(fp)
                            && subjects_with(store, fp, s)
                                .iter()
                                .any(|&x| has(store, x, fp, o))
                    })
        }
        RuleId::PrpIfp => {
            p == wk::OWL_SAME_AS
                && s != o
                && marked_properties(store, wk::OWL_INVERSE_FUNCTIONAL_PROPERTY)
                    .iter()
                    .any(|&fp| {
                        is_property_id(fp) && objects_of(store, fp, s).any(|y| has(store, o, fp, y))
                    })
        }
        // -- sameAs replacement -------------------------------------------
        RuleId::EqRepS => subjects_with(store, wk::OWL_SAME_AS, s)
            .iter()
            .any(|&s1| s1 != s && has(store, s1, p, o)),
        RuleId::EqRepO => subjects_with(store, wk::OWL_SAME_AS, o)
            .iter()
            .any(|&o1| o1 != o && has(store, s, p, o1)),
        RuleId::EqRepP => {
            is_property_id(p)
                && subjects_with(store, wk::OWL_SAME_AS, p)
                    .iter()
                    .any(|&p1| p1 != p && is_property_id(p1) && has(store, s, p1, o))
        }
        // -- θ: one transitivity step -------------------------------------
        RuleId::ScmSco => {
            p == wk::RDFS_SUB_CLASS_OF
                && objects_of(store, wk::RDFS_SUB_CLASS_OF, s)
                    .any(|mid| has(store, mid, wk::RDFS_SUB_CLASS_OF, o))
        }
        RuleId::ScmSpo => {
            p == wk::RDFS_SUB_PROPERTY_OF
                && objects_of(store, wk::RDFS_SUB_PROPERTY_OF, s)
                    .any(|mid| has(store, mid, wk::RDFS_SUB_PROPERTY_OF, o))
        }
        RuleId::EqTrans => {
            // The executor closes the *symmetric* sameAs graph (including
            // reflexive pairs), so premises count in either orientation.
            p == wk::OWL_SAME_AS && {
                let linked = |a: u64, b: u64| {
                    has(store, a, wk::OWL_SAME_AS, b) || has(store, b, wk::OWL_SAME_AS, a)
                };
                objects_of(store, wk::OWL_SAME_AS, s)
                    .chain(subjects_with(store, wk::OWL_SAME_AS, s))
                    .any(|mid| linked(mid, o))
            }
        }
        RuleId::PrpTrp => {
            is_property_id(p)
                && declared(store, p, wk::OWL_TRANSITIVE_PROPERTY)
                && objects_of(store, p, s).any(|mid| has(store, mid, p, o))
        }
        // -- trivial single-antecedent rules ------------------------------
        RuleId::EqSym => p == wk::OWL_SAME_AS && s != o && has(store, o, wk::OWL_SAME_AS, s),
        RuleId::ScmEqc1 => {
            p == wk::RDFS_SUB_CLASS_OF
                && (has(store, s, wk::OWL_EQUIVALENT_CLASS, o)
                    || has(store, o, wk::OWL_EQUIVALENT_CLASS, s))
        }
        RuleId::ScmEqp1 => {
            p == wk::RDFS_SUB_PROPERTY_OF
                && (has(store, s, wk::OWL_EQUIVALENT_PROPERTY, o)
                    || has(store, o, wk::OWL_EQUIVALENT_PROPERTY, s))
        }
        RuleId::ScmCls => match p {
            wk::RDFS_SUB_CLASS_OF => {
                (s == o || o == wk::OWL_THING) && declared(store, s, wk::OWL_CLASS)
                    || (s == wk::OWL_NOTHING && declared(store, o, wk::OWL_CLASS))
            }
            wk::OWL_EQUIVALENT_CLASS => s == o && declared(store, s, wk::OWL_CLASS),
            _ => false,
        },
        RuleId::ScmDp => {
            (p == wk::RDFS_SUB_PROPERTY_OF || p == wk::OWL_EQUIVALENT_PROPERTY)
                && s == o
                && declared(store, s, wk::OWL_DATATYPE_PROPERTY)
        }
        RuleId::ScmOp => {
            (p == wk::RDFS_SUB_PROPERTY_OF || p == wk::OWL_EQUIVALENT_PROPERTY)
                && s == o
                && declared(store, s, wk::OWL_OBJECT_PROPERTY)
        }
        RuleId::Rdfs4 => p == wk::RDF_TYPE && o == wk::RDFS_RESOURCE && occurs_anywhere(store, s),
        RuleId::Rdfs6 => {
            p == wk::RDFS_SUB_PROPERTY_OF && s == o && declared(store, s, wk::RDF_PROPERTY)
        }
        RuleId::Rdfs8 => {
            p == wk::RDFS_SUB_CLASS_OF
                && o == wk::RDFS_RESOURCE
                && declared(store, s, wk::RDFS_CLASS)
        }
        RuleId::Rdfs10 => {
            p == wk::RDFS_SUB_CLASS_OF && s == o && declared(store, s, wk::RDFS_CLASS)
        }
        RuleId::Rdfs12 => {
            p == wk::RDFS_SUB_PROPERTY_OF
                && o == wk::RDFS_MEMBER
                && declared(store, s, wk::RDFS_CONTAINER_MEMBERSHIP_PROPERTY)
        }
        RuleId::Rdfs13 => {
            p == wk::RDFS_SUB_CLASS_OF
                && o == wk::RDFS_LITERAL
                && declared(store, s, wk::RDFS_DATATYPE)
        }
    }
}

// ---------------------------------------------------------------------------
// Probe primitives
// ---------------------------------------------------------------------------

/// Exact-triple membership (binary search).
fn has(store: &TripleStore, s: u64, p: u64, o: u64) -> bool {
    debug_assert!(is_property_id(p));
    store
        .table(p)
        .is_some_and(|table| table.contains_pair(s, o))
}

/// The subjects of `⟨?, p, object⟩` (⟨o,s⟩ cache when built, scan fallback).
fn subjects_with(store: &TripleStore, p: u64, object: u64) -> Vec<u64> {
    RuleContext::subjects_with_object(store, p, object)
}

/// The objects of `⟨subject, p, ?⟩` (contiguous run of the ⟨s,o⟩ array).
fn objects_of(store: &TripleStore, p: u64, subject: u64) -> impl Iterator<Item = u64> + '_ {
    store
        .table(p)
        .into_iter()
        .flat_map(move |table| table.objects_of(subject))
}

/// `⟨s, rdf:type, marker⟩ ∈ store`.
fn declared(store: &TripleStore, s: u64, marker: u64) -> bool {
    has(store, s, wk::RDF_TYPE, marker)
}

/// Every subject declared `⟨p, rdf:type, marker⟩`.
fn marked_properties(store: &TripleStore, marker: u64) -> Vec<u64> {
    subjects_with(store, wk::RDF_TYPE, marker)
}

/// `true` when `p` has any pair with subject `s`.
fn subject_occurs(store: &TripleStore, p: u64, s: u64) -> bool {
    store
        .table(p)
        .is_some_and(|table| table.objects_of(s).next().is_some())
}

/// `true` when `p` has any pair with object `o`.
fn object_occurs(store: &TripleStore, p: u64, o: u64) -> bool {
    store
        .table(p)
        .is_some_and(|table| table_has_object(table, o))
}

fn table_has_object(table: &PropertyTable, o: u64) -> bool {
    if table.has_os_cache() {
        table.subjects_of(o).next().is_some()
    } else {
        table.iter_pairs().any(|(_, object)| object == o)
    }
}

/// `true` when `term` occurs as a subject or object of any table (RDFS4).
fn occurs_anywhere(store: &TripleStore, term: u64) -> bool {
    store
        .iter_tables()
        .any(|(_, table)| table.objects_of(term).next().is_some() || table_has_object(table, term))
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::ids::nth_property_id;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        let mut store =
            TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)));
        store.ensure_all_os();
        store
    }

    fn t(s: u64, p: u64, o: u64) -> IdTriple {
        IdTriple::new(s, p, o)
    }

    const A: u64 = 8_100_000;
    const B: u64 = 8_100_001;
    const C: u64 = 8_100_002;
    const X: u64 = 8_100_010;

    #[test]
    fn alpha_and_theta_probes() {
        let r = store(&[
            (A, wk::RDFS_SUB_CLASS_OF, B),
            (B, wk::RDFS_SUB_CLASS_OF, C),
            (X, wk::RDF_TYPE, A),
        ]);
        // cax-sco: X a B needs (A ⊑ B) + (X a A) — supported; X a C needs
        // (X a B) which is absent — one step only.
        assert!(is_supported(RuleId::CaxSco, &r, t(X, wk::RDF_TYPE, B)));
        assert!(!is_supported(RuleId::CaxSco, &r, t(X, wk::RDF_TYPE, C)));
        // scm-sco: A ⊑ C via B; nothing supports B ⊑ A.
        assert!(is_supported(
            RuleId::ScmSco,
            &r,
            t(A, wk::RDFS_SUB_CLASS_OF, C)
        ));
        assert!(!is_supported(
            RuleId::ScmSco,
            &r,
            t(B, wk::RDFS_SUB_CLASS_OF, A)
        ));
        // Wrong-shape candidates are rejected outright.
        assert!(!is_supported(
            RuleId::CaxSco,
            &r,
            t(A, wk::RDFS_SUB_CLASS_OF, B)
        ));
    }

    #[test]
    fn gamma_probes_follow_schema_pairs() {
        let knows = nth_property_id(950);
        let knows2 = nth_property_id(951);
        let r = store(&[
            (knows, wk::RDFS_DOMAIN, A),
            (knows, wk::RDFS_RANGE, B),
            (knows2, wk::RDFS_SUB_PROPERTY_OF, knows),
            (X, knows, X + 1),
        ]);
        assert!(is_supported(RuleId::PrpDom, &r, t(X, wk::RDF_TYPE, A)));
        assert!(!is_supported(RuleId::PrpDom, &r, t(X + 1, wk::RDF_TYPE, A)));
        assert!(is_supported(RuleId::PrpRng, &r, t(X + 1, wk::RDF_TYPE, B)));
        // prp-spo1 rederives (x knows y) only from a subproperty's pair.
        assert!(!is_supported(RuleId::PrpSpo1, &r, t(X, knows, X + 1)));
        let r2 = store(&[
            (knows2, wk::RDFS_SUB_PROPERTY_OF, knows),
            (X, knows2, X + 1),
        ]);
        assert!(is_supported(RuleId::PrpSpo1, &r2, t(X, knows, X + 1)));
    }

    #[test]
    fn same_as_and_functional_probes() {
        let email = nth_property_id(952);
        let r = store(&[
            (A, wk::OWL_SAME_AS, B),
            (A, wk::RDF_TYPE, C),
            (email, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
            (X, email, A),
            (X, email, B + 1),
        ]);
        assert!(is_supported(RuleId::EqSym, &r, t(B, wk::OWL_SAME_AS, A)));
        assert!(!is_supported(
            RuleId::EqSym,
            &r,
            t(A, wk::OWL_SAME_AS, B + 1)
        ));
        assert!(is_supported(RuleId::EqRepS, &r, t(B, wk::RDF_TYPE, C)));
        assert!(!is_supported(RuleId::EqRepS, &r, t(C, wk::RDF_TYPE, C)));
        // prp-fp: A and B+1 share the functional subject X.
        assert!(is_supported(
            RuleId::PrpFp,
            &r,
            t(A, wk::OWL_SAME_AS, B + 1)
        ));
        assert!(is_supported(
            RuleId::PrpFp,
            &r,
            t(B + 1, wk::OWL_SAME_AS, A)
        ));
        assert!(!is_supported(RuleId::PrpFp, &r, t(A, wk::OWL_SAME_AS, B)));
    }

    #[test]
    fn trivial_probes_check_shape_and_declaration() {
        let r = store(&[(A, wk::RDF_TYPE, wk::RDFS_CLASS), (A, wk::RDFS_LABEL, B)]);
        assert!(is_supported(
            RuleId::Rdfs10,
            &r,
            t(A, wk::RDFS_SUB_CLASS_OF, A)
        ));
        assert!(!is_supported(
            RuleId::Rdfs10,
            &r,
            t(B, wk::RDFS_SUB_CLASS_OF, B)
        ));
        assert!(is_supported(
            RuleId::Rdfs8,
            &r,
            t(A, wk::RDFS_SUB_CLASS_OF, wk::RDFS_RESOURCE)
        ));
        assert!(is_supported(
            RuleId::Rdfs4,
            &r,
            t(B, wk::RDF_TYPE, wk::RDFS_RESOURCE)
        ));
        assert!(!is_supported(
            RuleId::Rdfs4,
            &r,
            t(C, wk::RDF_TYPE, wk::RDFS_RESOURCE)
        ));
        assert!(!is_supported(RuleId::Rdfs4, &r, t(B, wk::RDF_TYPE, B)));
    }
}
