//! # inferray-rules
//!
//! The rule engine of the Inferray reasoner: the catalog of the 38 rules of
//! Table 5 of the paper, the rule *classes* of §4.4 (α, β, γ, δ, same-as, θ,
//! trivial, functional), the rulesets (ρDF, RDFS default/full, RDFS-Plus
//! default/full), and the sort-merge-join executors that apply each rule to a
//! pair of triple stores (*main*, *new*) in the semi-naive style of
//! Algorithm 1.
//!
//! The executors are deliberately free of any fixed-point logic: they take
//! immutable references to the two stores and append raw `⟨s,o⟩` pairs to a
//! per-rule [`InferredBuffer`](inferray_store::InferredBuffer). Orchestration
//! (the iteration, the parallel dispatch, the merge of Figure 5 and the
//! dedicated transitive-closure stage) lives in `inferray-core`; the naive
//! and hash-join baselines reuse the same catalog and rulesets so that every
//! engine in the benchmark implements exactly the same logic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod catalog;
pub mod context;
pub mod executors;
pub mod materializer;
pub mod ruleset;
pub mod shapes;
pub mod support;

pub use catalog::{
    Membership, RuleClass, RuleId, RuleInfo, RuleInputs, RuleOutputs, SchemaSide, CATALOG,
};
pub use context::RuleContext;
pub use executors::apply_rule;
pub use materializer::{InferenceStats, Materializer};
pub use ruleset::{Fragment, RuleRef, Ruleset};
pub use support::is_supported;
