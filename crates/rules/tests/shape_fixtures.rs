//! Seeded-bad fixture corpus for the shape-constraint analyzer: one
//! `.shapes` file per SH code, each engineered to fire exactly that
//! diagnostic, with camouflaged negatives (the trigger token inside
//! comments or string literals, plus nearby satisfiable look-alikes) that
//! must stay silent. A directory census keeps the corpus and this driver
//! in lockstep, and `negatives.shapes` re-states every trigger in
//! camouflaged form only and must analyze completely clean.

use inferray_rules::shapes::{self, Severity, ShapeAnalysis};
use std::path::Path;

fn analyze_fixture(name: &str) -> ShapeAnalysis {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/shapes")
        .join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", path.display()));
    shapes::analyze(&text)
}

/// Asserts the fixture fires exactly the expected code, once, with the
/// expected severity — any camouflaged negative leaking through changes
/// the count and fails here.
fn assert_fires_exactly(name: &str, code: &str, severity: Severity) {
    let analysis = analyze_fixture(name);
    let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec![code], "{name}: {:#?}", analysis.diagnostics);
    assert_eq!(
        analysis.diagnostics[0].severity, severity,
        "{name}: wrong severity"
    );
    assert!(
        analysis.diagnostics[0].line > 0 && analysis.diagnostics[0].col > 0,
        "{name}: diagnostic must be positioned"
    );
}

#[test]
fn sh001_syntax_error_fires() {
    assert_fires_exactly("sh001_syntax.shapes", "SH001", Severity::Error);
}

#[test]
fn sh002_unknown_prefix_fires() {
    let analysis = analyze_fixture("sh002_unknown_prefix.shapes");
    let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec!["SH002"], "{:#?}", analysis.diagnostics);
    assert!(analysis.diagnostics[0].message.contains("ex2"));
}

#[test]
fn sh003_contradictory_bounds_fire() {
    assert_fires_exactly("sh003_contradictory_count.shapes", "SH003", Severity::Error);
}

#[test]
fn sh004_duplicate_name_fires() {
    assert_fires_exactly("sh004_duplicate_name.shapes", "SH004", Severity::Error);
}

#[test]
fn sh005_dead_shape_fires_as_warning() {
    assert_fires_exactly("sh005_dead_shape.shapes", "SH005", Severity::Warning);
    // Warnings do not make the file unloadable.
    assert!(!analyze_fixture("sh005_dead_shape.shapes").has_errors());
}

#[test]
fn sh006_shadowed_shape_fires_as_warning() {
    assert_fires_exactly("sh006_shadowed_shape.shapes", "SH006", Severity::Warning);
}

#[test]
fn sh007_reference_cycle_fires() {
    let analysis = analyze_fixture("sh007_reference_cycle.shapes");
    let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec!["SH007"], "{:#?}", analysis.diagnostics);
    assert!(
        analysis.diagnostics[0].message.contains("A -> B -> A"),
        "{:#?}",
        analysis.diagnostics
    );
}

#[test]
fn sh008_whole_store_target_fires_as_info() {
    assert_fires_exactly("sh008_targets_all.shapes", "SH008", Severity::Info);
    // Informational notes never block compilation.
    let analysis = analyze_fixture("sh008_targets_all.shapes");
    let dict = inferray_dictionary::Dictionary::new();
    assert!(analysis.compile(&dict).is_ok());
}

#[test]
fn sh009_undefined_reference_fires() {
    let analysis = analyze_fixture("sh009_undefined_reference.shapes");
    let codes: Vec<&str> = analysis.diagnostics.iter().map(|d| d.code).collect();
    assert_eq!(codes, vec!["SH009"], "{:#?}", analysis.diagnostics);
    assert!(analysis.diagnostics[0].message.contains("Ghost"));
}

#[test]
fn sh010_empty_in_fires() {
    assert_fires_exactly("sh010_empty_in.shapes", "SH010", Severity::Error);
}

#[test]
fn camouflaged_negatives_stay_silent() {
    let analysis = analyze_fixture("negatives.shapes");
    assert!(
        analysis.diagnostics.is_empty(),
        "negatives.shapes must be clean: {:#?}",
        analysis.diagnostics
    );
    assert_eq!(analysis.shapes.len(), 2);
}

/// The corpus and the driver stay in lockstep: every SH code SH001–SH010
/// has a fixture file, and no unexpected file sits in the directory.
#[test]
fn corpus_census_matches_the_code_table() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/shapes");
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixture directory exists")
        .map(|e| {
            e.expect("readable entry")
                .file_name()
                .into_string()
                .unwrap()
        })
        .collect();
    names.sort();
    assert_eq!(
        names,
        vec![
            "negatives.shapes",
            "sh001_syntax.shapes",
            "sh002_unknown_prefix.shapes",
            "sh003_contradictory_count.shapes",
            "sh004_duplicate_name.shapes",
            "sh005_dead_shape.shapes",
            "sh006_shadowed_shape.shapes",
            "sh007_reference_cycle.shapes",
            "sh008_targets_all.shapes",
            "sh009_undefined_reference.shapes",
            "sh010_empty_in.shapes",
        ],
        "add a driver test when adding a fixture"
    );
}
