//! Round-trip anchors between the rule-program analyzer and the handwritten
//! catalog: every built-in rule's canonical text must re-derive the
//! catalog's input and output signatures **byte-identically**, and the
//! shipped `rules/*.rules` fragment files must stay in sync with their
//! generator ([`inferray_rules::analysis::builtin::fragment_file_text`]).

use inferray_dictionary::Dictionary;
use inferray_rules::analysis::{self, builtin, DerivedInputs, DerivedOutputs, Severity};
use inferray_rules::{Fragment, Ruleset, CATALOG};
use std::path::PathBuf;

/// The shipped rule file of a fragment, at the repository root.
fn fragment_file(fragment: Fragment) -> PathBuf {
    let name = match fragment {
        Fragment::RhoDf => "rho-df",
        Fragment::RdfsDefault => "rdfs-default",
        Fragment::RdfsFull => "rdfs-full",
        Fragment::RdfsPlus => "rdfs-plus",
        Fragment::RdfsPlusFull => "rdfs-plus-full",
    };
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../rules")
        .join(format!("{name}.rules"))
}

#[test]
fn analyzer_rederives_every_catalog_signature_byte_identically() {
    // One file holding all 38 canonical texts: the analyzer must agree with
    // the handwritten catalog row for every single rule.
    let mut text = String::from(builtin::PRELUDE);
    text.push('\n');
    for info in CATALOG {
        text.push_str(builtin::rule_text(info.id));
        text.push('\n');
    }
    let checked = analysis::analyze(&text);
    assert!(
        !checked.has_errors(),
        "canonical texts must analyze cleanly: {:?}",
        checked.diagnostics
    );
    let mut dict = Dictionary::new();
    let compiled = checked.compile(&mut dict).expect("canonical texts compile");
    assert_eq!(compiled.rules.len(), CATALOG.len());
    for (i, info) in CATALOG.iter().enumerate() {
        assert_eq!(
            compiled.builtin_of(i),
            Some(info.id),
            "{}: must be recognized as its catalog row",
            info.name
        );
        assert_eq!(
            compiled.rules[i].inputs,
            DerivedInputs::from(info.inputs),
            "{}: derived input signature differs from the handwritten one",
            info.name
        );
        assert_eq!(
            compiled.rules[i].outputs,
            DerivedOutputs::from(info.outputs),
            "{}: derived output signature differs from the handwritten one",
            info.name
        );
    }
}

#[test]
fn fragment_files_load_back_to_their_fragment_rulesets() {
    for fragment in Fragment::ALL {
        let text = builtin::fragment_file_text(fragment);
        let mut dict = Dictionary::new();
        let ruleset = analysis::load_ruleset(&text, &mut dict)
            .unwrap_or_else(|diags| panic!("{fragment}: {diags:?}"));
        let expected = Ruleset::for_fragment(fragment);
        assert_eq!(ruleset.rules(), expected.rules(), "{fragment}");
        assert!(ruleset.custom_rules().is_empty(), "{fragment}");
        assert!(
            ruleset.runs_closure_stage(),
            "{fragment}: an exact fragment keeps the dedicated closure stage"
        );
    }
}

#[test]
fn shipped_fragment_files_match_their_generator() {
    for fragment in Fragment::ALL {
        let path = fragment_file(fragment);
        let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e}; run the ignored regenerate_fragment_files test",
                path.display()
            )
        });
        assert_eq!(
            on_disk,
            builtin::fragment_file_text(fragment),
            "{} is stale; run `cargo test -p inferray-rules --test analysis_builtins \
             regenerate_fragment_files -- --ignored`",
            path.display()
        );
    }
}

/// Writer for the shipped files — run explicitly after editing the catalog
/// or the canonical texts:
/// `cargo test -p inferray-rules --test analysis_builtins regenerate_fragment_files -- --ignored`
#[test]
#[ignore = "writes the shipped rules/*.rules files"]
fn regenerate_fragment_files() {
    for fragment in Fragment::ALL {
        let path = fragment_file(fragment);
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, builtin::fragment_file_text(fragment)).unwrap();
    }
}

/// The seeded fixture corpus: every `raNNN-*.rules` file must fire the
/// diagnostic its name promises, and every `ok-*.rules` file — camouflaged
/// near-misses of the same patterns — must analyze without errors or
/// warnings.
#[test]
fn seeded_fixture_corpus_fires_exactly_the_expected_diagnostics() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut checked_files = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let Some(stem) = name.strip_suffix(".rules") else {
            continue;
        };
        let text = std::fs::read_to_string(&path).unwrap();
        let checked = analysis::analyze(&text);
        let codes: Vec<&str> = checked.diagnostics.iter().map(|d| d.code).collect();
        if let Some(code) = stem.split('-').next().filter(|p| p.starts_with("ra")) {
            let expected = code.to_ascii_uppercase();
            assert!(
                codes.contains(&expected.as_str()),
                "{name}: expected {expected}, got {codes:?}"
            );
        } else {
            assert!(
                checked
                    .diagnostics
                    .iter()
                    .all(|d| d.severity < Severity::Warning),
                "{name}: expected silence, got {:?}",
                checked.diagnostics
            );
            assert!(
                !checked.diagnostics.iter().any(|d| d.is_error()),
                "{name}: negatives must load"
            );
        }
        checked_files += 1;
    }
    assert!(
        checked_files >= 8,
        "fixture corpus went missing from {dir:?}"
    );
}
