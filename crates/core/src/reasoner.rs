//! The Inferray reasoner: Algorithm 1 of the paper.

use crate::closure_stage::{run_closure_stage, ClosureStageStats};
use crate::options::InferrayOptions;
use inferray_rules::{
    apply_rule, Fragment, InferenceStats, Materializer, RuleContext, RuleId, Ruleset,
};
use inferray_model::IdTriple;
use inferray_store::{AccessProfile, InferredBuffer, TripleStore};
use std::collections::BTreeMap;
use std::time::Instant;

/// The forward-chaining, sort-merge-join, fixed-point reasoner.
///
/// ```
/// use inferray_core::{Fragment, InferrayReasoner, Materializer, TripleStore};
/// use inferray_dictionary::wellknown;
/// use inferray_model::IdTriple;
///
/// // human ⊑ mammal ⊑ animal, Bart a human.
/// let human = 5_000_000_001u64;
/// let mammal = human + 1;
/// let animal = human + 2;
/// let bart = human + 3;
/// let mut store = TripleStore::from_triples([
///     IdTriple::new(human, wellknown::RDFS_SUB_CLASS_OF, mammal),
///     IdTriple::new(mammal, wellknown::RDFS_SUB_CLASS_OF, animal),
///     IdTriple::new(bart, wellknown::RDF_TYPE, human),
/// ]);
/// let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
/// let stats = reasoner.materialize(&mut store);
/// assert_eq!(stats.inferred_triples(), 3); // human⊑animal, Bart a mammal, Bart a animal
/// assert!(store.contains(&IdTriple::new(bart, wellknown::RDF_TYPE, animal)));
/// ```
#[derive(Debug, Clone)]
pub struct InferrayReasoner {
    ruleset: Ruleset,
    options: InferrayOptions,
    last_closure_stats: ClosureStageStats,
}

impl InferrayReasoner {
    /// A reasoner for one of the standard fragments, with default options.
    pub fn new(fragment: Fragment) -> Self {
        Self::with_options(fragment, InferrayOptions::default())
    }

    /// A reasoner for a standard fragment with explicit options.
    pub fn with_options(fragment: Fragment, options: InferrayOptions) -> Self {
        Self::with_ruleset(Ruleset::for_fragment(fragment), options)
    }

    /// A reasoner over a custom ruleset (used by the ablation benchmarks).
    pub fn with_ruleset(ruleset: Ruleset, options: InferrayOptions) -> Self {
        InferrayReasoner {
            ruleset,
            options,
            last_closure_stats: ClosureStageStats::default(),
        }
    }

    /// The ruleset this reasoner applies.
    pub fn ruleset(&self) -> &Ruleset {
        &self.ruleset
    }

    /// The options this reasoner runs with.
    pub fn options(&self) -> InferrayOptions {
        self.options
    }

    /// Statistics of the closure stage of the most recent run.
    pub fn last_closure_stats(&self) -> ClosureStageStats {
        self.last_closure_stats
    }

    /// Applies every rule once over (`main`, `new`), returning the combined
    /// inferred buffer. Each rule owns its buffer; with `parallel` enabled
    /// each rule also runs on its own thread (§4.3).
    fn fire_rules(&self, main: &TripleStore, new: &TripleStore) -> InferredBuffer {
        let rules: Vec<RuleId> = self.ruleset.rules().to_vec();
        let mut combined = InferredBuffer::new();
        if self.options.parallel && rules.len() > 1 {
            let buffers = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = rules
                    .iter()
                    .map(|&rule| {
                        scope.spawn(move |_| {
                            let ctx = RuleContext::new(main, new);
                            let mut buffer = InferredBuffer::new();
                            apply_rule(rule, &ctx, &mut buffer);
                            buffer
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("rule thread panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("rule scope panicked");
            for buffer in buffers {
                combined.absorb(buffer);
            }
        } else {
            let ctx = RuleContext::new(main, new);
            for rule in rules {
                apply_rule(rule, &ctx, &mut combined);
            }
        }
        combined
    }

    /// Incrementally maintains an **already materialized** store after new
    /// triples are asserted.
    ///
    /// The paper notes that forward chaining "requires full materialization
    /// after deletion" (§1) but additions do not: the fixed point can be
    /// restarted with the delta as the semi-naive frontier. The dedicated
    /// up-front closure stage is not re-run — new edges on transitive
    /// properties are picked up by the in-loop θ executors, which re-close a
    /// table only when it actually received pairs.
    ///
    /// The result is identical to re-materializing the extended input from
    /// scratch (see the `incremental_maintenance` integration tests), at the
    /// cost of work proportional to what the delta can newly derive.
    ///
    /// Returns the statistics of the incremental run; `input_triples` counts
    /// the store *after* the delta was asserted, so
    /// [`InferenceStats::inferred_triples`] is the number of triples the
    /// delta caused to be derived.
    pub fn materialize_delta(
        &mut self,
        store: &mut TripleStore,
        delta: impl IntoIterator<Item = IdTriple>,
    ) -> InferenceStats {
        let start = Instant::now();
        let mut profile = AccessProfile::default();
        store.finalize();
        self.last_closure_stats = ClosureStageStats::default();

        // Group the delta by property and merge it into the store, keeping
        // only the genuinely new pairs as the semi-naive frontier.
        let mut by_property: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for triple in delta {
            let pairs = by_property.entry(triple.p).or_default();
            pairs.push(triple.s);
            pairs.push(triple.o);
        }
        let mut new = TripleStore::new();
        for (p, pairs) in by_property {
            profile.sequential(pairs.len() as u64);
            let (new_table, _) = store.merge_property(p, pairs);
            if !new_table.is_empty() {
                profile.allocate(2 * new_table.len() as u64);
                new.replace_table_sorted(p, new_table.into_pairs());
            }
        }
        let input_triples = store.len();

        let outcome = if new.is_empty() {
            FixedPointOutcome::default()
        } else {
            self.run_fixed_point(store, new, &mut profile)
        };

        InferenceStats {
            input_triples,
            output_triples: store.len(),
            iterations: outcome.iterations,
            derived_raw: outcome.derived_raw,
            duplicates_removed: outcome.duplicates_removed,
            duration: start.elapsed(),
            profile,
        }
    }

    /// The fixed-point loop of Algorithm 1 (lines 4–8), shared by the full
    /// materialization and the incremental path.
    fn run_fixed_point(
        &self,
        store: &mut TripleStore,
        mut new: TripleStore,
        profile: &mut AccessProfile,
    ) -> FixedPointOutcome {
        let mut outcome = FixedPointOutcome::default();
        while !new.is_empty() && outcome.iterations < self.options.max_iterations {
            outcome.iterations += 1;

            // Pre-build the ⟨o,s⟩ caches so the parallel phase is read-only.
            store.ensure_all_os();
            new.ensure_all_os();
            profile.sequential(2 * (store.len() + new.len()) as u64);

            // Line 5: fire all rules.
            let inferred = self.fire_rules(store, &new);
            outcome.derived_raw += inferred.len();

            // Lines 6-7: per-property sort + dedup + merge (Figure 5).
            let mut next_new = TripleStore::new();
            for (p, pairs) in inferred.into_iter_tables() {
                profile.sequential(pairs.len() as u64);
                let (new_table, merge) = store.merge_property(p, pairs);
                profile.sequential(2 * (merge.inferred_raw + new_table.len()) as u64);
                outcome.duplicates_removed +=
                    merge.duplicates_within_inferred + merge.duplicates_against_main;
                if !new_table.is_empty() {
                    profile.allocate(2 * new_table.len() as u64);
                    next_new.replace_table_sorted(p, new_table.into_pairs());
                }
            }
            new = next_new;
        }
        outcome
    }
}

/// Counters accumulated by one run of the fixed-point loop.
#[derive(Debug, Clone, Copy, Default)]
struct FixedPointOutcome {
    iterations: usize,
    derived_raw: usize,
    duplicates_removed: usize,
}

impl Materializer for InferrayReasoner {
    fn name(&self) -> &'static str {
        "inferray"
    }

    fn materialize(&mut self, store: &mut TripleStore) -> InferenceStats {
        let start = Instant::now();
        let mut profile = AccessProfile::default();
        store.finalize();
        let input_triples = store.len();

        // Step 1 (Algorithm 1, line 2): dedicated transitive-closure stage.
        if !self.options.skip_closure_stage {
            self.last_closure_stats =
                run_closure_stage(store, self.ruleset.fragment, &mut profile);
        } else {
            self.last_closure_stats = ClosureStageStats::default();
        }

        // Step 2 (line 3): on the first iteration, new == main.
        let new: TripleStore = store.clone();
        profile.allocate(2 * new.len() as u64);

        // Step 3 (lines 4-8): fixed point.
        let outcome = self.run_fixed_point(store, new, &mut profile);

        InferenceStats {
            input_triples,
            output_triples: store.len(),
            iterations: outcome.iterations,
            derived_raw: outcome.derived_raw,
            duplicates_removed: outcome.duplicates_removed,
            duration: start.elapsed(),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    const HUMAN: u64 = 9_000_000;
    const MAMMAL: u64 = 9_000_001;
    const ANIMAL: u64 = 9_000_002;
    const BART: u64 = 9_000_003;
    const LISA: u64 = 9_000_004;

    fn family_dataset() -> TripleStore {
        store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
            (BART, wk::RDF_TYPE, HUMAN),
            (LISA, wk::RDF_TYPE, HUMAN),
        ])
    }

    #[test]
    fn paper_running_example_rdfs() {
        let mut data = family_dataset();
        let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
        let stats = reasoner.materialize(&mut data);
        // Inferred: human⊑animal, and {Bart, Lisa} × {mammal, animal}.
        assert_eq!(stats.inferred_triples(), 5);
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)));
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, ANIMAL)));
        assert!(data.contains(&IdTriple::new(LISA, wk::RDF_TYPE, ANIMAL)));
        assert!(data.contains(&IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, ANIMAL)));
        assert!(stats.iterations >= 1);
        assert!(stats.output_triples == stats.input_triples + 5);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let mut parallel_store = family_dataset();
        let mut sequential_store = family_dataset();
        InferrayReasoner::with_options(Fragment::RdfsDefault, InferrayOptions::default())
            .materialize(&mut parallel_store);
        InferrayReasoner::with_options(Fragment::RdfsDefault, InferrayOptions::sequential())
            .materialize(&mut sequential_store);
        let a: Vec<_> = parallel_store.iter_triples().collect();
        let b: Vec<_> = sequential_store.iter_triples().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn skipping_the_closure_stage_still_converges_to_the_same_result() {
        let mut with_stage = family_dataset();
        let mut without_stage = family_dataset();
        InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut with_stage);
        InferrayReasoner::with_options(
            Fragment::RdfsDefault,
            InferrayOptions::without_closure_stage(),
        )
        .materialize(&mut without_stage);
        let a: Vec<_> = with_stage.iter_triples().collect();
        let b: Vec<_> = without_stage.iter_triples().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rdfs_plus_same_as_and_inverse() {
        let knows = nth_property_id(700);
        let kned_by = nth_property_id(701);
        let alice = 9_100_000u64;
        let alyce = alice + 1;
        let bob = alice + 2;
        let mut data = store(&[
            (knows, wk::OWL_INVERSE_OF, kned_by),
            (alice, wk::OWL_SAME_AS, alyce),
            (alice, knows, bob),
        ]);
        let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        // Inverse property fires.
        assert!(data.contains(&IdTriple::new(bob, kned_by, alice)));
        // sameAs substitution propagates the data triple to the alias.
        assert!(data.contains(&IdTriple::new(alyce, knows, bob)));
        // ... and its inverse.
        assert!(data.contains(&IdTriple::new(bob, kned_by, alyce)));
        // sameAs is symmetric.
        assert!(data.contains(&IdTriple::new(alyce, wk::OWL_SAME_AS, alice)));
        assert!(stats.iterations >= 2, "needs at least two iterations to chase the interaction");
    }

    #[test]
    fn functional_property_derives_same_as() {
        let has_mother = nth_property_id(702);
        let bart = 9_200_000u64;
        let marge1 = bart + 1;
        let marge2 = bart + 2;
        let mut data = store(&[
            (has_mother, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
            (bart, has_mother, marge1),
            (bart, has_mother, marge2),
        ]);
        InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        assert!(data.contains(&IdTriple::new(marge1, wk::OWL_SAME_AS, marge2)));
        assert!(data.contains(&IdTriple::new(marge2, wk::OWL_SAME_AS, marge1)));
    }

    #[test]
    fn empty_store_is_a_fixed_point_immediately() {
        let mut data = TripleStore::new();
        let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        assert_eq!(stats.input_triples, 0);
        assert_eq!(stats.output_triples, 0);
        assert_eq!(stats.inferred_triples(), 0);
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut data = family_dataset();
        let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
        let first = reasoner.materialize(&mut data);
        let after_first: Vec<_> = data.iter_triples().collect();
        let second = reasoner.materialize(&mut data);
        let after_second: Vec<_> = data.iter_triples().collect();
        assert_eq!(after_first, after_second);
        assert!(first.inferred_triples() > 0);
        assert_eq!(second.inferred_triples(), 0);
    }

    #[test]
    fn rdfs_full_adds_axiomatic_triples() {
        let mut data = family_dataset();
        InferrayReasoner::new(Fragment::RdfsFull).materialize(&mut data);
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, wk::RDFS_RESOURCE)));
        assert!(data.contains(&IdTriple::new(HUMAN, wk::RDF_TYPE, wk::RDFS_RESOURCE)));
    }

    #[test]
    fn rho_df_subset_derives_less_than_rdfs_full() {
        let mut rho = family_dataset();
        let mut full = family_dataset();
        let rho_stats = InferrayReasoner::new(Fragment::RhoDf).materialize(&mut rho);
        let full_stats = InferrayReasoner::new(Fragment::RdfsFull).materialize(&mut full);
        assert!(full_stats.inferred_triples() > rho_stats.inferred_triples());
        // Everything ρDF derives is also derived by RDFS-Full.
        for t in rho.iter_triples() {
            assert!(full.contains(&t));
        }
    }

    #[test]
    fn transitive_property_closure_in_rdfs_plus() {
        let part_of = nth_property_id(703);
        let a = 9_300_000u64;
        let chain: Vec<(u64, u64, u64)> = (0..20)
            .map(|i| (a + i, part_of, a + i + 1))
            .chain(std::iter::once((
                part_of,
                wk::RDF_TYPE,
                wk::OWL_TRANSITIVE_PROPERTY,
            )))
            .collect();
        let mut data = store(&chain);
        let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        // A chain of 21 nodes closes to 21·20/2 pairs.
        assert!(data.contains(&IdTriple::new(a, part_of, a + 20)));
        assert_eq!(
            data.table(part_of).unwrap().len(),
            21 * 20 / 2,
            "full transitive closure expected"
        );
        assert!(stats.duration.as_nanos() > 0);
    }
}
