//! The Inferray reasoner: Algorithm 1 of the paper.
//!
//! Both phases of an iteration run on the persistent worker pool of
//! `inferray-parallel` (the seed spawned fresh OS threads per rule, per
//! iteration):
//!
//! * **rule firing** (§4.3) — one task per rule, each with its own
//!   [`InferredBuffer`]. From iteration 2 on, only the rules whose input
//!   tables received new pairs in the previous iteration are scheduled
//!   (the rule-dependency graph of §4.3; see `docs/rule-scheduling.md`),
//!   which makes late iterations — where the frontier touches one or two
//!   properties — nearly free;
//! * **table update** (Figure 5) — the per-property sort + dedup + merge is
//!   embarrassingly parallel across properties: the affected tables are
//!   *taken out* of the store, chunked round-robin across the pool's lanes
//!   (each lane owning a reusable [`SortScratch`]), merged with the
//!   adaptive merge of `inferray-store`, and re-installed in ascending
//!   property order. Results and statistics are byte-for-byte identical to
//!   the sequential path (see the `determinism_parallel` integration test).

use crate::closure_stage::{run_closure_stage, ClosureStageStats};
use crate::iteration::{IterationProfile, IterationSample};
use crate::options::InferrayOptions;
use inferray_dictionary::wellknown;
use inferray_model::ids::is_property_id;
use inferray_model::IdTriple;
use inferray_parallel::ThreadPool;
use inferray_rules::{
    analysis, apply_rule, Fragment, InferenceStats, Materializer, RuleClass, RuleContext, RuleId,
    RuleRef, Ruleset,
};
use inferray_sort::SortScratch;
use inferray_store::{
    merge_new_pairs_with, AccessProfile, InferredBuffer, MergeOutcome, PropertyTable, TripleStore,
};
use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

/// The forward-chaining, sort-merge-join, fixed-point reasoner.
///
/// ```
/// use inferray_core::{Fragment, InferrayReasoner, Materializer, TripleStore};
/// use inferray_dictionary::wellknown;
/// use inferray_model::IdTriple;
///
/// // human ⊑ mammal ⊑ animal, Bart a human.
/// let human = 5_000_000_001u64;
/// let mammal = human + 1;
/// let animal = human + 2;
/// let bart = human + 3;
/// let mut store = TripleStore::from_triples([
///     IdTriple::new(human, wellknown::RDFS_SUB_CLASS_OF, mammal),
///     IdTriple::new(mammal, wellknown::RDFS_SUB_CLASS_OF, animal),
///     IdTriple::new(bart, wellknown::RDF_TYPE, human),
/// ]);
/// let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
/// let stats = reasoner.materialize(&mut store);
/// assert_eq!(stats.inferred_triples(), 3); // human⊑animal, Bart a mammal, Bart a animal
/// assert!(store.contains(&IdTriple::new(bart, wellknown::RDF_TYPE, animal)));
/// ```
#[derive(Debug, Clone)]
pub struct InferrayReasoner {
    ruleset: Ruleset,
    options: InferrayOptions,
    last_closure_stats: ClosureStageStats,
    last_iteration_profile: IterationProfile,
}

/// The result of updating one property table (computed on a pool worker).
pub struct PropertyUpdate {
    /// The property whose table was updated.
    pub p: u64,
    /// The genuinely new pairs (the next iteration's frontier for `p`).
    pub new_table: PropertyTable,
    /// Counters of the merge.
    pub outcome: MergeOutcome,
}

/// The per-iteration table-update stage (Figure 5) over every property that
/// received inferred pairs: take the affected tables out of the store;
/// sort, dedup and merge each one (chunked round-robin across the pool's
/// lanes, one reusable [`SortScratch`] per lane; sequentially with
/// `scratches[0]` when `pool` is `None`); and re-install the updated
/// tables. Returns the per-property results in ascending property order
/// regardless of scheduling.
///
/// Public because the `table_update` benchmark drives exactly this function
/// — the benchmark and the reasoner cannot drift apart.
pub fn run_table_update(
    pool: Option<&ThreadPool>,
    store: &mut TripleStore,
    tables: Vec<(u64, Vec<u64>)>,
    scratches: &mut [SortScratch],
) -> Vec<PropertyUpdate> {
    match pool {
        Some(pool) if tables.len() > 1 => {
            // Take the affected tables out of the store so each chunk owns
            // its tables outright — no locks, no aliasing.
            let lanes = scratches.len().min(tables.len()).max(1);
            let mut chunks: Vec<Vec<(u64, PropertyTable, Vec<u64>)>> =
                (0..lanes).map(|_| Vec::new()).collect();
            for (index, (p, pairs)) in tables.into_iter().enumerate() {
                let table = store.take_table(p).unwrap_or_default();
                chunks[index % lanes].push((p, table, pairs));
            }
            let tasks: Vec<_> = chunks
                .into_iter()
                .zip(scratches.iter_mut())
                .map(|(chunk, scratch)| {
                    move || {
                        chunk
                            .into_iter()
                            .map(|(p, mut table, pairs)| {
                                table.finalize_with(scratch);
                                let (new_table, outcome) =
                                    merge_new_pairs_with(&mut table, pairs, scratch);
                                (p, table, new_table, outcome)
                            })
                            .collect::<Vec<_>>()
                    }
                })
                .collect();
            let mut results: Vec<(u64, PropertyTable, PropertyTable, MergeOutcome)> =
                pool.run_ordered(tasks).into_iter().flatten().collect();
            results.sort_unstable_by_key(|(p, ..)| *p);
            results
                .into_iter()
                .map(|(p, table, new_table, outcome)| {
                    store.set_table(p, table);
                    PropertyUpdate {
                        p,
                        new_table,
                        outcome,
                    }
                })
                .collect()
        }
        _ => {
            let scratch = scratches.first_mut().expect("at least one scratch");
            tables
                .into_iter()
                .map(|(p, pairs)| {
                    let mut table = store.take_table(p).unwrap_or_default();
                    table.finalize_with(scratch);
                    let (new_table, outcome) = merge_new_pairs_with(&mut table, pairs, scratch);
                    store.set_table(p, table);
                    PropertyUpdate {
                        p,
                        new_table,
                        outcome,
                    }
                })
                .collect()
        }
    }
}

/// Fires one rule of `ruleset` over `ctx`, appending to `out`: a catalog
/// built-in through its hand-written class executor, a custom rule through
/// the generic analyzer executor.
fn fire_one(ruleset: &Ruleset, rule: RuleRef, ctx: &RuleContext<'_>, out: &mut InferredBuffer) {
    match rule {
        RuleRef::Builtin(id) => apply_rule(id, ctx, out),
        RuleRef::Custom(i) => analysis::apply_compiled(&ruleset.custom_rules()[i], ctx, out),
    }
}

impl InferrayReasoner {
    /// A reasoner for one of the standard fragments, with default options.
    pub fn new(fragment: Fragment) -> Self {
        Self::with_options(fragment, InferrayOptions::default())
    }

    /// A reasoner for a standard fragment with explicit options.
    pub fn with_options(fragment: Fragment, options: InferrayOptions) -> Self {
        Self::with_ruleset(Ruleset::for_fragment(fragment), options)
    }

    /// A reasoner over a custom ruleset (used by the ablation benchmarks).
    pub fn with_ruleset(ruleset: Ruleset, options: InferrayOptions) -> Self {
        InferrayReasoner {
            ruleset,
            options,
            last_closure_stats: ClosureStageStats::default(),
            last_iteration_profile: IterationProfile::default(),
        }
    }

    /// The ruleset this reasoner applies.
    pub fn ruleset(&self) -> &Ruleset {
        &self.ruleset
    }

    /// The options this reasoner runs with.
    pub fn options(&self) -> InferrayOptions {
        self.options
    }

    /// Statistics of the closure stage of the most recent run.
    pub fn last_closure_stats(&self) -> ClosureStageStats {
        self.last_closure_stats
    }

    /// Per-iteration timing breakdown (fire vs. table update) of the most
    /// recent run.
    pub fn last_iteration_profile(&self) -> &IterationProfile {
        &self.last_iteration_profile
    }

    /// Applies the given rules once over (`main`, `new`), returning the
    /// combined inferred buffer. Each rule owns its buffer; with a pool each
    /// rule also runs as its own task (§4.3). Buffers are absorbed in rule
    /// order, so the combined buffer is schedule-independent. Built-ins run
    /// their hand-written class executors; custom (analyzer-compiled) rules
    /// run the generic semi-naive join.
    fn fire_rules(
        &self,
        pool: Option<&ThreadPool>,
        main: &TripleStore,
        new: &TripleStore,
        rules: &[RuleRef],
    ) -> InferredBuffer {
        let mut combined = InferredBuffer::new();
        let ruleset = &self.ruleset;
        match pool {
            Some(pool) if rules.len() > 1 => {
                let tasks: Vec<_> = rules
                    .iter()
                    .map(|&rule| {
                        move || {
                            let ctx = RuleContext::new(main, new);
                            let mut buffer = InferredBuffer::new();
                            fire_one(ruleset, rule, &ctx, &mut buffer);
                            buffer
                        }
                    })
                    .collect();
                for buffer in pool.run_ordered(tasks) {
                    combined.absorb(buffer);
                }
            }
            _ => {
                let ctx = RuleContext::new(main, new);
                for &rule in rules {
                    fire_one(ruleset, rule, &ctx, &mut combined);
                }
            }
        }
        combined
    }

    /// Incrementally maintains an **already materialized** store after new
    /// triples are asserted.
    ///
    /// The paper notes that forward chaining "requires full materialization
    /// after deletion" (§1) but additions do not: the fixed point can be
    /// restarted with the delta as the semi-naive frontier. The dedicated
    /// up-front closure stage is not re-run — new edges on transitive
    /// properties are picked up by the in-loop θ executors, which re-close a
    /// table only when it actually received pairs.
    ///
    /// The result is identical to re-materializing the extended input from
    /// scratch (see the `incremental_maintenance` integration tests), at the
    /// cost of work proportional to what the delta can newly derive.
    ///
    /// Returns the statistics of the incremental run; `input_triples` counts
    /// the store *after* the delta was asserted, so
    /// [`InferenceStats::inferred_triples`] is the number of triples the
    /// delta caused to be derived.
    pub fn materialize_delta(
        &mut self,
        store: &mut TripleStore,
        delta: impl IntoIterator<Item = IdTriple>,
    ) -> InferenceStats {
        let start = Instant::now();
        let mut profile = AccessProfile::default();
        store.finalize();
        self.last_closure_stats = ClosureStageStats::default();

        // Group the delta by property and merge it into the store, keeping
        // only the genuinely new pairs as the semi-naive frontier.
        let mut scratch = SortScratch::new();
        let mut by_property: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        for triple in delta {
            let pairs = by_property.entry(triple.p).or_default();
            pairs.push(triple.s);
            pairs.push(triple.o);
        }
        let mut new = TripleStore::new();
        for (p, pairs) in by_property {
            profile.sequential(pairs.len() as u64);
            let (new_table, _) = store.merge_property_with(p, pairs, &mut scratch);
            if !new_table.is_empty() {
                profile.allocate(2 * new_table.len() as u64);
                new.replace_table_sorted(p, new_table.into_pairs());
            }
        }
        let input_triples = store.len();

        let outcome = if new.is_empty() {
            self.last_iteration_profile = IterationProfile::default();
            FixedPointOutcome::default()
        } else {
            self.run_fixed_point(store, new, &mut profile, FirstFire::Scheduled)
        };

        InferenceStats {
            input_triples,
            output_triples: store.len(),
            iterations: outcome.iterations,
            derived_raw: outcome.derived_raw,
            duplicates_removed: outcome.duplicates_removed,
            duration: start.elapsed(),
            profile,
        }
    }

    /// Incrementally maintains an **already materialized** store after
    /// explicit triples are retracted — the delete–rederive (DRed) algorithm
    /// of the classic Datalog maintenance literature (docs/maintenance.md).
    ///
    /// `store` must be the materialization of `base` under this reasoner's
    /// fragment and options; `base` holds the *explicit* (asserted) triples.
    /// The requested `delta` is intersected with `base`: retracting a triple
    /// that was never asserted is a no-op, even if the triple is currently
    /// entailed (it stays derivable, so the result of rebuilding from
    /// `base ∖ Δ` still contains it).
    ///
    /// The algorithm has two phases:
    ///
    /// 1. **over-delete** — starting from the explicit deletions, repeatedly
    ///    fire the (input-scheduled) rules semi-naively with the deletion
    ///    frontier as `new` to collect every one-step consequence of a
    ///    deleted triple, remove the frontier, and continue with the
    ///    consequences that are still present and not explicitly asserted.
    ///    The θ (closure) executors only emit pairs *absent* from the closed
    ///    main table, so their cones are collected by conservatively marking
    ///    the whole derived part of every affected closed table instead.
    ///    Explicit triples are never over-deleted.
    /// 2. **rederive** — probe every removed triple with the one-step
    ///    support checks ([`inferray_rules::is_supported`]), restricted per
    ///    property to the rules whose *output* signature
    ///    ([`inferray_rules::RuleOutputs`]) reaches it; re-assert the
    ///    supported ones and cascade them through the ordinary incremental
    ///    addition machinery ([`InferrayReasoner::materialize_delta`]).
    ///    Triples missing at greater derivation height have a missing
    ///    premise among the re-asserted ones and are reached by the
    ///    cascade, so one-step probes suffice. (With `schedule_rules`
    ///    disabled the rederivation instead re-runs the full fixed point
    ///    over the survivors — the reference implementation the equivalence
    ///    suite compares against.)
    ///
    /// The result is byte-identical — per-table pair arrays, dictionary
    /// identifiers, promotion state — to re-materializing `base ∖ Δ` from
    /// scratch (proven by `tests/retraction_equivalence.rs`), at a cost
    /// proportional to the deleted cone plus one output-restricted firing
    /// round.
    pub fn retract_delta(
        &mut self,
        store: &mut TripleStore,
        base: &mut TripleStore,
        delta: impl IntoIterator<Item = IdTriple>,
    ) -> RetractionStats {
        let start = Instant::now();
        store.finalize();
        base.finalize();
        self.last_closure_stats = ClosureStageStats::default();
        self.last_iteration_profile = IterationProfile::default();

        let requested: BTreeSet<IdTriple> = delta.into_iter().collect();
        let explicit: Vec<IdTriple> = requested
            .iter()
            .copied()
            .filter(|t| is_property_id(t.p) && base.contains(t))
            .collect();
        let mut stats = RetractionStats {
            requested: requested.len(),
            output_triples: store.len(),
            duration: start.elapsed(),
            ..RetractionStats::default()
        };
        if explicit.is_empty() {
            return stats;
        }
        stats.retracted_explicit = explicit.len();
        base.retract(explicit.iter().copied());

        let pool = if self.options.parallel {
            Some(inferray_parallel::global())
        } else {
            None
        };
        let mut scratch = SortScratch::new();
        let size_before = store.len();

        // Phase 1: over-delete the cone of consequences. Every removed
        // triple — explicit or derived — is also a rederivation candidate:
        // an explicitly retracted triple that is still entailed by the
        // surviving base must reappear (it is merely no longer asserted).
        let mut removed: Vec<IdTriple> = Vec::new();
        let mut frontier =
            TripleStore::from_triples(explicit.iter().copied().filter(|t| store.contains(t)));
        while !frontier.is_empty() {
            // The firing phase is read-only and wants the ⟨o,s⟩ caches; only
            // the tables the previous round's removals invalidated re-sort.
            store.ensure_all_os_with(&mut scratch);
            frontier.ensure_all_os_with(&mut scratch);

            // Fire the rules that read the frontier's tables (the §4.3
            // dependency index), with the frontier as `new` *while it is
            // still part of the store*: the semi-naive executors then emit
            // exactly the one-step consequences that use at least one
            // deleted premise. The θ rules are excluded — their executors
            // cannot see "un-derivable" pairs — and handled below.
            let scheduled: Vec<RuleRef> = if self.options.schedule_rules {
                self.ruleset.scheduled_refs(store, &frontier)
            } else {
                self.ruleset.all_refs()
            }
            .into_iter()
            .filter(|r| !matches!(r, RuleRef::Builtin(id) if id.class() == RuleClass::Theta))
            .collect();
            let mut candidates = self.fire_rules(pool, store, &frontier, &scheduled);
            self.collect_theta_over_deletions(store, &frontier, &mut candidates);

            // Remove the frontier, then keep as the next frontier every
            // consequence that is still present and not explicitly asserted.
            for (p, table) in frontier.iter_tables() {
                store.remove_pairs(p, table.pairs());
            }
            removed.extend(frontier.iter_triples());
            let mut next = TripleStore::new();
            for (p, pairs) in candidates.into_iter_tables() {
                let Some(table) = store.table(p) else {
                    continue;
                };
                for pair in pairs.chunks_exact(2) {
                    let (s, o) = (pair[0], pair[1]);
                    if table.contains_pair(s, o) && !base.contains(&IdTriple::new(s, p, o)) {
                        next.add_pair(p, s, o);
                    }
                }
            }
            next.finalize();
            frontier = next;
        }
        stats.over_deleted = size_before - store.len() - explicit.len();

        // Phase 2: rederive. Every triple still entailed by the surviving
        // base is either one-step derivable from the survivors or depends
        // on a removed triple that is — so probing each removed triple with
        // the one-step support checks finds exactly the seed the ordinary
        // incremental addition cascade needs. Per property, only the rules
        // whose output signature reaches that table are probed.
        let after_delete = store.len();
        if !store.is_empty() && !removed.is_empty() {
            if self.options.schedule_rules {
                // The probes want the ⟨o,s⟩ caches of the surviving store;
                // only the tables the deletions invalidated re-sort.
                store.ensure_all_os_with(&mut scratch);
                let mut supported: Vec<IdTriple> = Vec::new();
                let mut rules_for: BTreeMap<u64, Vec<RuleRef>> = BTreeMap::new();
                for &candidate in &removed {
                    let rules = rules_for.entry(candidate.p).or_insert_with(|| {
                        self.ruleset
                            .rederive_refs(store, &BTreeSet::from([candidate.p]))
                    });
                    if rules.iter().any(|&rule| match rule {
                        RuleRef::Builtin(id) => inferray_rules::is_supported(id, store, candidate),
                        RuleRef::Custom(i) => {
                            analysis::supports(&self.ruleset.custom_rules()[i], store, candidate)
                        }
                    }) {
                        supported.push(candidate);
                    }
                }
                if !supported.is_empty() {
                    let cascade = self.materialize_delta(store, supported);
                    stats.iterations = cascade.iterations;
                    stats.profile = cascade.profile;
                }
            } else {
                // Reference path (scheduling disabled): re-run the full
                // fixed point over the survivors with `new == store`.
                let mut profile = AccessProfile::default();
                let new = store.clone();
                profile.allocate(2 * new.len() as u64);
                let outcome = self.run_fixed_point(store, new, &mut profile, FirstFire::All);
                stats.iterations = outcome.iterations;
                stats.profile = profile;
            }
        }

        stats.rederived = store.len() - after_delete;
        stats.output_triples = store.len();
        stats.duration = start.elapsed();
        stats
    }

    /// Marks the θ-rule over-deletion candidates: when a table a closure
    /// rule maintains loses pairs (or loses its `owl:TransitiveProperty`
    /// declaration), every pair of that table becomes a deletion candidate —
    /// the explicit-base filter of the caller keeps asserted edges alive,
    /// and rederivation re-closes whatever the surviving edges still entail.
    fn collect_theta_over_deletions(
        &self,
        store: &TripleStore,
        frontier: &TripleStore,
        out: &mut InferredBuffer,
    ) {
        let changed: BTreeSet<u64> = frontier.property_ids().collect();
        let dump = |p: u64, out: &mut InferredBuffer| {
            if let Some(table) = store.table(p) {
                out.add_pairs(p, table.pairs());
            }
        };
        for rule in self.ruleset.theta_rules() {
            match rule {
                RuleId::ScmSco if changed.contains(&wellknown::RDFS_SUB_CLASS_OF) => {
                    dump(wellknown::RDFS_SUB_CLASS_OF, out);
                }
                RuleId::ScmSpo if changed.contains(&wellknown::RDFS_SUB_PROPERTY_OF) => {
                    dump(wellknown::RDFS_SUB_PROPERTY_OF, out);
                }
                RuleId::EqTrans if changed.contains(&wellknown::OWL_SAME_AS) => {
                    dump(wellknown::OWL_SAME_AS, out);
                }
                RuleId::PrpTrp => {
                    // Declared transitive properties whose tables lost pairs,
                    // plus properties whose declaration itself is deleted.
                    let declared = RuleContext::subjects_with_object(
                        store,
                        wellknown::RDF_TYPE,
                        wellknown::OWL_TRANSITIVE_PROPERTY,
                    );
                    let undeclared = RuleContext::subjects_with_object(
                        frontier,
                        wellknown::RDF_TYPE,
                        wellknown::OWL_TRANSITIVE_PROPERTY,
                    );
                    for p in declared
                        .iter()
                        .filter(|p| changed.contains(p))
                        .chain(undeclared.iter())
                    {
                        if is_property_id(*p) {
                            dump(*p, out);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    /// The fixed-point loop of Algorithm 1 (lines 4–8), shared by the full
    /// materialization, the incremental addition path and the rederivation
    /// half of the retraction path.
    ///
    /// `first_fire` selects the rules of iteration 1 (see [`FirstFire`]);
    /// from iteration 2 on, the ordinary input-driven scheduling applies
    /// regardless.
    fn run_fixed_point(
        &mut self,
        store: &mut TripleStore,
        mut new: TripleStore,
        profile: &mut AccessProfile,
        first_fire: FirstFire,
    ) -> FixedPointOutcome {
        let pool = if self.options.parallel {
            Some(inferray_parallel::global())
        } else {
            None
        };
        // One sort scratch per execution lane (workers + the calling
        // thread), created once per run and reused across iterations: the
        // steady state performs zero sort allocations.
        let lanes = pool.map_or(1, |p| p.threads() + 1);
        let mut scratches: Vec<SortScratch> = (0..lanes).map(|_| SortScratch::new()).collect();

        let mut iteration_profile = IterationProfile::default();
        let mut outcome = FixedPointOutcome::default();
        let total_rules = self.ruleset.len();
        while !new.is_empty() && outcome.iterations < self.options.max_iterations {
            outcome.iterations += 1;

            // Pre-build the ⟨o,s⟩ caches so the parallel phase is read-only
            // (timed separately: this re-sorts the caches the previous
            // iteration's merges invalidated, which is neither rule firing
            // nor this iteration's merge work). Only the pairs actually
            // re-sorted are charged to the access profile — caches that
            // survived the previous iteration untouched cost nothing.
            let os_start = Instant::now();
            let resorted = store.ensure_all_os_with(&mut scratches[0])
                + new.ensure_all_os_with(&mut scratches[0]);
            profile.sequential(2 * resorted as u64);
            let os_cache = os_start.elapsed();

            // Line 5: fire the scheduled rules. A full materialization fires
            // everything on iteration 1 (`new == main`: every input is
            // "changed"); the incremental path schedules from the start,
            // because its iteration 1 frontier is the delta and the store is
            // already a fixed point of the ruleset; the rederivation path
            // passes an explicit output-derived seed. From iteration 2 on,
            // only the rules whose input tables received new pairs in the
            // previous iteration — exactly the tables of `new` — can derive
            // anything but duplicates (§4.3). The `schedule_rules` escape
            // hatch forces the full ruleset everywhere.
            let scheduled: Vec<RuleRef> = if !self.options.schedule_rules {
                self.ruleset.all_refs()
            } else if outcome.iterations > 1 {
                self.ruleset.scheduled_refs(store, &new)
            } else {
                match first_fire {
                    FirstFire::All => self.ruleset.all_refs(),
                    FirstFire::Scheduled => self.ruleset.scheduled_refs(store, &new),
                }
            };
            let fire_start = Instant::now();
            let inferred = self.fire_rules(pool, store, &new, &scheduled);
            let fire = fire_start.elapsed();
            let raw_pairs = inferred.len();
            outcome.derived_raw += raw_pairs;

            // Lines 6-7: per-property sort + dedup + merge (Figure 5),
            // parallel across properties.
            let update_start = Instant::now();
            let tables: Vec<(u64, Vec<u64>)> = inferred.into_iter_tables().collect();
            let properties_touched = tables.len();
            let results = run_table_update(pool, store, tables, &mut scratches);

            let mut next_new = TripleStore::new();
            let mut new_pairs = 0usize;
            for result in results {
                let merge = result.outcome;
                profile.sequential(2 * merge.inferred_raw as u64);
                profile.sequential(2 * (merge.inferred_raw + result.new_table.len()) as u64);
                outcome.duplicates_removed +=
                    merge.duplicates_within_inferred + merge.duplicates_against_main;
                new_pairs += merge.new_pairs;
                if !result.new_table.is_empty() {
                    profile.allocate(2 * result.new_table.len() as u64);
                    next_new.replace_table_sorted(result.p, result.new_table.into_pairs());
                }
            }
            iteration_profile.samples.push(IterationSample {
                iteration: outcome.iterations,
                os_cache,
                fire,
                update: update_start.elapsed(),
                raw_pairs,
                new_pairs,
                properties_touched,
                rules_fired: scheduled.len(),
                rules_skipped: total_rules - scheduled.len(),
            });
            new = next_new;
        }
        self.last_iteration_profile = iteration_profile;
        outcome
    }
}

/// Counters accumulated by one run of the fixed-point loop.
#[derive(Debug, Clone, Copy, Default)]
struct FixedPointOutcome {
    iterations: usize,
    derived_raw: usize,
    duplicates_removed: usize,
}

/// Which rules the first iteration of [`InferrayReasoner::run_fixed_point`]
/// fires (later iterations always use the input-driven §4.3 scheduling).
enum FirstFire {
    /// The complete ruleset — a full materialization, whose iteration 1 has
    /// `new == main`.
    All,
    /// The input-driven schedule — the incremental addition path, whose
    /// iteration 1 frontier is the asserted delta.
    Scheduled,
}

/// Statistics of one [`InferrayReasoner::retract_delta`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RetractionStats {
    /// Distinct triples the caller asked to retract.
    pub requested: usize,
    /// Requested triples that were explicitly asserted (present in `base`)
    /// and therefore actually removed.
    pub retracted_explicit: usize,
    /// Derived triples removed by the over-deletion phase (beyond the
    /// explicit ones).
    pub over_deleted: usize,
    /// Over-deleted triples restored by the rederivation phase (they were
    /// still entailed by the surviving base).
    pub rederived: usize,
    /// Fixed-point iterations of the rederivation phase.
    pub iterations: usize,
    /// Triples in the store after the retraction.
    pub output_triples: usize,
    /// Wall-clock time of the whole retraction.
    pub duration: Duration,
    /// Software memory-access profile of the rederivation phase.
    pub profile: AccessProfile,
}

impl RetractionStats {
    /// Net triples the store lost: explicit removals plus the over-deleted
    /// cone, minus what rederivation restored.
    pub fn net_removed(&self) -> usize {
        self.retracted_explicit + self.over_deleted - self.rederived
    }
}

impl Materializer for InferrayReasoner {
    fn name(&self) -> &'static str {
        "inferray"
    }

    fn materialize(&mut self, store: &mut TripleStore) -> InferenceStats {
        let start = Instant::now();
        let mut profile = AccessProfile::default();
        store.finalize();
        let input_triples = store.len();

        // Step 1 (Algorithm 1, line 2): dedicated transitive-closure stage.
        // Analyzer-loaded rulesets that are not an exact fragment skip it —
        // the in-loop θ executors reach the same fixed point.
        if !self.options.skip_closure_stage && self.ruleset.runs_closure_stage() {
            self.last_closure_stats = run_closure_stage(store, self.ruleset.fragment, &mut profile);
        } else {
            self.last_closure_stats = ClosureStageStats::default();
        }

        // Step 2 (line 3): on the first iteration, new == main.
        let new: TripleStore = store.clone();
        profile.allocate(2 * new.len() as u64);

        // Step 3 (lines 4-8): fixed point.
        let outcome = self.run_fixed_point(store, new, &mut profile, FirstFire::All);

        InferenceStats {
            input_triples,
            output_triples: store.len(),
            iterations: outcome.iterations,
            derived_raw: outcome.derived_raw,
            duplicates_removed: outcome.duplicates_removed,
            duration: start.elapsed(),
            profile,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    const HUMAN: u64 = 9_000_000;
    const MAMMAL: u64 = 9_000_001;
    const ANIMAL: u64 = 9_000_002;
    const BART: u64 = 9_000_003;
    const LISA: u64 = 9_000_004;

    fn family_dataset() -> TripleStore {
        store(&[
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
            (BART, wk::RDF_TYPE, HUMAN),
            (LISA, wk::RDF_TYPE, HUMAN),
        ])
    }

    #[test]
    fn paper_running_example_rdfs() {
        let mut data = family_dataset();
        let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
        let stats = reasoner.materialize(&mut data);
        // Inferred: human⊑animal, and {Bart, Lisa} × {mammal, animal}.
        assert_eq!(stats.inferred_triples(), 5);
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)));
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, ANIMAL)));
        assert!(data.contains(&IdTriple::new(LISA, wk::RDF_TYPE, ANIMAL)));
        assert!(data.contains(&IdTriple::new(HUMAN, wk::RDFS_SUB_CLASS_OF, ANIMAL)));
        assert!(stats.iterations >= 1);
        assert!(stats.output_triples == stats.input_triples + 5);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let mut parallel_store = family_dataset();
        let mut sequential_store = family_dataset();
        InferrayReasoner::with_options(Fragment::RdfsDefault, InferrayOptions::default())
            .materialize(&mut parallel_store);
        InferrayReasoner::with_options(Fragment::RdfsDefault, InferrayOptions::sequential())
            .materialize(&mut sequential_store);
        let a: Vec<_> = parallel_store.iter_triples().collect();
        let b: Vec<_> = sequential_store.iter_triples().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn skipping_the_closure_stage_still_converges_to_the_same_result() {
        let mut with_stage = family_dataset();
        let mut without_stage = family_dataset();
        InferrayReasoner::new(Fragment::RdfsDefault).materialize(&mut with_stage);
        InferrayReasoner::with_options(
            Fragment::RdfsDefault,
            InferrayOptions::without_closure_stage(),
        )
        .materialize(&mut without_stage);
        let a: Vec<_> = with_stage.iter_triples().collect();
        let b: Vec<_> = without_stage.iter_triples().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rdfs_plus_same_as_and_inverse() {
        let knows = nth_property_id(700);
        let kned_by = nth_property_id(701);
        let alice = 9_100_000u64;
        let alyce = alice + 1;
        let bob = alice + 2;
        let mut data = store(&[
            (knows, wk::OWL_INVERSE_OF, kned_by),
            (alice, wk::OWL_SAME_AS, alyce),
            (alice, knows, bob),
        ]);
        let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        // Inverse property fires.
        assert!(data.contains(&IdTriple::new(bob, kned_by, alice)));
        // sameAs substitution propagates the data triple to the alias.
        assert!(data.contains(&IdTriple::new(alyce, knows, bob)));
        // ... and its inverse.
        assert!(data.contains(&IdTriple::new(bob, kned_by, alyce)));
        // sameAs is symmetric.
        assert!(data.contains(&IdTriple::new(alyce, wk::OWL_SAME_AS, alice)));
        assert!(
            stats.iterations >= 2,
            "needs at least two iterations to chase the interaction"
        );
    }

    #[test]
    fn functional_property_derives_same_as() {
        let has_mother = nth_property_id(702);
        let bart = 9_200_000u64;
        let marge1 = bart + 1;
        let marge2 = bart + 2;
        let mut data = store(&[
            (has_mother, wk::RDF_TYPE, wk::OWL_FUNCTIONAL_PROPERTY),
            (bart, has_mother, marge1),
            (bart, has_mother, marge2),
        ]);
        InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        assert!(data.contains(&IdTriple::new(marge1, wk::OWL_SAME_AS, marge2)));
        assert!(data.contains(&IdTriple::new(marge2, wk::OWL_SAME_AS, marge1)));
    }

    #[test]
    fn empty_store_is_a_fixed_point_immediately() {
        let mut data = TripleStore::new();
        let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        assert_eq!(stats.input_triples, 0);
        assert_eq!(stats.output_triples, 0);
        assert_eq!(stats.inferred_triples(), 0);
    }

    #[test]
    fn materialization_is_idempotent() {
        let mut data = family_dataset();
        let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
        let first = reasoner.materialize(&mut data);
        let after_first: Vec<_> = data.iter_triples().collect();
        let second = reasoner.materialize(&mut data);
        let after_second: Vec<_> = data.iter_triples().collect();
        assert_eq!(after_first, after_second);
        assert!(first.inferred_triples() > 0);
        assert_eq!(second.inferred_triples(), 0);
    }

    #[test]
    fn rdfs_full_adds_axiomatic_triples() {
        let mut data = family_dataset();
        InferrayReasoner::new(Fragment::RdfsFull).materialize(&mut data);
        assert!(data.contains(&IdTriple::new(BART, wk::RDF_TYPE, wk::RDFS_RESOURCE)));
        assert!(data.contains(&IdTriple::new(HUMAN, wk::RDF_TYPE, wk::RDFS_RESOURCE)));
    }

    #[test]
    fn rho_df_subset_derives_less_than_rdfs_full() {
        let mut rho = family_dataset();
        let mut full = family_dataset();
        let rho_stats = InferrayReasoner::new(Fragment::RhoDf).materialize(&mut rho);
        let full_stats = InferrayReasoner::new(Fragment::RdfsFull).materialize(&mut full);
        assert!(full_stats.inferred_triples() > rho_stats.inferred_triples());
        // Everything ρDF derives is also derived by RDFS-Full.
        for t in rho.iter_triples() {
            assert!(full.contains(&t));
        }
    }

    #[test]
    fn transitive_property_closure_in_rdfs_plus() {
        let part_of = nth_property_id(703);
        let a = 9_300_000u64;
        let chain: Vec<(u64, u64, u64)> = (0..20)
            .map(|i| (a + i, part_of, a + i + 1))
            .chain(std::iter::once((
                part_of,
                wk::RDF_TYPE,
                wk::OWL_TRANSITIVE_PROPERTY,
            )))
            .collect();
        let mut data = store(&chain);
        let stats = InferrayReasoner::new(Fragment::RdfsPlus).materialize(&mut data);
        // A chain of 21 nodes closes to 21·20/2 pairs.
        assert!(data.contains(&IdTriple::new(a, part_of, a + 20)));
        assert_eq!(
            data.table(part_of).unwrap().len(),
            21 * 20 / 2,
            "full transitive closure expected"
        );
        assert!(stats.duration.as_nanos() > 0);
    }

    #[test]
    fn scheduled_and_unscheduled_runs_agree_byte_for_byte() {
        // The sameAs/inverse interaction needs several iterations, each
        // touching different properties — the scheduler has real decisions
        // to make.
        let knows = nth_property_id(710);
        let kned_by = nth_property_id(711);
        let alice = 9_400_000u64;
        let build = || {
            store(&[
                (knows, wk::OWL_INVERSE_OF, kned_by),
                (alice, wk::OWL_SAME_AS, alice + 1),
                (alice, knows, alice + 2),
                (alice + 2, wk::RDF_TYPE, alice + 3),
                (alice + 3, wk::RDFS_SUB_CLASS_OF, alice + 4),
            ])
        };
        let mut scheduled_store = build();
        let mut full_store = build();
        let mut scheduled =
            InferrayReasoner::with_options(Fragment::RdfsPlus, InferrayOptions::default());
        scheduled.materialize(&mut scheduled_store);
        InferrayReasoner::with_options(Fragment::RdfsPlus, InferrayOptions::unscheduled())
            .materialize(&mut full_store);
        let a: Vec<_> = scheduled_store.iter_triples().collect();
        let b: Vec<_> = full_store.iter_triples().collect();
        assert_eq!(a, b);
        // The run took several iterations and the scheduler skipped rules.
        let profile = scheduled.last_iteration_profile();
        assert!(profile.samples.len() >= 2);
        assert_eq!(
            profile.samples[0].rules_skipped, 0,
            "iteration 1 fires everything"
        );
        assert!(profile.total_rules_skipped() > 0);
    }

    #[test]
    fn unscheduled_profile_reports_no_skips() {
        let mut data = family_dataset();
        let mut reasoner =
            InferrayReasoner::with_options(Fragment::RdfsDefault, InferrayOptions::unscheduled());
        reasoner.materialize(&mut data);
        let profile = reasoner.last_iteration_profile();
        assert!(profile.total_rules_skipped() == 0);
        assert!(profile
            .samples
            .iter()
            .all(|s| s.rules_fired == Ruleset::for_fragment(Fragment::RdfsDefault).len()));
    }

    /// Materializes `base`, retracts `delta` incrementally, and checks the
    /// result is byte-identical to materializing `base ∖ delta` from scratch.
    fn assert_retract_equals_rebuild(
        fragment: Fragment,
        options: InferrayOptions,
        base: &[(u64, u64, u64)],
        delta: &[(u64, u64, u64)],
    ) -> RetractionStats {
        let mut materialized = store(base);
        let mut base_store = store(base);
        let mut reasoner = InferrayReasoner::with_options(fragment, options);
        reasoner.materialize(&mut materialized);
        let delta: Vec<IdTriple> = delta
            .iter()
            .map(|&(s, p, o)| IdTriple::new(s, p, o))
            .collect();
        let stats = reasoner.retract_delta(&mut materialized, &mut base_store, delta.clone());

        let remaining: Vec<IdTriple> = store(base)
            .iter_triples()
            .filter(|t| !delta.contains(t))
            .collect();
        let mut rebuilt = TripleStore::from_triples(remaining.iter().copied());
        InferrayReasoner::with_options(fragment, options).materialize(&mut rebuilt);

        let a: Vec<(u64, Vec<u64>)> = materialized
            .iter_tables()
            .map(|(p, t)| (p, t.pairs().to_vec()))
            .collect();
        let b: Vec<(u64, Vec<u64>)> = rebuilt
            .iter_tables()
            .map(|(p, t)| (p, t.pairs().to_vec()))
            .collect();
        assert_eq!(a, b, "retract != rebuild for {fragment}");
        let expected_base: Vec<IdTriple> = remaining;
        let got_base: Vec<IdTriple> = base_store.iter_triples().collect();
        assert_eq!(got_base, expected_base, "base tracking diverged");
        assert_eq!(stats.output_triples, materialized.len());
        stats
    }

    #[test]
    fn retracting_an_instance_undoes_its_type_cone() {
        let stats = assert_retract_equals_rebuild(
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            &[
                (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
                (MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
                (BART, wk::RDF_TYPE, HUMAN),
                (LISA, wk::RDF_TYPE, HUMAN),
            ],
            &[(LISA, wk::RDF_TYPE, HUMAN)],
        );
        // Lisa's asserted type plus her two derived types are gone; Bart's
        // cone (same derived triples, different subject) is untouched.
        assert_eq!(stats.retracted_explicit, 1);
        assert_eq!(stats.net_removed(), 3);
    }

    #[test]
    fn retracting_a_schema_edge_undoes_the_closure_cone() {
        let stats = assert_retract_equals_rebuild(
            Fragment::RdfsDefault,
            InferrayOptions::default(),
            &[
                (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
                (MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
                (BART, wk::RDF_TYPE, HUMAN),
                (BART, wk::RDF_TYPE, ANIMAL), // also asserted explicitly
            ],
            &[(MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL)],
        );
        // human ⊑ animal and Bart's derived animal type are un-derived, but
        // the explicitly asserted (Bart a animal) must survive over-deletion.
        assert!(stats.over_deleted >= 1);
        assert!(stats.output_triples >= 4);
    }

    #[test]
    fn retracting_an_unasserted_derived_triple_is_a_noop() {
        let base = [
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (BART, wk::RDF_TYPE, HUMAN),
        ];
        let mut materialized = store(&base);
        let mut base_store = store(&base);
        let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
        reasoner.materialize(&mut materialized);
        let before: Vec<IdTriple> = materialized.iter_triples().collect();
        // (Bart a mammal) is derived, not asserted: retracting it is a no-op.
        let stats = reasoner.retract_delta(
            &mut materialized,
            &mut base_store,
            [IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)],
        );
        assert_eq!(stats.retracted_explicit, 0);
        assert_eq!(stats.net_removed(), 0);
        assert_eq!(materialized.iter_triples().collect::<Vec<_>>(), before);
        assert_eq!(base_store.len(), 2, "base untouched");
        assert!(materialized.contains(&IdTriple::new(BART, wk::RDF_TYPE, MAMMAL)));
    }

    #[test]
    fn retracting_a_transitive_declaration_undoes_the_closure() {
        let part_of = nth_property_id(720);
        let a = 9_900_000u64;
        let base = [
            (part_of, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
            (a, part_of, a + 1),
            (a + 1, part_of, a + 2),
            (a + 2, part_of, a + 3),
        ];
        let stats = assert_retract_equals_rebuild(
            Fragment::RdfsPlus,
            InferrayOptions::default(),
            &base,
            &[(part_of, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY)],
        );
        // The three closure pairs are un-derived, the asserted chain stays.
        assert!(stats.over_deleted >= 3);
    }

    #[test]
    fn retract_is_byte_identical_sequentially_and_in_parallel() {
        let base = [
            (HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL),
            (MAMMAL, wk::RDFS_SUB_CLASS_OF, ANIMAL),
            (BART, wk::RDF_TYPE, HUMAN),
            (LISA, wk::RDF_TYPE, MAMMAL),
        ];
        let delta = [(HUMAN, wk::RDFS_SUB_CLASS_OF, MAMMAL)];
        for options in [
            InferrayOptions::default(),
            InferrayOptions::sequential(),
            InferrayOptions::unscheduled(),
        ] {
            assert_retract_equals_rebuild(Fragment::RdfsDefault, options, &base, &delta);
        }
    }

    #[test]
    fn iteration_profile_tracks_the_run() {
        let mut data = family_dataset();
        let mut reasoner = InferrayReasoner::new(Fragment::RdfsDefault);
        let stats = reasoner.materialize(&mut data);
        let profile = reasoner.last_iteration_profile();
        assert_eq!(profile.samples.len(), stats.iterations);
        assert_eq!(
            profile.samples.iter().map(|s| s.raw_pairs).sum::<usize>(),
            stats.derived_raw
        );
        // The last iteration derives nothing new (that is why it was last).
        assert_eq!(profile.samples.last().unwrap().new_pairs, 0);
        let report = profile.report();
        assert!(report.contains("iterations"));
    }
}
