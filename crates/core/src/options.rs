//! Tuning knobs of the reasoner.

/// Options controlling an [`InferrayReasoner`](crate::InferrayReasoner) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferrayOptions {
    /// Run the per-rule executors on dedicated threads (the paper's design;
    /// §4.3 "each rule is executed on a dedicated thread"). Disable for
    /// deterministic single-threaded profiling.
    pub parallel: bool,
    /// Hard cap on fixed-point iterations — a safety net against bugs, far
    /// above what any supported ruleset needs (RDFS-Plus converges in a
    /// handful of iterations).
    pub max_iterations: usize,
    /// Skip the dedicated up-front transitive-closure stage and rely solely
    /// on the in-loop θ executors. Only used by the ablation benchmark that
    /// quantifies the benefit of the dedicated stage (Table 4 discussion).
    pub skip_closure_stage: bool,
}

impl Default for InferrayOptions {
    fn default() -> Self {
        InferrayOptions {
            parallel: true,
            max_iterations: 64,
            skip_closure_stage: false,
        }
    }
}

impl InferrayOptions {
    /// The default, parallel configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-threaded configuration (used by tests and profiling runs).
    pub fn sequential() -> Self {
        InferrayOptions {
            parallel: false,
            ..Self::default()
        }
    }

    /// Configuration for the closure-stage ablation.
    pub fn without_closure_stage() -> Self {
        InferrayOptions {
            skip_closure_stage: true,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let opts = InferrayOptions::default();
        assert!(opts.parallel);
        assert!(!opts.skip_closure_stage);
        assert!(opts.max_iterations >= 16);
    }

    #[test]
    fn presets() {
        assert!(!InferrayOptions::sequential().parallel);
        assert!(InferrayOptions::without_closure_stage().skip_closure_stage);
        assert_eq!(InferrayOptions::new(), InferrayOptions::default());
    }
}
