//! Tuning knobs of the reasoner.

/// Options controlling an [`InferrayReasoner`](crate::InferrayReasoner) run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferrayOptions {
    /// Run the per-rule executors on dedicated threads (the paper's design;
    /// §4.3 "each rule is executed on a dedicated thread"). Disable for
    /// deterministic single-threaded profiling.
    pub parallel: bool,
    /// Hard cap on fixed-point iterations — a safety net against bugs, far
    /// above what any supported ruleset needs (RDFS-Plus converges in a
    /// handful of iterations).
    pub max_iterations: usize,
    /// Skip the dedicated up-front transitive-closure stage and rely solely
    /// on the in-loop θ executors. Only used by the ablation benchmark that
    /// quantifies the benefit of the dedicated stage (Table 4 discussion).
    pub skip_closure_stage: bool,
    /// Schedule rules by the §4.3 dependency graph: from iteration 2 on,
    /// fire only the rules whose input tables received new pairs in the
    /// previous iteration. The result is byte-identical to firing every rule
    /// (a rule with unchanged inputs can only re-derive duplicates); disable
    /// as an escape hatch for debugging or to measure the saving.
    pub schedule_rules: bool,
}

impl Default for InferrayOptions {
    fn default() -> Self {
        InferrayOptions {
            parallel: true,
            max_iterations: 64,
            skip_closure_stage: false,
            schedule_rules: true,
        }
    }
}

impl InferrayOptions {
    /// The default, parallel configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Single-threaded configuration (used by tests and profiling runs).
    pub fn sequential() -> Self {
        InferrayOptions {
            parallel: false,
            ..Self::default()
        }
    }

    /// Configuration for the closure-stage ablation.
    pub fn without_closure_stage() -> Self {
        InferrayOptions {
            skip_closure_stage: true,
            ..Self::default()
        }
    }

    /// Configuration with delta-driven rule scheduling disabled: every rule
    /// of the ruleset fires on every iteration (the pre-scheduler behaviour,
    /// kept as the reference for the equivalence suite and the `rule_firing`
    /// benchmark).
    pub fn unscheduled() -> Self {
        InferrayOptions {
            schedule_rules: false,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let opts = InferrayOptions::default();
        assert!(opts.parallel);
        assert!(!opts.skip_closure_stage);
        assert!(opts.schedule_rules);
        assert!(opts.max_iterations >= 16);
    }

    #[test]
    fn presets() {
        assert!(!InferrayOptions::sequential().parallel);
        assert!(InferrayOptions::without_closure_stage().skip_closure_stage);
        assert!(!InferrayOptions::unscheduled().schedule_rules);
        assert!(InferrayOptions::unscheduled().parallel);
        assert_eq!(InferrayOptions::new(), InferrayOptions::default());
    }
}
