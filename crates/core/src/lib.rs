//! # inferray-core
//!
//! The Inferray reasoner itself — the primary contribution of the paper
//! "Inferray: fast in-memory RDF inference" (Subercaze et al., VLDB 2016) —
//! assembled from the substrate crates of this workspace:
//!
//! * the dense-numbering dictionary (`inferray-dictionary`),
//! * the vertically partitioned sorted-array store (`inferray-store`),
//! * the low-entropy sorting kernels (`inferray-sort`),
//! * the Nuutila/interval-set closure (`inferray-closure`),
//! * the rule catalog and sort-merge-join executors (`inferray-rules`).
//!
//! [`InferrayReasoner`] implements Algorithm 1 of the paper:
//!
//! 1. load the triples into the main store;
//! 2. compute the **transitive closures** up front (`rdfs:subClassOf`,
//!    `rdfs:subPropertyOf`, and for RDFS-Plus `owl:sameAs` plus every
//!    declared `owl:TransitiveProperty`) with Nuutila's algorithm;
//! 3. iterate: fire every rule of the ruleset (each rule on its own thread,
//!    each with its own inferred buffer), sort/deduplicate the inferred
//!    pairs, merge them into *main* (Figure 5) and keep the genuinely new
//!    pairs as the next iteration's *new* store;
//! 4. stop when an iteration derives nothing new.
//!
//! [`api`] offers a decoded-graph convenience layer (`reason_graph`) used by
//! the examples; the benchmark harness drives the encoded
//! [`Materializer`](inferray_rules::Materializer) interface directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod closure_stage;
pub mod iteration;
pub mod options;
pub mod reasoner;

pub use api::{
    reason_graph, reason_ntriples, reason_ntriples_with, reason_turtle, reason_turtle_with,
    ReasonedGraph, ServingDataset, ShapeInstallError, ShapeViolation, ShapeViolations,
    ValidationCounters, ValidationStatus, WriteError,
};
pub use iteration::{IterationProfile, IterationSample};
pub use options::InferrayOptions;
pub use reasoner::{run_table_update, InferrayReasoner, PropertyUpdate, RetractionStats};

// Re-export the pieces users need to drive the encoded API without adding
// every substrate crate to their dependency list.
pub use inferray_parser::{Ingest, LoaderOptions};
pub use inferray_rules::{Fragment, InferenceStats, Materializer, Ruleset};
pub use inferray_store::TripleStore;
