//! `inferray-cli` — command-line materialization.
//!
//! Reads an RDF document (N-Triples by default, Turtle subset with
//! `--format turtle`), materializes the requested entailment fragment with
//! the Inferray reasoner, writes the materialization as N-Triples to standard
//! output and a statistics summary to standard error.
//!
//! ```text
//! inferray-cli [OPTIONS] [FILE]
//!
//! Options:
//!   --fragment <rho-df|rdfs|rdfs-full|rdfs-plus|rdfs-plus-full>   (default: rdfs)
//!   --format   <ntriples|turtle>                                  (default: ntriples)
//!   --inferred-only      only print the inferred triples
//!   --sequential         disable the per-rule thread pool AND parallel ingest
//!   --ingest-threads <N> worker lanes for the streaming loader (default: pool size)
//!   --chunk-kib <N>      approximate ingest chunk size in KiB (default: auto)
//!   --help
//!
//! FILE defaults to standard input.
//! ```

use inferray_core::{InferrayOptions, InferrayReasoner, Ingest, LoaderOptions, Materializer};
use inferray_parser::loader::LoadedDataset;
use inferray_rules::Fragment;
use std::io::{Read, Write};
use std::process::ExitCode;

struct CliOptions {
    fragment: Fragment,
    turtle: bool,
    inferred_only: bool,
    sequential: bool,
    ingest_threads: Option<usize>,
    chunk_kib: Option<usize>,
    input: Option<String>,
}

fn usage() -> &'static str {
    "usage: inferray-cli [--fragment rho-df|rdfs|rdfs-full|rdfs-plus|rdfs-plus-full] \
     [--format ntriples|turtle] [--inferred-only] [--sequential] \
     [--ingest-threads N] [--chunk-kib N] [FILE]\n\
     Reads RDF, materializes the fragment with Inferray, writes N-Triples to stdout."
}

fn parse_fragment(name: &str) -> Option<Fragment> {
    match name.to_ascii_lowercase().as_str() {
        "rho-df" | "rhodf" | "rho_df" => Some(Fragment::RhoDf),
        "rdfs" | "rdfs-default" => Some(Fragment::RdfsDefault),
        "rdfs-full" => Some(Fragment::RdfsFull),
        "rdfs-plus" => Some(Fragment::RdfsPlus),
        "rdfs-plus-full" => Some(Fragment::RdfsPlusFull),
        _ => None,
    }
}

fn parse_args(args: &[String]) -> Result<CliOptions, String> {
    let mut options = CliOptions {
        fragment: Fragment::RdfsDefault,
        turtle: false,
        inferred_only: false,
        sequential: false,
        ingest_threads: None,
        chunk_kib: None,
        input: None,
    };
    let mut i = 0usize;
    while i < args.len() {
        match args[i].as_str() {
            "--help" | "-h" => return Err(usage().to_string()),
            "--fragment" => {
                let value = args.get(i + 1).ok_or("--fragment needs a value")?;
                options.fragment =
                    parse_fragment(value).ok_or_else(|| format!("unknown fragment '{value}'"))?;
                i += 1;
            }
            "--format" => {
                let value = args.get(i + 1).ok_or("--format needs a value")?;
                options.turtle = match value.as_str() {
                    "turtle" | "ttl" => true,
                    "ntriples" | "nt" => false,
                    other => return Err(format!("unknown format '{other}'")),
                };
                i += 1;
            }
            "--inferred-only" => options.inferred_only = true,
            "--sequential" => options.sequential = true,
            "--ingest-threads" => {
                let value = args.get(i + 1).ok_or("--ingest-threads needs a value")?;
                options.ingest_threads = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad thread count '{value}'"))?,
                );
                i += 1;
            }
            "--chunk-kib" => {
                let value = args.get(i + 1).ok_or("--chunk-kib needs a value")?;
                options.chunk_kib = Some(
                    value
                        .parse::<usize>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| format!("bad chunk size '{value}'"))?,
                );
                i += 1;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option '{flag}'")),
            file => {
                if options.input.is_some() {
                    return Err("more than one input file given".to_string());
                }
                options.input = Some(file.to_string());
            }
        }
        i += 1;
    }
    Ok(options)
}

fn read_input(options: &CliOptions) -> Result<String, String> {
    match &options.input {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut buffer = String::new();
            std::io::stdin()
                .read_to_string(&mut buffer)
                .map_err(|e| format!("cannot read stdin: {e}"))?;
            Ok(buffer)
        }
    }
}

fn run(options: &CliOptions) -> Result<(), String> {
    let text = read_input(options)?;
    let mut loader = if options.sequential {
        LoaderOptions::sequential()
    } else {
        LoaderOptions {
            threads: options.ingest_threads,
            chunk_bytes: None,
        }
    };
    loader.chunk_bytes = options.chunk_kib.map(|kib| kib * 1024);
    let ingest = Ingest::with_options(loader);
    let loaded: LoadedDataset = if options.turtle {
        ingest.turtle(&text).map_err(|e| e.to_string())?
    } else {
        ingest.ntriples(&text).map_err(|e| e.to_string())?
    };

    let reasoner_options = if options.sequential {
        InferrayOptions::sequential()
    } else {
        InferrayOptions::default()
    };
    let mut reasoner = InferrayReasoner::with_options(options.fragment, reasoner_options);
    let input_triples: std::collections::BTreeSet<_> = loaded.store.iter_triples().collect();
    let mut store = loaded.store;
    let stats = reasoner.materialize(&mut store);

    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut written = 0usize;
    for triple in store.iter_triples() {
        if options.inferred_only && input_triples.contains(&triple) {
            continue;
        }
        if let Some(decoded) = loaded.dictionary.decode_triple(triple) {
            writeln!(out, "{decoded}").map_err(|e| e.to_string())?;
            written += 1;
        }
    }
    out.flush().map_err(|e| e.to_string())?;

    eprintln!(
        "inferray: {} input triples, {} inferred, {} written, {} iterations, {:?} ({} fragment)",
        stats.input_triples,
        stats.inferred_triples(),
        written,
        stats.iterations,
        stats.duration,
        reasoner.ruleset().fragment,
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(message) => {
            eprintln!("{message}");
            return ExitCode::FAILURE;
        }
    };
    match run(&options) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("inferray-cli: {message}");
            ExitCode::FAILURE
        }
    }
}
