//! The dedicated transitive-closure stage (paper §4.1).
//!
//! Before the fixed-point loop starts, the tables of the transitive
//! properties are closed with Nuutila's algorithm and replaced by their
//! closure. "This allows us to handle transitivity closure before processing
//! the fixed-point rule-based inference" — the iterative loop then never has
//! to pay the quadratic duplicate-generation cost that Table 4 measures for
//! the baseline systems.
//!
//! Which tables are closed depends on the fragment:
//!
//! * every fragment closes `rdfs:subClassOf` and `rdfs:subPropertyOf`;
//! * RDFS-Plus additionally closes `owl:sameAs` (after symmetrizing it) and
//!   every property declared `owl:TransitiveProperty`.

use inferray_closure::transitive_closure;
use inferray_dictionary::wellknown;
use inferray_model::ids::is_property_id;
use inferray_rules::{Fragment, RuleContext};
use inferray_store::{AccessProfile, TripleStore};

/// Statistics of the closure stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClosureStageStats {
    /// Number of property tables that were closed.
    pub tables_closed: usize,
    /// Pairs added by the closure across all tables.
    pub pairs_added: usize,
}

/// Closes the transitive tables of `store` in place, according to the
/// fragment, and reports how much was added.
pub fn run_closure_stage(
    store: &mut TripleStore,
    fragment: Fragment,
    profile: &mut AccessProfile,
) -> ClosureStageStats {
    let mut stats = ClosureStageStats::default();

    // Always: the RDFS schema hierarchies.
    close_property(
        store,
        wellknown::RDFS_SUB_CLASS_OF,
        false,
        &mut stats,
        profile,
    );
    close_property(
        store,
        wellknown::RDFS_SUB_PROPERTY_OF,
        false,
        &mut stats,
        profile,
    );

    if matches!(fragment, Fragment::RdfsPlus | Fragment::RdfsPlusFull) {
        // owl:sameAs — symmetric, so symmetrize before closing (§4.1).
        close_property(store, wellknown::OWL_SAME_AS, true, &mut stats, profile);
        // Every property declared transitive.
        let transitive = RuleContext::subjects_with_object(
            store,
            wellknown::RDF_TYPE,
            wellknown::OWL_TRANSITIVE_PROPERTY,
        );
        for p in transitive {
            if is_property_id(p) {
                close_property(store, p, false, &mut stats, profile);
            }
        }
    }
    stats
}

/// Replaces the table of `prop` with its transitive closure (symmetrized
/// first when `symmetric` is set). No-op when the table is absent or empty.
fn close_property(
    store: &mut TripleStore,
    prop: u64,
    symmetric: bool,
    stats: &mut ClosureStageStats,
    profile: &mut AccessProfile,
) {
    let Some(table) = store.table(prop) else {
        return;
    };
    if table.is_empty() {
        return;
    }
    let before = table.len();
    let mut edges = table.to_tuple_pairs();
    profile.sequential(2 * before as u64);
    if symmetric {
        let swapped: Vec<(u64, u64)> = edges.iter().map(|&(a, b)| (b, a)).collect();
        edges.extend(swapped);
    }
    let closed = transitive_closure(&edges);
    profile.sequential(2 * closed.len() as u64);
    profile.allocate(2 * closed.len() as u64);

    // The closure contains the original edges; keep them plus the new pairs.
    let mut flat: Vec<u64> = Vec::with_capacity(closed.len() * 2 + before * 2);
    for (a, b) in &closed {
        flat.push(*a);
        flat.push(*b);
    }
    // When symmetrizing, the original asserted pairs may not all be in the
    // closure output ordering; merge them in and re-sort to be safe.
    if symmetric {
        flat.extend(table.pairs());
    }
    inferray_sort::sort_pairs_auto_dedup(&mut flat);
    let after = flat.len() / 2;
    stats.tables_closed += 1;
    stats.pairs_added += after.saturating_sub(before);
    store.replace_table_sorted(prop, flat);
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_dictionary::wellknown as wk;
    use inferray_model::ids::nth_property_id;
    use inferray_model::IdTriple;

    fn store(triples: &[(u64, u64, u64)]) -> TripleStore {
        TripleStore::from_triples(triples.iter().map(|&(s, p, o)| IdTriple::new(s, p, o)))
    }

    const A: u64 = 8_000_000;
    const B: u64 = 8_000_001;
    const C: u64 = 8_000_002;
    const D: u64 = 8_000_003;

    #[test]
    fn closes_subclass_chains_for_every_fragment() {
        for fragment in [Fragment::RhoDf, Fragment::RdfsDefault, Fragment::RdfsPlus] {
            let mut s = store(&[
                (A, wk::RDFS_SUB_CLASS_OF, B),
                (B, wk::RDFS_SUB_CLASS_OF, C),
                (C, wk::RDFS_SUB_CLASS_OF, D),
            ]);
            let mut profile = AccessProfile::default();
            let stats = run_closure_stage(&mut s, fragment, &mut profile);
            assert_eq!(stats.pairs_added, 3, "fragment {fragment}");
            assert!(s.contains(&IdTriple::new(A, wk::RDFS_SUB_CLASS_OF, D)));
            assert!(profile.sequential_words > 0);
        }
    }

    #[test]
    fn same_as_is_closed_symmetrically_only_for_rdfs_plus() {
        let triples = [(A, wk::OWL_SAME_AS, B), (B, wk::OWL_SAME_AS, C)];
        let mut rdfs = store(&triples);
        let mut profile = AccessProfile::default();
        run_closure_stage(&mut rdfs, Fragment::RdfsDefault, &mut profile);
        assert!(!rdfs.contains(&IdTriple::new(C, wk::OWL_SAME_AS, A)));

        let mut plus = store(&triples);
        run_closure_stage(&mut plus, Fragment::RdfsPlus, &mut profile);
        assert!(plus.contains(&IdTriple::new(C, wk::OWL_SAME_AS, A)));
        assert!(plus.contains(&IdTriple::new(A, wk::OWL_SAME_AS, C)));
        assert!(plus.contains(&IdTriple::new(B, wk::OWL_SAME_AS, A)));
        // Original pairs are preserved.
        assert!(plus.contains(&IdTriple::new(A, wk::OWL_SAME_AS, B)));
    }

    #[test]
    fn declared_transitive_properties_are_closed_in_rdfs_plus() {
        let ancestor = nth_property_id(600);
        let triples = [
            (ancestor, wk::RDF_TYPE, wk::OWL_TRANSITIVE_PROPERTY),
            (A, ancestor, B),
            (B, ancestor, C),
        ];
        let mut rdfs = store(&triples);
        let mut profile = AccessProfile::default();
        run_closure_stage(&mut rdfs, Fragment::RdfsFull, &mut profile);
        assert!(
            !rdfs.contains(&IdTriple::new(A, ancestor, C)),
            "RDFS ignores owl:TransitiveProperty"
        );

        let mut plus = store(&triples);
        let stats = run_closure_stage(&mut plus, Fragment::RdfsPlus, &mut profile);
        assert!(plus.contains(&IdTriple::new(A, ancestor, C)));
        assert_eq!(stats.pairs_added, 1);
    }

    #[test]
    fn empty_and_missing_tables_are_no_ops() {
        let mut s = store(&[(A, wk::RDF_TYPE, B)]);
        let mut profile = AccessProfile::default();
        let stats = run_closure_stage(&mut s, Fragment::RdfsPlus, &mut profile);
        assert_eq!(stats.tables_closed, 0);
        assert_eq!(stats.pairs_added, 0);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn closure_is_idempotent() {
        let mut s = store(&[(A, wk::RDFS_SUB_CLASS_OF, B), (B, wk::RDFS_SUB_CLASS_OF, C)]);
        let mut profile = AccessProfile::default();
        let first = run_closure_stage(&mut s, Fragment::RdfsDefault, &mut profile);
        let len_after_first = s.len();
        let second = run_closure_stage(&mut s, Fragment::RdfsDefault, &mut profile);
        assert_eq!(first.pairs_added, 1);
        assert_eq!(second.pairs_added, 0);
        assert_eq!(s.len(), len_after_first);
    }
}
