//! Decoded-graph convenience API.
//!
//! The reasoner's native interface works on encoded triples, which is what
//! benchmarks and embedders want. Examples and small applications usually
//! start from a decoded [`Graph`] (or an N-Triples/Turtle document); this
//! module wires the parser/loader, the reasoner and the dictionary decoding
//! into one call.

use crate::{InferrayOptions, InferrayReasoner};
use inferray_model::Graph;
use inferray_parser::loader::{load_graph, LoadError};
use inferray_parser::{Ingest, LoaderOptions};
use inferray_rules::{Fragment, InferenceStats, Materializer};

/// The result of reasoning over a decoded graph.
#[derive(Debug, Clone)]
pub struct ReasonedGraph {
    /// The materialized graph: input triples plus every inferred triple.
    pub graph: Graph,
    /// Statistics of the run.
    pub stats: InferenceStats,
}

impl ReasonedGraph {
    /// The triples that were inferred (materialization minus input).
    pub fn inferred(&self, input: &Graph) -> Graph {
        self.graph.difference(input)
    }
}

/// Materializes `fragment` over a decoded graph with default options.
pub fn reason_graph(graph: &Graph, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_graph_with_options(graph, fragment, InferrayOptions::default())
}

/// Materializes `fragment` over a decoded graph with explicit options.
pub fn reason_graph_with_options(
    graph: &Graph,
    fragment: Fragment,
    options: InferrayOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = load_graph(graph)?;
    finish(loaded, fragment, options)
}

/// Parses an N-Triples document (streaming parallel ingest, see
/// [`inferray_parser::ingest`]) and materializes `fragment` over it.
pub fn reason_ntriples(input: &str, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_ntriples_with(
        input,
        fragment,
        InferrayOptions::default(),
        LoaderOptions::default(),
    )
}

/// Parses a Turtle (subset) document and materializes `fragment` over it.
pub fn reason_turtle(input: &str, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_turtle_with(
        input,
        fragment,
        InferrayOptions::default(),
        LoaderOptions::default(),
    )
}

/// [`reason_ntriples`] with explicit reasoner and loader options — the
/// loader options select the ingest thread count / chunk size (or the
/// sequential escape hatch); the result is byte-identical either way.
pub fn reason_ntriples_with(
    input: &str,
    fragment: Fragment,
    options: InferrayOptions,
    loader: LoaderOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = Ingest::with_options(loader).ntriples(input)?;
    finish(loaded, fragment, options)
}

/// [`reason_turtle`] with explicit reasoner and loader options.
pub fn reason_turtle_with(
    input: &str,
    fragment: Fragment,
    options: InferrayOptions,
    loader: LoaderOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = Ingest::with_options(loader).turtle(input)?;
    finish(loaded, fragment, options)
}

fn finish(
    loaded: inferray_parser::LoadedDataset,
    fragment: Fragment,
    options: InferrayOptions,
) -> Result<ReasonedGraph, LoadError> {
    let mut store = loaded.store;
    let mut reasoner = InferrayReasoner::with_options(fragment, options);
    let stats = reasoner.materialize(&mut store);
    let mut graph = Graph::new();
    for triple in store.iter_triples() {
        if let Some(decoded) = loaded.dictionary.decode_triple(triple) {
            graph.insert(decoded);
        }
    }
    Ok(ReasonedGraph { graph, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::{vocab, Triple};

    fn family() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/mammal",
        );
        g.insert_iris(
            "http://ex/mammal",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/animal",
        );
        g.insert_iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
        g
    }

    #[test]
    fn reason_graph_materializes_the_running_example() {
        let input = family();
        let result = reason_graph(&input, Fragment::RdfsDefault).unwrap();
        assert_eq!(result.stats.inferred_triples(), 3);
        assert!(result.graph.contains(&Triple::iris(
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/animal"
        )));
        assert!(result.graph.contains(&Triple::iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/animal"
        )));
        // The input is preserved.
        assert!(input.is_subset(&result.graph));
        // inferred() returns exactly the difference.
        assert_eq!(result.inferred(&input).len(), 3);
    }

    #[test]
    fn reason_ntriples_and_turtle_agree() {
        let nt = "\
<http://ex/human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/mammal> .\n\
<http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n";
        let ttl = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://ex/> .
ex:human rdfs:subClassOf ex:mammal .
ex:Bart a ex:human .
"#;
        let from_nt = reason_ntriples(nt, Fragment::RdfsDefault).unwrap();
        let from_ttl = reason_turtle(ttl, Fragment::RdfsDefault).unwrap();
        assert_eq!(from_nt.graph, from_ttl.graph);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(reason_ntriples("<broken>", Fragment::RdfsDefault).is_err());
    }

    #[test]
    fn empty_graph_reasons_to_empty_graph() {
        let result = reason_graph(&Graph::new(), Fragment::RdfsPlus).unwrap();
        assert!(result.graph.is_empty());
        assert_eq!(result.stats.inferred_triples(), 0);
    }
}
