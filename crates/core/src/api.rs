//! Decoded-graph convenience API.
//!
//! The reasoner's native interface works on encoded triples, which is what
//! benchmarks and embedders want. Examples and small applications usually
//! start from a decoded [`Graph`] (or an N-Triples/Turtle document); this
//! module wires the parser/loader, the reasoner and the dictionary decoding
//! into one call.

use crate::{InferrayOptions, InferrayReasoner, RetractionStats};
use inferray_dictionary::Dictionary;
use inferray_model::ids::is_property_id;
use inferray_model::{Graph, IdTriple, Triple};
use inferray_parser::loader::{load_graph, LoadError, LoadedDataset};
use inferray_parser::{parse_ntriples, Ingest, LoaderOptions};
use inferray_rules::analysis::{self, Diagnostic};
use inferray_rules::{Fragment, InferenceStats, Materializer};
use inferray_store::{unpoison, SnapshotStore, StoreSnapshot, TripleStore};
use std::sync::{Arc, Mutex, RwLock};

/// The result of reasoning over a decoded graph.
#[derive(Debug, Clone)]
pub struct ReasonedGraph {
    /// The materialized graph: input triples plus every inferred triple.
    pub graph: Graph,
    /// Statistics of the run.
    pub stats: InferenceStats,
}

impl ReasonedGraph {
    /// The triples that were inferred (materialization minus input).
    pub fn inferred(&self, input: &Graph) -> Graph {
        self.graph.difference(input)
    }
}

/// Materializes `fragment` over a decoded graph with default options.
pub fn reason_graph(graph: &Graph, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_graph_with_options(graph, fragment, InferrayOptions::default())
}

/// Materializes `fragment` over a decoded graph with explicit options.
pub fn reason_graph_with_options(
    graph: &Graph,
    fragment: Fragment,
    options: InferrayOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = load_graph(graph)?;
    finish(loaded, fragment, options)
}

/// Parses an N-Triples document (streaming parallel ingest, see
/// [`inferray_parser::ingest`]) and materializes `fragment` over it.
pub fn reason_ntriples(input: &str, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_ntriples_with(
        input,
        fragment,
        InferrayOptions::default(),
        LoaderOptions::default(),
    )
}

/// Parses a Turtle (subset) document and materializes `fragment` over it.
pub fn reason_turtle(input: &str, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_turtle_with(
        input,
        fragment,
        InferrayOptions::default(),
        LoaderOptions::default(),
    )
}

/// [`reason_ntriples`] with explicit reasoner and loader options — the
/// loader options select the ingest thread count / chunk size (or the
/// sequential escape hatch); the result is byte-identical either way.
pub fn reason_ntriples_with(
    input: &str,
    fragment: Fragment,
    options: InferrayOptions,
    loader: LoaderOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = Ingest::with_options(loader).ntriples(input)?;
    finish(loaded, fragment, options)
}

/// [`reason_turtle`] with explicit reasoner and loader options.
pub fn reason_turtle_with(
    input: &str,
    fragment: Fragment,
    options: InferrayOptions,
    loader: LoaderOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = Ingest::with_options(loader).turtle(input)?;
    finish(loaded, fragment, options)
}

fn finish(
    loaded: inferray_parser::LoadedDataset,
    fragment: Fragment,
    options: InferrayOptions,
) -> Result<ReasonedGraph, LoadError> {
    let mut store = loaded.store;
    let mut reasoner = InferrayReasoner::with_options(fragment, options);
    let stats = reasoner.materialize(&mut store);
    let mut graph = Graph::new();
    for triple in store.iter_triples() {
        if let Some(decoded) = loaded.dictionary.decode_triple(triple) {
            graph.insert(decoded);
        }
    }
    Ok(ReasonedGraph { graph, stats })
}

// ---------------------------------------------------------------------------
// Concurrent serving
// ---------------------------------------------------------------------------

/// A materialized dataset published for concurrent query serving: the
/// epoch/`Arc`-swap [`SnapshotStore`] paired with the dictionary that
/// encoded it.
///
/// This is the **writer side** of the serving design (docs/serving.md).
/// Readers sample a consistent `(store snapshot, dictionary)` pair with
/// [`ServingDataset::snapshot`] and keep querying that frozen epoch for as
/// long as they like; writers assert new triples with
/// [`ServingDataset::extend`] / [`ServingDataset::extend_ntriples`], which
/// run the incremental reasoner ([`InferrayReasoner::materialize_delta`])
/// on a **private copy** of the current store and publish the result as a
/// new epoch with one pointer swap. A reader holding epoch *n* never
/// observes any intermediate state of the materialization — that is the
/// snapshot-isolation contract proven by `tests/snapshot_isolation.rs`.
///
/// Publication order: the (append-only) dictionary is swapped *before* the
/// store, so a reader pairing "current store, then current dictionary" can
/// at worst see a dictionary that is a superset of what its store snapshot
/// references — which decodes every identifier correctly. The inverse
/// order could leave a store snapshot with identifiers its paired
/// dictionary has never heard of.
#[derive(Debug)]
pub struct ServingDataset {
    snapshots: SnapshotStore,
    dictionary: RwLock<Arc<Dictionary>>,
    /// The *explicit* (asserted) triples behind the current materialization.
    /// The delete–rederive retraction path needs them twice over: an
    /// asserted triple must never be over-deleted, and `retract(Δ)` is
    /// specified as equivalent to rebuilding from `base ∖ Δ`. Only touched
    /// under the writer lock; readers never see it.
    base: Mutex<TripleStore>,
    /// Serializes writers: an extend must clone the latest dictionary and
    /// store, or a concurrent extend's terms would be lost on publish.
    writer: Mutex<()>,
    fragment: Fragment,
    options: InferrayOptions,
    /// The symbolic rule program this dataset is closed under, when it was
    /// created with [`ServingDataset::materialize_with_rules`]. Kept as
    /// *text*, not as a compiled ruleset: every write recompiles it against
    /// its private dictionary copy, so rule constants track identifier
    /// promotions the data may cause (a compiled constant would go stale the
    /// moment a delta promotes the resource it names to a property).
    rules: Option<Arc<str>>,
}

impl ServingDataset {
    /// Fully materializes `fragment` over a loaded dataset and publishes
    /// the result as epoch 0.
    pub fn materialize(
        loaded: LoadedDataset,
        fragment: Fragment,
        options: InferrayOptions,
    ) -> (Self, InferenceStats) {
        let mut store = loaded.store;
        store.finalize();
        let base = store.clone();
        let stats = InferrayReasoner::with_options(fragment, options).materialize(&mut store);
        let dataset = ServingDataset {
            snapshots: SnapshotStore::new(store),
            dictionary: RwLock::new(Arc::new(loaded.dictionary)),
            base: Mutex::new(base),
            writer: Mutex::new(()),
            fragment,
            options,
            rules: None,
        };
        (dataset, stats)
    }

    /// [`ServingDataset::materialize`] over an analyzer-loaded rule program
    /// (`inferray_rules::analysis`) instead of a baked-in fragment: the rule
    /// file is parsed, checked and compiled against the dataset's
    /// dictionary, and every subsequent [`ServingDataset::extend`] /
    /// [`ServingDataset::retract`] recompiles it against the then-current
    /// dictionary and maintains the materialization through the same
    /// incremental machinery. `Err` carries the positioned diagnostics that
    /// make the file unloadable.
    pub fn materialize_with_rules(
        loaded: LoadedDataset,
        rules: &str,
        options: InferrayOptions,
    ) -> Result<(Self, InferenceStats), Vec<Diagnostic>> {
        let mut store = loaded.store;
        let mut dictionary = loaded.dictionary;
        let ruleset = analysis::load_ruleset(rules, &mut dictionary)?;
        // A rule constant may promote a resource the data already interned
        // (e.g. the data mentions `<urn:rel>` only in object position and a
        // rule uses it as a predicate); patch the store like the loader does.
        if dictionary.has_pending_promotions() {
            let remap: std::collections::HashMap<u64, u64> =
                dictionary.take_promotions().into_iter().collect();
            apply_promotion_remap(&mut store, &remap);
        }
        store.finalize();
        let base = store.clone();
        let fragment = ruleset.fragment;
        let stats = InferrayReasoner::with_ruleset(ruleset, options).materialize(&mut store);
        let dataset = ServingDataset {
            snapshots: SnapshotStore::new(store),
            dictionary: RwLock::new(Arc::new(dictionary)),
            base: Mutex::new(base),
            writer: Mutex::new(()),
            fragment,
            options,
            rules: Some(Arc::from(rules)),
        };
        Ok((dataset, stats))
    }

    /// Reassembles a dataset from externally persisted parts — the recovery
    /// path of the persistence layer (`inferray-persist`,
    /// docs/persistence.md). The caller supplies the exact state a previous
    /// process published: the append-only dictionary, the explicit base, the
    /// materialized store and the epoch it was serving, so the rebuilt
    /// dataset continues the epoch sequence where the crashed one stopped
    /// and subsequent [`ServingDataset::extend`] / [`ServingDataset::retract`]
    /// calls behave byte-identically to the pre-crash process.
    pub fn from_parts(
        dictionary: Dictionary,
        base: TripleStore,
        materialized: TripleStore,
        epoch: u64,
        fragment: Fragment,
        options: InferrayOptions,
    ) -> Self {
        ServingDataset {
            snapshots: SnapshotStore::with_epoch(materialized, epoch),
            dictionary: RwLock::new(Arc::new(dictionary)),
            base: Mutex::new(base),
            writer: Mutex::new(()),
            fragment,
            options,
            rules: None,
        }
    }

    /// The reasoner every write of this dataset runs: the baked-in fragment
    /// reasoner, or — for a rule-program dataset — one over the program
    /// recompiled against `dictionary` (see the `rules` field for why the
    /// recompilation is per-write).
    fn write_reasoner(&self, dictionary: &mut Dictionary) -> Result<InferrayReasoner, LoadError> {
        match &self.rules {
            None => Ok(InferrayReasoner::with_options(self.fragment, self.options)),
            Some(text) => {
                let ruleset = analysis::load_ruleset(text, dictionary).map_err(|diags| {
                    let list: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
                    LoadError::Encode(format!("rule program: {}", list.join("; ")))
                })?;
                Ok(InferrayReasoner::with_ruleset(ruleset, self.options))
            }
        }
    }

    /// The entailment fragment every epoch of this dataset is closed under.
    pub fn fragment(&self) -> Fragment {
        self.fragment
    }

    /// The reasoner options every write of this dataset runs with.
    pub fn options(&self) -> InferrayOptions {
        self.options
    }

    /// A mutually consistent `(dictionary, explicit base, snapshot)` triple
    /// for checkpointing: captured under the writer lock, so no concurrent
    /// [`ServingDataset::extend`] / [`ServingDataset::retract`] can slide a
    /// publication between the three reads. The base is cloned (it is only
    /// ever touched under the writer lock); the dictionary and store are the
    /// shared `Arc`s the readers also see.
    pub fn persistable_state(&self) -> (Arc<Dictionary>, TripleStore, StoreSnapshot) {
        let guard = unpoison(self.writer.lock());
        let snapshot = self.snapshots.snapshot();
        let base = unpoison(self.base.lock()).clone();
        let dictionary = unpoison(self.dictionary.read()).clone();
        drop(guard);
        (dictionary, base, snapshot)
    }

    /// The store snapshot alone, for embedders that do not need the
    /// dictionary. The cell itself stays private: publishing through
    /// `SnapshotStore::update` directly would bypass this type's writer
    /// lock and dictionary versioning (lost updates, undecodable ids) —
    /// all writes go through [`ServingDataset::extend`].
    pub fn store_snapshot(&self) -> StoreSnapshot {
        self.snapshots.snapshot()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshots.epoch()
    }

    /// A consistent `(store snapshot, dictionary)` pair: the dictionary can
    /// decode every identifier of the snapshot (see the type docs for the
    /// ordering argument).
    pub fn snapshot(&self) -> (StoreSnapshot, Arc<Dictionary>) {
        let snapshot = self.snapshots.snapshot();
        let dictionary = unpoison(self.dictionary.read()).clone();
        (snapshot, dictionary)
    }

    /// Asserts decoded triples and incrementally re-materializes: the delta
    /// is encoded against a private copy of the dictionary, closed under
    /// the fragment with [`InferrayReasoner::materialize_delta`] on a
    /// private copy of the store, and both are published atomically enough
    /// for readers (dictionary first, then the store epoch swap). Readers
    /// holding older snapshots are unaffected.
    pub fn extend(
        &self,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Result<InferenceStats, LoadError> {
        let guard = unpoison(self.writer.lock());

        // Private copies of the current pair.
        let mut dictionary: Dictionary = {
            let current = unpoison(self.dictionary.read());
            (**current).clone()
        };
        let mut store = self.snapshots.snapshot().store().clone();

        let mut delta: Vec<IdTriple> = Vec::new();
        for triple in triples {
            delta.push(
                dictionary
                    .encode_triple(&triple)
                    .map_err(|e| LoadError::Encode(e.to_string()))?,
            );
        }
        // Recompile the rule program (if any) against the private dictionary
        // before draining promotions, so its constants carry the same —
        // possibly promoted — identifiers as the delta and the store.
        let mut reasoner = self.write_reasoner(&mut dictionary)?;
        // A delta may use an already-interned *resource* as a predicate,
        // which promotes it to a new property identifier. The copied store,
        // the explicit base and any delta triple encoded before the
        // promotion still carry the stale resource id in subject/object
        // position; patch them like the loader does before reasoning.
        let mut base = unpoison(self.base.lock());
        let mut next_base = base.clone();
        if dictionary.has_pending_promotions() {
            let remap: std::collections::HashMap<u64, u64> =
                dictionary.take_promotions().into_iter().collect();
            apply_promotion_remap(&mut store, &remap);
            apply_promotion_remap(&mut next_base, &remap);
            for triple in &mut delta {
                if let Some(&new_id) = remap.get(&triple.s) {
                    triple.s = new_id;
                }
                if let Some(&new_id) = remap.get(&triple.o) {
                    triple.o = new_id;
                }
            }
        }
        // The delta becomes part of the explicit base — even a triple that
        // was already derivable is now *asserted* and survives retraction
        // of its premises.
        for triple in &delta {
            next_base.add_triple(*triple);
        }
        next_base.finalize();
        let stats = reasoner.materialize_delta(&mut store, delta);

        // Publish: dictionary before store (see the type docs).
        *base = next_base;
        drop(base);
        *unpoison(self.dictionary.write()) = Arc::new(dictionary);
        self.snapshots.publish(store);
        drop(guard);
        Ok(stats)
    }

    /// [`ServingDataset::extend`] from an N-Triples document.
    pub fn extend_ntriples(&self, text: &str) -> Result<InferenceStats, LoadError> {
        let triples = parse_ntriples(text).map_err(LoadError::from)?;
        self.extend(triples)
    }

    /// Retracts decoded triples and incrementally re-materializes with the
    /// delete–rederive algorithm ([`InferrayReasoner::retract_delta`],
    /// docs/maintenance.md): the over-deleted cone is computed on a
    /// **private copy** of the current store, survivors are re-derived, and
    /// the result is published as a new epoch with one pointer swap —
    /// readers holding older snapshots are unaffected, exactly as for
    /// [`ServingDataset::extend`].
    ///
    /// Triples whose terms the dictionary has never seen — and triples that
    /// were derived but never *asserted* — are ignored: retraction is
    /// specified against the explicit base, `retract(Δ) ≡ rebuild(base ∖ Δ)`.
    /// The dictionary itself is append-only and keeps every identifier, so
    /// snapshots of any epoch stay decodable. When nothing was actually
    /// removed, no new epoch is published.
    ///
    /// Returns the statistics together with the epoch that serves this
    /// retraction's result — the one published by it, or the current epoch
    /// for a no-op. The pair is captured under the writer lock, so it stays
    /// consistent even when other writers publish concurrently (reading
    /// [`ServingDataset::epoch`] afterwards could name a later epoch).
    pub fn retract(&self, triples: impl IntoIterator<Item = Triple>) -> (RetractionStats, u64) {
        let guard = unpoison(self.writer.lock());

        // Terms absent from the dictionary cannot occur in any triple of
        // the store; predicates that were never promoted to property ids
        // cannot address a table.
        let dictionary = {
            let current = unpoison(self.dictionary.read());
            Arc::clone(&current)
        };
        let delta: Vec<IdTriple> = triples
            .into_iter()
            .filter_map(|t| {
                let s = dictionary.id_of(&t.subject)?;
                let p = dictionary.id_of(&t.predicate)?;
                let o = dictionary.id_of(&t.object)?;
                is_property_id(p).then_some(IdTriple::new(s, p, o))
            })
            .collect();

        // The rule program (if any) recompiles against a throwaway clone of
        // the append-only dictionary: every rule constant was interned —
        // with its final property status — when the dataset was
        // materialized, so this compile cannot promote or intern anything.
        let mut reasoner = {
            let mut dict = (*dictionary).clone();
            let reasoner = self
                .write_reasoner(&mut dict)
                .expect("rule program compiled when the dataset was materialized");
            debug_assert!(!dict.has_pending_promotions());
            reasoner
        };
        let mut store = self.snapshots.snapshot().store().clone();
        let mut base = unpoison(self.base.lock());
        let mut next_base = base.clone();
        let stats = reasoner.retract_delta(&mut store, &mut next_base, delta);

        let epoch = if stats.retracted_explicit > 0 {
            *base = next_base;
            drop(base);
            self.snapshots.publish(store).epoch()
        } else {
            drop(base);
            self.snapshots.epoch()
        };
        drop(guard);
        (stats, epoch)
    }

    /// [`ServingDataset::retract`] from an N-Triples document.
    pub fn retract_ntriples(&self, text: &str) -> Result<(RetractionStats, u64), LoadError> {
        let triples = parse_ntriples(text).map_err(LoadError::from)?;
        Ok(self.retract(triples))
    }

    /// Number of explicit (asserted) triples behind the current epoch.
    pub fn base_len(&self) -> usize {
        unpoison(self.base.lock()).len()
    }
}

/// Rewrites every stale resource identifier of `store` to its promoted
/// property identifier, in place, and re-finalizes (the loader does the
/// same for freshly parsed datasets).
fn apply_promotion_remap(store: &mut TripleStore, remap: &std::collections::HashMap<u64, u64>) {
    store.remap_ids(remap);
    store.finalize();
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::{vocab, Term, Triple};

    fn family() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/mammal",
        );
        g.insert_iris(
            "http://ex/mammal",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/animal",
        );
        g.insert_iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
        g
    }

    #[test]
    fn reason_graph_materializes_the_running_example() {
        let input = family();
        let result = reason_graph(&input, Fragment::RdfsDefault).unwrap();
        assert_eq!(result.stats.inferred_triples(), 3);
        assert!(result.graph.contains(&Triple::iris(
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/animal"
        )));
        assert!(result.graph.contains(&Triple::iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/animal"
        )));
        // The input is preserved.
        assert!(input.is_subset(&result.graph));
        // inferred() returns exactly the difference.
        assert_eq!(result.inferred(&input).len(), 3);
    }

    #[test]
    fn reason_ntriples_and_turtle_agree() {
        let nt = "\
<http://ex/human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/mammal> .\n\
<http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n";
        let ttl = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://ex/> .
ex:human rdfs:subClassOf ex:mammal .
ex:Bart a ex:human .
"#;
        let from_nt = reason_ntriples(nt, Fragment::RdfsDefault).unwrap();
        let from_ttl = reason_turtle(ttl, Fragment::RdfsDefault).unwrap();
        assert_eq!(from_nt.graph, from_ttl.graph);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(reason_ntriples("<broken>", Fragment::RdfsDefault).is_err());
    }

    #[test]
    fn empty_graph_reasons_to_empty_graph() {
        let result = reason_graph(&Graph::new(), Fragment::RdfsPlus).unwrap();
        assert!(result.graph.is_empty());
        assert_eq!(result.stats.inferred_triples(), 0);
    }

    // -- ServingDataset ----------------------------------------------------

    fn serving_family() -> ServingDataset {
        let loaded = inferray_parser::loader::load_graph(&family()).unwrap();
        let (dataset, stats) =
            ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());
        assert_eq!(stats.inferred_triples(), 3);
        dataset
    }

    fn contains(dataset: &ServingDataset, s: &str, p: &str, o: &str) -> bool {
        let (snapshot, dictionary) = dataset.snapshot();
        let triple = Triple::iris(s, p, o);
        let encode = |t: &Term| dictionary.id_of(t);
        match (
            encode(&triple.subject),
            encode(&triple.predicate),
            encode(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => {
                snapshot.contains(&inferray_model::IdTriple::new(s, p, o))
            }
            _ => false,
        }
    }

    #[test]
    fn serving_dataset_publishes_the_materialization_as_epoch_zero() {
        let dataset = serving_family();
        assert_eq!(dataset.epoch(), 0);
        assert_eq!(dataset.fragment(), Fragment::RdfsDefault);
        let (snapshot, _) = dataset.snapshot();
        assert_eq!(snapshot.len(), 6);
        assert!(contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
    }

    #[test]
    fn extend_publishes_a_new_epoch_and_old_snapshots_stay_frozen() {
        let dataset = serving_family();
        let (old_snapshot, _) = dataset.snapshot();

        let stats = dataset
            .extend([Triple::iris(
                "http://ex/Lisa",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        // Lisa a human ⇒ mammal, animal inferred incrementally.
        assert_eq!(stats.inferred_triples(), 2);
        assert_eq!(dataset.epoch(), 1);

        assert!(contains(
            &dataset,
            "http://ex/Lisa",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
        // The pre-extend snapshot still holds exactly the old triple set.
        assert_eq!(old_snapshot.epoch(), 0);
        assert_eq!(old_snapshot.len(), 6);
    }

    #[test]
    fn extend_ntriples_interns_new_terms_for_new_readers() {
        let dataset = serving_family();
        dataset
            .extend_ntriples(
                "<http://ex/Maggie> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap();
        assert!(contains(
            &dataset,
            "http://ex/Maggie",
            vocab::RDF_TYPE,
            "http://ex/mammal"
        ));
        assert!(dataset.extend_ntriples("<broken").is_err());
        assert_eq!(dataset.epoch(), 1, "a failed extend publishes nothing");
    }

    #[test]
    fn extend_handles_property_promotions() {
        // 'rel' is first interned as a plain resource (object position)...
        let loaded = inferray_parser::loader::load_graph(&{
            let mut g = Graph::new();
            g.insert_iris("http://ex/a", "http://ex/about", "http://ex/rel");
            g
        })
        .unwrap();
        let (dataset, _) =
            ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());
        // ...and the delta now uses it as a predicate, forcing a promotion
        // that must rewrite the copied store before reasoning.
        dataset
            .extend([Triple::iris("http://ex/x", "http://ex/rel", "http://ex/y")])
            .unwrap();
        assert!(contains(
            &dataset,
            "http://ex/x",
            "http://ex/rel",
            "http://ex/y"
        ));
        assert!(contains(
            &dataset,
            "http://ex/a",
            "http://ex/about",
            "http://ex/rel"
        ));
        let (snapshot, dictionary) = dataset.snapshot();
        let rel = dictionary.id_of(&Term::iri("http://ex/rel")).unwrap();
        assert!(inferray_model::ids::is_property_id(rel));
        assert_eq!(snapshot.table(rel).unwrap().len(), 1);
    }

    #[test]
    fn retract_unasserts_a_triple_and_its_cone() {
        let dataset = serving_family();
        assert_eq!(dataset.base_len(), 3);
        dataset
            .extend([Triple::iris(
                "http://ex/Lisa",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        assert_eq!(dataset.base_len(), 4);
        let (old_snapshot, _) = dataset.snapshot();
        assert_eq!(old_snapshot.len(), 9);

        let (stats, _) = dataset.retract([Triple::iris(
            "http://ex/Lisa",
            vocab::RDF_TYPE,
            "http://ex/human",
        )]);
        assert_eq!(stats.retracted_explicit, 1);
        assert_eq!(stats.net_removed(), 3, "Lisa a human/mammal/animal gone");
        assert_eq!(dataset.epoch(), 2);
        assert_eq!(dataset.base_len(), 3);
        assert!(!contains(
            &dataset,
            "http://ex/Lisa",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
        // Bart's cone is untouched, and the pre-retraction snapshot still
        // answers from its frozen epoch.
        assert!(contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
        assert_eq!(old_snapshot.len(), 9);

        // Retracting a derived-but-never-asserted triple is a no-op and
        // publishes nothing.
        let (stats, _) = dataset.retract([Triple::iris(
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/mammal",
        )]);
        assert_eq!(stats.retracted_explicit, 0);
        assert_eq!(dataset.epoch(), 2);
        assert!(contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/mammal"
        ));
    }

    #[test]
    fn retract_ntriples_and_unknown_terms() {
        let dataset = serving_family();
        // Unknown terms can't be in the store: nothing to do, no new epoch.
        let (stats, _) = dataset.retract([Triple::iris(
            "http://ex/NoSuch",
            vocab::RDF_TYPE,
            "http://ex/human",
        )]);
        assert_eq!(stats.requested, 0);
        assert_eq!(dataset.epoch(), 0);
        // A predicate interned as a plain resource addresses no table.
        let (stats, _) = dataset.retract([Triple::iris(
            "http://ex/Bart",
            "http://ex/human", // a resource, not a property
            "http://ex/mammal",
        )]);
        assert_eq!(stats.requested, 0);

        let (stats, _) = dataset
            .retract_ntriples(
                "<http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap();
        assert_eq!(stats.retracted_explicit, 1);
        assert_eq!(dataset.epoch(), 1);
        assert!(!contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/human"
        ));
        assert!(dataset.retract_ntriples("<broken").is_err());
    }

    #[test]
    fn extend_then_retract_round_trips_to_the_original_materialization() {
        let dataset = serving_family();
        let (snapshot_before, _) = dataset.snapshot();
        let before: Vec<_> = snapshot_before.iter_triples().collect();
        dataset
            .extend([Triple::iris(
                "http://ex/Maggie",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        dataset.retract([Triple::iris(
            "http://ex/Maggie",
            vocab::RDF_TYPE,
            "http://ex/human",
        )]);
        let (snapshot_after, dictionary) = dataset.snapshot();
        let after: Vec<_> = snapshot_after.iter_triples().collect();
        assert_eq!(before, after, "extend ∘ retract is the identity");
        // Maggie's identifier survives in the append-only dictionary.
        assert!(dictionary.id_of(&Term::iri("http://ex/Maggie")).is_some());
    }

    #[test]
    fn from_parts_resumes_byte_identically() {
        let dataset = serving_family();
        dataset
            .extend([Triple::iris(
                "http://ex/Lisa",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        let (dictionary, base, snapshot) = dataset.persistable_state();

        // Rebuild from the captured parts (what a recovery does)...
        let rebuilt = ServingDataset::from_parts(
            (*dictionary).clone(),
            base.clone(),
            snapshot.store().clone(),
            snapshot.epoch(),
            dataset.fragment(),
            dataset.options(),
        );
        assert_eq!(rebuilt.epoch(), dataset.epoch());
        let (rebuilt_snapshot, rebuilt_dictionary) = rebuilt.snapshot();
        assert_eq!(rebuilt_snapshot.store(), snapshot.store());
        assert_eq!(&*rebuilt_dictionary, &*dictionary);

        // ...and the *next* write produces the same epoch and triples on
        // both the original and the rebuilt dataset.
        let next = [Triple::iris(
            "http://ex/Maggie",
            vocab::RDF_TYPE,
            "http://ex/human",
        )];
        dataset.extend(next.clone()).unwrap();
        rebuilt.extend(next).unwrap();
        assert_eq!(rebuilt.epoch(), dataset.epoch());
        let (a, _) = dataset.snapshot();
        let (b, _) = rebuilt.snapshot();
        assert_eq!(a.store(), b.store());
        assert_eq!(dataset.base_len(), rebuilt.base_len());
    }

    #[test]
    fn serving_with_a_rule_program_extends_and_retracts_live() {
        let rules = "@prefix ex: <http://ex/> .\n\
                     rule gp: ?x ex:parent ?y, ?y ex:parent ?z => ?x ex:grandparent ?z .\n";
        let mut g = Graph::new();
        g.insert_iris("http://ex/a", "http://ex/parent", "http://ex/b");
        let loaded = inferray_parser::loader::load_graph(&g).unwrap();
        let (dataset, stats) =
            ServingDataset::materialize_with_rules(loaded, rules, InferrayOptions::default())
                .unwrap();
        assert_eq!(stats.inferred_triples(), 0, "no chain of two yet");

        // The delta completes the chain: the custom rule fires through the
        // incremental path and the result is published as a new epoch.
        dataset
            .extend([Triple::iris(
                "http://ex/b",
                "http://ex/parent",
                "http://ex/c",
            )])
            .unwrap();
        assert_eq!(dataset.epoch(), 1);
        assert!(contains(
            &dataset,
            "http://ex/a",
            "http://ex/grandparent",
            "http://ex/c"
        ));

        // Retracting the asserted edge un-derives the grandparent triple.
        let (rstats, epoch) = dataset.retract([Triple::iris(
            "http://ex/b",
            "http://ex/parent",
            "http://ex/c",
        )]);
        assert_eq!(rstats.retracted_explicit, 1);
        assert_eq!(epoch, 2);
        assert!(!contains(
            &dataset,
            "http://ex/a",
            "http://ex/grandparent",
            "http://ex/c"
        ));
        assert!(contains(
            &dataset,
            "http://ex/a",
            "http://ex/parent",
            "http://ex/b"
        ));
    }

    #[test]
    fn serving_rejects_a_rule_program_with_errors() {
        let loaded = inferray_parser::loader::load_graph(&family()).unwrap();
        let err = ServingDataset::materialize_with_rules(
            loaded,
            "rule bad: ?x <urn:p> ?y => ?x <urn:q> ?z .",
            InferrayOptions::default(),
        )
        .expect_err("unsafe head variable");
        assert!(err.iter().any(|d| d.code == "RA003"));
    }

    #[test]
    fn concurrent_extends_and_readers_agree_at_the_end() {
        let dataset = std::sync::Arc::new(serving_family());
        std::thread::scope(|scope| {
            for t in 0..3u32 {
                let dataset = std::sync::Arc::clone(&dataset);
                scope.spawn(move || {
                    for i in 0..5u32 {
                        dataset
                            .extend([Triple::iris(
                                format!("http://ex/w{t}n{i}"),
                                vocab::RDF_TYPE,
                                "http://ex/human",
                            )])
                            .unwrap();
                    }
                });
            }
            // Readers sample consistent pairs while writers publish.
            for _ in 0..20 {
                let (snapshot, dictionary) = dataset.snapshot();
                for triple in snapshot.iter_triples() {
                    assert!(
                        dictionary.decode_triple(triple).is_some(),
                        "snapshot id not decodable by its paired dictionary"
                    );
                }
            }
        });
        assert_eq!(dataset.epoch(), 15);
        // 15 new humans, each with human/mammal/animal types.
        let (snapshot, _) = dataset.snapshot();
        assert_eq!(snapshot.len(), 6 + 15 * 3);
    }
}
