//! Decoded-graph convenience API.
//!
//! The reasoner's native interface works on encoded triples, which is what
//! benchmarks and embedders want. Examples and small applications usually
//! start from a decoded [`Graph`] (or an N-Triples/Turtle document); this
//! module wires the parser/loader, the reasoner and the dictionary decoding
//! into one call.

use crate::{InferrayOptions, InferrayReasoner, RetractionStats};
use inferray_dictionary::Dictionary;
use inferray_model::ids::is_property_id;
use inferray_model::{Graph, IdTriple, Triple};
use inferray_parser::loader::{load_graph, LoadError, LoadedDataset};
use inferray_parser::{parse_ntriples, Ingest, LoaderOptions};
use inferray_rules::analysis::{self, Diagnostic};
use inferray_rules::shapes::{self, ShapeAnalysis};
use inferray_rules::{Fragment, InferenceStats, Materializer};
use inferray_store::{unpoison, SnapshotStore, StoreSnapshot, TripleStore};
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

/// The result of reasoning over a decoded graph.
#[derive(Debug, Clone)]
pub struct ReasonedGraph {
    /// The materialized graph: input triples plus every inferred triple.
    pub graph: Graph,
    /// Statistics of the run.
    pub stats: InferenceStats,
}

impl ReasonedGraph {
    /// The triples that were inferred (materialization minus input).
    pub fn inferred(&self, input: &Graph) -> Graph {
        self.graph.difference(input)
    }
}

/// Materializes `fragment` over a decoded graph with default options.
pub fn reason_graph(graph: &Graph, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_graph_with_options(graph, fragment, InferrayOptions::default())
}

/// Materializes `fragment` over a decoded graph with explicit options.
pub fn reason_graph_with_options(
    graph: &Graph,
    fragment: Fragment,
    options: InferrayOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = load_graph(graph)?;
    finish(loaded, fragment, options)
}

/// Parses an N-Triples document (streaming parallel ingest, see
/// [`inferray_parser::ingest`]) and materializes `fragment` over it.
pub fn reason_ntriples(input: &str, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_ntriples_with(
        input,
        fragment,
        InferrayOptions::default(),
        LoaderOptions::default(),
    )
}

/// Parses a Turtle (subset) document and materializes `fragment` over it.
pub fn reason_turtle(input: &str, fragment: Fragment) -> Result<ReasonedGraph, LoadError> {
    reason_turtle_with(
        input,
        fragment,
        InferrayOptions::default(),
        LoaderOptions::default(),
    )
}

/// [`reason_ntriples`] with explicit reasoner and loader options — the
/// loader options select the ingest thread count / chunk size (or the
/// sequential escape hatch); the result is byte-identical either way.
pub fn reason_ntriples_with(
    input: &str,
    fragment: Fragment,
    options: InferrayOptions,
    loader: LoaderOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = Ingest::with_options(loader).ntriples(input)?;
    finish(loaded, fragment, options)
}

/// [`reason_turtle`] with explicit reasoner and loader options.
pub fn reason_turtle_with(
    input: &str,
    fragment: Fragment,
    options: InferrayOptions,
    loader: LoaderOptions,
) -> Result<ReasonedGraph, LoadError> {
    let loaded = Ingest::with_options(loader).turtle(input)?;
    finish(loaded, fragment, options)
}

fn finish(
    loaded: inferray_parser::LoadedDataset,
    fragment: Fragment,
    options: InferrayOptions,
) -> Result<ReasonedGraph, LoadError> {
    let mut store = loaded.store;
    let mut reasoner = InferrayReasoner::with_options(fragment, options);
    let stats = reasoner.materialize(&mut store);
    let mut graph = Graph::new();
    for triple in store.iter_triples() {
        if let Some(decoded) = loaded.dictionary.decode_triple(triple) {
            graph.insert(decoded);
        }
    }
    Ok(ReasonedGraph { graph, stats })
}

// ---------------------------------------------------------------------------
// Shape-constraint gating (docs/shapes.md)
// ---------------------------------------------------------------------------

/// One rendered shape violation: the decoded focus node, the shape and
/// property path it failed under, the source position of the violated
/// clause in the shape file, and a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeViolation {
    /// The violating focus node, decoded to N-Triples syntax.
    pub focus: String,
    /// Name of the shape the node failed.
    pub shape: String,
    /// The property path of the violated constraint.
    pub path: String,
    /// 1-based line of the violated clause in the shape file.
    pub line: u32,
    /// 1-based column of the violated clause.
    pub col: u32,
    /// What went wrong.
    pub message: String,
}

/// A refused write: the candidate store the write would have published
/// violates the installed shapes, so nothing was published — the base, the
/// dictionary and the snapshot sequence all keep their pre-write state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeViolations {
    /// Rendered violations, capped at [`ShapeViolations::REPORT_CAP`].
    pub violations: Vec<ShapeViolation>,
    /// Total violation count (may exceed `violations.len()` when capped).
    pub total: usize,
    /// `(shape, focus)` evaluations the refusing validation performed.
    pub focus_checks: u64,
    /// `true` when the incremental (delta) validator produced the verdict.
    pub incremental: bool,
}

impl ShapeViolations {
    /// Rendered violations are capped so a pathological batch cannot make
    /// the error response (or the 422 body) arbitrarily large.
    pub const REPORT_CAP: usize = 100;

    /// The violation report as a JSON object, for the `422` response body.
    pub fn json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"total\":");
        out.push_str(&self.total.to_string());
        out.push_str(",\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"focus\":");
            push_json_string(&mut out, &v.focus);
            out.push_str(",\"shape\":");
            push_json_string(&mut out, &v.shape);
            out.push_str(",\"path\":");
            push_json_string(&mut out, &v.path);
            out.push_str(&format!(
                ",\"line\":{},\"col\":{},\"message\":",
                v.line, v.col
            ));
            push_json_string(&mut out, &v.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for ShapeViolations {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} shape violation(s)", self.total)?;
        if let Some(first) = self.violations.first() {
            write!(
                f,
                "; first: {}:{}: focus {} fails shape {}: {}",
                first.line, first.col, first.focus, first.shape, first.message
            )?;
        }
        Ok(())
    }
}

/// Why a [`ServingDataset::extend`] was refused.
#[derive(Debug)]
pub enum WriteError {
    /// The delta could not be parsed or encoded (nothing was attempted).
    Load(LoadError),
    /// The candidate store violates the installed shapes (nothing was
    /// published).
    Shapes(ShapeViolations),
}

impl From<LoadError> for WriteError {
    fn from(e: LoadError) -> WriteError {
        WriteError::Load(e)
    }
}

impl fmt::Display for WriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WriteError::Load(e) => e.fmt(f),
            WriteError::Shapes(v) => v.fmt(f),
        }
    }
}

impl std::error::Error for WriteError {}

/// Why [`ServingDataset::install_shapes`] refused a shape program.
#[derive(Debug)]
pub enum ShapeInstallError {
    /// The program has error-severity `SH…` diagnostics and must not load.
    Program(Vec<Diagnostic>),
    /// The program is well-formed but the *currently published* snapshot
    /// already violates it: installing would make every subsequent write
    /// unpublishable, so the gate refuses to arm.
    Violations(ShapeViolations),
}

impl fmt::Display for ShapeInstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeInstallError::Program(diags) => {
                let list: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
                write!(f, "shape program has errors: {}", list.join("; "))
            }
            ShapeInstallError::Violations(v) => {
                write!(f, "current snapshot does not conform: {v}")
            }
        }
    }
}

impl std::error::Error for ShapeInstallError {}

/// Validation counters of a shape-gated dataset, spliced into
/// `GET /status` by the server.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ValidationCounters {
    /// Full-snapshot validations performed (install + fallback paths).
    pub full: u64,
    /// Incremental (delta) validations performed.
    pub incremental: u64,
    /// Writes refused because the candidate violated the shapes.
    pub rejected: u64,
    /// Total `(shape, focus)` evaluations across all validations.
    pub focus_checks: u64,
}

/// The operator-visible state of the shape gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ValidationStatus {
    /// Number of installed shapes.
    pub shapes: usize,
    /// Epoch of the last green (conforming) validation, if any.
    pub validated_epoch: Option<u64>,
    /// Validation counters since install.
    pub counters: ValidationCounters,
}

impl ValidationStatus {
    /// Renders the status as a JSON object into `out` (no allocation
    /// beyond the caller's buffer — the server calls this per `/status`
    /// request from its zero-allocation path).
    pub fn json_into(&self, out: &mut String) {
        use fmt::Write as _;
        let _ = write!(out, "{{\"shapes\":{},\"validated_epoch\":", self.shapes);
        match self.validated_epoch {
            Some(epoch) => {
                let _ = write!(out, "{epoch}");
            }
            None => out.push_str("null"),
        }
        let _ = write!(
            out,
            ",\"full_validations\":{},\"incremental_validations\":{},\
             \"rejected_writes\":{},\"focus_checks\":{}}}",
            self.counters.full,
            self.counters.incremental,
            self.counters.rejected,
            self.counters.focus_checks,
        );
    }
}

/// The installed shape program plus the validation ledger. Protected by its
/// own leaf mutex (acquired only while the writer lock is held, or for a
/// point read by `validation_status`) — never held across a validation run
/// or a publish, so `GET /status` stays responsive mid-write.
#[derive(Debug)]
struct ShapeGate {
    /// The checked (error-free) symbolic program; recompiled against the
    /// write's private dictionary on every gated write, exactly like the
    /// rule program (identifier promotions would stale a compiled form).
    analysis: Arc<ShapeAnalysis>,
    /// Number of shapes, for `/status`.
    shape_count: usize,
    /// The last green validation: the epoch it validated and its (empty)
    /// report, seeding the incremental validator of the next write.
    state: Option<GateState>,
    counters: ValidationCounters,
}

#[derive(Debug)]
struct GateState {
    epoch: u64,
    report: shapes::ValidationReport,
}

// ---------------------------------------------------------------------------
// Concurrent serving
// ---------------------------------------------------------------------------

/// A materialized dataset published for concurrent query serving: the
/// epoch/`Arc`-swap [`SnapshotStore`] paired with the dictionary that
/// encoded it.
///
/// This is the **writer side** of the serving design (docs/serving.md).
/// Readers sample a consistent `(store snapshot, dictionary)` pair with
/// [`ServingDataset::snapshot`] and keep querying that frozen epoch for as
/// long as they like; writers assert new triples with
/// [`ServingDataset::extend`] / [`ServingDataset::extend_ntriples`], which
/// run the incremental reasoner ([`InferrayReasoner::materialize_delta`])
/// on a **private copy** of the current store and publish the result as a
/// new epoch with one pointer swap. A reader holding epoch *n* never
/// observes any intermediate state of the materialization — that is the
/// snapshot-isolation contract proven by `tests/snapshot_isolation.rs`.
///
/// Publication order: the (append-only) dictionary is swapped *before* the
/// store, so a reader pairing "current store, then current dictionary" can
/// at worst see a dictionary that is a superset of what its store snapshot
/// references — which decodes every identifier correctly. The inverse
/// order could leave a store snapshot with identifiers its paired
/// dictionary has never heard of.
#[derive(Debug)]
pub struct ServingDataset {
    snapshots: SnapshotStore,
    dictionary: RwLock<Arc<Dictionary>>,
    /// The *explicit* (asserted) triples behind the current materialization.
    /// The delete–rederive retraction path needs them twice over: an
    /// asserted triple must never be over-deleted, and `retract(Δ)` is
    /// specified as equivalent to rebuilding from `base ∖ Δ`. Only touched
    /// under the writer lock; readers never see it.
    base: Mutex<TripleStore>,
    /// Serializes writers: an extend must clone the latest dictionary and
    /// store, or a concurrent extend's terms would be lost on publish.
    writer: Mutex<()>,
    fragment: Fragment,
    options: InferrayOptions,
    /// The symbolic rule program this dataset is closed under, when it was
    /// created with [`ServingDataset::materialize_with_rules`]. Kept as
    /// *text*, not as a compiled ruleset: every write recompiles it against
    /// its private dictionary copy, so rule constants track identifier
    /// promotions the data may cause (a compiled constant would go stale the
    /// moment a delta promotes the resource it names to a property).
    rules: Option<Arc<str>>,
    /// The shape-constraint gate ([`ServingDataset::install_shapes`],
    /// docs/shapes.md): `None` until a program is installed. Leaf lock —
    /// taken after writer/base, never held across validation or publish.
    validation: Mutex<Option<ShapeGate>>,
}

impl ServingDataset {
    /// Fully materializes `fragment` over a loaded dataset and publishes
    /// the result as epoch 0.
    pub fn materialize(
        loaded: LoadedDataset,
        fragment: Fragment,
        options: InferrayOptions,
    ) -> (Self, InferenceStats) {
        let mut store = loaded.store;
        store.finalize();
        let base = store.clone();
        let stats = InferrayReasoner::with_options(fragment, options).materialize(&mut store);
        let dataset = ServingDataset {
            snapshots: SnapshotStore::new(store),
            dictionary: RwLock::new(Arc::new(loaded.dictionary)),
            base: Mutex::new(base),
            writer: Mutex::new(()),
            fragment,
            options,
            rules: None,
            validation: Mutex::new(None),
        };
        (dataset, stats)
    }

    /// [`ServingDataset::materialize`] over an analyzer-loaded rule program
    /// (`inferray_rules::analysis`) instead of a baked-in fragment: the rule
    /// file is parsed, checked and compiled against the dataset's
    /// dictionary, and every subsequent [`ServingDataset::extend`] /
    /// [`ServingDataset::retract`] recompiles it against the then-current
    /// dictionary and maintains the materialization through the same
    /// incremental machinery. `Err` carries the positioned diagnostics that
    /// make the file unloadable.
    pub fn materialize_with_rules(
        loaded: LoadedDataset,
        rules: &str,
        options: InferrayOptions,
    ) -> Result<(Self, InferenceStats), Vec<Diagnostic>> {
        let mut store = loaded.store;
        let mut dictionary = loaded.dictionary;
        let ruleset = analysis::load_ruleset(rules, &mut dictionary)?;
        // A rule constant may promote a resource the data already interned
        // (e.g. the data mentions `<urn:rel>` only in object position and a
        // rule uses it as a predicate); patch the store like the loader does.
        if dictionary.has_pending_promotions() {
            let remap: std::collections::HashMap<u64, u64> =
                dictionary.take_promotions().into_iter().collect();
            apply_promotion_remap(&mut store, &remap);
        }
        store.finalize();
        let base = store.clone();
        let fragment = ruleset.fragment;
        let stats = InferrayReasoner::with_ruleset(ruleset, options).materialize(&mut store);
        let dataset = ServingDataset {
            snapshots: SnapshotStore::new(store),
            dictionary: RwLock::new(Arc::new(dictionary)),
            base: Mutex::new(base),
            writer: Mutex::new(()),
            fragment,
            options,
            rules: Some(Arc::from(rules)),
            validation: Mutex::new(None),
        };
        Ok((dataset, stats))
    }

    /// Reassembles a dataset from externally persisted parts — the recovery
    /// path of the persistence layer (`inferray-persist`,
    /// docs/persistence.md). The caller supplies the exact state a previous
    /// process published: the append-only dictionary, the explicit base, the
    /// materialized store and the epoch it was serving, so the rebuilt
    /// dataset continues the epoch sequence where the crashed one stopped
    /// and subsequent [`ServingDataset::extend`] / [`ServingDataset::retract`]
    /// calls behave byte-identically to the pre-crash process.
    pub fn from_parts(
        dictionary: Dictionary,
        base: TripleStore,
        materialized: TripleStore,
        epoch: u64,
        fragment: Fragment,
        options: InferrayOptions,
    ) -> Self {
        ServingDataset {
            snapshots: SnapshotStore::with_epoch(materialized, epoch),
            dictionary: RwLock::new(Arc::new(dictionary)),
            base: Mutex::new(base),
            writer: Mutex::new(()),
            fragment,
            options,
            rules: None,
            validation: Mutex::new(None),
        }
    }

    /// The reasoner every write of this dataset runs: the baked-in fragment
    /// reasoner, or — for a rule-program dataset — one over the program
    /// recompiled against `dictionary` (see the `rules` field for why the
    /// recompilation is per-write).
    fn write_reasoner(&self, dictionary: &mut Dictionary) -> Result<InferrayReasoner, LoadError> {
        match &self.rules {
            None => Ok(InferrayReasoner::with_options(self.fragment, self.options)),
            Some(text) => {
                let ruleset = analysis::load_ruleset(text, dictionary).map_err(|diags| {
                    let list: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
                    LoadError::Encode(format!("rule program: {}", list.join("; ")))
                })?;
                Ok(InferrayReasoner::with_ruleset(ruleset, self.options))
            }
        }
    }

    /// The entailment fragment every epoch of this dataset is closed under.
    pub fn fragment(&self) -> Fragment {
        self.fragment
    }

    /// The reasoner options every write of this dataset runs with.
    pub fn options(&self) -> InferrayOptions {
        self.options
    }

    /// A mutually consistent `(dictionary, explicit base, snapshot)` triple
    /// for checkpointing: captured under the writer lock, so no concurrent
    /// [`ServingDataset::extend`] / [`ServingDataset::retract`] can slide a
    /// publication between the three reads. The base is cloned (it is only
    /// ever touched under the writer lock); the dictionary and store are the
    /// shared `Arc`s the readers also see.
    pub fn persistable_state(&self) -> (Arc<Dictionary>, TripleStore, StoreSnapshot) {
        let guard = unpoison(self.writer.lock());
        let snapshot = self.snapshots.snapshot();
        let base = unpoison(self.base.lock()).clone();
        let dictionary = unpoison(self.dictionary.read()).clone();
        drop(guard);
        (dictionary, base, snapshot)
    }

    /// The store snapshot alone, for embedders that do not need the
    /// dictionary. The cell itself stays private: publishing through
    /// `SnapshotStore::update` directly would bypass this type's writer
    /// lock and dictionary versioning (lost updates, undecodable ids) —
    /// all writes go through [`ServingDataset::extend`].
    pub fn store_snapshot(&self) -> StoreSnapshot {
        self.snapshots.snapshot()
    }

    /// The epoch of the currently published snapshot.
    pub fn epoch(&self) -> u64 {
        self.snapshots.epoch()
    }

    /// A consistent `(store snapshot, dictionary)` pair: the dictionary can
    /// decode every identifier of the snapshot (see the type docs for the
    /// ordering argument).
    pub fn snapshot(&self) -> (StoreSnapshot, Arc<Dictionary>) {
        let snapshot = self.snapshots.snapshot();
        let dictionary = unpoison(self.dictionary.read()).clone();
        (snapshot, dictionary)
    }

    /// Installs a shape program (docs/shapes.md) as a **write gate**: every
    /// subsequent [`ServingDataset::extend`] / [`ServingDataset::retract`]
    /// validates its candidate store *before* publishing, and refuses the
    /// write — base, dictionary and epoch keep their pre-write state — when
    /// the candidate violates a shape.
    ///
    /// The currently published snapshot is validated first: a snapshot that
    /// already violates the program would make every subsequent write
    /// unpublishable, so the gate refuses to arm
    /// ([`ShapeInstallError::Violations`]) and the dataset keeps serving
    /// ungated.
    pub fn install_shapes(&self, text: &str) -> Result<(), ShapeInstallError> {
        let analysis = shapes::analyze(text);
        let shape_count = analysis.shapes.len();
        let guard = unpoison(self.writer.lock());
        let snapshot = self.snapshots.snapshot();
        let dictionary = unpoison(self.dictionary.read()).clone();
        let compiled = analysis
            .compile(&dictionary)
            .map_err(ShapeInstallError::Program)?;
        let report = shapes::validate(
            &compiled,
            snapshot.store(),
            &dictionary,
            inferray_parallel::global(),
        );
        if !report.conforms() {
            let violations = render_violations(&compiled, &report, &dictionary, false);
            drop(guard);
            return Err(ShapeInstallError::Violations(violations));
        }
        let counters = ValidationCounters {
            full: 1,
            incremental: 0,
            rejected: 0,
            focus_checks: report.focus_checks,
        };
        *unpoison(self.validation.lock()) = Some(ShapeGate {
            analysis: Arc::new(analysis),
            shape_count,
            state: Some(GateState {
                epoch: snapshot.epoch(),
                report,
            }),
            counters,
        });
        drop(guard);
        Ok(())
    }

    /// The operator-visible state of the shape gate — `None` when no
    /// program is installed. A point read of the leaf mutex: safe to call
    /// from the server's `/status` path while a write validates.
    pub fn validation_status(&self) -> Option<ValidationStatus> {
        let gate = unpoison(self.validation.lock());
        gate.as_ref().map(|g| ValidationStatus {
            shapes: g.shape_count,
            validated_epoch: g.state.as_ref().map(|s| s.epoch),
            counters: g.counters,
        })
    }

    /// Validates a candidate store against the installed shapes (if any)
    /// before a write publishes it. `previous_store`/`previous_epoch` name
    /// the snapshot the candidate was derived from; `promoted` is whether
    /// this write promoted identifiers (renumbering ids the previous green
    /// report may reference, which forces a full re-validation).
    ///
    /// `Ok(None)` — no gate installed. `Ok(Some(report))` — green: the
    /// caller publishes and records the report against the new epoch.
    /// `Err` — the candidate violates the shapes; nothing must be
    /// published.
    fn check_shapes(
        &self,
        candidate: &TripleStore,
        previous_store: &TripleStore,
        previous_epoch: u64,
        dictionary: &Dictionary,
        promoted: bool,
    ) -> Result<Option<shapes::ValidationReport>, ShapeViolations> {
        // Leaf lock: copy what the validation needs, then release before
        // the (possibly long) validation run so `/status` stays live.
        let (analysis, previous) = {
            let gate = unpoison(self.validation.lock());
            let Some(gate) = gate.as_ref() else {
                return Ok(None);
            };
            let previous = gate
                .state
                .as_ref()
                .filter(|s| !promoted && s.epoch == previous_epoch)
                .map(|s| s.report.clone());
            (Arc::clone(&gate.analysis), previous)
        };
        let compiled = match analysis.compile(dictionary) {
            Ok(compiled) => compiled,
            Err(diags) => {
                // Unreachable by construction: only error-free programs are
                // installed, and whether compilation errs does not depend
                // on the dictionary. Refuse the write rather than panic or
                // silently skip the gate.
                let message = match diags.first() {
                    Some(d) => d.to_string(),
                    None => "shape program failed to recompile".to_string(),
                };
                return Err(ShapeViolations {
                    violations: vec![ShapeViolation {
                        focus: String::new(),
                        shape: String::new(),
                        path: String::new(),
                        line: 0,
                        col: 0,
                        message,
                    }],
                    total: 1,
                    focus_checks: 0,
                    incremental: false,
                });
            }
        };
        let (report, incremental) = match &previous {
            // The previous epoch was green and this write derived its
            // candidate from exactly that epoch without renumbering ids:
            // only nodes incident to changed pairs need re-checking.
            Some(previous) => (
                shapes::validate_delta(&compiled, previous_store, candidate, dictionary, previous),
                true,
            ),
            None => (
                shapes::validate(
                    &compiled,
                    candidate,
                    dictionary,
                    inferray_parallel::global(),
                ),
                false,
            ),
        };
        let green = report.conforms();
        {
            let mut gate = unpoison(self.validation.lock());
            if let Some(gate) = gate.as_mut() {
                if incremental {
                    gate.counters.incremental += 1;
                } else {
                    gate.counters.full += 1;
                }
                gate.counters.focus_checks += report.focus_checks;
                if !green {
                    gate.counters.rejected += 1;
                }
            }
        }
        if green {
            Ok(Some(report))
        } else {
            Err(render_violations(
                &compiled,
                &report,
                dictionary,
                incremental,
            ))
        }
    }

    /// Records a green validation against the epoch its write published,
    /// seeding the incremental validator of the next write.
    fn record_green(&self, epoch: u64, report: shapes::ValidationReport) {
        let mut gate = unpoison(self.validation.lock());
        if let Some(gate) = gate.as_mut() {
            gate.state = Some(GateState { epoch, report });
        }
    }

    /// Asserts decoded triples and incrementally re-materializes: the delta
    /// is encoded against a private copy of the dictionary, closed under
    /// the fragment with [`InferrayReasoner::materialize_delta`] on a
    /// private copy of the store, and both are published atomically enough
    /// for readers (dictionary first, then the store epoch swap). Readers
    /// holding older snapshots are unaffected.
    ///
    /// When a shape program is installed ([`ServingDataset::install_shapes`])
    /// the candidate store is validated **before** publication;
    /// [`WriteError::Shapes`] means the write was refused and nothing — not
    /// the base, not the dictionary, not the epoch — changed.
    pub fn extend(
        &self,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Result<InferenceStats, WriteError> {
        let guard = unpoison(self.writer.lock());

        // Private copies of the current pair.
        let mut dictionary: Dictionary = {
            let current = unpoison(self.dictionary.read());
            (**current).clone()
        };
        let pre = self.snapshots.snapshot();
        let mut store = pre.store().clone();

        let mut delta: Vec<IdTriple> = Vec::new();
        for triple in triples {
            delta.push(
                dictionary
                    .encode_triple(&triple)
                    .map_err(|e| LoadError::Encode(e.to_string()))?,
            );
        }
        // Recompile the rule program (if any) against the private dictionary
        // before draining promotions, so its constants carry the same —
        // possibly promoted — identifiers as the delta and the store.
        let mut reasoner = self.write_reasoner(&mut dictionary)?;
        // A delta may use an already-interned *resource* as a predicate,
        // which promotes it to a new property identifier. The copied store,
        // the explicit base and any delta triple encoded before the
        // promotion still carry the stale resource id in subject/object
        // position; patch them like the loader does before reasoning.
        let mut base = unpoison(self.base.lock());
        let mut next_base = base.clone();
        let promoted = dictionary.has_pending_promotions();
        if promoted {
            let remap: std::collections::HashMap<u64, u64> =
                dictionary.take_promotions().into_iter().collect();
            apply_promotion_remap(&mut store, &remap);
            apply_promotion_remap(&mut next_base, &remap);
            for triple in &mut delta {
                if let Some(&new_id) = remap.get(&triple.s) {
                    triple.s = new_id;
                }
                if let Some(&new_id) = remap.get(&triple.o) {
                    triple.o = new_id;
                }
            }
        }
        // The delta becomes part of the explicit base — even a triple that
        // was already derivable is now *asserted* and survives retraction
        // of its premises.
        for triple in &delta {
            next_base.add_triple(*triple);
        }
        next_base.finalize();
        let stats = reasoner.materialize_delta(&mut store, delta);

        // Shape gate (docs/shapes.md): validate the candidate *before*
        // anything publishes. On refusal every guard drops here and the
        // pre-write state — base, dictionary, epoch — stays current.
        let pending = self
            .check_shapes(&store, pre.store(), pre.epoch(), &dictionary, promoted)
            .map_err(WriteError::Shapes)?;

        // Publish: dictionary before store (see the type docs).
        *base = next_base;
        drop(base);
        *unpoison(self.dictionary.write()) = Arc::new(dictionary);
        let epoch = self.snapshots.publish(store).epoch();
        if let Some(report) = pending {
            self.record_green(epoch, report);
        }
        drop(guard);
        Ok(stats)
    }

    /// [`ServingDataset::extend`] from an N-Triples document.
    pub fn extend_ntriples(&self, text: &str) -> Result<InferenceStats, WriteError> {
        let triples = parse_ntriples(text).map_err(LoadError::from)?;
        self.extend(triples)
    }

    /// Retracts decoded triples and incrementally re-materializes with the
    /// delete–rederive algorithm ([`InferrayReasoner::retract_delta`],
    /// docs/maintenance.md): the over-deleted cone is computed on a
    /// **private copy** of the current store, survivors are re-derived, and
    /// the result is published as a new epoch with one pointer swap —
    /// readers holding older snapshots are unaffected, exactly as for
    /// [`ServingDataset::extend`].
    ///
    /// Triples whose terms the dictionary has never seen — and triples that
    /// were derived but never *asserted* — are ignored: retraction is
    /// specified against the explicit base, `retract(Δ) ≡ rebuild(base ∖ Δ)`.
    /// The dictionary itself is append-only and keeps every identifier, so
    /// snapshots of any epoch stay decodable. When nothing was actually
    /// removed, no new epoch is published.
    ///
    /// Returns the statistics together with the epoch that serves this
    /// retraction's result — the one published by it, or the current epoch
    /// for a no-op. The pair is captured under the writer lock, so it stays
    /// consistent even when other writers publish concurrently (reading
    /// [`ServingDataset::epoch`] afterwards could name a later epoch).
    ///
    /// When a shape program is installed, the post-retraction store is
    /// validated before publication exactly like an extend's candidate
    /// (retracting a triple can *create* violations, e.g. dropping a node
    /// under a `count [1..*]` minimum); `Err` means the retraction was
    /// refused and nothing changed.
    pub fn retract(
        &self,
        triples: impl IntoIterator<Item = Triple>,
    ) -> Result<(RetractionStats, u64), ShapeViolations> {
        let guard = unpoison(self.writer.lock());

        // Terms absent from the dictionary cannot occur in any triple of
        // the store; predicates that were never promoted to property ids
        // cannot address a table.
        let dictionary = {
            let current = unpoison(self.dictionary.read());
            Arc::clone(&current)
        };
        let delta: Vec<IdTriple> = triples
            .into_iter()
            .filter_map(|t| {
                let s = dictionary.id_of(&t.subject)?;
                let p = dictionary.id_of(&t.predicate)?;
                let o = dictionary.id_of(&t.object)?;
                is_property_id(p).then_some(IdTriple::new(s, p, o))
            })
            .collect();

        // The rule program (if any) recompiles against a throwaway clone of
        // the append-only dictionary: every rule constant was interned —
        // with its final property status — when the dataset was
        // materialized, so this compile cannot promote or intern anything.
        let mut reasoner = {
            let mut dict = (*dictionary).clone();
            let reasoner = self
                .write_reasoner(&mut dict)
                .expect("rule program compiled when the dataset was materialized");
            debug_assert!(!dict.has_pending_promotions());
            reasoner
        };
        let pre = self.snapshots.snapshot();
        let mut store = pre.store().clone();
        let mut base = unpoison(self.base.lock());
        let mut next_base = base.clone();
        let stats = reasoner.retract_delta(&mut store, &mut next_base, delta);

        let epoch = if stats.retracted_explicit > 0 {
            // Shape gate: retraction never promotes identifiers, so the
            // incremental path applies whenever the pre-write epoch was
            // green. Refusal drops every guard with nothing published.
            let pending =
                self.check_shapes(&store, pre.store(), pre.epoch(), &dictionary, false)?;
            *base = next_base;
            drop(base);
            let epoch = self.snapshots.publish(store).epoch();
            if let Some(report) = pending {
                self.record_green(epoch, report);
            }
            epoch
        } else {
            drop(base);
            self.snapshots.epoch()
        };
        drop(guard);
        Ok((stats, epoch))
    }

    /// [`ServingDataset::retract`] from an N-Triples document.
    pub fn retract_ntriples(&self, text: &str) -> Result<(RetractionStats, u64), WriteError> {
        let triples = parse_ntriples(text).map_err(LoadError::from)?;
        self.retract(triples).map_err(WriteError::Shapes)
    }

    /// Number of explicit (asserted) triples behind the current epoch.
    pub fn base_len(&self) -> usize {
        unpoison(self.base.lock()).len()
    }
}

/// Rewrites every stale resource identifier of `store` to its promoted
/// property identifier, in place, and re-finalizes (the loader does the
/// same for freshly parsed datasets).
fn apply_promotion_remap(store: &mut TripleStore, remap: &std::collections::HashMap<u64, u64>) {
    store.remap_ids(remap);
    store.finalize();
}

/// Renders a non-conforming report for the refusal error: focus nodes and
/// offending values decode through `dict` to N-Triples syntax, shape names
/// and clause positions come from the compiled program, and the list is
/// capped at [`ShapeViolations::REPORT_CAP`].
fn render_violations(
    compiled: &shapes::CompiledShapes,
    report: &shapes::ValidationReport,
    dict: &Dictionary,
    incremental: bool,
) -> ShapeViolations {
    let violations = report
        .violations
        .iter()
        .take(ShapeViolations::REPORT_CAP)
        .map(|v| {
            let (shape, path, message) = describe_violation(compiled, v, dict);
            ShapeViolation {
                focus: decode_term(dict, v.focus),
                shape,
                path,
                line: v.line,
                col: v.col,
                message,
            }
        })
        .collect();
    ShapeViolations {
        violations,
        total: report.violations.len(),
        focus_checks: report.focus_checks,
        incremental,
    }
}

fn decode_term(dict: &Dictionary, id: u64) -> String {
    match dict.decode(id) {
        Some(term) => term.to_string(),
        // An id the dictionary cannot decode should not occur; render it
        // opaquely rather than fail the (already failing) write twice over.
        None => format!("#{id}"),
    }
}

/// Shape name, path IRI and human-readable message for one violation. The
/// violated clause is located by its source position, which lets datatype /
/// class / node-reference messages name what the clause demanded.
fn describe_violation(
    compiled: &shapes::CompiledShapes,
    v: &shapes::Violation,
    dict: &Dictionary,
) -> (String, String, String) {
    use shapes::{Check, ViolationKind};
    let shape = compiled.shapes.get(v.shape);
    let constraint = shape.and_then(|s| s.constraints.get(v.constraint));
    let name = match shape {
        Some(s) => s.name.clone(),
        None => format!("#{}", v.shape),
    };
    let path = constraint.map(|c| c.path_iri.clone()).unwrap_or_default();
    let span = shapes::Span {
        line: v.line,
        col: v.col,
    };
    let check = constraint.and_then(|c| c.checks.iter().find(|k| k.span() == span));
    let message = match v.kind {
        ViolationKind::CountBelow { found, min } => {
            format!("{found} value(s), at least {min} required")
        }
        ViolationKind::CountAbove { found, max } => {
            format!("{found} value(s), at most {max} allowed")
        }
        ViolationKind::Datatype { value } => match check {
            Some(Check::Datatype { iri, .. }) => format!(
                "value {} is not a literal of datatype <{iri}>",
                decode_term(dict, value)
            ),
            _ => format!("value {} has the wrong datatype", decode_term(dict, value)),
        },
        ViolationKind::Class { value } => match check {
            Some(Check::Class {
                class: Some(class), ..
            }) => format!(
                "value {} is not of class {}",
                decode_term(dict, value),
                decode_term(dict, *class)
            ),
            _ => format!(
                "value {} is not of the required class",
                decode_term(dict, value)
            ),
        },
        ViolationKind::In { value } => {
            format!(
                "value {} is not in the enumerated set",
                decode_term(dict, value)
            )
        }
        ViolationKind::Node { value, shape } => {
            let referenced = match compiled.shapes.get(shape) {
                Some(s) => s.name.clone(),
                None => format!("#{shape}"),
            };
            format!(
                "value {} does not conform to shape {referenced}",
                decode_term(dict, value)
            )
        }
    };
    (name, path, message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use inferray_model::{vocab, Term, Triple};

    fn family() -> Graph {
        let mut g = Graph::new();
        g.insert_iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/mammal",
        );
        g.insert_iris(
            "http://ex/mammal",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/animal",
        );
        g.insert_iris("http://ex/Bart", vocab::RDF_TYPE, "http://ex/human");
        g
    }

    #[test]
    fn reason_graph_materializes_the_running_example() {
        let input = family();
        let result = reason_graph(&input, Fragment::RdfsDefault).unwrap();
        assert_eq!(result.stats.inferred_triples(), 3);
        assert!(result.graph.contains(&Triple::iris(
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/animal"
        )));
        assert!(result.graph.contains(&Triple::iris(
            "http://ex/human",
            vocab::RDFS_SUB_CLASS_OF,
            "http://ex/animal"
        )));
        // The input is preserved.
        assert!(input.is_subset(&result.graph));
        // inferred() returns exactly the difference.
        assert_eq!(result.inferred(&input).len(), 3);
    }

    #[test]
    fn reason_ntriples_and_turtle_agree() {
        let nt = "\
<http://ex/human> <http://www.w3.org/2000/01/rdf-schema#subClassOf> <http://ex/mammal> .\n\
<http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n";
        let ttl = r#"
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
@prefix ex: <http://ex/> .
ex:human rdfs:subClassOf ex:mammal .
ex:Bart a ex:human .
"#;
        let from_nt = reason_ntriples(nt, Fragment::RdfsDefault).unwrap();
        let from_ttl = reason_turtle(ttl, Fragment::RdfsDefault).unwrap();
        assert_eq!(from_nt.graph, from_ttl.graph);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(reason_ntriples("<broken>", Fragment::RdfsDefault).is_err());
    }

    #[test]
    fn empty_graph_reasons_to_empty_graph() {
        let result = reason_graph(&Graph::new(), Fragment::RdfsPlus).unwrap();
        assert!(result.graph.is_empty());
        assert_eq!(result.stats.inferred_triples(), 0);
    }

    // -- ServingDataset ----------------------------------------------------

    fn serving_family() -> ServingDataset {
        let loaded = inferray_parser::loader::load_graph(&family()).unwrap();
        let (dataset, stats) =
            ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());
        assert_eq!(stats.inferred_triples(), 3);
        dataset
    }

    fn contains(dataset: &ServingDataset, s: &str, p: &str, o: &str) -> bool {
        let (snapshot, dictionary) = dataset.snapshot();
        let triple = Triple::iris(s, p, o);
        let encode = |t: &Term| dictionary.id_of(t);
        match (
            encode(&triple.subject),
            encode(&triple.predicate),
            encode(&triple.object),
        ) {
            (Some(s), Some(p), Some(o)) => {
                snapshot.contains(&inferray_model::IdTriple::new(s, p, o))
            }
            _ => false,
        }
    }

    #[test]
    fn serving_dataset_publishes_the_materialization_as_epoch_zero() {
        let dataset = serving_family();
        assert_eq!(dataset.epoch(), 0);
        assert_eq!(dataset.fragment(), Fragment::RdfsDefault);
        let (snapshot, _) = dataset.snapshot();
        assert_eq!(snapshot.len(), 6);
        assert!(contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
    }

    #[test]
    fn extend_publishes_a_new_epoch_and_old_snapshots_stay_frozen() {
        let dataset = serving_family();
        let (old_snapshot, _) = dataset.snapshot();

        let stats = dataset
            .extend([Triple::iris(
                "http://ex/Lisa",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        // Lisa a human ⇒ mammal, animal inferred incrementally.
        assert_eq!(stats.inferred_triples(), 2);
        assert_eq!(dataset.epoch(), 1);

        assert!(contains(
            &dataset,
            "http://ex/Lisa",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
        // The pre-extend snapshot still holds exactly the old triple set.
        assert_eq!(old_snapshot.epoch(), 0);
        assert_eq!(old_snapshot.len(), 6);
    }

    #[test]
    fn extend_ntriples_interns_new_terms_for_new_readers() {
        let dataset = serving_family();
        dataset
            .extend_ntriples(
                "<http://ex/Maggie> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap();
        assert!(contains(
            &dataset,
            "http://ex/Maggie",
            vocab::RDF_TYPE,
            "http://ex/mammal"
        ));
        assert!(dataset.extend_ntriples("<broken").is_err());
        assert_eq!(dataset.epoch(), 1, "a failed extend publishes nothing");
    }

    #[test]
    fn extend_handles_property_promotions() {
        // 'rel' is first interned as a plain resource (object position)...
        let loaded = inferray_parser::loader::load_graph(&{
            let mut g = Graph::new();
            g.insert_iris("http://ex/a", "http://ex/about", "http://ex/rel");
            g
        })
        .unwrap();
        let (dataset, _) =
            ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());
        // ...and the delta now uses it as a predicate, forcing a promotion
        // that must rewrite the copied store before reasoning.
        dataset
            .extend([Triple::iris("http://ex/x", "http://ex/rel", "http://ex/y")])
            .unwrap();
        assert!(contains(
            &dataset,
            "http://ex/x",
            "http://ex/rel",
            "http://ex/y"
        ));
        assert!(contains(
            &dataset,
            "http://ex/a",
            "http://ex/about",
            "http://ex/rel"
        ));
        let (snapshot, dictionary) = dataset.snapshot();
        let rel = dictionary.id_of(&Term::iri("http://ex/rel")).unwrap();
        assert!(inferray_model::ids::is_property_id(rel));
        assert_eq!(snapshot.table(rel).unwrap().len(), 1);
    }

    #[test]
    fn retract_unasserts_a_triple_and_its_cone() {
        let dataset = serving_family();
        assert_eq!(dataset.base_len(), 3);
        dataset
            .extend([Triple::iris(
                "http://ex/Lisa",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        assert_eq!(dataset.base_len(), 4);
        let (old_snapshot, _) = dataset.snapshot();
        assert_eq!(old_snapshot.len(), 9);

        let (stats, _) = dataset
            .retract([Triple::iris(
                "http://ex/Lisa",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        assert_eq!(stats.retracted_explicit, 1);
        assert_eq!(stats.net_removed(), 3, "Lisa a human/mammal/animal gone");
        assert_eq!(dataset.epoch(), 2);
        assert_eq!(dataset.base_len(), 3);
        assert!(!contains(
            &dataset,
            "http://ex/Lisa",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
        // Bart's cone is untouched, and the pre-retraction snapshot still
        // answers from its frozen epoch.
        assert!(contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/animal"
        ));
        assert_eq!(old_snapshot.len(), 9);

        // Retracting a derived-but-never-asserted triple is a no-op and
        // publishes nothing.
        let (stats, _) = dataset
            .retract([Triple::iris(
                "http://ex/Bart",
                vocab::RDF_TYPE,
                "http://ex/mammal",
            )])
            .unwrap();
        assert_eq!(stats.retracted_explicit, 0);
        assert_eq!(dataset.epoch(), 2);
        assert!(contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/mammal"
        ));
    }

    #[test]
    fn retract_ntriples_and_unknown_terms() {
        let dataset = serving_family();
        // Unknown terms can't be in the store: nothing to do, no new epoch.
        let (stats, _) = dataset
            .retract([Triple::iris(
                "http://ex/NoSuch",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        assert_eq!(stats.requested, 0);
        assert_eq!(dataset.epoch(), 0);
        // A predicate interned as a plain resource addresses no table.
        let (stats, _) = dataset
            .retract([Triple::iris(
                "http://ex/Bart",
                "http://ex/human", // a resource, not a property
                "http://ex/mammal",
            )])
            .unwrap();
        assert_eq!(stats.requested, 0);

        let (stats, _) = dataset
            .retract_ntriples(
                "<http://ex/Bart> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex/human> .\n",
            )
            .unwrap();
        assert_eq!(stats.retracted_explicit, 1);
        assert_eq!(dataset.epoch(), 1);
        assert!(!contains(
            &dataset,
            "http://ex/Bart",
            vocab::RDF_TYPE,
            "http://ex/human"
        ));
        assert!(dataset.retract_ntriples("<broken").is_err());
    }

    #[test]
    fn extend_then_retract_round_trips_to_the_original_materialization() {
        let dataset = serving_family();
        let (snapshot_before, _) = dataset.snapshot();
        let before: Vec<_> = snapshot_before.iter_triples().collect();
        dataset
            .extend([Triple::iris(
                "http://ex/Maggie",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        dataset
            .retract([Triple::iris(
                "http://ex/Maggie",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        let (snapshot_after, dictionary) = dataset.snapshot();
        let after: Vec<_> = snapshot_after.iter_triples().collect();
        assert_eq!(before, after, "extend ∘ retract is the identity");
        // Maggie's identifier survives in the append-only dictionary.
        assert!(dictionary.id_of(&Term::iri("http://ex/Maggie")).is_some());
    }

    #[test]
    fn from_parts_resumes_byte_identically() {
        let dataset = serving_family();
        dataset
            .extend([Triple::iris(
                "http://ex/Lisa",
                vocab::RDF_TYPE,
                "http://ex/human",
            )])
            .unwrap();
        let (dictionary, base, snapshot) = dataset.persistable_state();

        // Rebuild from the captured parts (what a recovery does)...
        let rebuilt = ServingDataset::from_parts(
            (*dictionary).clone(),
            base.clone(),
            snapshot.store().clone(),
            snapshot.epoch(),
            dataset.fragment(),
            dataset.options(),
        );
        assert_eq!(rebuilt.epoch(), dataset.epoch());
        let (rebuilt_snapshot, rebuilt_dictionary) = rebuilt.snapshot();
        assert_eq!(rebuilt_snapshot.store(), snapshot.store());
        assert_eq!(&*rebuilt_dictionary, &*dictionary);

        // ...and the *next* write produces the same epoch and triples on
        // both the original and the rebuilt dataset.
        let next = [Triple::iris(
            "http://ex/Maggie",
            vocab::RDF_TYPE,
            "http://ex/human",
        )];
        dataset.extend(next.clone()).unwrap();
        rebuilt.extend(next).unwrap();
        assert_eq!(rebuilt.epoch(), dataset.epoch());
        let (a, _) = dataset.snapshot();
        let (b, _) = rebuilt.snapshot();
        assert_eq!(a.store(), b.store());
        assert_eq!(dataset.base_len(), rebuilt.base_len());
    }

    #[test]
    fn serving_with_a_rule_program_extends_and_retracts_live() {
        let rules = "@prefix ex: <http://ex/> .\n\
                     rule gp: ?x ex:parent ?y, ?y ex:parent ?z => ?x ex:grandparent ?z .\n";
        let mut g = Graph::new();
        g.insert_iris("http://ex/a", "http://ex/parent", "http://ex/b");
        let loaded = inferray_parser::loader::load_graph(&g).unwrap();
        let (dataset, stats) =
            ServingDataset::materialize_with_rules(loaded, rules, InferrayOptions::default())
                .unwrap();
        assert_eq!(stats.inferred_triples(), 0, "no chain of two yet");

        // The delta completes the chain: the custom rule fires through the
        // incremental path and the result is published as a new epoch.
        dataset
            .extend([Triple::iris(
                "http://ex/b",
                "http://ex/parent",
                "http://ex/c",
            )])
            .unwrap();
        assert_eq!(dataset.epoch(), 1);
        assert!(contains(
            &dataset,
            "http://ex/a",
            "http://ex/grandparent",
            "http://ex/c"
        ));

        // Retracting the asserted edge un-derives the grandparent triple.
        let (rstats, epoch) = dataset
            .retract([Triple::iris(
                "http://ex/b",
                "http://ex/parent",
                "http://ex/c",
            )])
            .unwrap();
        assert_eq!(rstats.retracted_explicit, 1);
        assert_eq!(epoch, 2);
        assert!(!contains(
            &dataset,
            "http://ex/a",
            "http://ex/grandparent",
            "http://ex/c"
        ));
        assert!(contains(
            &dataset,
            "http://ex/a",
            "http://ex/parent",
            "http://ex/b"
        ));
    }

    #[test]
    fn serving_rejects_a_rule_program_with_errors() {
        let loaded = inferray_parser::loader::load_graph(&family()).unwrap();
        let err = ServingDataset::materialize_with_rules(
            loaded,
            "rule bad: ?x <urn:p> ?y => ?x <urn:q> ?z .",
            InferrayOptions::default(),
        )
        .expect_err("unsafe head variable");
        assert!(err.iter().any(|d| d.code == "RA003"));
    }

    #[test]
    fn concurrent_extends_and_readers_agree_at_the_end() {
        let dataset = std::sync::Arc::new(serving_family());
        std::thread::scope(|scope| {
            for t in 0..3u32 {
                let dataset = std::sync::Arc::clone(&dataset);
                scope.spawn(move || {
                    for i in 0..5u32 {
                        dataset
                            .extend([Triple::iris(
                                format!("http://ex/w{t}n{i}"),
                                vocab::RDF_TYPE,
                                "http://ex/human",
                            )])
                            .unwrap();
                    }
                });
            }
            // Readers sample consistent pairs while writers publish.
            for _ in 0..20 {
                let (snapshot, dictionary) = dataset.snapshot();
                for triple in snapshot.iter_triples() {
                    assert!(
                        dictionary.decode_triple(triple).is_some(),
                        "snapshot id not decodable by its paired dictionary"
                    );
                }
            }
        });
        assert_eq!(dataset.epoch(), 15);
        // 15 new humans, each with human/mammal/animal types.
        let (snapshot, _) = dataset.snapshot();
        assert_eq!(snapshot.len(), 6 + 15 * 3);
    }

    #[test]
    fn shape_gate_refuses_violating_writes_and_tracks_counters() {
        let dataset = serving_family();
        assert!(dataset.validation_status().is_none());

        // A program with errors never installs.
        let err = dataset
            .install_shapes("shape S targets all { <http://ex/name> count [3..1] ; } .")
            .expect_err("contradictory bounds");
        assert!(matches!(err, ShapeInstallError::Program(_)));

        // A program the published snapshot already violates refuses to arm.
        let err = dataset
            .install_shapes(
                "shape Named targets class <http://ex/human> { <http://ex/name> count [1..*] ; } .",
            )
            .expect_err("Bart has no name");
        assert!(matches!(err, ShapeInstallError::Violations(_)));
        assert!(dataset.validation_status().is_none());

        // At most one name per human: the current snapshot conforms.
        dataset
            .install_shapes(
                "shape Human targets class <http://ex/human> { <http://ex/name> count [0..1] ; } .",
            )
            .unwrap();
        let status = dataset.validation_status().unwrap();
        assert_eq!(status.shapes, 1);
        assert_eq!(status.validated_epoch, Some(0));
        assert_eq!(status.counters.full, 1);

        // A conforming write goes through the incremental validator.
        dataset
            .extend_ntriples("<http://ex/Bart> <http://ex/name> \"Bart\" .\n")
            .unwrap();
        assert_eq!(dataset.epoch(), 1);
        let status = dataset.validation_status().unwrap();
        assert_eq!(status.validated_epoch, Some(1));
        assert_eq!(status.counters.incremental, 1);
        assert_eq!(status.counters.rejected, 0);

        // A second name violates `count [0..1]`: the write is refused and
        // nothing — epoch, base, snapshot — changes.
        let err = dataset
            .extend_ntriples("<http://ex/Bart> <http://ex/name> \"Bartholomew\" .\n")
            .expect_err("two names");
        let WriteError::Shapes(violations) = err else {
            panic!("expected a shape refusal");
        };
        assert_eq!(violations.total, 1);
        assert!(violations.incremental);
        assert_eq!(violations.violations[0].shape, "Human");
        assert_eq!(violations.violations[0].focus, "<http://ex/Bart>");
        assert!(violations.violations[0].message.contains("at most 1"));
        assert!(violations.json().contains("\"line\":1"));
        assert_eq!(dataset.epoch(), 1, "a refused extend publishes nothing");
        assert_eq!(dataset.base_len(), 4);
        let status = dataset.validation_status().unwrap();
        assert_eq!(status.counters.rejected, 1);
        assert_eq!(status.validated_epoch, Some(1));

        // Retraction is gated too: removing Bart's name keeps conformance.
        let (stats, epoch) = dataset
            .retract_ntriples("<http://ex/Bart> <http://ex/name> \"Bart\" .\n")
            .unwrap();
        assert_eq!(stats.retracted_explicit, 1);
        assert_eq!(epoch, 2);
        assert_eq!(
            dataset.validation_status().unwrap().validated_epoch,
            Some(2)
        );
    }

    #[test]
    fn shape_gate_falls_back_to_full_validation_after_a_promotion() {
        // 'rel' is interned as a plain resource first (object position)...
        let loaded = inferray_parser::loader::load_graph(&{
            let mut g = Graph::new();
            g.insert_iris("http://ex/a", "http://ex/about", "http://ex/rel");
            g
        })
        .unwrap();
        let (dataset, _) =
            ServingDataset::materialize(loaded, Fragment::RdfsDefault, InferrayOptions::default());
        dataset
            .install_shapes(
                "shape About targets subjects-of <http://ex/about> \
                 { <http://ex/about> count [1..2] ; } .",
            )
            .unwrap();
        // ...and this delta promotes it to a property, renumbering ids the
        // previous green report may reference: the gate must re-validate
        // the full candidate instead of trusting the stale report.
        dataset
            .extend([Triple::iris("http://ex/x", "http://ex/rel", "http://ex/y")])
            .unwrap();
        let status = dataset.validation_status().unwrap();
        assert_eq!(status.counters.full, 2, "install + post-promotion write");
        assert_eq!(status.counters.incremental, 0);
        assert_eq!(status.validated_epoch, Some(1));
    }
}
