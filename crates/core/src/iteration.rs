//! Per-iteration timing breakdown of the fixed-point loop.
//!
//! The paper's performance story lives inside one iteration: rule firing
//! (§4.3, parallel) followed by the per-property table update (Figure 5:
//! sort, dedup, merge). [`IterationProfile`] records both phases for every
//! iteration of the most recent run, so the `table_update` benchmark — and
//! anyone debugging a slow materialization — can see where the time goes
//! and how the delta shrinks towards the fixed point.

use std::time::Duration;

/// Timing and volume counters of one fixed-point iteration.
#[derive(Debug, Clone, Copy, Default)]
pub struct IterationSample {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Wall-clock time spent rebuilding the ⟨o,s⟩ caches the previous
    /// iteration's merges invalidated (§4.2), before the rules fire.
    pub os_cache: Duration,
    /// Wall-clock time of the rule-firing phase (line 5 of Algorithm 1).
    pub fire: Duration,
    /// Wall-clock time of the table-update phase (lines 6-7, Figure 5).
    pub update: Duration,
    /// Raw pairs produced by the rule executors this iteration.
    pub raw_pairs: usize,
    /// Genuinely new pairs after both deduplication layers.
    pub new_pairs: usize,
    /// Property tables that received inferred pairs.
    pub properties_touched: usize,
    /// Rules actually fired this iteration (the §4.3 dependency schedule).
    pub rules_fired: usize,
    /// Rules of the ruleset skipped because none of their input tables
    /// received new pairs in the previous iteration.
    pub rules_skipped: usize,
}

/// The iteration-by-iteration profile of one materialization run.
#[derive(Debug, Clone, Default)]
pub struct IterationProfile {
    /// One sample per executed iteration, in order.
    pub samples: Vec<IterationSample>,
}

impl IterationProfile {
    /// Total time spent firing rules.
    pub fn total_fire(&self) -> Duration {
        self.samples.iter().map(|s| s.fire).sum()
    }

    /// Total time spent in the table-update stage.
    pub fn total_update(&self) -> Duration {
        self.samples.iter().map(|s| s.update).sum()
    }

    /// Total time spent rebuilding invalidated ⟨o,s⟩ caches.
    pub fn total_os_cache(&self) -> Duration {
        self.samples.iter().map(|s| s.os_cache).sum()
    }

    /// Total rule firings across the run.
    pub fn total_rules_fired(&self) -> usize {
        self.samples.iter().map(|s| s.rules_fired).sum()
    }

    /// Total rule firings the dependency scheduler avoided.
    pub fn total_rules_skipped(&self) -> usize {
        self.samples.iter().map(|s| s.rules_skipped).sum()
    }

    /// Renders a compact plain-text report (one line per iteration).
    pub fn report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from(
            "iter  os-cache-ms    fire-ms  update-ms    raw-pairs    new-pairs  tables  fired  skipped\n",
        );
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{:>4} {:>12.3} {:>10.3} {:>10.3} {:>12} {:>12} {:>7} {:>6} {:>8}",
                s.iteration,
                s.os_cache.as_secs_f64() * 1e3,
                s.fire.as_secs_f64() * 1e3,
                s.update.as_secs_f64() * 1e3,
                s.raw_pairs,
                s.new_pairs,
                s.properties_touched,
                s.rules_fired,
                s.rules_skipped,
            );
        }
        let _ = writeln!(
            out,
            "total fire {:.3} ms, update {:.3} ms over {} iterations ({} rules fired, {} skipped)",
            self.total_fire().as_secs_f64() * 1e3,
            self.total_update().as_secs_f64() * 1e3,
            self.samples.len(),
            self.total_rules_fired(),
            self.total_rules_skipped(),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_report() {
        let profile = IterationProfile {
            samples: vec![
                IterationSample {
                    iteration: 1,
                    os_cache: Duration::from_millis(3),
                    fire: Duration::from_millis(4),
                    update: Duration::from_millis(2),
                    raw_pairs: 100,
                    new_pairs: 40,
                    properties_touched: 3,
                    rules_fired: 10,
                    rules_skipped: 0,
                },
                IterationSample {
                    iteration: 2,
                    os_cache: Duration::from_millis(1),
                    fire: Duration::from_millis(1),
                    update: Duration::from_millis(1),
                    raw_pairs: 10,
                    new_pairs: 0,
                    properties_touched: 1,
                    rules_fired: 4,
                    rules_skipped: 6,
                },
            ],
        };
        assert_eq!(profile.total_fire(), Duration::from_millis(5));
        assert_eq!(profile.total_update(), Duration::from_millis(3));
        assert_eq!(profile.total_os_cache(), Duration::from_millis(4));
        assert_eq!(profile.total_rules_fired(), 14);
        assert_eq!(profile.total_rules_skipped(), 6);
        let report = profile.report();
        assert!(report.contains("2 iterations"));
        assert!(report.contains("14 rules fired, 6 skipped"));
        assert!(report.lines().count() >= 4);
    }
}
