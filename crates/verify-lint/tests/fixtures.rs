//! Proves every lint rule fires: each fixture under `fixtures/` is an
//! intentionally-bad snippet, loaded here under a synthetic repo-like path
//! and fed to the rule it targets. The camouflaged negatives in the same
//! fixtures (comments, strings, `#[cfg(test)]` items, correctly-ordered
//! code) must stay silent. A final test runs the whole pass over the real
//! workspace and requires a clean exit.

use inferray_verify_lint::{rules, SourceFile};
use std::path::{Path, PathBuf};

fn fixture(name: &str, synthetic_path: &str) -> SourceFile {
    let on_disk = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let raw = std::fs::read_to_string(&on_disk)
        .unwrap_or_else(|e| panic!("reading fixture {}: {e}", on_disk.display()));
    SourceFile::new(PathBuf::from(synthetic_path), raw)
}

#[test]
fn il001_fires_on_missing_forbid() {
    let files = vec![fixture(
        "il001_missing_forbid.rs",
        "crates/example/src/lib.rs",
    )];
    let manifest = "[workspace]\nmembers = [\"crates/example\"]\n";
    let diags = rules::il001_forbid_unsafe(&files, manifest);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "IL001");

    // The same file under a non-root path is not a crate root: silent.
    let not_root = vec![fixture(
        "il001_missing_forbid.rs",
        "crates/example/src/util.rs",
    )];
    assert!(rules::il001_forbid_unsafe(&not_root, manifest).is_empty());
}

#[test]
fn il002_fires_on_hot_path_panics_only() {
    let files = vec![fixture("il002_hot_panics.rs", "crates/persist/src/bad.rs")];
    let diags = rules::il002_no_panics(&files);
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "IL002"));
    // The four findings are all in the first function (lines 6..=15); the
    // comment, string, `unwrap_or` and cfg(test) sites must not appear.
    assert!(
        diags.iter().all(|d| (6..=15).contains(&d.line)),
        "{diags:?}"
    );
}

#[test]
fn il002_is_silent_off_the_hot_paths() {
    let files = vec![fixture("il002_hot_panics.rs", "crates/model/src/fine.rs")];
    assert!(rules::il002_no_panics(&files).is_empty());
}

#[test]
fn il002_covers_the_shape_validator() {
    // The shape validator runs under the serving write lock, so it is on
    // the hot list; its sibling modules (parse/check/compile run only at
    // install time) are not.
    let hot = vec![fixture(
        "il002_hot_panics.rs",
        "crates/rules/src/shapes/validate.rs",
    )];
    let diags = rules::il002_no_panics(&hot);
    assert_eq!(diags.len(), 4, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "IL002"));

    let cold = vec![fixture(
        "il002_hot_panics.rs",
        "crates/rules/src/shapes/compile.rs",
    )];
    assert!(rules::il002_no_panics(&cold).is_empty());
}

#[test]
fn il003_fires_on_mutation_without_invalidation() {
    let files = vec![fixture(
        "il003_property_table.rs",
        "crates/store/src/property_table.rs",
    )];
    let diags = rules::il003_os_cache_invalidation(&files);
    assert_eq!(diags.len(), 2, "{diags:?}");
    let flagged: Vec<&str> = diags
        .iter()
        .map(|d| {
            if d.message.contains("bad_push") {
                "bad_push"
            } else if d.message.contains("bad_replace") {
                "bad_replace"
            } else {
                "unexpected"
            }
        })
        .collect();
    assert!(flagged.contains(&"bad_push"), "{diags:?}");
    assert!(flagged.contains(&"bad_replace"), "{diags:?}");
}

#[test]
fn il003_walks_the_call_graph_across_files() {
    let table = || {
        fixture(
            "il003_cross_file_table.rs",
            "crates/store/src/property_table.rs",
        )
    };
    let helper = fixture(
        "il003_cross_file_helper.rs",
        "crates/store/src/table_helpers.rs",
    );

    // With only the table file visible both mutators look bad — exactly
    // where the old same-file walk stopped.
    let blinkered = rules::il003_os_cache_invalidation(&[table()]);
    assert_eq!(blinkered.len(), 2, "{blinkered:?}");

    // With the helper file in the walk, the cross-file invalidation path of
    // `good_cross` resolves and only the genuinely forgetful path remains.
    let diags = rules::il003_os_cache_invalidation(&[table(), helper]);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "IL003");
    assert!(diags[0].message.contains("bad_cross"), "{diags:?}");
}

#[test]
fn il003_fires_on_pairs_mut_outside_store() {
    let files = vec![fixture(
        "il003_pairs_mut_outside.rs",
        "crates/query/src/bad.rs",
    )];
    let diags = rules::il003_os_cache_invalidation(&files);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(diags[0].message.contains("pairs_mut"));

    // The same call inside the store crate is the legitimate home: silent.
    let inside = vec![fixture(
        "il003_pairs_mut_outside.rs",
        "crates/store/src/helper.rs",
    )];
    assert!(rules::il003_os_cache_invalidation(&inside).is_empty());
}

#[test]
fn il004_fires_on_direct_and_transitive_inversions() {
    let files = vec![fixture(
        "il004_lock_inversion.rs",
        "crates/persist/src/durable.rs",
    )];
    let diags = rules::il004_lock_order(&files);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "IL004"));
    assert!(
        diags.iter().any(|d| d.message.contains("acquires")),
        "direct inversion missing: {diags:?}"
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("helper_taking_state")),
        "transitive inversion missing: {diags:?}"
    );
}

#[test]
fn il005_fires_outside_bin_paths_only() {
    let lib = vec![fixture("il005_process_exit.rs", "crates/query/src/bad.rs")];
    let diags = rules::il005_no_process_exit(&lib);
    assert_eq!(diags.len(), 2, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "IL005"));

    let bin = vec![fixture("il005_process_exit.rs", "src/bin/tool.rs")];
    assert!(rules::il005_no_process_exit(&bin).is_empty());
}

#[test]
fn il006_fires_on_manifest_drift() {
    let manifest_text = {
        let path = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("fixtures")
            .join("il006_bad_manifest.toml");
        std::fs::read_to_string(path).unwrap()
    };
    let manifests = vec![(PathBuf::from("crates/bad/Cargo.toml"), manifest_text)];
    let members = ["inferray-store", "inferray-model", "inferray-bad"]
        .into_iter()
        .map(String::from)
        .collect();
    let diags = rules::il006_manifest_hygiene(&manifests, &members);
    // pinned version + pinned edition + path dependency = 3 findings; the
    // `.workspace = true` dependency stays silent.
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "IL006"));
    assert!(
        diags.iter().any(|d| d.message.contains("inferray-store")),
        "{diags:?}"
    );
}

#[test]
fn il007_fires_on_hot_function_allocation_only() {
    let files = vec![fixture("il007_hot_alloc.rs", "crates/query/src/server.rs")];
    let diags = rules::il007_no_hot_path_allocation(&files);
    assert_eq!(diags.len(), 3, "{diags:?}");
    assert!(diags.iter().all(|d| d.rule == "IL007"));
    for (hot_fn, constructor) in [
        ("serve_request", "`format!`"),
        ("respond", "`String::new`"),
        ("json_escape_into", "`Vec::new`"),
    ] {
        assert!(
            diags
                .iter()
                .any(|d| d.message.contains(hot_fn) && d.message.contains(constructor)),
            "missing {constructor} in {hot_fn}: {diags:?}"
        );
    }
}

#[test]
fn il007_is_silent_outside_server_rs() {
    let files = vec![fixture("il007_hot_alloc.rs", "crates/query/src/planner.rs")];
    assert!(rules::il007_no_hot_path_allocation(&files).is_empty());
}

#[test]
fn il007_covers_status_json_into() {
    let files = vec![fixture(
        "il007_status_alloc.rs",
        "crates/query/src/server.rs",
    )];
    let diags = rules::il007_no_hot_path_allocation(&files);
    // Exactly the one allocation in `status_json_into`; the cold
    // reporter helpers and camouflaged sites stay silent.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert!(
        diags[0].message.contains("status_json_into") && diags[0].message.contains("`format!`"),
        "{diags:?}"
    );
}

#[test]
fn il008_fires_on_rule_info_literals_outside_the_catalog() {
    let files = vec![fixture(
        "il008_rule_info_literal.rs",
        "crates/core/src/bad.rs",
    )];
    let diags = rules::il008_rule_info_literals(&files);
    // One literal in `rogue_row`; the comment, string, type positions,
    // `RuleInfo::` path and cfg(test) construction all stay silent.
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "IL008");
    assert_eq!(diags[0].line, 9, "{diags:?}");
}

#[test]
fn il008_is_silent_in_the_catalog_and_the_analyzer() {
    for home in [
        "crates/rules/src/catalog.rs",
        "crates/rules/src/analysis/compile.rs",
    ] {
        let files = vec![fixture("il008_rule_info_literal.rs", home)];
        assert!(rules::il008_rule_info_literals(&files).is_empty(), "{home}");
    }
}

/// The whole pass over the real workspace: zero unallowlisted findings and
/// zero stale allowlist entries — the same bar `cargo run -p
/// inferray-verify-lint` enforces in CI.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let outcome = inferray_verify_lint::run(&root).expect("lint pass runs");
    assert!(
        outcome.clean(),
        "diagnostics: {:#?}\nstale allowlist: {:?}",
        outcome.diagnostics,
        outcome
            .unused_allowlist
            .iter()
            .map(|e| format!("{}|{}|{}", e.rule, e.path_suffix, e.line_contains))
            .collect::<Vec<_>>()
    );
    assert!(outcome.files_scanned > 50, "suspiciously few files scanned");
}
