//! Fixture: a crate root with no `#![forbid(unsafe_code)]` attribute.
//! Scanned by tests/fixtures.rs under the synthetic path
//! `crates/example/src/lib.rs` — IL001 must fire on it.

pub fn completely_safe_looking() -> u64 {
    42
}
