//! Fixture: raw `pairs_mut` access from outside the store crate (the test
//! presents this file as `crates/query/src/bad.rs`). IL003 must flag the
//! single call site.

pub fn rewrites_pairs_in_place(table: &mut inferray_store::PropertyTable) {
    for value in table.pairs_mut() {
        *value += 1;
    }
}
