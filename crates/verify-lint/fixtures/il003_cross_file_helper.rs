//! Helper half of the cross-file IL003 fixture (synthetic sibling file
//! `crates/store/src/table_helpers.rs`).

use super::PropertyTable;

pub fn finish_mutation(table: &mut PropertyTable) {
    table.invalidate_os_cache();
}

pub fn forgetful_helper(table: &mut PropertyTable) {
    table.audit_len(); // plausible-looking bookkeeping, no invalidation
}
