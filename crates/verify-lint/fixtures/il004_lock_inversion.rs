//! Fixture: lock-order inversions in what the test presents as
//! `crates/persist/src/durable.rs`. The repo order says the persist state
//! mutex (rank 1) is acquired before the status mirror (rank 7, leaf).
//! IL004 must flag the direct inversion and the transitive one, and must
//! accept the correctly-ordered function.

impl DurableDataset {
    pub fn direct_inversion(&self) {
        let mirror = self.status_mirror.lock().unwrap_or_default();
        let state = self.state.lock().unwrap_or_default(); // finding: 1 after 7
        drop(state);
        drop(mirror);
    }

    pub fn transitive_inversion(&self) {
        let mirror = self.status_mirror.lock().unwrap_or_default();
        self.helper_taking_state(); // finding: callee acquires rank 1
        drop(mirror);
    }

    fn helper_taking_state(&self) {
        let state = self.state.lock().unwrap_or_default();
        drop(state);
    }

    pub fn correct_order(&self) {
        let state = self.state.lock().unwrap_or_default();
        let mirror = self.status_mirror.lock().unwrap_or_default();
        drop(mirror);
        drop(state);
    }

    pub fn sequential_not_nested(&self) {
        {
            let mirror = self.status_mirror.lock().unwrap_or_default();
            drop(mirror);
        }
        // The mirror guard is dead here: taking rank 1 now is fine.
        let state = self.state.lock().unwrap_or_default();
        drop(state);
    }
}
