//! Fixture: a mock property table. Presented to the IL003 call-graph walk
//! under the synthetic path `crates/store/src/property_table.rs`. Exactly
//! two functions mutate `self.so` without any path to
//! `invalidate_os_cache` and must be flagged.

pub struct PropertyTable {
    so: Vec<u64>,
    os: Option<Vec<u64>>,
}

impl PropertyTable {
    fn invalidate_os_cache(&mut self) {
        self.os = None;
    }

    pub fn bad_push(&mut self, s: u64, o: u64) {
        self.so.push(s); // finding: mutation, no invalidation anywhere
        self.so.push(o);
    }

    pub fn bad_replace(&mut self, pairs: Vec<u64>) {
        self.so = pairs; // finding: assignment, no invalidation anywhere
    }

    pub fn good_direct(&mut self, s: u64) {
        self.so.push(s);
        self.invalidate_os_cache();
    }

    pub fn good_indirect(&mut self) {
        self.so.clear();
        self.after_mutation();
    }

    fn after_mutation(&mut self) {
        self.invalidate_os_cache();
    }

    pub fn read_only(&self) -> usize {
        // Comparison, not assignment: must not count as a mutation.
        if self.so == Vec::new() {
            0
        } else {
            self.so.len()
        }
    }
}
