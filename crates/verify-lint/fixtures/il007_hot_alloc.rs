//! IL007 fixture: per-request allocation inside the serving hot functions.
//! Only the three sites in `serve_request`/`respond`/`json_escape_into` may
//! fire; the camouflaged negatives (cold helpers, with_capacity, comments,
//! strings, cfg(test) items) must stay silent.

// Negative: a comment mentioning format!( and String::new( is blanked.

fn serve_request(buffers: &mut Vec<u8>) {
    let label = format!("request #{}", buffers.len()); // positive 1
    buffers.extend_from_slice(label.as_bytes());
}

fn respond(out: &mut Vec<u8>) {
    let scratch = String::new(); // positive 2
    out.extend_from_slice(scratch.as_bytes());
}

fn json_escape_into(out: &mut String) {
    let parts: Vec<u8> = Vec::new(); // positive 3
    out.push_str(&parts.len().to_string());
}

fn percent_decode(input: &str) -> String {
    // Negative: with_capacity sizes a buffer once and is allowed.
    let mut out = Vec::with_capacity(input.len());
    out.extend_from_slice(input.as_bytes());
    String::from_utf8_lossy(&out).into_owned()
}

fn handle_update(out: &mut Vec<u8>) {
    // Negative: not in the hot list — cold paths may allocate freely.
    let message = format!("{} bytes", out.len());
    let mut copy = String::new();
    copy.push_str(&message);
}

fn worker_loop() {
    // Negative: one-time per-worker buffer setup, deliberately not hot.
    let _head = String::new();
    let _body: Vec<u8> = Vec::new();
}

fn read_head(line: &mut String) -> bool {
    // Negative inside a hot function: the banned tokens appear only in a
    // string literal, which is blanked before scanning.
    line.push_str("format!( String::new( Vec::new(");
    true
}

#[cfg(test)]
mod tests {
    #[test]
    fn answer_query() {
        // Negative: test items are blanked even when named like hot fns.
        let _ = format!("{}", String::new());
    }
}
