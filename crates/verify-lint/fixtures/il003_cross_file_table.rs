//! Fixture: a mock property table whose invalidation discipline is split
//! across files. Presented under `crates/store/src/property_table.rs`
//! together with `il003_cross_file_helper.rs` (as a sibling store-crate
//! file): `good_cross` delegates invalidation to a helper that lives in the
//! other file, `bad_cross` delegates to one that forgets. Only the
//! workspace-wide call-graph walk can tell them apart — a same-file walk
//! flags both.

pub struct PropertyTable {
    so: Vec<u64>,
    os: Option<Vec<u64>>,
}

impl PropertyTable {
    fn invalidate_os_cache(&mut self) {
        self.os = None;
    }

    pub fn good_cross(&mut self, s: u64) {
        self.so.push(s);
        finish_mutation(self); // defined in the helper file; invalidates
    }

    pub fn bad_cross(&mut self, pairs: Vec<u64>) {
        self.so = pairs;
        forgetful_helper(self); // defined in the helper file; does NOT
    }
}
