//! Fixture: mints a `RuleInfo { … }` catalog row outside the catalog.
//! Presented under a synthetic non-catalog path, exactly one literal must
//! be flagged. Camouflage that must stay silent: the mention of
//! RuleInfo { in this comment, the string below, type positions
//! (`&RuleInfo` parameter, `RuleInfo::` path) and the `#[cfg(test)]`
//! construction.

pub fn rogue_row() {
    let info = RuleInfo {
        name: "ROGUE",
        inputs: RuleInputs::None,
        outputs: RuleOutputs::None,
    };
    register(info);
}

pub fn inspect(info: &RuleInfo) -> &'static str {
    let _ = info;
    "RuleInfo { in a string is not a literal"
}

pub fn lookup() {
    let _ = RuleInfo::lookup_by_name("CAX-SCO");
}

#[cfg(test)]
mod tests {
    #[test]
    fn builds_one_in_tests() {
        let _ = RuleInfo {
            name: "TEST-ONLY",
            inputs: RuleInputs::None,
            outputs: RuleOutputs::None,
        };
    }
}
