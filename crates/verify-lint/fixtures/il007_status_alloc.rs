//! IL007 fixture: `/status` rendering is on the per-request hot path, so
//! `status_json_into` is in the hot list — the single allocation inside it
//! must fire. The camouflaged negatives (a cold reporter trait impl, a
//! string literal naming the banned tokens, a cfg(test) item) stay silent.

fn status_json_into(out: &mut String, epoch: u64) {
    let header = format!("epoch {epoch}"); // positive 1
    out.push_str(&header);
}

fn validation_json_into(out: &mut String) {
    // Negative: the reporter *impl* lives outside server.rs in real code;
    // this same-named cold helper is not in the hot list.
    let mut scratch = String::new();
    scratch.push_str("null");
    out.push_str(&scratch);
}

fn durability_json() -> String {
    // Negative: cold, not in the hot list.
    let detail: Vec<u8> = Vec::new();
    format!("{} bytes", detail.len())
}

fn error_json_into(out: &mut String) {
    // Negative inside a hot function: banned tokens only in a blanked
    // string literal.
    out.push_str("format!( String::new( Vec::new(");
}

#[cfg(test)]
mod tests {
    #[test]
    fn status_json_into() {
        // Negative: test items are blanked even when named like hot fns.
        let _ = format!("{}", String::new());
    }
}
