//! Fixture: `std::process::exit` in library code (the test presents this
//! file as `crates/query/src/bad.rs`). IL005 must flag both spellings;
//! the same text under `src/bin/` must pass.

pub fn bails_out_of_a_library(code: i32) {
    if code != 0 {
        std::process::exit(code);
    }
}

pub fn bails_with_short_path(code: i32) {
    use std::process;
    process::exit(code);
}
