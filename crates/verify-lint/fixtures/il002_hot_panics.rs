//! Fixture: panic-family calls in what the test presents as a persist
//! hot-path file. IL002 must fire on exactly the four sites below and on
//! none of the camouflaged negatives.

pub fn four_real_findings(input: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = input.unwrap(); // finding 1
    let b = r.expect("boom"); // finding 2
    if a + b == 0 {
        panic!("finding 3");
    }
    match a {
        0 => unreachable!("finding 4"),
        n => n,
    }
}

pub fn negatives(input: Option<u32>) -> u32 {
    // .unwrap() inside this comment must not count.
    let s = "calling panic!(now) inside a string must not count";
    let t = r#"raw string with .expect( inside must not count"#;
    input.unwrap_or(s.len() as u32 + t.len() as u32) // unwrap_or is fine
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1); // blanked: cfg(test) items are exempt
    }
}
