//! Repo-specific lint pass for the Inferray workspace.
//!
//! A dependency-free, token/line-level Rust source scanner — in the spirit
//! of the offline shims, no `syn` — enforcing rules clippy cannot express
//! because they encode *this repo's* protocols:
//!
//! | rule  | enforces |
//! |-------|----------|
//! | IL001 | every crate root carries `#![forbid(unsafe_code)]` |
//! | IL002 | no `unwrap`/`expect`/`panic!`-family calls in the server, persist, snapshot and shape-validator hot paths |
//! | IL003 | `PropertyTable` pair mutations stay in the store crate and provably reach `invalidate_os_cache` (workspace-wide call-graph walk) |
//! | IL004 | lock-acquisition ordering across the publish/persist protocols |
//! | IL005 | no `std::process::exit` outside `src/bin` |
//! | IL006 | manifest hygiene: intra-workspace deps via `workspace = true`, no version drift |
//! | IL007 | no per-request allocation (`format!`/`String::new`/`Vec::new`) in the serving hot path |
//! | IL008 | `RuleInfo` literals only in the rule catalog and the rule-program analyzer |
//!
//! Findings a human has justified live in `crates/verify-lint/allowlist.txt`
//! (rule, path suffix, line substring, justification); unused entries are
//! themselves errors so the list cannot rot. The scanner is deliberately
//! conservative: comments, string literals and `#[cfg(test)]` items are
//! blanked before any rule looks at the text, and the IL003/IL004 call-graph
//! walks union same-named functions rather than attempting resolution.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;
use std::ops::Range;
use std::path::{Path, PathBuf};

pub mod rules;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier, e.g. `"IL002"`.
    pub rule: &'static str,
    /// File the finding is in (workspace-relative when produced by [`run`]).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}",
            self.rule,
            self.path.display(),
            self.line,
            self.message
        )
    }
}

/// A source file prepared for scanning: raw text plus a *cleaned* view in
/// which comments, string/char literals and `#[cfg(test)]` items are blanked
/// (byte-for-byte, newlines preserved) so token scans cannot be fooled.
pub struct SourceFile {
    /// Path as given (workspace-relative in the driver).
    pub path: PathBuf,
    /// Original text.
    pub raw: String,
    /// Comment/string-blanked text, same length as `raw`.
    pub clean: String,
    /// `clean` with `#[cfg(test)]` item bodies additionally blanked.
    pub clean_no_tests: String,
}

impl SourceFile {
    /// Prepares a file for scanning.
    pub fn new(path: PathBuf, raw: String) -> SourceFile {
        let clean = blank_comments_and_strings(&raw);
        let clean_no_tests = blank_test_items(&clean);
        SourceFile {
            path,
            raw,
            clean,
            clean_no_tests,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, byte: usize) -> usize {
        self.raw[..byte.min(self.raw.len())]
            .bytes()
            .filter(|b| *b == b'\n')
            .count()
            + 1
    }

    /// The raw text of a 1-based line (for allowlist substring matching).
    pub fn line_text(&self, line: usize) -> &str {
        self.raw.lines().nth(line.saturating_sub(1)).unwrap_or("")
    }
}

/// Blanks `//` and nested `/* */` comments, `"…"`, `r#"…"#`, `b"…"` string
/// literals and `'c'` char literals (lifetimes survive), preserving length
/// and newlines.
pub fn blank_comments_and_strings(raw: &str) -> String {
    let bytes = raw.as_bytes();
    let mut out = raw.as_bytes().to_vec();
    let mut i = 0usize;
    let n = bytes.len();
    let blank = |out: &mut [u8], range: Range<usize>| {
        for b in &mut out[range] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
    };
    while i < n {
        match bytes[i] {
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                let end = raw[i..].find('\n').map(|o| i + o).unwrap_or(n);
                blank(&mut out, i..end);
                i = end;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'*' => {
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if j + 1 < n && bytes[j] == b'/' && bytes[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < n && bytes[j] == b'*' && bytes[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                blank(&mut out, i..j);
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                let (hash_start, hashes) = raw_string_hashes(bytes, i);
                let open_quote = hash_start + hashes;
                let closer: Vec<u8> = std::iter::once(b'"')
                    .chain(std::iter::repeat_n(b'#', hashes))
                    .collect();
                let body_start = open_quote + 1;
                let end = find_bytes(bytes, &closer, body_start)
                    .map(|o| o + closer.len())
                    .unwrap_or(n);
                blank(&mut out, i..end);
                i = end;
            }
            b'"' => {
                let mut j = i + 1;
                while j < n {
                    match bytes[j] {
                        b'\\' => j += 2,
                        b'"' => {
                            j += 1;
                            break;
                        }
                        _ => j += 1,
                    }
                }
                blank(&mut out, i..j.min(n));
                i = j.min(n).max(i + 1);
            }
            b'\'' => {
                // Distinguish a char literal from a lifetime: a lifetime is
                // `'ident` NOT followed by a closing quote.
                let is_lifetime = i + 1 < n
                    && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_')
                    && !(i + 2 < n && bytes[i + 2] == b'\'');
                if is_lifetime {
                    i += 1;
                    continue;
                }
                let mut j = i + 1;
                if j < n && bytes[j] == b'\\' {
                    j += 2;
                }
                // consume up to the closing quote (chars may be multibyte)
                while j < n && bytes[j] != b'\'' {
                    j += 1;
                }
                j = (j + 1).min(n);
                blank(&mut out, i..j);
                i = j;
            }
            _ => i += 1,
        }
    }
    String::from_utf8(out).expect("blanking is ASCII-safe byte replacement")
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // r", r#", br", b" — conservatively: r/b[r]?#*"
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
        if j < bytes.len() && bytes[j] == b'r' {
            j += 1;
        } else {
            return j < bytes.len() && bytes[j] == b'"';
        }
    } else if bytes[j] == b'r' {
        j += 1;
    } else {
        return false;
    }
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    j < bytes.len() && bytes[j] == b'"'
}

fn raw_string_hashes(bytes: &[u8], i: usize) -> (usize, usize) {
    let mut j = i;
    while j < bytes.len() && (bytes[j] == b'r' || bytes[j] == b'b') {
        j += 1;
    }
    let start = j;
    while j < bytes.len() && bytes[j] == b'#' {
        j += 1;
    }
    (start, j - start)
}

fn find_bytes(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if needle.is_empty() || from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|o| o + from)
}

/// Blanks the bodies of items annotated `#[cfg(test)]` in already-cleaned
/// text (test modules, test-only functions).
pub fn blank_test_items(clean: &str) -> String {
    let marker = "#[cfg(test)]";
    let mut out = clean.as_bytes().to_vec();
    let bytes = clean.as_bytes();
    let mut from = 0usize;
    while let Some(offset) = clean[from..].find(marker) {
        let attr_at = from + offset;
        let mut i = attr_at + marker.len();
        // Skip whitespace and further attributes.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i < bytes.len() && bytes[i] == b'#' {
                // skip `#[...]`
                let mut depth = 0usize;
                while i < bytes.len() {
                    match bytes[i] {
                        b'[' => depth += 1,
                        b']' => {
                            depth -= 1;
                            if depth == 0 {
                                i += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    i += 1;
                }
            } else {
                break;
            }
        }
        // The item: blank to its closing brace (or `;` for `mod x;`).
        let mut depth = 0usize;
        let mut end = i;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                b';' if depth == 0 => {
                    end += 1;
                    break;
                }
                _ => {}
            }
            end += 1;
        }
        for b in &mut out[attr_at..end.min(bytes.len())] {
            if *b != b'\n' {
                *b = b' ';
            }
        }
        from = end.max(attr_at + marker.len());
        if from >= clean.len() {
            break;
        }
    }
    String::from_utf8(out).expect("blanking is ASCII-safe byte replacement")
}

/// One function found by the conservative per-file index.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name (no path; impl methods indexed by bare name).
    pub name: String,
    /// Byte range of the signature (from `fn` to the body `{`).
    pub sig: Range<usize>,
    /// Byte range of the body, `{` inclusive to `}` inclusive.
    pub body: Range<usize>,
}

/// Conservative function index over cleaned text: every `fn name(...) {...}`
/// with brace-matched body. Trait-method declarations (ending in `;`) are
/// skipped.
pub fn index_functions(clean: &str) -> Vec<FnInfo> {
    let bytes = clean.as_bytes();
    let mut fns = Vec::new();
    let mut i = 0usize;
    while let Some(offset) = clean[i..].find("fn ") {
        let at = i + offset;
        i = at + 3;
        // word boundary before `fn`
        if at > 0 {
            let prev = bytes[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let mut j = at + 3;
        while j < bytes.len() && bytes[j].is_ascii_whitespace() {
            j += 1;
        }
        let name_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j == name_start {
            continue;
        }
        let name = clean[name_start..j].to_string();
        // Find the body `{` or a declaration-ending `;`, skipping the
        // parameter parens and any generic/where clause in between.
        let mut depth_paren = 0usize;
        let mut depth_angle = 0isize;
        let mut body_open = None;
        let mut k = j;
        while k < bytes.len() {
            match bytes[k] {
                b'(' => depth_paren += 1,
                b')' => depth_paren = depth_paren.saturating_sub(1),
                b'<' => depth_angle += 1,
                b'>' => depth_angle -= 1,
                b'{' if depth_paren == 0 => {
                    body_open = Some(k);
                    break;
                }
                b';' if depth_paren == 0 && depth_angle <= 0 => break,
                _ => {}
            }
            k += 1;
        }
        let Some(open) = body_open else { continue };
        // Match braces to the body end.
        let mut depth = 0usize;
        let mut end = open;
        while end < bytes.len() {
            match bytes[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        end += 1;
                        break;
                    }
                }
                _ => {}
            }
            end += 1;
        }
        fns.push(FnInfo {
            name,
            sig: at..open,
            body: open..end,
        });
        // Continue scanning inside the body too (nested fns are rare but
        // cheap to index); the outer loop's `find` resumes after `fn `.
    }
    fns
}

/// Names called inside a body slice of cleaned text: identifiers directly
/// followed by `(`, including method names after `.`; keywords excluded.
pub fn calls_in(body: &str) -> HashSet<String> {
    const KEYWORDS: &[&str] = &[
        "if", "while", "for", "match", "loop", "return", "fn", "move", "unsafe", "else", "let",
        "in", "as", "impl", "dyn",
    ];
    let bytes = body.as_bytes();
    let mut out = HashSet::new();
    let mut i = 0usize;
    while i < bytes.len() {
        if bytes[i].is_ascii_alphabetic() || bytes[i] == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let ident = &body[start..i];
            let mut j = i;
            while j < bytes.len() && bytes[j].is_ascii_whitespace() {
                j += 1;
            }
            // `ident(` — macro invocations `name!(` are excluded for free
            // because the `!` sits where the `(` is required to be.
            if j < bytes.len() && bytes[j] == b'(' && !KEYWORDS.contains(&ident) {
                out.insert(ident.to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// An allowlist entry: `rule|path-suffix|line-substring|justification`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Rule the entry silences.
    pub rule: String,
    /// Diagnostic path must end with this.
    pub path_suffix: String,
    /// Diagnostic line's raw text must contain this (`*` matches any).
    pub line_contains: String,
    /// Why the site is acceptable (required, shown in reports).
    pub justification: String,
}

/// Parses the allowlist format; `#` lines and blanks are skipped.
pub fn parse_allowlist(text: &str) -> Result<Vec<AllowEntry>, String> {
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.splitn(4, '|').collect();
        if parts.len() != 4 || parts[3].trim().is_empty() {
            return Err(format!(
                "allowlist line {}: expected `rule|path-suffix|line-substring|justification`",
                idx + 1
            ));
        }
        entries.push(AllowEntry {
            rule: parts[0].trim().to_string(),
            path_suffix: parts[1].trim().to_string(),
            line_contains: parts[2].trim().to_string(),
            justification: parts[3].trim().to_string(),
        });
    }
    Ok(entries)
}

/// Result of a whole-workspace run.
pub struct LintOutcome {
    /// Findings not covered by the allowlist.
    pub diagnostics: Vec<Diagnostic>,
    /// Allowlist entries that matched nothing (stale — also a failure).
    pub unused_allowlist: Vec<AllowEntry>,
    /// Findings silenced by the allowlist (reported for transparency).
    pub allowed: Vec<(Diagnostic, String)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl LintOutcome {
    /// `true` when the pass should exit 0.
    pub fn clean(&self) -> bool {
        self.diagnostics.is_empty() && self.unused_allowlist.is_empty()
    }
}

/// Recursively collects files under `root`, skipping build output, VCS
/// internals and the lint's own fixture corpus.
fn walk(root: &Path, ext: &str, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if matches!(name, "target" | ".git" | "fixtures") {
                continue;
            }
            walk(&path, ext, out);
        } else if name.ends_with(ext) {
            out.push(path);
        }
    }
}

/// Runs every rule over the workspace at `root` with the checked-in
/// allowlist, returning the full outcome.
pub fn run(root: &Path) -> Result<LintOutcome, String> {
    let mut rs_paths = Vec::new();
    walk(root, ".rs", &mut rs_paths);
    let mut files = Vec::new();
    for path in &rs_paths {
        let raw =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        files.push(SourceFile::new(rel, raw));
    }

    let mut manifest_paths = Vec::new();
    walk(root, "Cargo.toml", &mut manifest_paths);
    let mut manifests = Vec::new();
    for path in &manifest_paths {
        let raw =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = path.strip_prefix(root).unwrap_or(path).to_path_buf();
        manifests.push((rel, raw));
    }

    let root_manifest = std::fs::read_to_string(root.join("Cargo.toml"))
        .map_err(|e| format!("read workspace Cargo.toml: {e}"))?;
    let members = rules::package_names(&manifests);

    let mut diagnostics = Vec::new();
    diagnostics.extend(rules::il001_forbid_unsafe(&files, &root_manifest));
    diagnostics.extend(rules::il002_no_panics(&files));
    diagnostics.extend(rules::il003_os_cache_invalidation(&files));
    diagnostics.extend(rules::il004_lock_order(&files));
    diagnostics.extend(rules::il005_no_process_exit(&files));
    diagnostics.extend(rules::il006_manifest_hygiene(&manifests, &members));
    diagnostics.extend(rules::il007_no_hot_path_allocation(&files));
    diagnostics.extend(rules::il008_rule_info_literals(&files));
    diagnostics.sort_by(|a, b| (a.rule, &a.path, a.line).cmp(&(b.rule, &b.path, b.line)));

    let allowlist_text =
        std::fs::read_to_string(root.join("crates/verify-lint/allowlist.txt")).unwrap_or_default();
    let allowlist = parse_allowlist(&allowlist_text)?;

    let by_path: HashMap<&Path, &SourceFile> =
        files.iter().map(|f| (f.path.as_path(), f)).collect();
    let mut used = vec![false; allowlist.len()];
    let mut kept = Vec::new();
    let mut allowed = Vec::new();
    for diag in diagnostics {
        let line_text = by_path
            .get(diag.path.as_path())
            .map(|f| f.line_text(diag.line))
            .unwrap_or("");
        let hit = allowlist.iter().enumerate().find(|(_, entry)| {
            entry.rule == diag.rule
                && diag.path.to_string_lossy().ends_with(&entry.path_suffix)
                && (entry.line_contains == "*" || line_text.contains(&entry.line_contains))
        });
        match hit {
            Some((idx, entry)) => {
                used[idx] = true;
                allowed.push((diag, entry.justification.clone()));
            }
            None => kept.push(diag),
        }
    }
    let unused_allowlist = allowlist
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !*u)
        .map(|(e, _)| e)
        .collect();

    Ok(LintOutcome {
        diagnostics: kept,
        unused_allowlist,
        allowed,
        files_scanned: files.len(),
    })
}

/// Stable, ordered map used in rule implementations (keeps reports sorted).
pub type OrderedSet = BTreeMap<String, ()>;
